"""Setuptools shim.

Kept alongside pyproject.toml so `python setup.py develop` works in
offline environments whose pip cannot build PEP 660 editable wheels
(no `wheel` package available).
"""

from setuptools import setup

setup()
