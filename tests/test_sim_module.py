"""Spinach-style modules and ports."""

import pytest

from repro.sim import SimModule, Simulator
from repro.sim.module import connect
from repro.units import mhz


def _make_pair():
    sim = Simulator()
    a = SimModule(sim, "a", sim.add_clock("core", mhz(200)))
    b = SimModule(sim, "b", sim.add_clock("core", mhz(200)))
    out = a.add_port("out")
    inp = b.add_port("in")
    connect(out, inp)
    return sim, a, b, out, inp


class TestPorts:
    def test_message_delivery(self):
        sim, a, b, out, inp = _make_pair()
        received = []
        inp.on_receive(received.append)
        out.send({"kind": "hello"})
        sim.run()
        assert received == [{"kind": "hello"}]

    def test_latency(self):
        sim, a, b, out, inp = _make_pair()
        times = []
        inp.on_receive(lambda _msg: times.append(sim.now_ps))
        out.send("x", latency_ps=7000)
        sim.run()
        assert times == [7000]

    def test_counters(self):
        sim, a, b, out, inp = _make_pair()
        inp.on_receive(lambda _msg: None)
        out.send("x")
        out.send("y")
        sim.run()
        assert out.messages_sent == 2
        assert inp.messages_received == 2

    def test_unconnected_send_raises(self):
        sim = Simulator()
        module = SimModule(sim, "m")
        port = module.add_port("p")
        with pytest.raises(RuntimeError):
            port.send("x")

    def test_no_handler_raises(self):
        sim, a, b, out, inp = _make_pair()
        with pytest.raises(RuntimeError):
            out.send("x")

    def test_double_connect_raises(self):
        sim, a, b, out, inp = _make_pair()
        other = a.add_port("other")
        with pytest.raises(ValueError):
            other.connect(inp)

    def test_bidirectional_pair(self):
        sim = Simulator()
        a = SimModule(sim, "a")
        b = SimModule(sim, "b")
        req, rsp = a.add_port("req"), a.add_port("rsp")
        breq, brsp = b.add_port("req"), b.add_port("rsp")
        connect(req, breq)
        connect(brsp, rsp)
        log = []
        breq.on_receive(lambda msg: (log.append(("b", msg)), brsp.send(msg + 1)))
        rsp.on_receive(lambda msg: log.append(("a", msg)))
        req.send(1)
        sim.run()
        assert log == [("b", 1), ("a", 2)]


class TestSimModule:
    def test_schedule_cycles_requires_clock(self):
        sim = Simulator()
        module = SimModule(sim, "m")
        with pytest.raises(RuntimeError):
            module.schedule_cycles(1, lambda: None)

    def test_schedule_cycles(self):
        sim = Simulator()
        clock = sim.add_clock("core", mhz(200))
        module = SimModule(sim, "m", clock)
        seen = []
        module.schedule_cycles(2, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [10000]

    def test_ports_registered(self):
        sim = Simulator()
        module = SimModule(sim, "m")
        p1, p2 = module.add_port("p1"), module.add_port("p2")
        assert module.ports == [p1, p2]
