"""Statistical core cost model (macro-tier timing)."""

import pytest

from repro.cpu import ContentionModel, CoreCostModel
from repro.cpu.costmodel import OpProfile


class TestOpProfile:
    def test_accesses(self):
        profile = OpProfile(instructions=100, loads=20, stores=10)
        assert profile.accesses == 30

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpProfile(instructions=-1, loads=0, stores=0)

    def test_memory_ops_cannot_exceed_instructions(self):
        with pytest.raises(ValueError):
            OpProfile(instructions=10, loads=8, stores=8)

    def test_scaled(self):
        profile = OpProfile(instructions=10, loads=2, stores=1)
        doubled = profile.scaled(2)
        assert doubled.instructions == 20
        assert doubled.loads == 4
        assert doubled.taken_branch_fraction == profile.taken_branch_fraction

    def test_plus_combines_counts(self):
        a = OpProfile(instructions=10, loads=2, stores=1)
        b = OpProfile(instructions=30, loads=6, stores=3)
        combined = a.plus(b)
        assert combined.instructions == 40
        assert combined.loads == 8

    def test_plus_blends_fractions(self):
        a = OpProfile(instructions=10, loads=0, stores=0, load_use_fraction=0.0)
        b = OpProfile(instructions=30, loads=0, stores=0, load_use_fraction=1.0)
        assert a.plus(b).load_use_fraction == pytest.approx(0.75)

    def test_plus_with_empty(self):
        a = OpProfile(instructions=0, loads=0, stores=0)
        b = OpProfile(instructions=0, loads=0, stores=0)
        assert a.plus(b).instructions == 0


class TestContentionModel:
    def test_no_traffic_no_wait(self):
        assert ContentionModel(4).expected_wait(0.0) == 0.0

    def test_wait_grows_with_load(self):
        model = ContentionModel(4)
        waits = [model.expected_wait(rate) for rate in (0.5, 1.0, 2.0, 3.0)]
        assert waits == sorted(waits)
        assert waits[-1] > waits[0]

    def test_more_banks_less_wait(self):
        rate = 1.5
        assert ContentionModel(8).expected_wait(rate) < ContentionModel(2).expected_wait(rate)

    def test_saturation_capped(self):
        assert ContentionModel(2).expected_wait(10.0) == 25.0

    def test_paper_operating_point(self):
        # ~1.5 accesses/cycle over 4 banks: expected wait ~0.3 cycles,
        # matching Table 3's modest conflict-stall share.
        wait = ContentionModel(4).expected_wait(1.5)
        assert 0.2 < wait < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionModel(0)
        with pytest.raises(ValueError):
            ContentionModel(4).expected_wait(-1)


class TestCoreCostModel:
    def test_pure_alu_cost(self):
        model = CoreCostModel(imiss_rate=0.0)
        profile = OpProfile(
            instructions=100, loads=0, stores=0,
            taken_branch_fraction=0.0, load_use_fraction=0.0,
        )
        cost = model.cost(profile, 0.0)
        assert cost.total_cycles == pytest.approx(100)

    def test_loads_add_stall_each(self):
        model = CoreCostModel(imiss_rate=0.0)
        profile = OpProfile(
            instructions=100, loads=20, stores=0,
            taken_branch_fraction=0.0, load_use_fraction=0.0,
        )
        assert model.cost(profile, 0.0).load_cycles == pytest.approx(20)

    def test_load_use_pipeline_charge(self):
        model = CoreCostModel(imiss_rate=0.0)
        profile = OpProfile(
            instructions=100, loads=20, stores=0,
            taken_branch_fraction=0.0, load_use_fraction=0.5,
        )
        assert model.cost(profile, 0.0).pipeline_cycles == pytest.approx(10)

    def test_conflict_charge(self):
        model = CoreCostModel(imiss_rate=0.0, store_buffer_pressure=0.5)
        profile = OpProfile(
            instructions=100, loads=10, stores=10,
            taken_branch_fraction=0.0, load_use_fraction=0.0,
        )
        cost = model.cost(profile, 0.4)
        assert cost.conflict_cycles == pytest.approx(10 * 0.4 + 10 * 0.4 * 0.5)

    def test_imiss_charge(self):
        model = CoreCostModel(imiss_rate=0.001, imiss_penalty_cycles=8)
        profile = OpProfile(instructions=1000, loads=0, stores=0,
                            taken_branch_fraction=0.0, load_use_fraction=0.0)
        assert model.cost(profile, 0.0).imiss_cycles == pytest.approx(8)

    def test_breakdown_sums_to_one(self):
        model = CoreCostModel()
        profile = OpProfile(instructions=500, loads=80, stores=60)
        breakdown = model.cost(profile, 0.3).breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            CoreCostModel().cost(OpProfile(10, 1, 1), -0.1)

    def test_paper_table3_composition(self):
        """Default parameters + the firmware's operation mix should land
        near Table 3: execution ~0.7, load ~0.12-0.15, conflict ~0.05,
        pipeline ~0.1, imiss ~0.01."""
        model = CoreCostModel()
        profile = OpProfile(instructions=1000, loads=167, stores=125)
        breakdown = model.cost(profile, 0.29).breakdown()
        assert 0.6 < breakdown["execution"] < 0.8
        assert 0.08 < breakdown["load"] < 0.18
        assert 0.02 < breakdown["conflict"] < 0.09
        assert 0.05 < breakdown["pipeline"] < 0.18
        assert breakdown["imiss"] < 0.02
