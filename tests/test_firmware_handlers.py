"""Functional firmware pipelines: in-order delivery invariants."""

import random

import pytest

from repro.firmware.handlers import RecvPath, SendPath, SendStage
from repro.firmware.ordering import OrderingMode

SW = OrderingMode.SOFTWARE
RMW = OrderingMode.RMW


class TestSendPath:
    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_commit_order_is_arrival_order(self, mode):
        path = SendPath(mode)
        seqs = path.post(16)
        path.fetch_bds(seqs)
        for seq in seqs:
            path.issue_dma(seq)
        rng = random.Random(7)
        shuffled = seqs[:]
        rng.shuffle(shuffled)
        for seq in shuffled:
            path.dma_complete(seq)
            path.commit()
        assert path.commit_order == seqs

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_no_commit_before_dma(self, mode):
        path = SendPath(mode)
        seqs = path.post(4)
        path.fetch_bds(seqs)
        for seq in seqs:
            path.issue_dma(seq)
        path.dma_complete(2)  # out of order; 0 and 1 still pending
        committed = path.commit()
        assert committed == []

    def test_transmit_requires_commit(self):
        path = SendPath(RMW)
        seqs = path.post(1)
        path.fetch_bds(seqs)
        path.issue_dma(0)
        path.dma_complete(0)
        with pytest.raises(ValueError):
            path.transmit(0)
        path.commit()
        path.transmit(0)

    def test_stage_regression_rejected(self):
        path = SendPath(RMW)
        path.post(1)
        with pytest.raises(ValueError):
            path.frames[0].advance(SendStage.POSTED)

    def test_transmitted_frames_leave_tracking(self):
        path = SendPath(RMW)
        seqs = path.post(2)
        path.fetch_bds(seqs)
        for seq in seqs:
            path.issue_dma(seq)
            path.dma_complete(seq)
        path.commit()
        path.transmit(0)
        assert 0 not in path.frames
        assert 1 in path.frames


class TestRecvPath:
    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_delivery_order_is_arrival_order(self, mode):
        path = RecvPath(mode)
        seqs = path.arrive(32)
        for seq in seqs:
            path.issue_dma(seq)
        rng = random.Random(13)
        shuffled = seqs[:]
        rng.shuffle(shuffled)
        for seq in shuffled:
            path.dma_complete(seq)
            path.commit()
        assert path.commit_order == seqs

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_partial_progress(self, mode):
        path = RecvPath(mode)
        path.arrive(4)
        for seq in (0, 1, 3):
            path.issue_dma(seq)
            path.dma_complete(seq)
        committed = path.commit()
        assert committed == [0, 1]
        path.issue_dma(2)
        path.dma_complete(2)
        committed = path.commit()
        assert committed == [2, 3]

    def test_committed_frames_released(self):
        path = RecvPath(RMW)
        path.arrive(2)
        for seq in (0, 1):
            path.issue_dma(seq)
            path.dma_complete(seq)
        path.commit()
        assert not path.frames


class TestInterleavedPaths:
    def test_send_and_recv_boards_are_independent(self):
        send = SendPath(RMW, ring_size=64)
        recv = RecvPath(RMW, ring_size=64)
        send_seqs = send.post(8)
        send.fetch_bds(send_seqs)
        recv_seqs = recv.arrive(8)
        for seq in send_seqs:
            send.issue_dma(seq)
            send.dma_complete(seq)
        for seq in recv_seqs:
            recv.issue_dma(seq)
            recv.dma_complete(seq)
        assert len(send.commit()) == 8
        assert len(recv.commit()) == 8
