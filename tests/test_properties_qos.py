"""Property-based tests (hypothesis) for the QoS subsystem.

The ISSUE 9 properties:

* **DRR** is work-conserving and byte-fair within the deficit bound —
  over any serve sequence where classes stay backlogged, the rounds
  granted to two classes differ by at most one lap and each class's
  served bytes satisfy the exposed deficit identity
  ``served == rounds * quantum - deficit``;
* **strict priority** starves lower classes while a higher class stays
  backlogged (the guarantee *and* the hazard);
* **RED**'s drop probability is monotone non-decreasing in occupancy,
  and its keyed decisions are pure functions of ``(seed, port, class,
  index)`` — independent of call order;
* **pause/backpressure conserves frames**: driving the QoS wire
  directly with a time-ordered stub kernel, every injected frame is
  forwarded, RED/tail-dropped, or still queued; pause and resume
  events alternate and pair up; the armed invariant monitor stays
  silent.
"""

import dataclasses
import heapq
from collections import deque

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.assists.mac import WireEvent
from repro.check.monitor import InvariantMonitor
from repro.fabric.flows import FabricFrame
from repro.fabric.spec import FabricSpec, StreamFlowSpec
from repro.fabric.wire import FabricWire
from repro.net.ethernet import EthernetTiming
from repro.qos.red import RedSpec, red_decide, red_drop_probability
from repro.qos.sched import DrrScheduler, StrictPriorityScheduler
from repro.qos.spec import QosSpec, TrafficClassSpec


# ----------------------------------------------------------------------
# Scheduler harness: drive select/pop against synthetic backlogs
# ----------------------------------------------------------------------
class _Entry:
    __slots__ = ("frame_bytes",)

    def __init__(self, frame_bytes: int) -> None:
        self.frame_bytes = frame_bytes


_FRAME_BYTES = st.sampled_from([84, 320, 1538])


@given(
    quanta=st.lists(st.integers(min_value=1538, max_value=4 * 1538),
                    min_size=2, max_size=4),
    backlogs=st.data(),
    # Backlogs are one frame deeper than the slot budget, so even if
    # every slot lands on one class its queue cannot empty — the exact
    # deficit identity below requires nothing forfeits mid-sequence.
    slots=st.integers(min_value=1, max_value=90),
)
@settings(max_examples=100, deadline=None)
def test_drr_work_conserving_and_byte_fair(quanta, backlogs, slots):
    classes = len(quanta)
    queues = [
        deque(_Entry(size) for size in backlogs.draw(
            st.lists(_FRAME_BYTES, min_size=slots + 1, max_size=slots + 1)
        ))
        for _ in range(classes)
    ]
    scheduler = DrrScheduler(quanta)
    served = [0] * classes
    for _ in range(slots):
        index = scheduler.select(queues)
        # Work conservation: backlog present ⇒ a class is selected.
        assert index is not None
        assert queues[index], "selected an empty class queue"
        served[index] += queues[index].popleft().frame_bytes
    # Deep backlogs: nothing emptied, so no deficit was forfeited and
    # the exposed identity holds exactly for every class.
    assert all(queues)
    for cls in range(classes):
        assert served[cls] == (scheduler.rounds[cls] * quanta[cls]
                               - scheduler.deficits[cls])
        # ... and deficits never go negative or run away: after a
        # grant, the residual stays below quantum + one max frame.
        assert 0 <= scheduler.deficits[cls] < quanta[cls] + 1538
    # Byte-fairness bound: continuously backlogged classes are granted
    # rounds within one lap of each other.
    assert max(scheduler.rounds) - min(scheduler.rounds) <= 1


@given(
    priorities=st.lists(st.integers(min_value=0, max_value=3),
                        min_size=2, max_size=4, unique=True),
    slots=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_strict_priority_starves_lower_classes(priorities, slots):
    classes = len(priorities)
    urgent = min(range(classes), key=lambda i: priorities[i])
    scheduler = StrictPriorityScheduler(priorities)
    # Every class holds a deep backlog the whole time: the urgent class
    # monopolizes the port, the rest are starved completely.
    queues = [deque(_Entry(1000) for _ in range(slots + 1))
              for _ in range(classes)]
    for _ in range(slots):
        index = scheduler.select(queues)
        assert index == urgent
        queues[index].popleft()


@given(
    min_frames=st.integers(min_value=0, max_value=32),
    span=st.integers(min_value=1, max_value=64),
    max_probability=st.floats(min_value=0.01, max_value=1.0),
    occupancies=st.lists(st.integers(min_value=0, max_value=128),
                         min_size=2, max_size=16),
)
@settings(max_examples=200, deadline=None)
def test_red_probability_monotone_in_occupancy(
    min_frames, span, max_probability, occupancies
):
    red = RedSpec(
        min_frames=min_frames,
        max_frames=min_frames + span,
        max_drop_probability=max_probability,
    )
    ordered = sorted(occupancies)
    probabilities = [red_drop_probability(o, red) for o in ordered]
    assert probabilities == sorted(probabilities)
    assert all(0.0 <= p <= 1.0 for p in probabilities)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    port=st.integers(min_value=0, max_value=7),
    indices=st.lists(st.integers(min_value=0, max_value=10_000),
                     min_size=1, max_size=32),
    probability=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=100, deadline=None)
def test_red_decisions_are_order_independent(seed, port, indices, probability):
    forward = [red_decide(seed, port, "be", i, probability) for i in indices]
    backward = [red_decide(seed, port, "be", i, probability)
                for i in reversed(indices)]
    assert forward == list(reversed(backward))


# ----------------------------------------------------------------------
# Wire-level: pause/resume conserves frames (time-ordered stub kernel)
# ----------------------------------------------------------------------
class _TimedStubSim:
    """Minimal (time, ticket)-ordered event loop — the kernel contract
    the QoS service chains rely on."""

    def __init__(self) -> None:
        self._heap = []
        self._ticket = 0
        self.now_ps = 0

    def schedule_at(self, when_ps, callback):
        heapq.heappush(self._heap, (when_ps, self._ticket, callback))
        self._ticket += 1

    def drain(self):
        while self._heap:
            when, _ticket, callback = heapq.heappop(self._heap)
            self.now_ps = when
            callback()


class _StubEndpoint:
    faults = None

    def __init__(self) -> None:
        self.arrivals = []

    def rx_arrive(self, frame, available_ps):
        self.arrivals.append((frame, available_ps))


class _StubTracer:
    enabled = False


class _StubFabric:
    def __init__(self, spec) -> None:
        self.endpoints = [_StubEndpoint() for _ in range(spec.nics)]
        self.sim = _TimedStubSim()
        self.tracer = _StubTracer()
        self.timing = EthernetTiming()
        self.lost = []
        self.pauses = []

    def frame_lost(self, frame, now_ps, reason):
        self.lost.append((frame, now_ps, reason))

    def qos_pause(self, port, cls, now_ps):
        self.pauses.append(("xoff", port, cls, now_ps))

    def qos_resume(self, port, cls, now_ps):
        self.pauses.append(("xon", port, cls, now_ps))


def _pause_qos(xoff, xon, queue_frames, scheduler):
    return QosSpec(
        classes=(
            TrafficClassSpec(
                name="only",
                queue_frames=queue_frames,
                pause_xoff_frames=xoff,
                pause_xon_frames=xon,
            ),
        ),
        scheduler=scheduler,
        seed=0,
    )


@st.composite
def _paused_schedules(draw):
    queue_frames = draw(st.integers(min_value=4, max_value=16))
    xoff = draw(st.integers(min_value=2, max_value=queue_frames))
    xon = draw(st.integers(min_value=0, max_value=xoff - 1))
    scheduler = draw(st.sampled_from(["strict", "drr", "wrr"]))
    spec = dataclasses.replace(
        FabricSpec(
            nics=3,
            switch=True,
            qos=_pause_qos(xoff, xon, queue_frames, scheduler),
            stream_flows=(StreamFlowSpec(src=0, dst=2, qos_class="only"),),
        ),
        propagation_delay_ps=draw(st.sampled_from([0, 100_000])),
        switch_latency_ps=draw(st.sampled_from([0, 250_000])),
    )
    frames = draw(st.lists(
        st.tuples(
            st.sampled_from([0, 1]),                        # src
            st.sampled_from([18, 256, 1472]),               # udp payload
            st.integers(min_value=0, max_value=2_500_000),  # pre-frame gap
        ),
        min_size=1,
        max_size=48,
    ))
    return spec, frames


@given(_paused_schedules())
@settings(max_examples=80, deadline=None)
def test_pause_resume_conserves_frames(case):
    spec, frames = case
    fabric = _StubFabric(spec)
    wire = FabricWire(fabric, spec)
    monitor = InvariantMonitor()
    wire.monitor = monitor

    clocks = [0] * spec.nics
    for seq, (src, payload, gap) in enumerate(frames):
        frame = FabricFrame(
            flow="prop", src=src, dst=2, udp_payload_bytes=payload,
            kind="stream", request_id=seq, created_ps=clocks[src],
            qos_class="only",
        )
        start = clocks[src] + gap
        end = start + fabric.timing.frame_time_ps(frame.frame_bytes)
        clocks[src] = end
        wire.transmit(src, frame, WireEvent(
            seq=seq, wire_start_ps=start, wire_end_ps=end, sdram_done_ps=end,
        ))
    fabric.sim.drain()

    port = wire._qos_ports[2]
    delivered = sum(len(ep.arrivals) for ep in fabric.endpoints)
    # Conservation: injected == forwarded + dropped + still-queued, and
    # after a full drain the backlog must be empty (work conservation).
    assert port.backlog() == 0
    assert port.enqueued[0] == port.forwarded[0]
    assert delivered == wire.forwarded == port.forwarded[0]
    assert delivered + wire.drops == len(frames)
    assert len(fabric.lost) == wire.drops == port.tail_drops[0]
    # Pause/resume alternate, pair up, and end resumed.
    events = [kind for kind, _port, _cls, _now in fabric.pauses]
    assert events == ["xoff", "xon"] * (len(events) // 2)
    assert port.pause_events[0] == port.resume_events[0] == len(events) // 2
    assert not port.paused[0]
    # The armed monitor saw the same schedule and stayed silent.
    assert monitor.ok, monitor.violations
