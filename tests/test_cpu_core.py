"""Cycle-level pipelined core: stall rules and multi-core arbitration."""

import pytest

from repro.cpu import LockstepSystem, PipelinedCore
from repro.isa import assemble
from repro.mem import InstructionCache, InstructionMemory, Scratchpad


def _core(source, banks=4, **kwargs):
    program = assemble(source)
    scratchpad = Scratchpad(banks=banks)
    return PipelinedCore(program, scratchpad, **kwargs)


class TestBasicTiming:
    def test_alu_only_is_one_cycle_each_plus_imiss(self):
        core = _core("li $t0, 1\nli $t1, 2\naddu $v0, $t0, $t1\nhalt")
        stats = core.run()
        assert stats.instructions == 4
        # cycles = instructions + the single cold I-cache fill
        assert stats.cycles == 4 + stats.imiss_stalls
        assert stats.load_stalls == 0

    def test_every_load_stalls_one_cycle(self):
        core = _core(
            """
            .data
            buf: .word 1, 2, 3, 4
            .text
            la $t0, buf
            lw $t1, 0($t0)
            nop
            lw $t2, 4($t0)
            nop
            halt
            """
        )
        stats = core.run()
        assert stats.load_stalls == 2

    def test_load_use_adds_pipeline_stall(self):
        dependent = _core(
            """
            .data
            buf: .word 7
            .text
            la $t0, buf
            lw $t1, 0($t0)
            addu $v0, $t1, $t1   # load-use
            halt
            """
        )
        independent = _core(
            """
            .data
            buf: .word 7
            .text
            la $t0, buf
            lw $t1, 0($t0)
            addu $v0, $t0, $t0   # no dependence on the load
            halt
            """
        )
        dep_stats = dependent.run()
        ind_stats = independent.run()
        assert dep_stats.pipeline_stalls == ind_stats.pipeline_stalls + 1

    def test_store_buffer_hides_single_store(self):
        core = _core(
            """
            .data
            buf: .space 8
            .text
            la $t0, buf
            sw $t0, 0($t0)
            nop
            nop
            halt
            """
        )
        stats = core.run()
        assert stats.load_stalls == 0
        assert stats.conflict_stalls == 0

    def test_back_to_back_stores_backpressure(self):
        core = _core(
            """
            .data
            buf: .space 16
            .text
            la $t0, buf
            sw $t0, 0($t0)
            sw $t0, 4($t0)   # buffer still draining
            halt
            """
        )
        stats = core.run()
        assert stats.conflict_stalls >= 1

    def test_taken_branch_costs_a_fetch_slot(self):
        taken = _core(
            """
            li $t0, 0
            beqz $t0, target
            nop
        target:
            halt
            """
        )
        not_taken = _core(
            """
            li $t0, 1
            beqz $t0, target
            nop
        target:
            halt
            """
        )
        t = taken.run()
        n = not_taken.run()
        assert t.pipeline_stalls == n.pipeline_stalls + 1

    def test_functional_result_matches_machine(self):
        core = _core(
            """
            li $t0, 6
            li $t1, 7
            mul $v0, $t0, $t1
            halt
            """
        )
        core.run()
        assert core.machine.register_by_name("v0") == 42

    def test_ipc_below_one(self):
        core = _core(
            """
            .data
            buf: .word 1, 2, 3, 4, 5, 6, 7, 8
            .text
            la $t0, buf
            li $t2, 8
        loop:
            lw $t1, 0($t0)
            addu $v0, $v0, $t1
            addiu $t2, $t2, -1
            bgtz $t2, loop
            addiu $t0, $t0, 4
            halt
            """
        )
        stats = core.run()
        assert 0.3 < stats.ipc < 1.0

    def test_breakdown_sums_to_one(self):
        core = _core("li $t0, 1\nhalt")
        stats = core.run()
        assert sum(stats.breakdown().values()) == pytest.approx(1.0)


class TestICacheTiming:
    def test_small_cache_thrashes(self):
        tiny = InstructionCache(capacity_bytes=64, associativity=2, line_bytes=32)
        program = "\n".join(["nop"] * 64 + ["halt"])
        core = _core(program, icache=tiny)
        stats = core.run()
        assert stats.imiss_stalls > 0
        assert tiny.misses > 2

    def test_loop_hits_after_first_pass(self):
        core = _core(
            """
            li $t0, 50
        loop:
            addiu $t0, $t0, -1
            bgtz $t0, loop
            nop
            halt
            """
        )
        core.run()
        assert core.icache.hit_ratio > 0.95


class TestMultiCoreArbitration:
    def _shared_system(self, cores=2, banks=1):
        # Both cores hammer the same scratchpad bank.
        source = """
        .data
        buf: .word 0, 0, 0, 0
        .text
        main:
            la $t0, buf
            li $t2, 16
        loop:
            lw $t1, 0($t0)
            lw $t3, 0($t0)
            addiu $t2, $t2, -1
            bgtz $t2, loop
            nop
            halt
        """
        program = assemble(source)
        scratchpad = Scratchpad(banks=banks)
        imem = InstructionMemory()
        core_list = [
            PipelinedCore(
                program, scratchpad, imem=imem, core_id=i,
                shared_memory=scratchpad.memory,
            )
            for i in range(cores)
        ]
        return LockstepSystem(core_list), scratchpad

    def test_bank_conflicts_emerge_with_sharing(self):
        single, _ = self._shared_system(cores=1)
        shared, _ = self._shared_system(cores=2)
        single_stats = single.run()
        shared_stats = shared.run()
        assert sum(s.conflict_stalls for s in shared_stats) > sum(
            s.conflict_stalls for s in single_stats
        )

    def test_more_banks_fewer_conflicts(self):
        one_bank, _ = self._shared_system(cores=4, banks=1)
        four_banks, _ = self._shared_system(cores=4, banks=4)
        one = sum(s.conflict_stalls for s in one_bank.run())
        four = sum(s.conflict_stalls for s in four_banks.run())
        # Note: this loop hits a single address, so interleaving cannot
        # spread it; the conflicts should be no worse with more banks.
        assert four <= one

    def test_all_cores_complete(self):
        system, _ = self._shared_system(cores=3)
        stats = system.run()
        assert len(stats) == 3
        assert all(s.instructions > 0 for s in stats)

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            LockstepSystem([])
