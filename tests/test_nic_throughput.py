"""Full-system throughput simulator: the paper's headline behaviours.

These tests use short simulation windows (hundreds of microseconds), so
thresholds carry slack relative to the benchmark runs.
"""

import pytest

from repro.firmware.ordering import OrderingMode
from repro.net.ethernet import EthernetTiming
from repro.nic import NicConfig, RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator
from repro.units import mhz

WARMUP = 0.3e-3
MEASURE = 0.5e-3


def run(config, payload=1472, offered=1.0):
    sim = ThroughputSimulator(config, payload, offered_fraction=offered)
    return sim.run(warmup_s=WARMUP, measure_s=MEASURE)


@pytest.fixture(scope="module")
def rmw_result():
    return run(RMW_166MHZ)


@pytest.fixture(scope="module")
def software_result():
    return run(SOFTWARE_200MHZ)


class TestHeadlineConfigs:
    def test_rmw_166_reaches_line_rate(self, rmw_result):
        assert rmw_result.line_rate_fraction() > 0.97

    def test_software_200_reaches_line_rate(self, software_result):
        assert software_result.line_rate_fraction() > 0.97

    def test_software_166_falls_short(self):
        config = NicConfig(
            cores=6, core_frequency_hz=mhz(166), ordering_mode=OrderingMode.SOFTWARE
        )
        result = run(config)
        assert result.line_rate_fraction() < 0.99

    def test_duplex_throughput_near_19_gbps(self, rmw_result):
        assert rmw_result.udp_throughput_gbps > 18.5

    def test_both_directions_carried(self, rmw_result):
        per_direction = EthernetTiming().frames_per_second(1518)
        assert rmw_result.tx_fps > 0.95 * per_direction
        assert rmw_result.rx_fps > 0.95 * per_direction


class TestScaling:
    def test_throughput_increases_with_cores(self):
        fractions = []
        for cores in (1, 2, 4):
            config = NicConfig(
                cores=cores, core_frequency_hz=mhz(166),
                ordering_mode=OrderingMode.RMW,
            )
            fractions.append(run(config).line_rate_fraction())
        assert fractions[0] < fractions[1] < fractions[2] + 0.02

    def test_one_core_is_processing_bound(self):
        config = NicConfig(
            cores=1, core_frequency_hz=mhz(200), ordering_mode=OrderingMode.RMW
        )
        result = run(config)
        assert result.line_rate_fraction() < 0.5
        assert result.core_utilization > 0.95

    def test_throughput_increases_with_frequency(self):
        slow = run(NicConfig(cores=2, core_frequency_hz=mhz(100),
                             ordering_mode=OrderingMode.RMW))
        fast = run(NicConfig(cores=2, core_frequency_hz=mhz(200),
                             ordering_mode=OrderingMode.RMW))
        assert fast.line_rate_fraction() > slow.line_rate_fraction()

    def test_excess_capacity_idles_cores(self):
        config = NicConfig(
            cores=8, core_frequency_hz=mhz(200), ordering_mode=OrderingMode.RMW
        )
        result = run(config)
        assert result.line_rate_fraction() > 0.97
        assert result.core_utilization < 0.9


class TestSmallFrames:
    def test_processing_bound_at_small_frames(self):
        result = run(RMW_166MHZ, payload=100)
        limit = 2 * EthernetTiming().frames_per_second(146)
        assert result.total_fps < 0.5 * limit

    def test_saturation_rate_order_of_2m_fps(self):
        result = run(RMW_166MHZ, payload=100)
        assert 1.2e6 < result.total_fps < 3.0e6

    def test_drops_accounted_when_overloaded(self):
        result = run(RMW_166MHZ, payload=100)
        assert result.rx_dropped > 0
        accepted = result.rx_offered - result.rx_dropped
        # accepted arrivals either commit or stay in flight
        assert accepted >= result.rx_frames - 64


class TestConservation:
    def test_no_frame_loss_on_tx_path(self, rmw_result):
        # Everything committed to the MAC eventually leaves; tx wire
        # count can lag claims only by the in-flight population.
        assert rmw_result.tx_frames > 0

    def test_function_stats_cover_all_functions(self, rmw_result):
        from repro.nic.throughput import FUNCTION_NAMES
        for name in FUNCTION_NAMES:
            assert name in rmw_result.function_stats

    def test_frames_counted_once_per_function(self, rmw_result):
        send = rmw_result.function_stats["send_frame"]
        assert send.frames == pytest.approx(rmw_result.tx_frames, rel=0.15)

    def test_ipc_breakdown_sums_to_one(self, rmw_result):
        assert sum(rmw_result.ipc_breakdown().values()) == pytest.approx(1.0, abs=0.01)

    def test_busy_never_exceeds_capacity(self, rmw_result):
        assert rmw_result.busy_cycles <= rmw_result.total_core_cycles * 1.02


class TestBandwidthAccounting:
    def test_frame_memory_consumption_near_40_gbps(self, rmw_result):
        report = rmw_result.bandwidth_report()
        assert 36 < report["frame_memory_consumed_gbps"] < 44

    def test_misalignment_overhead_positive_but_small(self, rmw_result):
        report = rmw_result.bandwidth_report()
        overhead = (
            report["frame_memory_consumed_gbps"] - report["frame_memory_useful_gbps"]
        )
        assert 0 < overhead < 1.5

    def test_scratchpad_consumption_under_peak(self, rmw_result):
        report = rmw_result.bandwidth_report()
        assert report["scratchpad_consumed_gbps"] < report["scratchpad_peak_gbps"]

    def test_imem_nearly_idle(self, rmw_result):
        report = rmw_result.bandwidth_report()
        assert report["imem_consumed_gbps"] < 0.05 * report["imem_peak_gbps"]


class TestRmwVsSoftware:
    def test_ordering_cheaper_with_rmw(self, rmw_result, software_result):
        rmw = rmw_result.function_stats["send_dispatch_ordering"]
        software = software_result.function_stats["send_dispatch_ordering"]
        rmw_per_frame = rmw.instructions / max(1, rmw_result.tx_frames)
        sw_per_frame = software.instructions / max(1, software_result.tx_frames)
        assert rmw_per_frame < 0.7 * sw_per_frame

    def test_send_cycles_reduced_more_than_recv(self, rmw_result, software_result):
        def totals(result, functions):
            return sum(result.function_stats[f].cycles for f in functions)

        send_fns = ("fetch_send_bd", "send_frame", "send_dispatch_ordering", "send_locking")
        recv_fns = ("fetch_recv_bd", "recv_frame", "recv_dispatch_ordering", "recv_locking")
        sw_send = totals(software_result, send_fns) / software_result.tx_frames
        rmw_send = totals(rmw_result, send_fns) / rmw_result.tx_frames
        sw_recv = totals(software_result, recv_fns) / software_result.rx_frames
        rmw_recv = totals(rmw_result, recv_fns) / rmw_result.rx_frames
        send_reduction = 1 - rmw_send / sw_send
        recv_reduction = 1 - rmw_recv / sw_recv
        assert send_reduction > recv_reduction
        assert send_reduction > 0.1

    def test_remaining_lock_contention_increases_with_rmw(
        self, rmw_result, software_result
    ):
        """Paper: 'contention among the remaining firmware locks
        increases', particularly in the receive path."""
        rmw = rmw_result.function_stats["recv_locking"]
        software = software_result.function_stats["recv_locking"]
        rmw_per_frame = rmw.instructions / max(1, rmw_result.rx_frames)
        sw_per_frame = software.instructions / max(1, software_result.rx_frames)
        assert rmw_per_frame > sw_per_frame * 0.95


class TestOfferedLoadControl:
    def test_half_load_halves_rx(self):
        result = run(RMW_166MHZ, offered=0.5)
        per_direction = EthernetTiming().frames_per_second(1518)
        assert result.rx_fps == pytest.approx(0.5 * per_direction, rel=0.1)

    def test_offered_load_validation(self):
        from repro.net.workload import WorkloadShaper, UdpStreamWorkload
        with pytest.raises(ValueError):
            WorkloadShaper(UdpStreamWorkload(1472, "rx"), offered_fraction_of_line_rate=1.5)


class TestTaskLevelBaseline:
    def test_event_register_firmware_scales_worse(self):
        frame = NicConfig(cores=6, core_frequency_hz=mhz(133),
                          ordering_mode=OrderingMode.RMW)
        task = NicConfig(cores=6, core_frequency_hz=mhz(133),
                         ordering_mode=OrderingMode.RMW, task_level_firmware=True)
        frame_result = run(frame)
        task_result = run(task)
        assert task_result.total_fps <= frame_result.total_fps * 1.02


class TestTaskLevelDispatchInternals:
    """Unit-level checks of the event-register dispatch restriction."""

    def _sim(self):
        from dataclasses import replace
        config = replace(RMW_166MHZ, task_level_firmware=True)
        return ThroughputSimulator(config, 1472)

    def test_same_kind_never_runs_twice_concurrently(self):
        from repro.firmware.events import EventKind
        sim = self._sim()
        concurrent = {kind: 0 for kind in EventKind}
        peak = {kind: 0 for kind in EventKind}
        original_run = sim._run_handler
        original_done = sim._handler_done

        def spy_run(event):
            concurrent[event.kind] += 1
            peak[event.kind] = max(peak[event.kind], concurrent[event.kind])
            return original_run(event)

        def spy_done(kind, core_id):
            concurrent[kind] -= 1
            return original_done(kind, core_id)

        sim._run_handler = spy_run
        sim._handler_done = spy_done
        sim.run(warmup_s=0.05e-3, measure_s=0.1e-3)
        assert all(count <= 1 for count in peak.values())

    def test_frame_level_allows_concurrency(self):
        from repro.firmware.events import EventKind
        sim = ThroughputSimulator(RMW_166MHZ, 1472)
        concurrent = {kind: 0 for kind in EventKind}
        peak = {kind: 0 for kind in EventKind}
        original_run = sim._run_handler
        original_done = sim._handler_done

        def spy_run(event):
            concurrent[event.kind] += 1
            peak[event.kind] = max(peak[event.kind], concurrent[event.kind])
            return original_run(event)

        def spy_done(kind, core_id):
            concurrent[kind] -= 1
            return original_done(kind, core_id)

        sim._run_handler = spy_run
        sim._handler_done = spy_done
        sim.run(warmup_s=0.1e-3, measure_s=0.3e-3)
        assert max(peak.values()) >= 2  # some handler type ran in parallel
