"""Tests for the QoS subsystem (``repro.qos`` + fabric integration).

Covers the ISSUE 9 acceptance surface: spec validation, the three
scheduler disciplines, keyed RED decisions (deterministic, monotone,
interleaving-independent), legacy cache-key/describe preservation with
``qos=None``, a monitored end-to-end incast run (invariants clean,
conservation identities hold), byte-identical determinism and
fast-vs-reference equality, mixed-criticality isolation, and PFC-style
pause/backpressure reaching the stream pacers.
"""

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.check import InvariantMonitor, attach_monitor, verify_conservation
from repro.exp.spec import RunSpec, describe
from repro.fabric import FabricSimulator, FabricSpec, RpcFlowSpec, StreamFlowSpec
from repro.nic.config import NicConfig
from repro.qos import (
    DRR_QUANTUM_BYTES,
    QosSpec,
    RedSpec,
    TrafficClassSpec,
    red_decide,
    red_drop_probability,
)
from repro.qos.red import keyed_uniform
from repro.qos.sched import (
    DrrScheduler,
    StrictPriorityScheduler,
    WrrScheduler,
    make_scheduler,
)
from repro.units import mhz

# 4-core NICs so the sources can actually overload a 10G switch port
# (2 cores cap out near 5.7 Gb/s).  Small windows keep each run fast.
WARMUP_S = 0.1e-3
MEASURE_S = 0.3e-3
P999_BOUND_US = 150.0


def _config() -> NicConfig:
    return NicConfig(cores=4, core_frequency_hz=mhz(133))


def _incast_spec(scheduler="strict", load=1.0, red=True, pause=False,
                 seed=7) -> FabricSpec:
    """The mixed-criticality incast: gold (guaranteed) + bulk (BE) → NIC 2."""
    qos = QosSpec.mixed_criticality(
        scheduler=scheduler,
        guaranteed_p999_bound_us=P999_BOUND_US,
        red=red,
        pause=pause,
        seed=seed,
    )
    return FabricSpec(
        nics=3,
        switch=True,
        seed=seed,
        qos=qos,
        stream_flows=(
            StreamFlowSpec(src=0, dst=2, offered_fraction=0.25,
                           name="gold", qos_class="guaranteed"),
            StreamFlowSpec(src=1, dst=2, offered_fraction=float(load),
                           name="bulk", qos_class="best-effort"),
        ),
    )


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestTrafficClassSpecValidation:
    def test_needs_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            TrafficClassSpec(name="")

    def test_dscp_range(self):
        with pytest.raises(ValueError, match="dscp"):
            TrafficClassSpec(name="x", dscp=64)
        with pytest.raises(ValueError, match="dscp"):
            TrafficClassSpec(name="x", dscp=-1)

    def test_queue_depth(self):
        with pytest.raises(ValueError, match="at least one frame"):
            TrafficClassSpec(name="x", queue_frames=0)

    def test_priority_and_weight(self):
        with pytest.raises(ValueError, match="priority"):
            TrafficClassSpec(name="x", priority=-1)
        with pytest.raises(ValueError, match="weight"):
            TrafficClassSpec(name="x", weight=0)

    def test_quantum_non_negative(self):
        with pytest.raises(ValueError, match="quantum_bytes"):
            TrafficClassSpec(name="x", quantum_bytes=-1)

    def test_red_must_fit_queue(self):
        with pytest.raises(ValueError, match="exceeds queue depth"):
            TrafficClassSpec(
                name="x", queue_frames=16,
                red=RedSpec(min_frames=4, max_frames=32),
            )

    def test_pause_watermarks(self):
        with pytest.raises(ValueError, match="non-negative"):
            TrafficClassSpec(name="x", pause_xoff_frames=-1)
        with pytest.raises(ValueError, match="XON"):
            TrafficClassSpec(name="x", pause_xoff_frames=8,
                             pause_xon_frames=8)
        with pytest.raises(ValueError, match="exceeds queue depth"):
            TrafficClassSpec(name="x", queue_frames=16,
                             pause_xoff_frames=32, pause_xon_frames=4)

    def test_p999_bound_non_negative(self):
        with pytest.raises(ValueError, match="p999_bound_us"):
            TrafficClassSpec(name="x", p999_bound_us=-1.0)

    def test_drr_quantum_defaults_to_weight_scaled(self):
        tc = TrafficClassSpec(name="x", weight=4)
        assert tc.drr_quantum_bytes == 4 * DRR_QUANTUM_BYTES
        explicit = TrafficClassSpec(name="x", weight=4, quantum_bytes=9000)
        assert explicit.drr_quantum_bytes == 9000


class TestRedSpecValidation:
    def test_min_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            RedSpec(min_frames=-1)

    def test_thresholds_ordered(self):
        with pytest.raises(ValueError, match="min < max"):
            RedSpec(min_frames=8, max_frames=8)

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            RedSpec(max_drop_probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            RedSpec(max_drop_probability=1.5)


class TestQosSpecValidation:
    def test_needs_classes(self):
        with pytest.raises(ValueError, match="at least one traffic class"):
            QosSpec(classes=())

    def test_unique_names_and_tags(self):
        with pytest.raises(ValueError, match="unique"):
            QosSpec(classes=(
                TrafficClassSpec(name="a", dscp=1),
                TrafficClassSpec(name="a", dscp=2),
            ))
        with pytest.raises(ValueError, match="dscp"):
            QosSpec(classes=(
                TrafficClassSpec(name="a", dscp=1),
                TrafficClassSpec(name="b", dscp=1),
            ))

    def test_known_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            QosSpec(classes=(TrafficClassSpec(name="a"),), scheduler="fifo")

    def test_default_class_must_exist(self):
        with pytest.raises(ValueError, match="default_class"):
            QosSpec(classes=(TrafficClassSpec(name="a"),), default_class="b")

    def test_resolve_and_index(self):
        qos = QosSpec.mixed_criticality()
        assert qos.class_names() == ("guaranteed", "best-effort")
        assert qos.resolve("") == "guaranteed"
        assert qos.index_of("best-effort") == 1
        with pytest.raises(ValueError, match="unknown traffic class"):
            qos.index_of("bronze")

    def test_mixed_criticality_shape(self):
        qos = QosSpec.mixed_criticality(pause=True)
        gold, bulk = qos.classes
        assert gold.dscp == 46 and gold.priority < bulk.priority
        assert gold.red is None and bulk.red is not None
        assert bulk.pause_xon_frames < bulk.pause_xoff_frames <= bulk.queue_frames
        calm = QosSpec.mixed_criticality(red=False)
        assert calm.classes[1].red is None
        assert calm.classes[1].pause_xoff_frames == 0


class TestFabricSpecQosValidation:
    def test_qos_class_requires_qos_config(self):
        with pytest.raises(ValueError, match="no qos config"):
            FabricSpec(
                nics=2,
                stream_flows=(StreamFlowSpec(qos_class="guaranteed"),),
            )

    def test_qos_requires_switch(self):
        with pytest.raises(ValueError, match="switch=True"):
            FabricSpec(
                nics=2,
                qos=QosSpec.mixed_criticality(),
                stream_flows=(StreamFlowSpec(),),
            )

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown qos_class"):
            FabricSpec(
                nics=2,
                switch=True,
                qos=QosSpec.mixed_criticality(),
                stream_flows=(StreamFlowSpec(qos_class="bronze"),),
            )

    def test_rpc_flows_may_be_tagged(self):
        spec = FabricSpec(
            nics=2,
            switch=True,
            qos=QosSpec.mixed_criticality(),
            rpc_flows=(RpcFlowSpec(qos_class="guaranteed"),),
        )
        assert spec.rpc_flows[0].qos_class == "guaranteed"

    def test_with_load_selective(self):
        spec = _incast_spec(load=0.5)
        scaled = spec.with_load(1.0, flows=["bulk"])
        assert scaled.stream_flows[0].offered_fraction == 0.25  # gold held
        assert scaled.stream_flows[1].offered_fraction == 1.0
        with pytest.raises(ValueError, match="unknown stream flows"):
            spec.with_load(1.0, flows=["bogus"])


# ----------------------------------------------------------------------
# Schedulers (unit level)
# ----------------------------------------------------------------------
class _Entry:
    __slots__ = ("frame_bytes",)

    def __init__(self, frame_bytes: int) -> None:
        self.frame_bytes = frame_bytes


def _queues(*sizes_lists):
    from collections import deque
    return [deque(_Entry(size) for size in sizes) for sizes in sizes_lists]


def _serve(scheduler, queues, slots):
    """Run the port service loop: select → pop head, ``slots`` times."""
    order = []
    for _ in range(slots):
        index = scheduler.select(queues)
        if index is None:
            break
        entry = queues[index].popleft()
        order.append((index, entry.frame_bytes))
    return order


class TestStrictPriority:
    def test_most_urgent_backlogged_class_wins(self):
        scheduler = StrictPriorityScheduler([1, 0, 2])
        queues = _queues([100], [100, 100], [100])
        # priority 0 (class 1) first, then priority 1 (class 0), then 2.
        assert [i for i, _ in _serve(scheduler, queues, 10)] == [1, 1, 0, 2]

    def test_equal_priority_ties_break_by_declaration(self):
        scheduler = StrictPriorityScheduler([0, 0])
        queues = _queues([100], [100])
        assert [i for i, _ in _serve(scheduler, queues, 2)] == [0, 1]

    def test_empty_returns_none(self):
        assert StrictPriorityScheduler([0]).select(_queues([])) is None


class TestDrr:
    def test_quanta_must_be_positive(self):
        with pytest.raises(ValueError, match="quanta"):
            DrrScheduler([0])

    def test_byte_fair_shares(self):
        # 3:1 quanta over equal-size frames → 3:1 served bytes.
        scheduler = DrrScheduler([3000, 1000])
        queues = _queues([1000] * 60, [1000] * 60)
        order = _serve(scheduler, queues, 40)
        served = [sum(b for i, b in order if i == cls) for cls in (0, 1)]
        assert served[0] == 3 * served[1]

    def test_deficit_identity_exposed(self):
        # While both classes stay backlogged:
        # served_bytes == rounds * quantum - deficit, per class.
        scheduler = DrrScheduler([4000, 1600])
        queues = _queues([1500] * 50, [700] * 50)
        order = _serve(scheduler, queues, 30)
        for cls, quantum in ((0, 4000), (1, 1600)):
            served = sum(b for i, b in order if i == cls)
            assert served == (scheduler.rounds[cls] * quantum
                              - scheduler.deficits[cls])

    def test_emptied_class_forfeits_deficit(self):
        scheduler = DrrScheduler([5000, 5000])
        queues = _queues([1000], [1000] * 10)
        _serve(scheduler, queues, 5)
        assert not queues[0]
        assert scheduler.deficits[0] == 0

    def test_idle_resets_all_deficits(self):
        scheduler = DrrScheduler([5000])
        queues = _queues([1000])
        _serve(scheduler, queues, 1)
        assert scheduler.select(queues) is None
        assert scheduler.deficits == [0]


class TestWrr:
    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError, match="weights"):
            WrrScheduler([0])

    def test_frames_per_round_follow_weights(self):
        scheduler = WrrScheduler([3, 1])
        queues = _queues([64] * 20, [1472] * 20)
        order = [i for i, _ in _serve(scheduler, queues, 8)]
        assert order == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_empty_returns_none(self):
        assert WrrScheduler([1]).select(_queues([])) is None


class TestMakeScheduler:
    def test_builds_each_discipline(self):
        for name, kind in (("strict", StrictPriorityScheduler),
                           ("drr", DrrScheduler), ("wrr", WrrScheduler)):
            qos = QosSpec.mixed_criticality(scheduler=name)
            assert isinstance(make_scheduler(qos), kind)

    def test_unknown_rejected(self):
        stub = SimpleNamespace(scheduler="bogus", classes=())
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler(stub)


# ----------------------------------------------------------------------
# RED: keyed, replayable drop decisions
# ----------------------------------------------------------------------
class TestRed:
    def test_ramp_shape(self):
        red = RedSpec(min_frames=8, max_frames=24, max_drop_probability=0.2)
        assert red_drop_probability(0, red) == 0.0
        assert red_drop_probability(7, red) == 0.0
        assert red_drop_probability(24, red) == 1.0
        assert red_drop_probability(100, red) == 1.0
        assert red_drop_probability(16, red) == pytest.approx(0.1)

    def test_monotone_over_ramp(self):
        red = RedSpec(min_frames=4, max_frames=40, max_drop_probability=0.5)
        probabilities = [red_drop_probability(o, red) for o in range(64)]
        assert probabilities == sorted(probabilities)

    def test_decide_edges(self):
        assert red_decide(0, 0, "be", 0, 0.0) is False
        assert red_decide(0, 0, "be", 0, 1.0) is True

    def test_decide_is_keyed_and_replayable(self):
        first = [red_decide(5, 2, "be", i, 0.3) for i in range(64)]
        again = [red_decide(5, 2, "be", i, 0.3) for i in range(64)]
        assert first == again
        # The decision is the documented threshold test on the keyed
        # uniform draw — the FaultPlan.uniform recipe byte-for-byte.
        expected = [keyed_uniform(5, "red:2:be", i) < 0.3 for i in range(64)]
        assert first == expected

    def test_streams_are_independent(self):
        by_port = [red_decide(5, 3, "be", i, 0.3) for i in range(64)]
        by_seed = [red_decide(6, 2, "be", i, 0.3) for i in range(64)]
        base = [red_decide(5, 2, "be", i, 0.3) for i in range(64)]
        assert by_port != base and by_seed != base

    def test_empirical_rate_tracks_probability(self):
        drops = sum(red_decide(1, 0, "be", i, 0.3) for i in range(4000))
        assert 0.25 < drops / 4000 < 0.35


# ----------------------------------------------------------------------
# Legacy cache keys / describe preservation (qos=None ⇒ pre-PR bytes)
# ----------------------------------------------------------------------
class TestLegacyKeyPreservation:
    def test_describe_omits_absent_qos(self):
        text = json.dumps(describe(FabricSpec.rpc_pair(seed=11)))
        assert "qos" not in text

    def test_describe_includes_present_qos(self):
        text = json.dumps(describe(_incast_spec()), sort_keys=True)
        assert '"QosSpec"' in text and '"qos_class"' in text

    def test_run_spec_key_unchanged_without_qos(self):
        base = RunSpec(config=_config(),
                       fabric_spec=FabricSpec.rpc_pair(seed=11))
        # qos=None IS the field default: the key must not see the field.
        assert "qos" not in json.dumps(base.key_inputs())

    def test_qos_extends_the_key(self):
        with_qos = RunSpec(config=_config(), fabric_spec=_incast_spec())
        without = RunSpec(
            config=_config(),
            fabric_spec=dataclasses.replace(
                _incast_spec(), qos=None,
                stream_flows=tuple(
                    dataclasses.replace(f, qos_class="")
                    for f in _incast_spec().stream_flows
                ),
            ),
        )
        assert with_qos.key != without.key

    def test_legacy_result_json_has_no_qos_key(self):
        spec = FabricSpec.rpc_pair(seed=3)
        result = FabricSimulator(_config(), spec).run(WARMUP_S, MEASURE_S)
        assert "qos" not in result.to_dict()


# ----------------------------------------------------------------------
# End-to-end: monitored incast, determinism, fast path, isolation
# ----------------------------------------------------------------------
def _run(spec, fast=False, monitor=None):
    simulator = FabricSimulator(_config(), spec, estimator="exact", fast=fast)
    if monitor is not None:
        attach_monitor(simulator, monitor)
    result = simulator.run(WARMUP_S, MEASURE_S)
    return simulator, result


class TestQosIncastRun:
    @pytest.fixture(scope="class")
    def monitored(self):
        monitor = InvariantMonitor()
        simulator, result = _run(_incast_spec(), monitor=monitor)
        return simulator, result, monitor

    def test_monitor_stays_silent(self, monitored):
        _simulator, _result, monitor = monitored
        assert monitor.ok, monitor.violations
        assert monitor.total_checks() > 0

    def test_end_state_conservation(self, monitored):
        simulator, _result, monitor = monitored
        checked = verify_conservation(simulator, monitor)
        assert checked["qos.port2.best-effort.conservation"]
        assert checked["qos.port2.guaranteed.pause_pairing"]

    def test_result_reports_per_class(self, monitored):
        _simulator, result, _monitor = monitored
        qos = result.qos
        assert qos["scheduler"] == "strict"
        gold = qos["classes"]["guaranteed"]
        bulk = qos["classes"]["best-effort"]
        assert gold["dscp"] == 46 and bulk["dscp"] == 0
        assert gold["delivered"] > 0 and bulk["delivered"] > 0
        assert gold["goodput_gbps"] > 0
        assert gold["oneway"]["count"] == gold["delivered"]
        assert gold["p999_bound_us"] == P999_BOUND_US

    def test_guaranteed_class_isolated(self, monitored):
        """The tentpole acceptance: overload lands only on best-effort."""
        _simulator, result, _monitor = monitored
        gold = result.qos["classes"]["guaranteed"]
        bulk = result.qos["classes"]["best-effort"]
        assert gold["tail_drops"] == 0 and gold["red_drops"] == 0
        assert gold["oneway"]["p999_us"] <= P999_BOUND_US
        assert bulk["red_drops"] > 0
        # Losses reach the flow layer with the right attribution.
        assert result.flows["gold"].lost == 0
        assert result.flows["bulk"].lost == bulk["red_drops"] + bulk["tail_drops"]

    @pytest.mark.parametrize("scheduler", ["drr", "wrr"])
    def test_other_schedulers_also_isolate(self, scheduler):
        _simulator, result = _run(_incast_spec(scheduler=scheduler))
        gold = result.qos["classes"]["guaranteed"]
        assert gold["tail_drops"] == 0 and gold["red_drops"] == 0
        assert gold["oneway"]["p999_us"] <= P999_BOUND_US


class TestQosDeterminism:
    def test_two_runs_byte_identical(self):
        _s1, first = _run(_incast_spec(seed=21))
        _s2, second = _run(_incast_spec(seed=21))
        assert (json.dumps(first.to_dict(), sort_keys=True)
                == json.dumps(second.to_dict(), sort_keys=True))

    def test_fast_path_byte_identical(self):
        _s1, reference = _run(_incast_spec(seed=21))
        _s2, fast = _run(_incast_spec(seed=21), fast=True)
        assert (json.dumps(reference.to_dict(), sort_keys=True)
                == json.dumps(fast.to_dict(), sort_keys=True))

    def test_fast_path_byte_identical_under_pause(self):
        spec = _incast_spec(red=False, pause=True, seed=9)
        _s1, reference = _run(spec)
        _s2, fast = _run(spec, fast=True)
        assert (json.dumps(reference.to_dict(), sort_keys=True)
                == json.dumps(fast.to_dict(), sort_keys=True))


class TestPauseBackpressure:
    def test_xoff_reaches_the_pacer_and_resumes(self):
        # RED off so the queue actually climbs to the XOFF watermark.
        spec = _incast_spec(red=False, pause=True, seed=9)
        monitor = InvariantMonitor()
        simulator, result = _run(spec, monitor=monitor)
        bulk = result.qos["classes"]["best-effort"]
        assert bulk["pause_events"] >= 1
        assert 0 <= bulk["pause_events"] - bulk["resume_events"] <= 1
        # Backpressure reached the transmitting stream pacer.
        assert simulator.flows["bulk"].pause_count >= 1
        assert simulator.flows["gold"].pause_count == 0
        assert monitor.ok, monitor.violations
        verify_conservation(simulator, monitor)

    def test_pause_protects_against_tail_drops(self):
        spec = _incast_spec(red=False, pause=True, seed=9)
        _simulator, result = _run(spec)
        bulk = result.qos["classes"]["best-effort"]
        # XOFF throttles the source before the queue overflows.
        assert bulk["tail_drops"] == 0 and bulk["red_drops"] == 0
        assert result.flows["bulk"].lost == 0


class TestQosGrid:
    def test_grid_requires_qos(self):
        from repro.exp import Sweep
        with pytest.raises(ValueError, match="qos"):
            Sweep.qos_grid("g", base_fabric=FabricSpec.rpc_pair(),
                           loads=[0.5], overload_flows=["bulk"])

    def test_rows_carry_per_class_columns(self):
        from repro.exp import Sweep, SweepRunner
        sweep = Sweep.qos_grid(
            "qos-isolation", base_fabric=_incast_spec(load=0.5),
            loads=[0.3, 1.0], overload_flows=["bulk"],
            base_config=_config(), warmup_s=WARMUP_S, measure_s=MEASURE_S,
        )
        outcome = sweep.run(SweepRunner(jobs=1, cache_dir=None))
        rows = Sweep.rows(outcome)
        assert len(rows) == 2
        for row in rows:
            assert row["qos_guaranteed_tail_drops"] == 0
            assert row["qos_guaranteed_red_drops"] == 0
            assert row["qos_guaranteed_p999_us"] <= P999_BOUND_US
            assert row["qos_best-effort_goodput_gbps"] > 0
        # Only the overloaded arm sheds best-effort frames.
        assert rows[0]["qos_best-effort_red_drops"] == 0
        assert rows[1]["qos_best-effort_red_drops"] > 0


class TestGoldenCorpusRegistration:
    def test_qos_run_is_pinned(self):
        from repro.check.golden import golden_specs
        assert "fabric-qos-switched" in golden_specs()
