"""Instruction cache, instruction memory, and the MESI coherence sim."""

import pytest

from repro.mem import (
    CoherentCacheSystem,
    InstructionCache,
    InstructionMemory,
    MesiState,
    TraceAccess,
    sweep_cache_sizes,
)
from repro.units import KIB, mhz


class TestInstructionCache:
    def test_cold_miss_then_hit(self):
        cache = InstructionCache()
        assert not cache.lookup(0x100)
        assert cache.lookup(0x100)

    def test_same_line_hits(self):
        cache = InstructionCache(line_bytes=32)
        cache.lookup(0x100)
        assert cache.lookup(0x11C)  # same 32 B line

    def test_next_line_misses(self):
        cache = InstructionCache(line_bytes=32)
        cache.lookup(0x100)
        assert not cache.lookup(0x120)

    def test_two_way_conflict_keeps_both(self):
        cache = InstructionCache(capacity_bytes=8 * KIB, associativity=2, line_bytes=32)
        sets = cache.set_count
        a, b = 0, sets * 32  # same set, different tags
        cache.lookup(a)
        cache.lookup(b)
        assert cache.lookup(a)
        assert cache.lookup(b)

    def test_lru_eviction(self):
        cache = InstructionCache(capacity_bytes=8 * KIB, associativity=2, line_bytes=32)
        sets = cache.set_count
        a, b, c = 0, sets * 32, 2 * sets * 32
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(c)           # evicts a (LRU)
        assert not cache.lookup(a)
        assert cache.lookup(c)

    def test_lru_refresh_on_hit(self):
        cache = InstructionCache(capacity_bytes=8 * KIB, associativity=2, line_bytes=32)
        sets = cache.set_count
        a, b, c = 0, sets * 32, 2 * sets * 32
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(a)           # refresh a
        cache.lookup(c)           # evicts b now
        assert cache.lookup(a)
        assert not cache.lookup(b)

    def test_hit_ratio(self):
        cache = InstructionCache()
        cache.lookup(0)
        cache.lookup(0)
        cache.lookup(0)
        assert cache.hit_ratio == pytest.approx(2 / 3)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            InstructionCache(capacity_bytes=100, associativity=3, line_bytes=32)

    def test_invalidate_all(self):
        cache = InstructionCache()
        cache.lookup(0)
        cache.invalidate_all()
        assert not cache.lookup(0)

    def test_paper_geometry(self):
        cache = InstructionCache(capacity_bytes=8 * KIB, associativity=2, line_bytes=32)
        assert cache.set_count == 128


class TestInstructionMemory:
    def test_fill_latency(self):
        imem = InstructionMemory(fill_latency_cycles=6)
        done = imem.fill(32, cycle=10)
        # 32 B over a 128-bit port = 2 transfers
        assert done == 10 + 6 + 1

    def test_back_to_back_fills_serialize(self):
        imem = InstructionMemory(fill_latency_cycles=6)
        imem.fill(32, cycle=0)
        second = imem.fill(32, cycle=0)
        assert second == 2 + 6 + 1

    def test_port_utilization_low_for_firmware(self):
        imem = InstructionMemory()
        for _ in range(10):
            imem.fill(32, 0)
        # 20 busy transfers over a million cycles: ~0.002%
        assert imem.port_utilization(1_000_000) < 0.001

    def test_peak_bandwidth(self):
        imem = InstructionMemory()
        assert imem.peak_bandwidth_bps(mhz(200)) == pytest.approx(25.6e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionMemory(capacity_bytes=0)
        with pytest.raises(ValueError):
            InstructionMemory(fill_latency_cycles=0)
        with pytest.raises(ValueError):
            InstructionMemory().fill(0, 0)


class TestMesiProtocol:
    def _system(self, caches=2, size=256):
        return CoherentCacheSystem(caches, size, line_bytes=16)

    def test_read_miss_installs_exclusive(self):
        system = self._system()
        assert not system.access(TraceAccess(0, 0x100, False))
        assert system.caches[0].lines[0x10] is MesiState.EXCLUSIVE

    def test_second_reader_shares(self):
        system = self._system()
        system.access(TraceAccess(0, 0x100, False))
        system.access(TraceAccess(1, 0x100, False))
        assert system.caches[0].lines[0x10] is MesiState.SHARED
        assert system.caches[1].lines[0x10] is MesiState.SHARED

    def test_write_hit_on_exclusive_silent(self):
        system = self._system()
        system.access(TraceAccess(0, 0x100, False))
        assert system.access(TraceAccess(0, 0x100, True))
        assert system.caches[0].lines[0x10] is MesiState.MODIFIED
        assert system.stats.invalidations_caused_by_writes == 0

    def test_write_upgrade_invalidates_sharers(self):
        system = self._system()
        system.access(TraceAccess(0, 0x100, False))
        system.access(TraceAccess(1, 0x100, False))
        system.access(TraceAccess(0, 0x100, True))
        assert 0x10 not in system.caches[1].lines
        assert system.stats.write_accesses_causing_invalidation == 1

    def test_read_from_modified_forces_writeback(self):
        system = self._system()
        system.access(TraceAccess(0, 0x100, True))   # M in cache 0
        system.access(TraceAccess(1, 0x100, False))  # read by cache 1
        assert system.stats.writebacks == 1
        assert system.caches[0].lines[0x10] is MesiState.SHARED

    def test_write_miss_steals_modified(self):
        system = self._system()
        system.access(TraceAccess(0, 0x100, True))
        system.access(TraceAccess(1, 0x100, True))
        assert 0x10 not in system.caches[0].lines
        assert system.caches[1].lines[0x10] is MesiState.MODIFIED

    def test_single_writer_invariant(self):
        system = self._system(caches=4)
        for cache_id in range(4):
            system.access(TraceAccess(cache_id, 0x200, True))
        holders = [
            c for c in system.caches
            if c.lines.get(0x20, MesiState.INVALID) is not MesiState.INVALID
        ]
        assert len(holders) == 1
        assert holders[0].lines[0x20] is MesiState.MODIFIED

    def test_lru_capacity_eviction(self):
        system = self._system(caches=1, size=32)  # 2 lines
        system.access(TraceAccess(0, 0x000, False))
        system.access(TraceAccess(0, 0x010, False))
        system.access(TraceAccess(0, 0x020, False))  # evicts 0x000
        assert not system.access(TraceAccess(0, 0x000, False))

    def test_dirty_eviction_counts_writeback(self):
        system = self._system(caches=1, size=32)
        system.access(TraceAccess(0, 0x000, True))
        system.access(TraceAccess(0, 0x010, False))
        system.access(TraceAccess(0, 0x020, False))  # evicts dirty 0x000
        assert system.stats.writebacks == 1

    def test_smpcache_cache_limit(self):
        with pytest.raises(ValueError):
            CoherentCacheSystem(9, 1024)

    def test_bad_cache_id(self):
        system = self._system()
        with pytest.raises(ValueError):
            system.access(TraceAccess(5, 0, False))

    def test_hit_ratio_accounting(self):
        system = self._system()
        system.access(TraceAccess(0, 0, False))
        system.access(TraceAccess(0, 0, False))
        assert system.stats.hit_ratio == pytest.approx(0.5)


class TestSweep:
    def test_hit_ratio_monotonic_in_size(self):
        trace = []
        for round_index in range(4):
            for line in range(32):
                trace.append(TraceAccess(0, line * 16, False))
        results = sweep_cache_sizes(trace, 1, [64, 256, 1024], line_bytes=16)
        ratios = [results[size].hit_ratio for size in (64, 256, 1024)]
        assert ratios == sorted(ratios)

    def test_sweep_returns_all_sizes(self):
        trace = [TraceAccess(0, 0, False)]
        results = sweep_cache_sizes(trace, 1, [16, 32])
        assert set(results) == {16, 32}
