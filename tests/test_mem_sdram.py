"""GDDR SDRAM frame-memory model."""

import pytest

from repro.mem import GddrSdram


class TestGeometry:
    def test_peak_bandwidth_paper_config(self):
        # 64-bit DDR at 500 MHz = 64 Gb/s peak (Section 4).
        sdram = GddrSdram()
        assert sdram.peak_bandwidth_bps() == pytest.approx(64e9)

    def test_bytes_per_cycle(self):
        assert GddrSdram().bytes_per_cycle == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            GddrSdram(banks=0)


class TestTransfers:
    def test_aligned_transfer_no_padding(self):
        sdram = GddrSdram()
        request = sdram.transfer(0, 1600, cycle=0)
        assert request.transferred_bytes == 1600
        assert request.useful_bytes == 1600

    def test_misaligned_start_pads(self):
        sdram = GddrSdram()
        request = sdram.transfer(2, 1518, cycle=0)
        # [2, 1520) -> padded to [0, 1520): 1520 bytes
        assert request.transferred_bytes == 1520

    def test_misaligned_both_ends(self):
        sdram = GddrSdram()
        request = sdram.transfer(3, 42, cycle=0)
        # [3, 45) -> [0, 48)
        assert request.transferred_bytes == 48

    def test_misaligned_bytes_static(self):
        assert GddrSdram.misaligned_bytes(2, 1518) == 1520
        assert GddrSdram.misaligned_bytes(0, 1518) == 1520  # end pads to 1520
        assert GddrSdram.misaligned_bytes(0, 1520) == 1520

    def test_row_activation_charged_once_per_row(self):
        sdram = GddrSdram(row_bytes=2048)
        first = sdram.transfer(0, 512, cycle=0)
        second = sdram.transfer(512, 512, cycle=first.finish_cycle)
        assert first.row_activated
        assert not second.row_activated

    def test_row_change_reactivates(self):
        sdram = GddrSdram(row_bytes=2048, banks=8)
        sdram.transfer(0, 64, cycle=0)
        other_row = 2048 * 8  # same bank, next row
        request = sdram.transfer(other_row, 64, cycle=100)
        assert request.row_activated

    def test_bus_serialization(self):
        sdram = GddrSdram()
        first = sdram.transfer(0, 1600, cycle=0)
        second = sdram.transfer(4096, 1600, cycle=0)
        assert second.start_cycle >= first.start_cycle + 100  # 1600/16 cycles

    def test_burst_duration(self):
        sdram = GddrSdram(row_activate_cycles=0, cas_cycles=0)
        request = sdram.transfer(0, 160, cycle=0)
        assert request.finish_cycle - request.start_cycle == 10

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            GddrSdram().transfer(0, 0, 0)


class TestAccounting:
    def test_misalignment_overhead(self):
        sdram = GddrSdram()
        sdram.transfer(2, 1518, 0)   # 1520 moved for 1518 useful
        assert sdram.misalignment_overhead == pytest.approx(2 / 1520)

    def test_consumed_bandwidth(self):
        sdram = GddrSdram()
        sdram.transfer(0, 1600, 0)
        consumed = sdram.consumed_bandwidth_bps(cycles=1000)
        assert consumed == pytest.approx(1600 * 8 * 500e6 / 1000)

    def test_streaming_efficiency_near_peak(self):
        # Back-to-back maximum-sized frame bursts to consecutive
        # addresses should sustain close to peak bandwidth (Section 2.3).
        sdram = GddrSdram()
        cycle = 0
        for index in range(64):
            request = sdram.transfer(index * 1520, 1520, cycle)
            cycle = request.start_cycle + 1520 // 16
        efficiency = sdram.consumed_bandwidth_bps(cycle) / sdram.peak_bandwidth_bps()
        assert efficiency > 0.90

    def test_latency_tens_of_cycles(self):
        # Section 6.2: up to ~27 cycles under bank conflicts; our worst
        # single-transfer latency (activation + CAS + burst) is in the
        # same regime for a small transfer.
        sdram = GddrSdram()
        request = sdram.transfer(8, 64, 0)
        assert 5 <= request.latency_cycles <= 30
