"""Command-line interface."""

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "subcommand" in capsys.readouterr().out or True

    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "sweep", "faults", "report", "asm", "ilp"):
            assert command in text


class TestRun:
    def test_run_prints_throughput(self, capsys):
        code = main(["run", "--cores", "2", "--mhz", "133", "--millis", "0.3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Gb/s" in out
        assert "2x133MHz" in out

    def test_run_offered_load(self, capsys):
        code = main(["run", "--cores", "4", "--offered", "0.5", "--millis", "0.3"])
        assert code == 0

    def test_run_observability_outputs(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.csv"
        code = main([
            "run", "--cores", "2", "--mhz", "133", "--millis", "0.3",
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path), "--metrics-format", "csv",
            "--sample-interval", "50",
            "--profile-sim",
        ])
        captured = capsys.readouterr()
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"], "trace file is empty"
        header = metrics_path.read_text().splitlines()[0]
        assert header.startswith("t_ps,t_us,")
        assert "simulator profile" in captured.err
        assert "trace written" in captured.err

    def test_run_prometheus_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "run", "--cores", "2", "--mhz", "133", "--millis", "0.3",
            "--metrics-out", str(metrics_path), "--metrics-format", "prom",
        ])
        assert code == 0
        assert "repro_counter_tx_wire_frames" in metrics_path.read_text()

    def test_run_rejects_bad_sample_interval(self, tmp_path, capsys):
        code = main([
            "run", "--millis", "0.1",
            "--metrics-out", str(tmp_path / "m.json"),
            "--sample-interval", "0",
        ])
        assert code == 2


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main([
            "sweep", "--cores", "2", "--mhz", "133", "200",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "133" in out and "200" in out


class TestFaults:
    def test_single_run_report(self, capsys):
        code = main([
            "faults", "--cores", "4", "--mhz", "166", "--millis", "0.3",
            "--fcs-rate", "0.02",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out
        assert "rx_fcs_drops" in out

    def test_single_run_json(self, capsys):
        import json
        code = main([
            "faults", "--millis", "0.2", "--fcs-rate", "0.02", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["faults"]["counters"]["rx_fcs_drops"] > 0
        assert data["faults"]["rx_holes"] >= 0

    def test_no_faults_notice(self, capsys):
        code = main(["faults", "--millis", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no faults enabled" in out

    def test_rate_sweep_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        code = main([
            "faults", "--millis", "0.2", "--sweep-axis", "fcs",
            "--rates", "0", "0.05", "--no-cache", "--csv", str(csv_path),
        ])
        capsys.readouterr()
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert "rx_holes" in lines[0]
        assert len(lines) == 3  # header + two rate points

    def test_rate_sweep_table(self, capsys):
        code = main([
            "faults", "--millis", "0.2", "--sweep-axis", "sdram",
            "--rates", "0", "0.01", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sdram_error_rate" in out
        assert "goodput" in out


class TestAsm:
    def test_assemble_run_and_dump(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            """
            .data
            out: .word 0
            .text
            main:
                li $t0, 41
                addiu $t0, $t0, 1
                la $t1, out
                sw $t0, 0($t1)
                halt
            """
        )
        code = main(["asm", str(source), "--dump", "out"])
        out = capsys.readouterr().out
        assert code == 0
        assert "halted" in out
        assert "(42)" in out

    def test_timing_mode(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("li $t0, 1\nhalt\n")
        code = main(["asm", str(source), "--timing"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IPC" in out


class TestIlp:
    def test_builtin_trace(self, capsys):
        code = main(["ilp", "--iterations", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "in-order-1" in out
        assert "out-of-order-4" in out

    def test_custom_file(self, tmp_path, capsys):
        source = tmp_path / "k.s"
        source.write_text(
            "li $t0, 10\nloop: addiu $t0, $t0, -1\nbgtz $t0, loop\nnop\nhalt\n"
        )
        code = main(["ilp", "--file", str(source)])
        out = capsys.readouterr().out
        assert code == 0
        assert "dynamic instructions" in out


class TestAsmTooling:
    def test_listing_flag(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        source.write_text("main: li $t0, 1\nhalt\n")
        code = main(["asm", str(source), "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "main:" in out
        assert "addiu" in out  # li expansion visible

    def test_emit_image(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        source.write_text("li $t0, 1\nhalt\n")
        image = tmp_path / "fw.bin"
        code = main(["asm", str(source), "--emit", str(image), "--list"])
        assert code == 0
        from repro.isa.binary import decode_image
        loaded = decode_image(image.read_bytes())
        assert len(loaded.instructions) == 2


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json
        code = main(["run", "--cores", "2", "--mhz", "133", "--millis", "0.2",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert "udp_throughput_gbps" in data
        assert "ipc_breakdown" in data
        assert data["config"].startswith("2x133MHz")
