"""Experiment engine: content keys, result cache, sweep runner, resume.

The acceptance-critical properties live here:

* a cache hit returns a **byte-identical** ``ThroughputResult`` to a
  fresh run (compared via ``pickle.dumps``);
* changing *any* config, workload, window or calibration-constant
  input produces a different content key (a cache miss);
* a sweep resumed after an interruption produces aggregate output
  identical to an uninterrupted sweep.

Simulation points here use deliberately tiny measurement windows —
they exercise the engine plumbing, not the paper's numbers (those are
covered by ``tests/test_throughput.py`` and the benchmarks).
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.exp import (
    ResultCache,
    RunSpec,
    Sweep,
    SweepRunner,
    WorkloadSpec,
    describe,
    execute_spec,
    run_spec,
    run_specs,
    spec_key,
    spec_seed,
)
from repro.exp import spec as spec_module
from repro.firmware.ordering import OrderingMode
from repro.nic.config import NicConfig
from repro.obs import ProgressReporter
from repro.units import mhz

# Tiny windows: engine tests measure plumbing, not throughput curves.
_FAST = {"warmup_s": 0.05e-3, "measure_s": 0.1e-3}


def fast_spec(**config_overrides) -> RunSpec:
    config = NicConfig(cores=1, core_frequency_hz=mhz(100), **config_overrides)
    return RunSpec(config=config, workload=WorkloadSpec(udp_payload_bytes=1472),
                   **_FAST)


def fast_grid(core_counts=(1, 2), frequencies=(100, 133)):
    return [
        RunSpec(
            config=NicConfig(cores=cores, core_frequency_hz=mhz(frequency)),
            workload=WorkloadSpec(udp_payload_bytes=1472),
            label=f"grid/{cores}c@{frequency}",
            **_FAST,
        )
        for cores in core_counts
        for frequency in frequencies
    ]


class TestDescribe:
    def test_primitives_pass_through(self):
        assert describe(None) is None
        assert describe(True) is True
        assert describe(7) == 7
        assert describe("x") == "x"

    def test_float_uses_repr(self):
        assert describe(0.1) == {"__float__": repr(0.1)}

    def test_enum_tagged(self):
        rendered = describe(OrderingMode.SOFTWARE)
        assert rendered["__enum__"] == "OrderingMode"

    def test_dataclass_includes_every_field(self):
        rendered = describe(NicConfig())
        field_names = {f.name for f in dataclasses.fields(NicConfig)}
        assert field_names <= set(rendered)
        assert rendered["__type__"] == "NicConfig"

    def test_sequences_and_mappings_recurse(self):
        assert describe([1, (2, 3)]) == [1, [2, 3]]
        assert describe({"k": 1.0}) == {"k": {"__float__": "1.0"}}

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            describe(object())


class TestSpecValidation:
    def test_workload_kind_checked(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="random")

    def test_windows_checked(self):
        with pytest.raises(ValueError):
            RunSpec(config=NicConfig(), warmup_s=-1.0)
        with pytest.raises(ValueError):
            RunSpec(config=NicConfig(), measure_s=0.0)

    def test_constant_workload_has_no_live_model(self):
        # None → the simulator builds ConstantSize internally, exactly
        # like the pre-engine drivers did.
        assert WorkloadSpec(udp_payload_bytes=800).build_size_model() is None

    def test_imix_workload_builds_model(self):
        model = WorkloadSpec.imix().build_size_model()
        assert model is not None


class TestContentKey:
    def test_key_is_stable(self):
        assert spec_key(fast_spec()) == spec_key(fast_spec())

    def test_key_is_hex_sha256(self):
        key = fast_spec().key
        assert len(key) == 64
        int(key, 16)

    def test_label_excluded_from_key(self):
        spec = fast_spec()
        relabeled = dataclasses.replace(spec, label="fig7/1c@100MHz")
        assert spec.key == relabeled.key

    @pytest.mark.parametrize(
        "override",
        [
            {"cores": 2},
            {"core_frequency_hz": mhz(133)},
            {"scratchpad_banks": 8},
            {"ordering_mode": OrderingMode.SOFTWARE},
            {"checksum_offload": "firmware"},
        ],
    )
    def test_any_config_field_change_misses(self, override):
        base = fast_spec()
        changed = dataclasses.replace(
            base, config=dataclasses.replace(base.config, **override)
        )
        assert base.key != changed.key

    def test_workload_change_misses(self):
        base = fast_spec()
        changed = dataclasses.replace(
            base, workload=WorkloadSpec(udp_payload_bytes=800)
        )
        assert base.key != changed.key
        imix = dataclasses.replace(base, workload=WorkloadSpec.imix())
        assert base.key != imix.key

    def test_window_change_misses(self):
        base = fast_spec()
        assert base.key != dataclasses.replace(base, measure_s=0.2e-3).key
        assert base.key != dataclasses.replace(base, warmup_s=0.0).key

    def test_calibration_constant_change_misses(self, monkeypatch):
        # Editing a model constant must invalidate every cached result.
        base_key = fast_spec().key
        monkeypatch.setattr(spec_module, "CACHE_SCHEMA_VERSION",
                            spec_module.CACHE_SCHEMA_VERSION + 1)
        assert fast_spec().key != base_key

    def test_profile_constant_feeds_key(self, monkeypatch):
        from repro.firmware import profiles as fw

        base_key = fast_spec().key
        monkeypatch.setattr(fw, "SEND_BDS_PER_FETCH", fw.SEND_BDS_PER_FETCH + 1)
        assert fast_spec().key != base_key

    def test_seed_is_deterministic_and_key_derived(self):
        spec = fast_spec()
        assert spec_seed(spec) == spec_seed(spec)
        assert spec_seed(spec) == int(spec.key[:16], 16)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert ("ab" * 32) in cache
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ef" * 32
        path = cache.put(key, 42)
        assert path == str(tmp_path / key[:2] / f"{key}.pkl")

    def test_corrupt_entry_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "12" * 32
        path = cache.put(key, 42)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(key) is None
        assert not cache.__contains__(key)

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("34" * 32, 1)
        cache.get("34" * 32)
        cache.get("56" * 32)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.stores == 1


class TestCacheHitFidelity:
    def test_cache_hit_is_byte_identical_to_fresh_run(self, tmp_path):
        spec = fast_spec()
        fresh = run_spec(spec, cache_dir=str(tmp_path))
        hit = run_spec(spec, cache_dir=str(tmp_path))
        uncached = execute_spec(spec)
        assert pickle.dumps(hit) == pickle.dumps(fresh)
        assert pickle.dumps(hit) == pickle.dumps(uncached)

    def test_no_cache_flag_never_touches_disk(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path), use_cache=False)
        runner.run([fast_spec()])
        assert list(tmp_path.iterdir()) == []


class TestSweepRunner:
    def test_results_in_input_order(self):
        specs = fast_grid()
        outcome = SweepRunner(jobs=1).run(specs)
        assert len(outcome.results) == len(specs)
        direct = [execute_spec(spec) for spec in specs]
        assert [pickle.dumps(r) for r in outcome.results] == [
            pickle.dumps(r) for r in direct
        ]

    def test_duplicates_executed_once(self):
        spec = fast_spec()
        outcome = SweepRunner(jobs=1).run([spec, spec, spec])
        assert outcome.deduplicated == 2
        assert outcome.executed == 1
        assert pickle.dumps(outcome.results[0]) == pickle.dumps(outcome.results[2])

    def test_cached_flags_and_counters(self, tmp_path):
        specs = fast_grid(core_counts=(1,), frequencies=(100, 133))
        first = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(specs)
        assert first.cache_hits == 0 and first.executed == 2
        assert first.cached_flags == [False, False]
        second = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(specs)
        assert second.cache_hits == 2 and second.executed == 0
        assert second.cached_flags == [True, True]
        assert [pickle.dumps(r) for r in second.results] == [
            pickle.dumps(r) for r in first.results
        ]

    def test_parallel_matches_serial(self):
        specs = fast_grid(core_counts=(1, 2), frequencies=(100,))
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=2).run(specs)
        assert [pickle.dumps(r) for r in parallel.results] == [
            pickle.dumps(r) for r in serial.results
        ]

    def test_env_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SweepRunner()
        assert runner.jobs == 3
        assert runner.cache is not None
        assert runner.cache.root == str(tmp_path)

    def test_run_specs_convenience(self, tmp_path):
        specs = fast_grid(core_counts=(1,), frequencies=(100,))
        results = run_specs(specs, cache_dir=str(tmp_path))
        assert len(results) == 1
        again = run_specs(specs, cache_dir=str(tmp_path))
        assert pickle.dumps(again[0]) == pickle.dumps(results[0])


class TestResume:
    def test_resumed_sweep_identical_to_uninterrupted(self, tmp_path):
        """An interrupted sweep (some points already cached) must finish
        with aggregate output identical to a never-interrupted one."""
        specs = fast_grid()  # 4 points
        # Uninterrupted reference, no cache involved.
        reference = SweepRunner(jobs=1).run(specs)

        # "Interrupted" run: only half the points landed in the cache
        # before the crash (the incremental _store path guarantees
        # completed points persist).
        SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(specs[:2])

        # Resume: the full grid against the same cache.
        resumed = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(specs)
        assert resumed.cache_hits == 2
        assert resumed.executed == 2
        assert [pickle.dumps(r) for r in resumed.results] == [
            pickle.dumps(r) for r in reference.results
        ]
        # Aggregate rows (what the CLI exports) match too, modulo the
        # cached marker.
        ref_rows = Sweep.rows(reference)
        res_rows = Sweep.rows(resumed)
        for row in ref_rows + res_rows:
            row.pop("cached")
        assert res_rows == ref_rows


class TestSweep:
    def test_grid_shape_and_labels(self):
        sweep = Sweep.grid("g", core_counts=(1, 2), frequencies_mhz=(100, 133),
                           **_FAST)
        assert len(sweep) == 4
        labels = [spec.label for spec in sweep]
        assert "1c@100MHz" in labels

    def test_frame_sizes_shape(self):
        sweep = Sweep.frame_sizes("f", udp_sizes=(18, 1472),
                                  configs=[NicConfig(cores=1)], **_FAST)
        assert len(sweep) == 2
        assert {spec.workload.udp_payload_bytes for spec in sweep} == {18, 1472}

    def test_of_configs(self):
        configs = [NicConfig(cores=1), NicConfig(cores=2)]
        sweep = Sweep.of_configs("c", configs, **_FAST)
        assert [spec.config.cores for spec in sweep] == [1, 2]

    def test_add_concatenates(self):
        a = Sweep.grid("a", core_counts=(1,), frequencies_mhz=(100,), **_FAST)
        b = Sweep.grid("b", core_counts=(2,), frequencies_mhz=(100,), **_FAST)
        assert len(a + b) == 2

    def test_rows_flatten_outcome(self, tmp_path):
        sweep = Sweep.grid("r", core_counts=(1,), frequencies_mhz=(100,), **_FAST)
        outcome = sweep.run(jobs=1, cache_dir=str(tmp_path))
        rows = Sweep.rows(outcome)
        assert len(rows) == 1
        row = rows[0]
        assert row["cores"] == 1
        assert row["mhz"] == pytest.approx(100.0)
        assert row["cached"] is False
        assert row["udp_throughput_gbps"] > 0
        json.dumps(rows)  # must be JSON-serializable as-is


class TestProgressReporter:
    def test_counters(self):
        reporter = ProgressReporter(3, stream=None)
        reporter.update(cache_hit=True)
        reporter.update()
        assert reporter.done == 2
        assert reporter.cache_hits == 1
        assert reporter.executed == 1

    def test_eta_requires_executed_points(self):
        reporter = ProgressReporter(2, stream=None)
        reporter.update(cache_hit=True)
        assert reporter.eta_s() is None
        reporter.update()
        assert reporter.eta_s() == 0.0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(-1)

    def test_render_and_summary(self):
        reporter = ProgressReporter(2, label="demo", stream=None)
        reporter.update(cache_hit=True)
        assert "demo" in reporter.render()
        assert "1 cache" in reporter.summary()

    def test_stream_receives_final_line(self):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(1, label="s", stream=stream,
                                    min_interval_s=0.0)
        reporter.update()
        assert "[s] 1/1 points" in stream.getvalue()


class TestCliSweep:
    def test_resume_conflicts_with_no_cache(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--resume", "--no-cache",
                     "--cache-dir", "x"]) == 2

    def test_resume_requires_cache_dir(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["sweep", "--resume"]) == 2

    def test_json_export_and_cache_hits(self, tmp_path, capsys):
        from repro.cli import main

        args = ["sweep", "--cores", "1", "--mhz", "100", "--millis", "0.1",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(tmp_path / "out.json")]
        assert main(args) == 0
        first = json.loads((tmp_path / "out.json").read_text())["points"]
        assert first[0]["cached"] is False
        assert main(args) == 0
        second = json.loads((tmp_path / "out.json").read_text())["points"]
        assert second[0]["cached"] is True
        for row in (first[0], second[0]):
            row.pop("cached")
        assert second[0] == first[0]

    def test_csv_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "out.csv"
        assert main(["sweep", "--cores", "1", "--mhz", "100",
                     "--millis", "0.1", "--csv", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].split(",")[0] == "label"
