"""Ethernet line-rate arithmetic (Section 2.1) and workload generators."""

import pytest

from repro.net import (
    EthernetTiming,
    FrameSpec,
    MAX_FRAME_BYTES,
    MAX_UDP_PAYLOAD_BYTES,
    MIN_FRAME_BYTES,
    UdpStreamWorkload,
    WorkloadShaper,
    frame_bytes_for_udp_payload,
    udp_payload_for_frame_bytes,
)
from repro.net.ethernet import (
    PROTOCOL_HEADER_BYTES,
    control_bandwidth_required_bps,
    control_mips_required,
)
from repro.units import to_gbps


class TestFrameGeometry:
    def test_max_udp_payload_is_1472(self):
        assert MAX_UDP_PAYLOAD_BYTES == 1472

    def test_1472_payload_gives_1518_frame(self):
        assert frame_bytes_for_udp_payload(1472) == 1518

    def test_protocol_headers_are_42_bytes(self):
        assert PROTOCOL_HEADER_BYTES == 42

    def test_small_payload_padded_to_minimum(self):
        assert frame_bytes_for_udp_payload(1) == MIN_FRAME_BYTES

    def test_18_byte_payload_exactly_minimum(self):
        assert frame_bytes_for_udp_payload(18) == 64

    def test_payload_roundtrip(self):
        for payload in (18, 100, 800, 1472):
            frame = frame_bytes_for_udp_payload(payload)
            assert udp_payload_for_frame_bytes(frame) == payload

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_bytes_for_udp_payload(1473)

    def test_bad_frame_size_rejected(self):
        with pytest.raises(ValueError):
            udp_payload_for_frame_bytes(63)


class TestLineRateArithmetic:
    """The exact numbers of Section 2.1."""

    def test_frame_rate_is_812744_fps(self):
        timing = EthernetTiming()
        assert timing.frames_per_second(MAX_FRAME_BYTES) == pytest.approx(812_744, abs=2)

    def test_wire_bytes_include_preamble_and_ifg(self):
        assert EthernetTiming().wire_bytes(1518) == 1538

    def test_frame_data_bandwidth_is_39_5_gbps(self):
        bandwidth = EthernetTiming().frame_data_bandwidth_bps(MAX_FRAME_BYTES)
        assert to_gbps(bandwidth) == pytest.approx(39.5, abs=0.1)

    def test_frame_data_below_4x_link(self):
        bandwidth = EthernetTiming().frame_data_bandwidth_bps(MAX_FRAME_BYTES)
        assert bandwidth < 40e9

    def test_control_processing_435_mips(self):
        # Paper: 229 send + 206 receive = 435 MIPS.
        total = control_mips_required(281.8, 253.5)
        assert total == pytest.approx(435, abs=3)

    def test_control_bandwidth_4_8_gbps(self):
        bandwidth = control_bandwidth_required_bps(100.0, 84.6)
        assert to_gbps(bandwidth) == pytest.approx(4.8, abs=0.05)

    def test_duplex_udp_limit_for_max_frames(self):
        limit = EthernetTiming().duplex_payload_limit_bps(1472)
        assert to_gbps(limit) == pytest.approx(19.14, abs=0.05)

    def test_payload_efficiency_drops_with_size(self):
        timing = EthernetTiming()
        large = timing.payload_throughput_bps(1472)
        small = timing.payload_throughput_bps(18)
        assert small < large / 3

    def test_utilization(self):
        timing = EthernetTiming()
        line = timing.frames_per_second(1518)
        assert timing.utilization(line / 2, 1518) == pytest.approx(0.5)


class TestWorkloads:
    def test_stream_is_deterministic(self):
        workload = UdpStreamWorkload(1472, "tx")
        first = [next(workload.frames()) for _ in range(1)]
        again = [next(workload.frames()) for _ in range(1)]
        assert first == again

    def test_frame_spec_sequence(self):
        workload = UdpStreamWorkload(100, "rx")
        frames = workload.frames()
        specs = [next(frames) for _ in range(3)]
        assert [s.sequence for s in specs] == [0, 1, 2]
        assert all(s.frame_bytes == 146 for s in specs)

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            UdpStreamWorkload(100, "sideways")

    def test_payload_range_validation(self):
        with pytest.raises(ValueError):
            UdpStreamWorkload(4, "tx")

    def test_frame_spec_direction_validation(self):
        with pytest.raises(ValueError):
            FrameSpec(0, 100, 146, "up")

    def test_shaper_line_rate_interarrival(self):
        shaper = WorkloadShaper(UdpStreamWorkload(1472, "rx"))
        assert shaper.interarrival_ps == EthernetTiming().frame_time_ps(1518)

    def test_shaper_half_rate(self):
        shaper = WorkloadShaper(
            UdpStreamWorkload(1472, "rx"), offered_fraction_of_line_rate=0.5
        )
        assert shaper.interarrival_ps == 2 * EthernetTiming().frame_time_ps(1518)

    def test_shaper_arrivals_monotonic(self):
        shaper = WorkloadShaper(UdpStreamWorkload(800, "rx"))
        arrivals = shaper.arrivals()
        times = [next(arrivals)[0] for _ in range(10)]
        assert times == sorted(times)
        assert len(set(times)) == 10

    def test_offered_fps(self):
        shaper = WorkloadShaper(
            UdpStreamWorkload(1472, "rx"), offered_fraction_of_line_rate=0.25
        )
        line = EthernetTiming().frames_per_second(1518)
        assert shaper.offered_fps() == pytest.approx(line / 4)

    def test_overload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadShaper(UdpStreamWorkload(1472, "rx"), offered_fraction_of_line_rate=0)
