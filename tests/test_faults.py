"""Fault-injection & recovery layer: determinism, recovery, accounting.

Covers the tentpole guarantees:

* disabled plans leave the simulation byte-identical to a fault-free
  build (``fault_plan=None`` vs an all-zero plan);
* a seeded :class:`FaultPlan` reproduces identical fault decisions and
  counters across runs;
* injected RX FCS drops punch sequence holes that the ordering commit
  pointer advances *past* instead of wedging on;
* SDRAM retry/backoff/exhaustion, PCI stalls and event-queue overflow
  degrade throughput without deadlocking the pipeline;
* the experiment engine's cache keys ignore absent plans (backward
  compatible) and hash present ones.
"""

import pytest

from repro.exp import RunSpec, Sweep, WorkloadSpec
from repro.exp.sweep import FAULT_AXES
from repro.faults import FAULT_COUNTER_KEYS, FaultInjector, FaultPlan
from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig, ThroughputSimulator

WARMUP = 0.2e-3
MEASURE = 0.4e-3


def run_sim(plan=None, config=None, payload=1472, measure=MEASURE):
    sim = ThroughputSimulator(
        config if config is not None else NicConfig(), payload, fault_plan=plan
    )
    result = sim.run(warmup_s=WARMUP, measure_s=measure)
    return sim, result


# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled

    @pytest.mark.parametrize("field,value", [
        ("rx_fcs_rate", 0.1),
        ("sdram_error_rate", 0.1),
        ("pci_stall_rate", 0.1),
        ("event_queue_depth", 8),
    ])
    def test_any_axis_enables(self, field, value):
        assert FaultPlan(**{field: value}).enabled

    @pytest.mark.parametrize("field,value", [
        ("rx_fcs_rate", -0.1),
        ("rx_fcs_rate", 1.5),
        ("sdram_error_rate", 2.0),
        ("pci_stall_rate", -1.0),
        ("sdram_max_retries", -1),
        ("sdram_retry_backoff_ps", -5),
        ("pci_stall_ps", -1),
        ("event_queue_depth", -1),
        ("queue_retry_ps", 0),
        ("queue_drop_after", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            FaultPlan(**{field: value})

    def test_uniform_is_deterministic_and_keyed(self):
        plan = FaultPlan(seed=7)
        assert plan.uniform("rx_fcs", 3) == plan.uniform("rx_fcs", 3)
        assert plan.uniform("rx_fcs", 3) != plan.uniform("rx_fcs", 4)
        assert plan.uniform("rx_fcs", 3) != plan.uniform("pci", 3)
        assert plan.uniform("rx_fcs", 3) != FaultPlan(seed=8).uniform("rx_fcs", 3)

    def test_uniform_range(self):
        plan = FaultPlan()
        draws = [plan.uniform("x", i) for i in range(256)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # A keyed hash should cover the unit interval, not cluster.
        assert min(draws) < 0.05 and max(draws) > 0.95

    def test_decide_edge_rates(self):
        plan = FaultPlan()
        assert not any(plan.decide(0.0, "a", i) for i in range(32))
        assert all(plan.decide(1.0, "a", i) for i in range(32))

    def test_plan_is_hashable_and_frozen(self):
        plan = FaultPlan(rx_fcs_rate=0.5)
        assert hash(plan) == hash(FaultPlan(rx_fcs_rate=0.5))
        with pytest.raises(AttributeError):
            plan.seed = 1


# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_counter_keys_fixed_order(self):
        injector = FaultInjector(FaultPlan())
        assert tuple(injector.counters.keys()) == FAULT_COUNTER_KEYS
        assert tuple(injector.snapshot().keys()) == FAULT_COUNTER_KEYS

    def test_decisions_depend_on_call_order_not_time(self):
        a = FaultInjector(FaultPlan(seed=3, rx_fcs_rate=0.3))
        b = FaultInjector(FaultPlan(seed=3, rx_fcs_rate=0.3))
        outcomes_a = [a.rx_fcs_corrupt(seq, now_ps=seq * 100) for seq in range(64)]
        outcomes_b = [b.rx_fcs_corrupt(seq, now_ps=0) for seq in range(64)]
        assert outcomes_a == outcomes_b
        assert a.snapshot() == b.snapshot()

    def test_sdram_plan_zero_rate_is_clean(self):
        injector = FaultInjector(FaultPlan())
        assert injector.sdram_plan("dma-read", 0) == (0, False)
        assert injector.counters["sdram_faulty_transfers"] == 0

    def test_sdram_plan_certain_failure_exhausts_budget(self):
        plan = FaultPlan(sdram_error_rate=1.0, sdram_max_retries=2)
        injector = FaultInjector(plan)
        failures, exhausted = injector.sdram_plan("dma-read", 0)
        assert exhausted
        assert failures == plan.sdram_max_retries + 1
        assert injector.counters["sdram_retries"] == plan.sdram_max_retries
        assert injector.counters["sdram_exhausted"] == 1

    def test_sdram_backoff_is_exponential_and_capped(self):
        plan = FaultPlan(sdram_error_rate=0.5, sdram_retry_backoff_ps=100)
        injector = FaultInjector(plan)
        assert injector.sdram_backoff_ps(0) == 100
        assert injector.sdram_backoff_ps(1) == 200
        assert injector.sdram_backoff_ps(3) == 800
        assert injector.sdram_backoff_ps(40) == 100 << 16  # shift clamp
        assert injector.counters["sdram_backoff_ps"] == 100 + 200 + 800 + (100 << 16)

    def test_pci_stall_certain(self):
        injector = FaultInjector(FaultPlan(pci_stall_rate=1.0, pci_stall_ps=777))
        assert injector.pci_stall(0) == 777
        assert injector.counters["pci_stalls"] == 1
        assert injector.counters["pci_stall_ps"] == 777


# ----------------------------------------------------------------------
class TestDisabledByteIdentity:
    def test_all_zero_plan_matches_no_plan(self):
        _, baseline = run_sim(plan=None)
        sim, gated = run_sim(plan=FaultPlan())
        assert sim.faults is None  # disabled plan never attaches the layer
        assert gated.to_dict() == baseline.to_dict()

    def test_no_plan_result_has_no_fault_section(self):
        _, result = run_sim(plan=None)
        assert result.rx_holes == 0
        assert result.fault_counters == {}
        assert "faults" not in result.to_dict()


class TestSeededDeterminism:
    PLAN = FaultPlan(
        seed=11, rx_fcs_rate=0.01, sdram_error_rate=0.002,
        pci_stall_rate=0.001, event_queue_depth=256,
    )

    def test_identical_runs_identical_everything(self):
        sim_a, result_a = run_sim(plan=self.PLAN)
        sim_b, result_b = run_sim(plan=self.PLAN)
        assert sim_a.faults.snapshot() == sim_b.faults.snapshot()
        assert sim_a.faults.dropped_rx_seqs == sim_b.faults.dropped_rx_seqs
        assert result_a.to_dict() == result_b.to_dict()

    def test_different_seed_different_faults(self):
        sim_a, _ = run_sim(plan=self.PLAN)
        sim_b, _ = run_sim(plan=FaultPlan(
            seed=12, rx_fcs_rate=0.01, sdram_error_rate=0.002,
            pci_stall_rate=0.001, event_queue_depth=256,
        ))
        assert sim_a.faults.dropped_rx_seqs != sim_b.faults.dropped_rx_seqs


# ----------------------------------------------------------------------
class TestRxHoleRecovery:
    @pytest.mark.parametrize(
        "mode", [OrderingMode.RMW, OrderingMode.SOFTWARE]
    )
    def test_commit_pointer_advances_past_holes(self, mode):
        """The acceptance bar: an injected RX drop must not wedge the
        ordering commit pointer at the hole."""
        config = NicConfig(ordering_mode=mode)
        sim, result = run_sim(plan=FaultPlan(rx_fcs_rate=0.03), config=config)
        drops = sim.faults.dropped_rx_seqs
        assert drops, "fault rate should have produced drops"
        # The pointer passed the first hole (and any drop safely behind
        # the claim frontier); only drops *at* the in-flight frontier may
        # still be pending when the run snapshot is taken.
        assert sim.board_rx.commit_seq > drops[0]
        behind_frontier = [s for s in drops if s < sim.board_rx.commit_seq]
        assert behind_frontier, "some holes must have been committed past"
        assert all(s >= sim.board_rx.commit_seq
                   for s in sim._rx_holes_uncommitted)
        # Bounded in-flight window: the gap never exceeded the ring.
        assert sim._rx_claim_seq - sim.board_rx.commit_seq <= config.ordering_ring
        assert sim.board_rx.skipped == sim.faults.counters["rx_fcs_drops"] - len(
            sim._rx_holes_completion
        )
        assert result.rx_holes > 0

    def test_goodput_excludes_holes(self):
        _, clean = run_sim(plan=None)
        sim, faulted = run_sim(plan=FaultPlan(rx_fcs_rate=0.05))
        assert faulted.rx_frames < clean.rx_frames
        assert faulted.udp_throughput_gbps < clean.udp_throughput_gbps
        report = faulted.fault_report()
        assert report["rx_delivered"] == faulted.rx_frames
        assert report["rx_holes"] == faulted.rx_holes
        # Holes committed during the measure window can include frames
        # dropped during warmup, so compare against the run total.
        assert sim.faults.counters["rx_fcs_drops"] >= faulted.rx_holes

    def test_metrics_snapshot_exposes_fault_counters(self):
        sim, _ = run_sim(plan=FaultPlan(rx_fcs_rate=0.05))
        values = sim.metrics_snapshot()
        assert values["counter.fault.rx_fcs_drops"] > 0
        assert values["counter.rx_hole_frames"] > 0


# ----------------------------------------------------------------------
class TestSdramFaults:
    def test_retries_consume_bandwidth_not_frames(self):
        sim, result = run_sim(plan=FaultPlan(sdram_error_rate=0.02))
        counters = sim.faults.counters
        assert counters["sdram_faulty_transfers"] > 0
        assert counters["sdram_retries"] >= counters["sdram_faulty_transfers"]
        assert counters["sdram_backoff_ps"] > 0
        assert sim.sdram.wasted_retry_bytes > 0
        assert result.udp_throughput_gbps > 0

    def test_exhaustion_completes_instead_of_deadlocking(self):
        plan = FaultPlan(sdram_error_rate=1.0, sdram_max_retries=1,
                         sdram_retry_backoff_ps=50_000)
        sim, result = run_sim(plan=plan, measure=0.2e-3)
        assert sim.faults.counters["sdram_exhausted"] > 0
        exhausted = (sim.dma_read.exhausted_transfers
                     + sim.dma_write.exhausted_transfers)
        assert exhausted > 0
        # Liveness: frames still flow end to end despite every burst
        # failing its whole retry budget.
        assert result.tx_frames > 0 and result.rx_frames > 0


class TestPciStalls:
    def test_stalls_add_latency(self):
        _, clean = run_sim(plan=None)
        sim, stalled = run_sim(
            plan=FaultPlan(pci_stall_rate=1.0, pci_stall_ps=3_000_000)
        )
        assert sim.faults.counters["pci_stalls"] > 0
        assert (stalled.mean_rx_commit_latency_s
                > clean.mean_rx_commit_latency_s)

    def test_unit_host_phase_stall(self):
        from repro.assists.pci import PciInterface

        pci = PciInterface(dma_latency_ps=1000)
        baseline = pci.host_phase(0, 64)
        pci.injector = FaultInjector(FaultPlan(pci_stall_rate=1.0,
                                               pci_stall_ps=500))
        assert pci.host_phase(0, 64) == baseline + 500


class TestQueueOverflow:
    def test_backpressure_under_tiny_queue(self):
        plan = FaultPlan(event_queue_depth=3, queue_retry_ps=500_000)
        sim, result = run_sim(plan=plan)
        assert sim.queue.max_depth == 3
        counters = sim.faults.counters
        assert counters["queue_overflows"] > 0
        assert counters["queue_deferrals"] >= counters["queue_overflows"]
        # Backpressure, not collapse: the pipeline still moves frames.
        assert result.tx_frames > 0 and result.rx_frames > 0

    def test_generous_queue_never_overflows(self):
        sim, _ = run_sim(plan=FaultPlan(event_queue_depth=4096))
        assert sim.faults.counters["queue_overflows"] == 0
        assert sim.faults.counters["queue_drops"] == 0


# ----------------------------------------------------------------------
class TestLockContentionAccounting:
    """Bugfix: `contended` used to count FIFO reservations that never
    actually blocked the calling handler (re-acquires later in its own
    timeline)."""

    def _sim(self):
        return ThroughputSimulator(NicConfig(ordering_mode=OrderingMode.SOFTWARE))

    def test_uncontended_acquire_counts_nothing(self):
        sim = self._sim()
        sim._acquire_lock("txq", 0, 10.0, "send_frame")
        lock = sim.locks["txq"]
        assert lock.acquisitions == 1
        assert lock.contended == 0
        assert lock.total_wait_cycles == 0.0

    def test_self_reacquire_is_not_contention(self):
        sim = self._sim()
        sim._acquire_lock("txq", 0, 10.0, "send_frame")
        # Same handler, 20 cycles into its own timeline: the lock was
        # released at cycle 10, so the handler never actually waited.
        cycles = sim._acquire_lock("txq", 0, 10.0, "send_frame",
                                   cycles_so_far=20.0)
        lock = sim.locks["txq"]
        assert lock.contended == 0
        assert lock.total_wait_cycles == 0.0
        # Timing is untouched by the accounting fix: the documented
        # reservation-from-dispatch-time spin charge still applies.
        assert cycles > 0
        assert sim.fn["send_frame"].lock_wait_cycles > 0

    def test_genuine_blocking_is_counted(self):
        sim = self._sim()
        sim._acquire_lock("txq", 0, 10.0, "send_frame")
        sim._acquire_lock("txq", 0, 10.0, "send_frame")  # other core, same instant
        lock = sim.locks["txq"]
        assert lock.contended == 1
        assert lock.total_wait_cycles == pytest.approx(10.0)


# ----------------------------------------------------------------------
class TestExperimentEngineIntegration:
    def test_key_inputs_backward_compatible_without_plan(self):
        spec = RunSpec(config=NicConfig())
        assert "fault_plan" not in spec.key_inputs()

    def test_plan_changes_key(self):
        clean = RunSpec(config=NicConfig())
        faulted = RunSpec(config=NicConfig(),
                          fault_plan=FaultPlan(rx_fcs_rate=0.01))
        reseeded = RunSpec(config=NicConfig(),
                           fault_plan=FaultPlan(seed=1, rx_fcs_rate=0.01))
        assert clean.key != faulted.key
        assert faulted.key != reseeded.key
        assert faulted.key == RunSpec(
            config=NicConfig(), fault_plan=FaultPlan(rx_fcs_rate=0.01)
        ).key

    def test_fault_grid_shapes(self):
        sweep = Sweep.fault_grid("curve", "rx_fcs_rate", [0.0, 0.01, 0.05])
        assert len(sweep) == 3
        # Rate-0 point degenerates to the fault-free baseline (shared
        # cache entry, identical simulation path).
        assert sweep.specs[0].fault_plan is None
        assert sweep.specs[1].fault_plan.rx_fcs_rate == 0.01
        assert sweep.specs[2].label == "rx_fcs_rate=0.05"

    def test_fault_grid_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            Sweep.fault_grid("bad", "cosmic_ray_rate", [0.1])
        assert "rx_fcs_rate" in FAULT_AXES

    def test_runner_executes_faulted_spec(self):
        from repro.exp import run_spec

        spec = RunSpec(
            config=NicConfig(),
            workload=WorkloadSpec(),
            warmup_s=WARMUP,
            measure_s=0.2e-3,
            fault_plan=FaultPlan(rx_fcs_rate=0.05),
        )
        result = run_spec(spec, use_cache=False)
        assert result.fault_counters["rx_fcs_drops"] > 0

    def test_rows_gain_fault_columns_only_when_faulted(self):
        from repro.exp import SweepRunner

        runner = SweepRunner(jobs=1, use_cache=False, cache_dir="")
        clean = Sweep("clean", [RunSpec(config=NicConfig(), warmup_s=WARMUP,
                                        measure_s=0.2e-3)])
        rows = Sweep.rows(clean.run(runner))
        assert "rx_holes" not in rows[0]

        faulted = Sweep.fault_grid("f", "rx_fcs_rate", [0.05],
                                   warmup_s=WARMUP, measure_s=0.2e-3)
        rows = Sweep.rows(faulted.run(runner))
        assert rows[0]["rx_holes"] > 0
        assert rows[0]["fault_seed"] == 0
