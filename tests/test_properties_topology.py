"""Property-based tests (hypothesis) for composed topologies (ISSUE 10).

* ECMP routing is a pure function of (seed, flow tuple) — independent
  of query interleaving and of router instance;
* equal-cost spreading: first-hop spine choices over many flows stay
  within a (generous) chi-squared bound of uniform;
* per-link conservation holds on generated leaf-spine graphs under
  generated flow populations (``entered == forwarded + dropped`` at
  end of run, ``posted == delivered + lost`` globally);
* sharded :class:`FlowTable` ingest merges to exactly the unsharded
  distribution (the PR 6 merge-equivalence pattern).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.fabric.flowtable import FlowTable
from repro.fabric.scale import ScaleFabric
from repro.fabric.topology import TopologyRouter, TopologySpec, ecmp_hash


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def _leaf_spines():
    return st.builds(
        TopologySpec.leaf_spine,
        racks=st.integers(min_value=2, max_value=4),
        hosts_per_rack=st.integers(min_value=1, max_value=4),
        spines=st.integers(min_value=1, max_value=4),
        ecmp_seed=st.integers(min_value=0, max_value=2**32),
    )


def _flow_tuples(topology):
    hosts = len(topology.endpoints())
    return st.lists(
        st.tuples(
            st.text(
                alphabet="abcdef0123456789", min_size=1, max_size=8
            ),
            st.integers(min_value=0, max_value=hosts - 1),
            st.integers(min_value=0, max_value=hosts - 1),
        ),
        min_size=1,
        max_size=32,
    )


# ----------------------------------------------------------------------
# Determinism / interleaving independence
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_ecmp_route_is_interleaving_independent(data):
    topology = data.draw(_leaf_spines())
    tuples = data.draw(_flow_tuples(topology))
    permutation = data.draw(st.permutations(tuples))

    forward = TopologyRouter(topology)
    routes = {t: forward.route(*t) for t in tuples}
    # A fresh router queried in a different order resolves identically,
    # including repeated queries (memoization is invisible).
    shuffled = TopologyRouter(topology)
    for t in permutation:
        assert shuffled.route(*t) == routes[t]
    for t in tuples:
        assert shuffled.route(*t) == routes[t]


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    flow=st.text(alphabet="xyz0123456789", min_size=1, max_size=12),
    src=st.integers(min_value=0, max_value=1023),
    dst=st.integers(min_value=0, max_value=1023),
)
def test_ecmp_hash_is_pure(seed, flow, src, dst):
    assert ecmp_hash(seed, flow, src, dst) == ecmp_hash(seed, flow, src, dst)
    assert 0 <= ecmp_hash(seed, flow, src, dst) < 2**64


# ----------------------------------------------------------------------
# Equal-cost spreading
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    spines=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_ecmp_spreads_within_chi_squared_bound(spines, seed):
    topology = TopologySpec.leaf_spine(
        racks=2, hosts_per_rack=1, spines=spines, ecmp_seed=seed
    )
    router = TopologyRouter(topology)
    flows = 256 * spines
    counts = [0] * spines
    for index in range(flows):
        path = router.route(f"flow{index}", 0, 1)
        assert len(path) == 3
        counts[int(path[1][len("spine"):])] += 1
    assert sum(counts) == flows
    expected = flows / spines
    chi2 = sum((count - expected) ** 2 / expected for count in counts)
    # df <= 7; P(chi2 > 60) ~ 1e-10 — a keyed-hash regression, not noise.
    assert chi2 < 60.0, (counts, chi2)


# ----------------------------------------------------------------------
# Per-link conservation on generated graphs
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    racks=st.integers(min_value=2, max_value=3),
    hosts_per_rack=st.integers(min_value=2, max_value=4),
    spines=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
    flows=st.integers(min_value=1, max_value=400),
    queue=st.integers(min_value=1, max_value=16),
)
def test_per_link_conservation_on_generated_graphs(
    racks, hosts_per_rack, spines, seed, flows, queue
):
    topology = TopologySpec.leaf_spine(
        racks=racks, hosts_per_rack=hosts_per_rack, spines=spines,
        ecmp_seed=seed,
    )
    fabric = ScaleFabric(topology, port_queue_frames=queue)
    report = fabric.run(flows=flows)
    assert report["posted"] == flows
    assert report["posted"] == report["delivered"] + report["lost"]
    for link, (entered, forwarded, dropped) in report["link_counts"].items():
        assert entered == forwarded + dropped, (link, entered)
    # Flow table saw every flow exactly once (single-frame flows).
    assert report["flows"] == flows


# ----------------------------------------------------------------------
# FlowTable shard-merge equivalence
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
    samples=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),        # flow id
            st.floats(min_value=0.01, max_value=10_000.0,  # one-way us
                      allow_nan=False, allow_infinity=False),
            st.booleans(),                                 # lost?
        ),
        min_size=1,
        max_size=200,
    ),
)
def test_sharded_ingest_merges_to_unsharded_distribution(
    shards, seed, samples
):
    sharded = FlowTable(shards=shards, seed=seed)
    unsharded = FlowTable(shards=1, seed=seed)
    for flow_id, oneway_us, lost in samples:
        flow, src, dst = f"f{flow_id}", flow_id % 7, flow_id % 5
        if lost:
            sharded.record_loss(flow, src, dst)
            unsharded.record_loss(flow, src, dst)
        else:
            sharded.record_delivery(flow, src, dst, oneway_us, 64)
            unsharded.record_delivery(flow, src, dst, oneway_us, 64)
    assert len(sharded) == len(unsharded)
    assert sharded.delivered == unsharded.delivered
    assert sharded.lost == unsharded.lost
    # Bucket-exact: the merged sketch is identical to single-shard
    # ingest of the same samples — every bucket, count, and extremum.
    # Only the running float `sum` may differ in its last ulps (merge
    # adds per-shard partial sums in a different order), same caveat as
    # the PR 6 StreamingHistogram merge tests.
    merged = sharded.merged_oneway().to_dict()
    single = unsharded.merged_oneway().to_dict()
    merged_sum, single_sum = merged.pop("sum"), single.pop("sum")
    assert merged == single
    assert merged_sum == pytest.approx(single_sum)
    # Per-record counters agree too.
    for flow_id, _, _ in samples:
        flow, src, dst = f"f{flow_id}", flow_id % 7, flow_id % 5
        a, b = sharded.get(flow, src, dst), unsharded.get(flow, src, dst)
        assert (a.delivered, a.lost, a.payload_bytes) == (
            b.delivered, b.lost, b.payload_bytes
        )
