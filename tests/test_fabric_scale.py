"""Scale tests: the composed fabric at datacenter size (ISSUE 10).

The ``slow``-marked test drives a 4-rack, 1024-endpoint leaf-spine
through 100k stateful flows and holds the run to explicit wall-time
and peak-RSS budgets — the sharded flow table and lazy per-link port
state exist precisely so this fits in bounded memory.  Tier-1 keeps a
small smoke variant so the code path never rots between CI tiers.
"""

import resource
import time

import pytest

from repro.fabric.scale import ScaleFabric
from repro.fabric.topology import TopologySpec

#: Budgets for the full-scale run.  Wall is ~7 s on a dev container;
#: 90 s leaves headroom for slow CI runners without hiding a
#: complexity regression (an O(endpoints * flows) slip blows through
#: it immediately).  RSS likewise: ~130 MB observed, 1.5 GB budget.
WALL_BUDGET_S = 90.0
PEAK_RSS_BUDGET_BYTES = 1536 * 1024 * 1024


def _peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _check_report(report, flows):
    assert report["posted"] == flows
    assert report["posted"] == report["delivered"] + report["lost"]
    assert report["flows"] == flows
    # Sharding actually spread the records.
    sizes = report["shard_sizes"]
    assert sum(sizes) == flows
    if flows >= 1000:
        assert all(size > 0 for size in sizes)
    for link, (entered, forwarded, dropped) in report["link_counts"].items():
        assert entered == forwarded + dropped, (link, entered)


def test_scale_smoke_128_endpoints():
    """Tier-1 variant: same harness, 128 endpoints / 2k flows."""
    topo = TopologySpec.leaf_spine(racks=4, hosts_per_rack=32, spines=2)
    report = ScaleFabric(topo).run(flows=2000)
    assert report["endpoints"] == 128
    _check_report(report, 2000)


@pytest.mark.slow
def test_scale_1024_endpoints_100k_flows_within_budget():
    topo = TopologySpec.leaf_spine(racks=4, hosts_per_rack=256, spines=4)
    fabric = ScaleFabric(topo)
    start = time.monotonic()
    report = fabric.run(flows=100_000)
    wall = time.monotonic() - start
    assert report["endpoints"] == 1024
    assert report["switches"] == 8
    _check_report(report, 100_000)
    # Traffic crossed the whole fabric: every leaf uplink direction saw
    # frames (8 leaf<->spine pairs x 2 directions = 32 inter-switch
    # links, plus access links).
    inter_switch = [k for k in report["link_counts"] if "->h" not in k]
    assert len(inter_switch) == 32
    assert wall < WALL_BUDGET_S, f"scale run took {wall:.1f}s"
    peak = _peak_rss_bytes()
    assert peak < PEAK_RSS_BUDGET_BYTES, f"peak RSS {peak / 2**20:.0f} MiB"


@pytest.mark.slow
def test_scale_run_is_deterministic():
    topo = TopologySpec.leaf_spine(racks=4, hosts_per_rack=64, spines=4)
    first = ScaleFabric(topo).run(flows=20_000)
    second = ScaleFabric(topo).run(flows=20_000)
    assert first == second
