"""Instruction encodings, decodings, and dependence metadata."""

import pytest

from repro.isa.instructions import (
    Instruction,
    REGISTER_NAMES,
    REGISTER_NUMBERS,
    SPECS,
    decode,
    disassemble,
    encode,
    spec_for,
)


class TestRegisters:
    def test_thirty_two_names(self):
        assert len(REGISTER_NAMES) == 32

    def test_zero_is_register_0(self):
        assert REGISTER_NUMBERS["zero"] == 0

    def test_ra_is_register_31(self):
        assert REGISTER_NUMBERS["ra"] == 31


class TestSpecs:
    def test_spec_lookup(self):
        assert spec_for("addu").mnemonic == "addu"

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            spec_for("frobnicate")

    def test_loads_flagged(self):
        for mnemonic in ("lw", "lb", "lbu", "lh", "lhu", "ll"):
            assert spec_for(mnemonic).is_load

    def test_stores_flagged(self):
        for mnemonic in ("sw", "sb", "sh", "sc"):
            assert spec_for(mnemonic).is_store

    def test_rmw_flags(self):
        assert spec_for("setb").is_rmw
        assert spec_for("update").is_rmw

    def test_branches_flagged(self):
        for mnemonic in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
            assert spec_for(mnemonic).is_branch

    def test_jumps_flagged(self):
        for mnemonic in ("j", "jal", "jr", "jalr"):
            assert spec_for(mnemonic).is_jump


class TestEncodeDecode:
    def test_rtype_roundtrip(self):
        ins = Instruction("addu", rd=3, rs=4, rt=5)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rd, decoded.rs, decoded.rt) == ("addu", 3, 4, 5)

    def test_shift_roundtrip(self):
        ins = Instruction("sll", rd=2, rt=7, shamt=12)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rd, decoded.rt, decoded.shamt) == ("sll", 2, 7, 12)

    def test_itype_negative_immediate(self):
        ins = Instruction("addiu", rt=8, rs=9, imm=-4)
        decoded = decode(encode(ins))
        assert decoded.imm == -4

    def test_logical_immediates_zero_extended(self):
        ins = Instruction("ori", rt=8, rs=9, imm=0xFFFF)
        decoded = decode(encode(ins))
        assert decoded.imm == 0xFFFF

    def test_memory_roundtrip(self):
        ins = Instruction("lw", rt=10, rs=29, imm=-8)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rt, decoded.rs, decoded.imm) == ("lw", 10, 29, -8)

    def test_branch_roundtrip(self):
        ins = Instruction("bne", rs=4, rt=5, imm=-10)
        decoded = decode(encode(ins))
        assert decoded.imm == -10

    def test_regimm_branches(self):
        for mnemonic in ("bltz", "bgez"):
            ins = Instruction(mnemonic, rs=6, imm=3)
            decoded = decode(encode(ins))
            assert decoded.mnemonic == mnemonic
            assert decoded.imm == 3

    def test_jump_roundtrip(self):
        ins = Instruction("jal", target=0x12345)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.target) == ("jal", 0x12345)

    def test_setb_roundtrip(self):
        ins = Instruction("setb", rs=8, rt=9)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rs, decoded.rt) == ("setb", 8, 9)

    def test_update_roundtrip(self):
        ins = Instruction("update", rd=2, rs=8, rt=9)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rd, decoded.rs, decoded.rt) == ("update", 2, 8, 9)

    def test_halt_roundtrip(self):
        assert decode(encode(Instruction("halt"))).mnemonic == "halt"

    def test_every_mnemonic_roundtrips(self):
        for mnemonic, spec in SPECS.items():
            ins = Instruction(mnemonic, rd=1, rs=2, rt=3, imm=4, shamt=5, target=6)
            assert decode(encode(ins)).mnemonic == mnemonic

    def test_bad_word_rejected(self):
        with pytest.raises(ValueError):
            decode(0xFFFFFFFF)

    def test_immediate_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction("addiu", rt=1, rs=2, imm=1 << 16))


class TestDependenceMetadata:
    def test_rtype_sources(self):
        ins = Instruction("addu", rd=3, rs=4, rt=5)
        assert set(ins.source_registers()) == {4, 5}
        assert ins.destination_register() == 3

    def test_store_sources_include_data(self):
        ins = Instruction("sw", rt=10, rs=29, imm=0)
        assert set(ins.source_registers()) == {29, 10}
        assert ins.destination_register() is None

    def test_load_destination(self):
        ins = Instruction("lw", rt=10, rs=29, imm=0)
        assert ins.source_registers() == (29,)
        assert ins.destination_register() == 10

    def test_lui_no_sources(self):
        assert Instruction("lui", rt=5, imm=1).source_registers() == ()

    def test_jal_writes_ra(self):
        assert Instruction("jal", target=0).destination_register() == 31

    def test_jr_reads_rs(self):
        assert Instruction("jr", rs=31).source_registers() == (31,)

    def test_update_reads_base_and_last(self):
        ins = Instruction("update", rd=2, rs=8, rt=9)
        assert set(ins.source_registers()) == {8, 9}
        assert ins.destination_register() == 2


class TestDisassembly:
    def test_rtype(self):
        assert disassemble(Instruction("addu", rd=2, rs=4, rt=5)) == "addu $v0, $a0, $a1"

    def test_memory(self):
        assert disassemble(Instruction("lw", rt=8, rs=29, imm=4)) == "lw $t0, 4($sp)"

    def test_setb(self):
        assert disassemble(Instruction("setb", rs=8, rt=9)) == "setb $t0, $t1"

    def test_str_dunder(self):
        assert str(Instruction("halt")) == "halt"
