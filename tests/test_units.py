"""Unit helpers: time/frequency/bandwidth conversions."""

import pytest

from repro import units


class TestFrequencies:
    def test_mhz(self):
        assert units.mhz(166) == 166_000_000

    def test_ghz(self):
        assert units.ghz(1.5) == 1_500_000_000

    def test_cycle_time_200mhz(self):
        assert units.cycle_time_ps(units.mhz(200)) == 5000

    def test_cycle_time_166mhz_rounds(self):
        # 1/166 MHz = 6024.096... ps -> 6024
        assert units.cycle_time_ps(units.mhz(166)) == 6024

    def test_cycle_time_rejects_zero(self):
        with pytest.raises(ValueError):
            units.cycle_time_ps(0)

    def test_cycle_time_rejects_negative(self):
        with pytest.raises(ValueError):
            units.cycle_time_ps(-1)


class TestBandwidth:
    def test_gbps(self):
        assert units.gbps(10) == 10_000_000_000

    def test_to_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(39.5)) == pytest.approx(39.5)

    def test_transfer_time_1500_bytes_at_10gbps(self):
        # 1500 B * 8 / 10 Gb/s = 1.2 us = 1_200_000 ps
        assert units.transfer_time_ps(1500, units.gbps(10)) == 1_200_000

    def test_transfer_time_zero_bytes(self):
        assert units.transfer_time_ps(0, units.gbps(10)) == 0

    def test_transfer_time_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            units.transfer_time_ps(-1, units.gbps(10))

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time_ps(100, 0)


class TestConversions:
    def test_seconds_roundtrip(self):
        assert units.ps_to_seconds(units.seconds_to_ps(1e-3)) == pytest.approx(1e-3)

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(128) == 16

    def test_bits_to_bytes_rejects_unaligned(self):
        with pytest.raises(ValueError):
            units.bits_to_bytes(12)


class TestAlignment:
    def test_align_up_already_aligned(self):
        assert units.align_up(16, 8) == 16

    def test_align_up(self):
        assert units.align_up(17, 8) == 24

    def test_align_down(self):
        assert units.align_down(17, 8) == 16

    def test_align_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            units.align_up(17, 0)
        with pytest.raises(ValueError):
            units.align_down(17, -4)
