"""Assembly firmware kernels: correctness and the ISA-level RMW ablation."""

import pytest

from repro.firmware.kernels import (
    assemble_firmware,
    capture_trace,
    kernel_source,
    ordering_instruction_counts,
)
from repro.isa import Machine, assemble


class TestKernelsAssemble:
    def test_software_kernel_assembles(self):
        program = assemble_firmware("order_sw")
        assert program.text_bytes > 0

    def test_rmw_kernel_assembles(self):
        program = assemble_firmware("order_rmw")
        assert any(i.mnemonic == "setb" for i in program.instructions)
        assert any(i.mnemonic == "update" for i in program.instructions)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_source("order_bogus")


class TestKernelsRun:
    def test_software_firmware_halts(self):
        program = assemble_firmware("order_sw", iterations=2)
        machine = Machine(program)
        machine.run()
        assert machine.halted

    def test_rmw_firmware_halts(self):
        program = assemble_firmware("order_rmw", iterations=2)
        machine = Machine(program)
        machine.run()
        assert machine.halted

    def test_ordering_kernels_commit_all_frames(self):
        """Both kernels mark 16 frames and must publish commitptr = 16."""
        for kernel in ("order_sw", "order_rmw"):
            source = f"""
            .text
        main:
            li   $a0, 16
            jal  {kernel}
            li   $a1, 0
            halt
            """
            from repro.firmware.kernels import (
                ORDER_SOFTWARE_KERNEL,
                ORDER_RMW_KERNEL,
                _DATA_SEGMENT,
            )
            program = assemble(source + ORDER_SOFTWARE_KERNEL + ORDER_RMW_KERNEL + _DATA_SEGMENT)
            machine = Machine(program)
            machine.run()
            address = program.address_of("commitptr")
            assert machine.memory.load_word(address) == 16, kernel

    def test_checksum_is_ones_complement(self):
        from repro.firmware.kernels import CHECKSUM_KERNEL, _DATA_SEGMENT
        source = """
        .text
        main:
            jal checksum
            nop
            halt
        """ + CHECKSUM_KERNEL + _DATA_SEGMENT
        machine = Machine(assemble(source))
        machine.run()
        # Header buffer is zero-filled: checksum of zeros = 0xFFFF.
        assert machine.register_by_name("v0") == 0xFFFF


class TestRmwAblation:
    def test_rmw_cuts_ordering_instructions_by_more_than_half(self):
        counts = ordering_instruction_counts(frames=16)
        assert counts["order_rmw"] < 0.5 * counts["order_sw"]

    def test_reduction_grows_with_batch(self):
        small = ordering_instruction_counts(frames=4)
        large = ordering_instruction_counts(frames=32)
        small_ratio = small["order_rmw"] / small["order_sw"]
        large_ratio = large["order_rmw"] / large["order_sw"]
        assert large_ratio <= small_ratio


class TestTraceCapture:
    def test_trace_nonempty(self):
        trace = capture_trace("order_sw", iterations=1)
        assert len(trace) > 200

    def test_trace_has_memory_and_branches(self):
        trace = capture_trace("order_sw", iterations=1)
        assert any(entry.is_load for entry in trace)
        assert any(entry.is_store for entry in trace)
        assert any(entry.is_branch and entry.taken for entry in trace)

    def test_trace_length_scales_with_iterations(self):
        one = capture_trace("order_sw", iterations=1)
        two = capture_trace("order_sw", iterations=2)
        assert len(two) > 1.8 * len(one)

    def test_rmw_trace_contains_rmw_ops(self):
        trace = capture_trace("order_rmw", iterations=1)
        assert any(entry.mnemonic == "setb" for entry in trace)
        assert any(entry.mnemonic == "update" for entry in trace)
