"""Tests for the multi-NIC network fabric (`repro.fabric`).

Covers the acceptance criteria of the fabric layer: deterministic
byte-identical runs, non-degenerate RPC latency percentiles (p99 >
p50 > one-way wire delay), legacy experiment-engine cache keys
preserved for specs without a ``fabric_spec``, switch tail-drop under
congestion feeding the fault counters, loopback consistency with the
bare single-NIC simulator, and the spec/flow/percentile building
blocks.
"""

import json

import pytest

from repro.exp import RunSpec, Sweep, SweepRunner, execute_spec
from repro.fabric import (
    FabricResult,
    FabricSimulator,
    FabricSpec,
    LatencySummary,
    RecordedSizeModel,
    RpcFlowSpec,
    StreamFlowSpec,
    exact_percentile,
)
from repro.faults import FaultPlan
from repro.faults.injector import FAULT_COUNTER_KEYS
from repro.nic.config import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.obs import Tracer
from repro.units import mhz

# Small but non-trivial windows: every fabric run here finishes in well
# under a second while still delivering hundreds of frames.
WARMUP_S = 0.1e-3
MEASURE_S = 0.3e-3


def _config(**overrides) -> NicConfig:
    defaults = dict(cores=2, core_frequency_hz=mhz(166))
    defaults.update(overrides)
    return NicConfig(**defaults)


def _run_rpc_pair(seed: int = 0, tracer=None, **spec_kwargs) -> FabricResult:
    spec = FabricSpec.rpc_pair(concurrency=4, seed=seed, **spec_kwargs)
    sim = FabricSimulator(_config(), spec, tracer=tracer)
    return sim.run(WARMUP_S, MEASURE_S)


# ----------------------------------------------------------------------
# Percentile / summary building blocks
# ----------------------------------------------------------------------
class TestExactPercentile:
    def test_empty_is_zero(self):
        assert exact_percentile([], 0.5) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.01, 0.5, 0.99, 0.999):
            assert exact_percentile([7.0], q) == 7.0

    def test_nearest_rank_on_known_list(self):
        samples = sorted(float(v) for v in range(1, 101))  # 1..100
        assert exact_percentile(samples, 0.50) == 50.0
        assert exact_percentile(samples, 0.90) == 90.0
        assert exact_percentile(samples, 0.99) == 99.0
        assert exact_percentile(samples, 1.0) == 100.0

    def test_monotone_in_fraction(self):
        samples = sorted([0.5, 1.0, 2.0, 8.0, 9.0, 100.0])
        values = [exact_percentile(samples, q) for q in (0.1, 0.5, 0.9, 0.999)]
        assert values == sorted(values)


class TestLatencySummary:
    def test_empty_summary(self):
        summary = LatencySummary.from_samples_us([])
        assert summary.count == 0
        assert summary.p99_us == 0.0

    def test_summary_statistics(self):
        samples = [1.0, 2.0, 3.0, 4.0, 100.0]
        summary = LatencySummary.from_samples_us(samples)
        assert summary.count == 5
        assert summary.min_us == 1.0
        assert summary.max_us == 100.0
        assert summary.p50_us == 3.0
        assert summary.p999_us == 100.0
        assert summary.mean_us == pytest.approx(22.0)
        # to_dict round-trips every field
        d = summary.to_dict()
        assert d["count"] == 5 and d["p50_us"] == 3.0

    def test_unsorted_input_is_sorted(self):
        summary = LatencySummary.from_samples_us([9.0, 1.0, 5.0])
        assert summary.min_us == 1.0 and summary.p50_us == 5.0


class TestRecordedSizeModel:
    def test_lookup_reads_recorded_value(self):
        model = RecordedSizeModel(nominal_payload_bytes=1472)
        model.record(0, 64)
        model.record(1, 1472)
        assert model.payload_bytes(0) == 64
        assert model.payload_bytes(1) == 1472

    def test_unrecorded_sequence_raises(self):
        model = RecordedSizeModel()
        with pytest.raises(KeyError):
            model.payload_bytes(3)

    def test_nominal_feeds_aggregates(self):
        model = RecordedSizeModel(nominal_payload_bytes=256)
        assert model.mean_payload_bytes == 256.0


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestFabricSpec:
    def test_needs_a_flow(self):
        with pytest.raises(ValueError, match="at least one flow"):
            FabricSpec(nics=2)

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            FabricSpec(nics=2, rpc_flows=(RpcFlowSpec(client=0, server=2),))

    def test_duplicate_flow_names_rejected(self):
        spec = FabricSpec(
            nics=2,
            rpc_flows=(RpcFlowSpec(name="f"),),
            stream_flows=(StreamFlowSpec(name="f"),),
        )
        with pytest.raises(ValueError, match="unique"):
            spec.flow_names()

    def test_default_flow_names(self):
        spec = FabricSpec(
            nics=2,
            rpc_flows=(RpcFlowSpec(),),
            stream_flows=(StreamFlowSpec(),),
        )
        assert spec.flow_names() == ("rpc0", "stream0")

    def test_bad_stream_fraction(self):
        with pytest.raises(ValueError, match="offered_fraction"):
            StreamFlowSpec(offered_fraction=0.0)
        with pytest.raises(ValueError, match="offered_fraction"):
            StreamFlowSpec(offered_fraction=1.5)

    def test_bad_rpc_concurrency(self):
        with pytest.raises(ValueError, match="concurrency"):
            RpcFlowSpec(concurrency=0)

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            RpcFlowSpec(request_payload_bytes=10)
        with pytest.raises(ValueError):
            StreamFlowSpec(udp_payload_bytes=100_000)

    def test_needs_at_least_one_nic(self):
        with pytest.raises(ValueError, match="at least one NIC"):
            FabricSpec(nics=0, stream_flows=(StreamFlowSpec(src=0, dst=0),))

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FabricSpec(propagation_delay_ps=-1, rpc_flows=(RpcFlowSpec(),))
        with pytest.raises(ValueError, match="non-negative"):
            FabricSpec(switch_latency_ps=-1, rpc_flows=(RpcFlowSpec(),))

    def test_port_queue_must_hold_a_frame(self):
        with pytest.raises(ValueError, match="at least one frame"):
            FabricSpec(port_queue_frames=0, rpc_flows=(RpcFlowSpec(),))

    def test_bad_stream_post_batch(self):
        with pytest.raises(ValueError, match="post_batch"):
            StreamFlowSpec(post_batch=0)

    def test_negative_rpc_delays(self):
        with pytest.raises(ValueError, match="non-negative"):
            RpcFlowSpec(think_ps=-1)
        with pytest.raises(ValueError, match="non-negative"):
            RpcFlowSpec(retry_delay_ps=-1)

    def test_with_load_replaces_every_stream(self):
        spec = FabricSpec(
            nics=3,
            stream_flows=(
                StreamFlowSpec(src=0, dst=2, offered_fraction=1.0, name="a"),
                StreamFlowSpec(src=1, dst=2, offered_fraction=0.4, name="b"),
            ),
        )
        scaled = spec.with_load(0.25)
        assert all(f.offered_fraction == 0.25 for f in scaled.stream_flows)
        # frozen original untouched
        assert spec.stream_flows[0].offered_fraction == 1.0


# ----------------------------------------------------------------------
# The acceptance run: 2-NIC closed-loop RPC
# ----------------------------------------------------------------------
class TestRpcPair:
    @pytest.fixture(scope="class")
    def result(self) -> FabricResult:
        return _run_rpc_pair()

    def test_exchanges_complete(self, result):
        rpc = result.primary_flow
        assert rpc.kind == "rpc"
        assert rpc.completed > 10
        assert rpc.delivered >= rpc.completed
        assert rpc.lost == 0

    def test_percentiles_non_degenerate(self, result):
        """p99 > p50 > one-way wire delay — the acceptance criterion."""
        rtt = result.primary_flow.rtt
        oneway_wire_us = 1_000_000 / 1e6  # rpc_pair default: 1 us/hop
        assert rtt is not None and rtt.count > 10
        assert rtt.p99_us > rtt.p50_us
        assert rtt.p50_us > oneway_wire_us
        # and the RTT must cover at least two wire crossings
        assert rtt.min_us > 2 * oneway_wire_us

    def test_oneway_below_rtt(self, result):
        flow = result.primary_flow
        assert 0 < flow.oneway.p50_us < flow.rtt.p50_us

    def test_goodput_accounting(self, result):
        flow = result.primary_flow
        expected = flow.delivered_payload_bytes * 8 / MEASURE_S / 1e9
        assert flow.goodput_gbps == pytest.approx(expected)
        assert result.aggregate_goodput_gbps == pytest.approx(
            sum(f.goodput_gbps for f in result.flows.values())
        )

    def test_nic_results_present(self, result):
        assert len(result.nics) == 2
        # the client transmits requests, the server transmits responses
        assert all(nic.tx_frames > 0 and nic.rx_frames > 0 for nic in result.nics)

    def test_to_dict_serializes(self, result):
        blob = json.dumps(result.to_dict(), sort_keys=True)
        parsed = json.loads(blob)
        assert parsed["flows"]["rpc0"]["rtt"]["count"] > 10


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = _run_rpc_pair(seed=3)
        b = _run_rpc_pair(seed=3)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_stream_runs_identical(self):
        spec = FabricSpec(
            nics=2,
            stream_flows=(StreamFlowSpec(src=0, dst=1, offered_fraction=0.5),),
        )
        results = [
            FabricSimulator(_config(), spec).run(WARMUP_S, MEASURE_S)
            for _ in range(2)
        ]
        assert json.dumps(results[0].to_dict(), sort_keys=True) == json.dumps(
            results[1].to_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Loopback consistency with the bare simulator
# ----------------------------------------------------------------------
class TestLoopbackConsistency:
    def test_loopback_tracks_bare_goodput(self):
        """1-NIC fabric loopback reproduces the bare simulator's goodput.

        The strict 5% guard lives in ``benchmarks/bench_fabric_overhead``
        with a 1 ms window; here a shorter window gets a correspondingly
        looser bound (the residual is a constant handful of in-flight
        frames, so divergence shrinks as 1/window).
        """
        config = _config()
        measure_s = 0.5e-3
        bare = ThroughputSimulator(config, udp_payload_bytes=1472).run(
            warmup_s=0.2e-3, measure_s=measure_s
        )
        direct_gbps = bare.rx_payload_bytes * 8 / measure_s / 1e9
        fabric = FabricSimulator(config, FabricSpec.loopback()).run(
            0.2e-3, measure_s
        )
        flow = fabric.flows["loop0"]
        assert flow.lost == 0
        assert flow.goodput_gbps == pytest.approx(direct_gbps, rel=0.10)
        assert flow.oneway.count == flow.delivered


# ----------------------------------------------------------------------
# Switch port occupancy bookkeeping
# ----------------------------------------------------------------------
class TestSwitchPortOccupancy:
    def test_occupancy_stays_exact_across_drain_and_refill(self):
        """Regression: the head-popping ``occupancy`` must agree with a
        naive recount of undeparted frames at every query, including
        after the deque fully drains and refills (the wraparound where
        a stale-head bug would over- or under-count)."""
        from repro.fabric.wire import _SwitchPort

        port = _SwitchPort()
        shadow = []  # every departure ever appended, never popped

        def occupancy_naive(now_ps):
            return sum(1 for depart in shadow if depart > now_ps)

        # Interleave appends and queries over three drain/refill cycles.
        now = 0
        for cycle in range(3):
            for i in range(5):
                depart = now + (i + 1) * 1_000
                port.departures.append(depart)
                shadow.append(depart)
                assert port.occupancy(now) == occupancy_naive(now)
            # Queries while partially drained...
            for step in (1_500, 3_500, 4_999):
                assert port.occupancy(now + step) == occupancy_naive(now + step)
            # ... and after everything departed (deque empties).
            now += 10_000
            assert port.occupancy(now) == occupancy_naive(now) == 0
            assert not port.departures

    def test_occupancy_is_monotone_queries_safe(self):
        """Two queries at the same instant agree (popping is idempotent
        once the head has departed)."""
        from repro.fabric.wire import _SwitchPort

        port = _SwitchPort()
        port.departures.extend([10, 20, 30])
        assert port.occupancy(15) == 2
        assert port.occupancy(15) == 2
        assert port.occupancy(30) == 0


# ----------------------------------------------------------------------
# Switch congestion and tail-drop
# ----------------------------------------------------------------------
def _congested_spec(**overrides) -> FabricSpec:
    """Two full-rate streams converging on one output port with a tiny
    queue — guaranteed tail-drops."""
    defaults = dict(
        nics=3,
        switch=True,
        port_queue_frames=2,
        stream_flows=(
            StreamFlowSpec(src=0, dst=2, offered_fraction=1.0, name="a"),
            StreamFlowSpec(src=1, dst=2, offered_fraction=1.0, name="b"),
        ),
    )
    defaults.update(overrides)
    return FabricSpec(**defaults)


class TestSwitch:
    def test_tail_drops_under_congestion(self):
        result = FabricSimulator(_config(), _congested_spec()).run(
            WARMUP_S, MEASURE_S
        )
        assert result.switch_drops > 0
        assert result.switch_forwarded > 0
        lost = sum(f.lost for f in result.flows.values())
        # Every drop is reported to its flow; the switch counter ticks at
        # tail-drop time while the flow callback fires when the frame
        # would have arrived, so the two may differ by the handful of
        # drop notifications in flight across the window boundary.
        assert lost > 0
        assert abs(lost - result.switch_drops) <= 4
        delivered = sum(f.delivered for f in result.flows.values())
        assert delivered > 0  # congestion degrades, doesn't wedge

    def test_drops_feed_fault_counters_with_plan(self):
        plan = FaultPlan(seed=1, pci_stall_rate=1e-6)  # enabled, near-no-op
        result = FabricSimulator(
            _config(), _congested_spec(), fault_plan=plan
        ).run(WARMUP_S, MEASURE_S)
        counted = result.fault_counters.get("switch_tail_drops", 0)
        assert counted > 0
        # Same window-boundary skew as the flow loss callbacks: the
        # injector counts a drop when the frame's arrival would have
        # happened, the wire counts it at tail-drop time.
        assert abs(counted - result.switch_drops) <= 4

    def test_fault_counter_keys_include_switch_tail_drops(self):
        assert "switch_tail_drops" in FAULT_COUNTER_KEYS

    def test_uncongested_switch_drops_nothing(self):
        spec = FabricSpec(
            nics=2,
            switch=True,
            port_queue_frames=256,
            rpc_flows=(RpcFlowSpec(concurrency=2),),
        )
        result = FabricSimulator(_config(), spec).run(WARMUP_S, MEASURE_S)
        assert result.switch_drops == 0
        assert result.primary_flow.lost == 0
        assert result.primary_flow.completed > 0

    def test_rpc_retransmits_recover_loss(self):
        """RPC traffic sharing a congested port sees losses converted to
        retransmit latency, and the window keeps completing."""
        spec = _congested_spec(
            rpc_flows=(
                RpcFlowSpec(
                    client=0, server=2, concurrency=4, retry_delay_ps=500_000
                ),
            ),
        )
        result = FabricSimulator(_config(), spec).run(WARMUP_S, 2 * MEASURE_S)
        rpc = result.flows["rpc0"]
        # Liveness: the closed-loop window keeps completing even though
        # nearly every frame contends with two full-rate streams.
        assert rpc.completed > 0
        # Recovery: losses are retried, not silently dropped samples —
        # every completed exchange still produced an RTT sample.
        assert rpc.lost > 0
        assert rpc.retransmits > 0
        assert rpc.rtt.count == rpc.completed


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_per_nic_namespaces_and_fabric_track(self):
        tracer = Tracer()
        _run_rpc_pair(tracer=tracer)
        tracks = {event.track for event in tracer.events}
        assert any(track.startswith("nic0/") for track in tracks)
        assert any(track.startswith("nic1/") for track in tracks)
        fabric_spans = [
            e for e in tracer.events if e.track == "fabric" and e.phase == "X"
        ]
        assert fabric_spans, "wire transits should land on the fabric track"
        assert all(span.dur_ps > 0 for span in fabric_spans)

    def test_untraced_run_matches_traced_run(self):
        traced = _run_rpc_pair(tracer=Tracer())
        plain = _run_rpc_pair()
        assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Experiment-engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_legacy_cache_keys_preserved(self):
        """A spec without fabric_spec hashes exactly as before the
        fabric layer existed: no new key_inputs entry."""
        spec = RunSpec(config=_config())
        inputs = spec.key_inputs()
        assert "fabric_spec" not in inputs
        assert "fault_plan" not in inputs

    def test_fabric_spec_changes_key(self):
        base = RunSpec(config=_config(), warmup_s=WARMUP_S, measure_s=MEASURE_S)
        fabric = RunSpec(
            config=_config(),
            warmup_s=WARMUP_S,
            measure_s=MEASURE_S,
            fabric_spec=FabricSpec.rpc_pair(),
        )
        assert base.key != fabric.key
        assert "fabric_spec" in fabric.key_inputs()

    def test_different_fabrics_different_keys(self):
        a = RunSpec(config=_config(), fabric_spec=FabricSpec.rpc_pair(seed=0))
        b = RunSpec(config=_config(), fabric_spec=FabricSpec.rpc_pair(seed=1))
        assert a.key != b.key

    def test_label_still_excluded_from_key(self):
        a = RunSpec(
            config=_config(), label="x", fabric_spec=FabricSpec.rpc_pair()
        )
        b = RunSpec(
            config=_config(), label="y", fabric_spec=FabricSpec.rpc_pair()
        )
        assert a.key == b.key

    def test_execute_spec_dispatches_to_fabric(self):
        spec = RunSpec(
            config=_config(),
            warmup_s=WARMUP_S,
            measure_s=MEASURE_S,
            fabric_spec=FabricSpec.rpc_pair(concurrency=2),
        )
        result = execute_spec(spec)
        assert isinstance(result, FabricResult)
        assert result.primary_flow.completed > 0

    def test_cache_round_trip(self, tmp_path):
        spec = RunSpec(
            config=_config(),
            warmup_s=WARMUP_S,
            measure_s=MEASURE_S,
            fabric_spec=FabricSpec.rpc_pair(concurrency=2),
        )
        first = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run([spec])
        assert first.executed == 1 and first.cache_hits == 0
        second = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run([spec])
        assert second.executed == 0 and second.cache_hits == 1
        assert json.dumps(first.results[0].to_dict(), sort_keys=True) == (
            json.dumps(second.results[0].to_dict(), sort_keys=True)
        )

    def test_fabric_grid_and_rows(self):
        base = FabricSpec(
            nics=2,
            stream_flows=(StreamFlowSpec(src=0, dst=1),),
            rpc_flows=(RpcFlowSpec(concurrency=2),),
        )
        sweep = Sweep.fabric_grid(
            "loads", base, loads=(0.3, 0.9),
            base_config=_config(),
            warmup_s=WARMUP_S, measure_s=MEASURE_S,
        )
        assert [s.label for s in sweep.specs] == ["load=0.3", "load=0.9"]
        outcome = sweep.run(jobs=1)
        rows = Sweep.rows(outcome)
        assert len(rows) == 2
        for row in rows:
            assert row["nics"] == 2
            assert {"rtt_p50_us", "rtt_p99_us", "rtt_p999_us",
                    "oneway_p50_us", "aggregate_goodput_gbps",
                    "switch_drops", "mac_drops"} <= set(row)
            assert row["aggregate_goodput_gbps"] > 0

    def test_legacy_rows_schema_untouched(self):
        """Single-NIC sweeps export exactly the pre-fabric columns."""
        sweep = Sweep.grid(
            "legacy", core_counts=(1,), frequencies_mhz=(166,),
            warmup_s=WARMUP_S, measure_s=MEASURE_S,
        )
        outcome = sweep.run(jobs=1)
        rows = Sweep.rows(outcome)
        assert len(rows) == 1
        forbidden = {
            "nics", "switch", "flow", "rtt_p50_us", "oneway_p50_us",
            "aggregate_goodput_gbps", "switch_drops",
        }
        assert not (forbidden & set(rows[0]))


# ----------------------------------------------------------------------
# Streaming latency estimator (bounded memory, PR: telemetry observatory)
# ----------------------------------------------------------------------
class TestStreamingEstimator:
    """The fabric's default estimator is the bounded-memory streaming
    sketch; ``estimator="exact"`` preserves the byte-identical legacy
    path (golden corpus).  Cross-mode percentile agreement must stay
    within the sketch's documented relative-error bound."""

    def _run(self, estimator, seed=11):
        spec = FabricSpec.rpc_pair(concurrency=4, seed=seed)
        sim = FabricSimulator(_config(), spec, estimator=estimator)
        return sim, sim.run(WARMUP_S, MEASURE_S)

    def test_invalid_estimator_rejected(self):
        spec = FabricSpec.rpc_pair()
        with pytest.raises(ValueError, match="estimator"):
            FabricSimulator(_config(), spec, estimator="quantum")

    def test_default_is_streaming_with_bounded_state(self):
        spec = FabricSpec.rpc_pair(concurrency=4)
        sim = FabricSimulator(_config(), spec)
        assert sim.estimator == "streaming"
        result = sim.run(WARMUP_S, MEASURE_S)
        flow = sim.flows["rpc0"]
        assert result.flows["rpc0"].delivered > 50
        # The unbounded sample buffers are never appended to: per-flow
        # latency state is O(buckets), not O(delivered frames).
        assert flow.oneway_samples_us == []
        assert flow.rtt_samples_us == []
        assert flow.oneway_stream.total > 0
        assert flow.oneway_stream.bucket_count < 1000
        assert result.flows["rpc0"].oneway.estimator == "streaming"
        assert result.flows["rpc0"].rtt.estimator == "streaming"

    def test_exact_mode_keeps_samples_and_tags_summaries(self):
        sim, result = self._run("exact")
        flow = sim.flows["rpc0"]
        assert len(flow.oneway_samples_us) > 0
        assert flow.oneway_stream is None
        assert result.flows["rpc0"].oneway.estimator == "exact"

    def test_streaming_agrees_with_exact_within_bound(self):
        from repro.fabric import LATENCY_SIGNIFICANT_DIGITS

        _, streaming = self._run("streaming")
        _, exact = self._run("exact")
        bound = 10.0 ** -LATENCY_SIGNIFICANT_DIGITS
        for name in exact.flows:
            s_flow, e_flow = streaming.flows[name], exact.flows[name]
            # Counts and exact aggregates are identical: the estimator
            # changes only how percentiles are summarized.
            assert s_flow.delivered == e_flow.delivered
            assert s_flow.oneway.count == e_flow.oneway.count
            assert s_flow.oneway.min_us == pytest.approx(e_flow.oneway.min_us)
            assert s_flow.oneway.max_us == pytest.approx(e_flow.oneway.max_us)
            summaries = [(s_flow.oneway, e_flow.oneway)]
            if e_flow.rtt is not None:
                summaries.append((s_flow.rtt, e_flow.rtt))
            for s_summary, e_summary in summaries:
                for stat in ("p50_us", "p90_us", "p99_us", "p999_us"):
                    s_value = getattr(s_summary, stat)
                    e_value = getattr(e_summary, stat)
                    assert abs(s_value - e_value) <= bound * e_value + 1e-9, (
                        f"{name}.{stat}: streaming {s_value} vs exact {e_value}"
                    )

    def test_estimator_field_excluded_from_to_dict(self):
        """Result-dict byte-identity: exact-mode dicts must match the
        pre-streaming layout, so the tag never serializes."""
        summary = LatencySummary.from_samples_us([1.0, 2.0, 3.0])
        assert "estimator" not in summary.to_dict()
        _, result = self._run("streaming")
        text = json.dumps(result.to_dict())
        assert "estimator" not in text

    def test_streaming_sketches_visible_in_registry(self):
        sim, _result = self._run("streaming")
        snapshot = sim.stats.snapshot()
        assert "shist.flow.rpc0.oneway_us.p99" in snapshot
        assert snapshot["shist.flow.rpc0.oneway_us.count"] > 0
