"""Binary firmware images and listings."""

import pytest

from repro.firmware.kernels import assemble_firmware
from repro.isa import Machine, assemble
from repro.isa.binary import (
    ImageError,
    decode_image,
    encode_program,
    listing,
)

SOURCE = """
        .data
out:    .word 0
        .text
main:
        li $t0, 21
        addu $t0, $t0, $t0
        la $t1, out
        sw $t0, 0($t1)
        halt
"""


class TestImageRoundtrip:
    def test_roundtrip_preserves_instructions(self):
        program = assemble(SOURCE)
        image = decode_image(encode_program(program))
        assert len(image.instructions) == len(program.instructions)
        for original, loaded in zip(program.instructions, image.instructions):
            assert loaded.mnemonic == original.mnemonic

    def test_roundtrip_preserves_sections(self):
        program = assemble(SOURCE)
        image = decode_image(encode_program(program))
        assert image.text_base == program.text_base
        assert image.data_base == program.data_base
        assert image.data == program.data

    def test_loaded_image_runs_identically(self):
        program = assemble(SOURCE)
        reloaded = decode_image(encode_program(program)).to_program()
        original_machine = Machine(program)
        original_machine.run()
        reloaded_machine = Machine(reloaded)
        reloaded_machine.run()
        out = program.address_of("out")
        assert (
            original_machine.memory.load_word(out)
            == reloaded_machine.memory.load_word(out)
            == 42
        )

    def test_full_firmware_roundtrips(self):
        program = assemble_firmware("order_rmw", iterations=1)
        image = decode_image(encode_program(program))
        assert len(image.instructions) == len(program.instructions)
        # The RMW extension instructions survive the binary roundtrip.
        mnemonics = {i.mnemonic for i in image.instructions}
        assert "setb" in mnemonics and "update" in mnemonics


class TestImageValidation:
    def test_bad_magic(self):
        blob = encode_program(assemble(SOURCE))
        with pytest.raises(ImageError):
            decode_image(b"WRONGMAG" + blob[8:])

    def test_truncated_header(self):
        with pytest.raises(ImageError):
            decode_image(b"short")

    def test_truncated_body(self):
        blob = encode_program(assemble(SOURCE))
        with pytest.raises(ImageError):
            decode_image(blob[:-1])

    def test_bad_version(self):
        blob = bytearray(encode_program(assemble(SOURCE)))
        blob[8] = 99
        with pytest.raises(ImageError):
            decode_image(bytes(blob))


class TestListing:
    def test_listing_has_labels_and_addresses(self):
        program = assemble(SOURCE)
        text = listing(program)
        assert "main:" in text
        assert "0x000000:" in text
        assert "halt" in text

    def test_listing_shows_encodings(self):
        program = assemble(SOURCE)
        text = listing(program)
        # Every instruction line (before the data dump) carries an
        # 8-hex-digit encoding.
        text_section = text.split(".data")[0]
        body = [line for line in text_section.splitlines() if line.startswith("  0x")]
        assert body
        assert all(len(line.split()[1]) == 8 for line in body)

    def test_listing_without_encoding(self):
        text = listing(assemble(SOURCE), with_encoding=False)
        assert "main:" in text

    def test_data_section_dumped(self):
        program = assemble(SOURCE)
        text = listing(program)
        assert ".data @" in text

    def test_large_data_truncated(self):
        program = assemble(".data\nbig: .space 256\n.text\nnop\nhalt")
        text = listing(program)
        assert "more bytes" in text
