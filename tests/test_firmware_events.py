"""Event mechanisms: distributed queue vs Tigon-II event register."""

import pytest

from repro.firmware import DistributedEventQueue, EventKind, EventRegister, FrameEvent


class TestFrameEvent:
    def test_fields(self):
        event = FrameEvent(EventKind.SEND_FRAME, first_seq=10, count=5)
        assert event.kind is EventKind.SEND_FRAME
        assert event.first_seq == 10
        assert event.count == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FrameEvent(EventKind.SEND_FRAME, count=-1)


class TestDistributedEventQueue:
    def test_fifo(self):
        queue = DistributedEventQueue()
        queue.push(FrameEvent(EventKind.SEND_FRAME, first_seq=1))
        queue.push(FrameEvent(EventKind.RECV_FRAME, first_seq=2))
        assert queue.pop().first_seq == 1
        assert queue.pop().first_seq == 2

    def test_pop_empty_returns_none(self):
        assert DistributedEventQueue().pop() is None

    def test_overflow_guard(self):
        queue = DistributedEventQueue(max_depth=2)
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        with pytest.raises(OverflowError):
            queue.push(FrameEvent(EventKind.SEND_FRAME))

    def test_retry_increments_counters(self):
        queue = DistributedEventQueue()
        event = FrameEvent(EventKind.RECV_FRAME)
        queue.push_retry(event)
        assert event.retries == 1
        assert queue.retries == 1

    def test_high_water_mark(self):
        queue = DistributedEventQueue()
        for _ in range(5):
            queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.pop()
        assert queue.high_water == 5

    def test_len_and_empty(self):
        queue = DistributedEventQueue()
        assert queue.empty
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        assert len(queue) == 1
        assert not queue.empty

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DistributedEventQueue(max_depth=0)

    def test_is_full(self):
        queue = DistributedEventQueue(max_depth=2)
        assert not queue.is_full
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        assert queue.is_full
        queue.pop()
        assert not queue.is_full

    def test_all_claimed_empty_queue(self):
        claims = {kind: False for kind in EventKind}
        assert DistributedEventQueue().all_claimed(claims)

    def test_all_claimed_tracks_queued_kinds(self):
        queue = DistributedEventQueue()
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.push(FrameEvent(EventKind.RECV_FRAME))
        claims = {kind: False for kind in EventKind}
        assert not queue.all_claimed(claims)
        claims[EventKind.SEND_FRAME] = True
        assert not queue.all_claimed(claims)  # RECV_FRAME still runnable
        claims[EventKind.RECV_FRAME] = True
        assert queue.all_claimed(claims)
        # Claims on kinds that are not queued are irrelevant.
        claims[EventKind.SEND_FRAME] = False
        queue.pop()  # removes SEND_FRAME
        assert queue.all_claimed(claims)


class TestTaskLevelDispatchRegression:
    """Bugfix: with every queued kind claimed, dispatch used to pop each
    event and ``push_retry`` it — spinning without progress (the queue
    never drains, idle cores never decrease) and reordering the claimed
    events behind any later arrivals."""

    def _sim(self):
        from repro.nic import NicConfig, ThroughputSimulator

        return ThroughputSimulator(
            NicConfig(cores=2, task_level_firmware=True)
        )

    def test_all_claimed_breaks_without_touching_queue(self):
        sim = self._sim()
        sim._task_claims[EventKind.SEND_FRAME] = True
        first = FrameEvent(EventKind.SEND_FRAME, first_seq=1)
        second = FrameEvent(EventKind.SEND_FRAME, first_seq=2)
        sim.queue.push(first)
        sim.queue.push(second)
        sim._dispatch()  # must return, not livelock
        # No pop/retry churn: the events sit untouched, in order.
        assert sim.queue.retries == 0
        assert sim.queue.dequeues == 0
        assert sim.queue.pop() is first
        assert sim.queue.pop() is second

    def test_unclaimed_kind_still_dispatches(self):
        sim = self._sim()
        sim._task_claims[EventKind.SEND_FRAME] = True
        blocked = FrameEvent(EventKind.SEND_FRAME, first_seq=1)
        sim.queue.push(blocked)
        sim.queue.push(FrameEvent(EventKind.FETCH_SEND_BD, first_seq=0, count=1))
        idle_before = sim._idle_cores
        sim._dispatch()
        # The runnable FETCH_SEND_BD event was handled...
        assert sim._idle_cores == idle_before - 1
        assert sim._task_claims[EventKind.FETCH_SEND_BD]
        # ...and the claimed event is requeued, not lost.
        assert sim.queue.pop() is blocked

    def test_same_kind_never_runs_twice_concurrently_under_retry(self):
        sim = self._sim()
        for seq in range(3):
            sim.queue.push(FrameEvent(EventKind.SEND_COMPLETE, first_seq=seq))
        sim._dispatch()
        # One claimed, the others parked (2 cores were available, but
        # the event-register semantics allow only one SEND_COMPLETE).
        assert sim._task_claims[EventKind.SEND_COMPLETE]
        remaining = [sim.queue.pop() for _ in range(len(sim.queue))]
        parked = [e for e in remaining if e.kind is EventKind.SEND_COMPLETE]
        assert len(parked) == 2  # deferred, not lost or duplicated
        assert [e.first_seq for e in parked] == [1, 2]  # original order kept


class TestEventRegister:
    def test_claim_requires_pending(self):
        register = EventRegister()
        assert not register.claim(EventKind.SEND_FRAME, core_id=0)
        register.raise_event(EventKind.SEND_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)

    def test_one_core_per_event_type(self):
        """The Section 3.2 limitation: while a core handles an event
        type, no other core may handle that same type."""
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)
        assert not register.claim(EventKind.SEND_FRAME, core_id=1)
        assert register.blocked_claims == 1

    def test_reclaim_by_holder_allowed(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)

    def test_release_enables_other_core(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        register.release(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.SEND_FRAME, core_id=1)

    def test_release_by_non_holder_rejected(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        with pytest.raises(RuntimeError):
            register.release(EventKind.SEND_FRAME, core_id=1)

    def test_distinct_types_run_concurrently(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.raise_event(EventKind.RECV_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.RECV_FRAME, core_id=1)

    def test_claimable_kinds(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.raise_event(EventKind.RECV_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        kinds = register.claimable_kinds(core_id=1)
        assert EventKind.RECV_FRAME in kinds
        assert EventKind.SEND_FRAME not in kinds

    def test_clear_event(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.clear_event(EventKind.SEND_FRAME)
        assert not register.pending(EventKind.SEND_FRAME)

    def test_parallelism_bounded_by_event_types(self):
        """With every event type pending, at most one core per type can
        work — the structural ceiling on task-level parallelism."""
        register = EventRegister()
        for kind in EventKind:
            register.raise_event(kind)
        working = 0
        for core_id in range(32):
            if any(
                register.claim(kind, core_id)
                for kind in register.claimable_kinds(core_id)
            ):
                working += 1
        assert working <= len(EventKind)
