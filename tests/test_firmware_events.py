"""Event mechanisms: distributed queue vs Tigon-II event register."""

import pytest

from repro.firmware import DistributedEventQueue, EventKind, EventRegister, FrameEvent


class TestFrameEvent:
    def test_fields(self):
        event = FrameEvent(EventKind.SEND_FRAME, first_seq=10, count=5)
        assert event.kind is EventKind.SEND_FRAME
        assert event.first_seq == 10
        assert event.count == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FrameEvent(EventKind.SEND_FRAME, count=-1)


class TestDistributedEventQueue:
    def test_fifo(self):
        queue = DistributedEventQueue()
        queue.push(FrameEvent(EventKind.SEND_FRAME, first_seq=1))
        queue.push(FrameEvent(EventKind.RECV_FRAME, first_seq=2))
        assert queue.pop().first_seq == 1
        assert queue.pop().first_seq == 2

    def test_pop_empty_returns_none(self):
        assert DistributedEventQueue().pop() is None

    def test_overflow_guard(self):
        queue = DistributedEventQueue(max_depth=2)
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        with pytest.raises(OverflowError):
            queue.push(FrameEvent(EventKind.SEND_FRAME))

    def test_retry_increments_counters(self):
        queue = DistributedEventQueue()
        event = FrameEvent(EventKind.RECV_FRAME)
        queue.push_retry(event)
        assert event.retries == 1
        assert queue.retries == 1

    def test_high_water_mark(self):
        queue = DistributedEventQueue()
        for _ in range(5):
            queue.push(FrameEvent(EventKind.SEND_FRAME))
        queue.pop()
        assert queue.high_water == 5

    def test_len_and_empty(self):
        queue = DistributedEventQueue()
        assert queue.empty
        queue.push(FrameEvent(EventKind.SEND_FRAME))
        assert len(queue) == 1
        assert not queue.empty

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DistributedEventQueue(max_depth=0)


class TestEventRegister:
    def test_claim_requires_pending(self):
        register = EventRegister()
        assert not register.claim(EventKind.SEND_FRAME, core_id=0)
        register.raise_event(EventKind.SEND_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)

    def test_one_core_per_event_type(self):
        """The Section 3.2 limitation: while a core handles an event
        type, no other core may handle that same type."""
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)
        assert not register.claim(EventKind.SEND_FRAME, core_id=1)
        assert register.blocked_claims == 1

    def test_reclaim_by_holder_allowed(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)

    def test_release_enables_other_core(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        register.release(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.SEND_FRAME, core_id=1)

    def test_release_by_non_holder_rejected(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        with pytest.raises(RuntimeError):
            register.release(EventKind.SEND_FRAME, core_id=1)

    def test_distinct_types_run_concurrently(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.raise_event(EventKind.RECV_FRAME)
        assert register.claim(EventKind.SEND_FRAME, core_id=0)
        assert register.claim(EventKind.RECV_FRAME, core_id=1)

    def test_claimable_kinds(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.raise_event(EventKind.RECV_FRAME)
        register.claim(EventKind.SEND_FRAME, core_id=0)
        kinds = register.claimable_kinds(core_id=1)
        assert EventKind.RECV_FRAME in kinds
        assert EventKind.SEND_FRAME not in kinds

    def test_clear_event(self):
        register = EventRegister()
        register.raise_event(EventKind.SEND_FRAME)
        register.clear_event(EventKind.SEND_FRAME)
        assert not register.pending(EventKind.SEND_FRAME)

    def test_parallelism_bounded_by_event_types(self):
        """With every event type pending, at most one core per type can
        work — the structural ceiling on task-level parallelism."""
        register = EventRegister()
        for kind in EventKind:
            register.raise_event(kind)
        working = 0
        for core_id in range(32):
            if any(
                register.claim(kind, core_id)
                for kind in register.claimable_kinds(core_id)
            ):
                working += 1
        assert working <= len(EventKind)
