"""Property-based tests for the device models and conservation laws."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.nic.microdev import (
    DMA_CMD_ADDR,
    DMA_PROD_ADDR,
    RX_PROD_ADDR,
    TXBD_CMD_ADDR,
    TX_DONE_ADDR,
    TX_READY_ADDR,
    DeviceMemory,
)


class TestDeviceMonotonicity:
    @given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=2,
                    max_size=30))
    @settings(max_examples=100)
    def test_rx_producer_monotone_in_time(self, cycles):
        device = DeviceMemory(total_rx_frames=1000, rx_interarrival_cycles=37)
        previous = -1
        for cycle in sorted(cycles):
            device.cycle = cycle
            value = device.load_word(RX_PROD_ADDR)
            assert value >= previous
            previous = value

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),   # issue cycle delta
                st.booleans(),                                # issue a command?
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_dma_completions_never_exceed_commands(self, steps):
        device = DeviceMemory(dma_latency_cycles=50)
        cycle = 0
        for delta, issue in steps:
            cycle += delta
            device.cycle = cycle
            if issue:
                device.store_word(DMA_CMD_ADDR, 0)
            completed = device.load_word(DMA_PROD_ADDR)
            assert 0 <= completed <= device.dma_commands_issued

    @given(st.lists(st.integers(min_value=0, max_value=64), min_size=1,
                    max_size=20))
    @settings(max_examples=100)
    def test_tx_ready_monotone_and_capped(self, publishes):
        device = DeviceMemory(total_tx_frames=32, tx_wire_cycles=10)
        high_water = 0
        for value in publishes:
            device.store_word(TX_READY_ADDR, value)
            assert device._tx_ready >= high_water
            assert device._tx_ready <= 32
            high_water = device._tx_ready

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60)
    def test_wire_completions_bounded_by_serialization(self, frames, wire_cycles):
        device = DeviceMemory(total_tx_frames=frames, tx_wire_cycles=wire_cycles)
        device.cycle = 0
        device.store_word(TX_READY_ADDR, frames)
        # Just before the last frame's wire slot ends, it cannot be done.
        device.cycle = frames * wire_cycles - 1
        assert device.load_word(TX_DONE_ADDR) == frames - 1
        device.cycle = frames * wire_cycles
        assert device.load_word(TX_DONE_ADDR) == frames

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20)
    def test_txbd_outstanding_never_exceeds_two(self, bursts):
        device = DeviceMemory(total_tx_frames=1000, dma_latency_cycles=100)
        for _ in range(bursts * 5):
            device.store_word(TXBD_CMD_ADDR, 0)
            assert device._txbd_outstanding() <= 2


class TestThroughputConservation:
    def test_frames_never_created_from_nothing(self):
        """Over random light configurations: commits <= offered, busy
        <= capacity, SDRAM useful bytes consistent with frames moved."""
        import random

        from repro.firmware.ordering import OrderingMode
        from repro.nic import NicConfig, ThroughputSimulator
        from repro.units import mhz

        rng = random.Random(2005)
        for _trial in range(4):
            config = NicConfig(
                cores=rng.choice([1, 2, 4, 6]),
                core_frequency_hz=mhz(rng.choice([100, 133, 166])),
                scratchpad_banks=rng.choice([2, 4]),
                ordering_mode=rng.choice(list(OrderingMode)),
            )
            payload = rng.choice([46, 200, 800, 1472])
            result = ThroughputSimulator(config, payload).run(0.15e-3, 0.25e-3)
            assert result.rx_frames <= result.rx_offered + 128
            assert result.busy_cycles <= result.total_core_cycles * 1.05
            frames = result.tx_frames + result.rx_frames
            assert result.sdram_useful_bytes >= frames * result.frame_bytes
