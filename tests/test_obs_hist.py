"""Tests for the streaming quantile histogram (`repro.obs.hist`) and
the hot-path attribution upgrades in `repro.obs.profiler`.

The load-bearing properties: quantile estimates stay within the
documented relative-error bound of the exact nearest-rank sample for
*any* input stream (hypothesis-explored), ``merge`` is bucket-exact
against ingesting the concatenated stream, memory stays bounded by the
value range rather than the sample count, and profiler attribution
keys are stable — no memory addresses, distinct instances get distinct
tags, partials of the same function share one row.
"""

import functools
import json
import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.obs.hist import (
    StreamingHistogram,
    exact_percentile,
    merge_all,
    nearest_rank,
    rank_bucket,
)
from repro.obs.profiler import SimProfiler, describe_callback, phase_of
from repro.sim.stats import StatRegistry

FRACTIONS = (0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0)

positive_floats = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(positive_floats, min_size=1, max_size=300)


def _assert_within_bound(hist: StreamingHistogram, sorted_samples, fraction):
    exact = exact_percentile(sorted_samples, fraction)
    estimate = hist.percentile(fraction)
    # Documented contract: relative error <= 10^-digits, plus a few
    # ulps of float noise from log/pow.
    assert abs(estimate - exact) <= hist.relative_error * exact + 1e-9 * exact, (
        f"p{fraction}: estimate {estimate!r} vs exact {exact!r} "
        f"(bound {hist.relative_error})"
    )


# ----------------------------------------------------------------------
# Shared nearest-rank helpers
# ----------------------------------------------------------------------
class TestRankHelpers:
    def test_nearest_rank_clamps(self):
        assert nearest_rank(10, 0.0) == 1
        assert nearest_rank(10, 1.0) == 10
        assert nearest_rank(10, 0.5) == 5
        assert nearest_rank(1, 0.99) == 1

    def test_exact_percentile(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert exact_percentile(samples, 0.0) == 1.0
        assert exact_percentile(samples, 0.5) == 2.0
        assert exact_percentile(samples, 1.0) == 4.0
        assert exact_percentile([], 0.5) == 0.0

    def test_rank_bucket(self):
        assert rank_bucket([0, 3, 2], 1) == 1
        assert rank_bucket([0, 3, 2], 4) == 2
        assert rank_bucket([0, 3, 2], 6) is None
        assert rank_bucket([], 1) is None

    def test_fabric_reexport_is_shared(self):
        from repro.fabric import exact_percentile as fabric_exact
        from repro.fabric import flows

        assert fabric_exact is exact_percentile
        assert flows.exact_percentile is exact_percentile


# ----------------------------------------------------------------------
# StreamingHistogram core
# ----------------------------------------------------------------------
class TestStreamingHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram(0)
        with pytest.raises(ValueError):
            StreamingHistogram(6)
        hist = StreamingHistogram(3)
        with pytest.raises(ValueError):
            hist.record(1.0, count=0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_empty(self):
        hist = StreamingHistogram(3)
        assert hist.percentile(0.5) == 0.0
        assert hist.mean == 0.0
        assert hist.bucket_count == 0
        assert hist.summary()["count"] == 0.0

    def test_exact_aggregates(self):
        hist = StreamingHistogram(3)
        for value in (5.0, 1.0, 3.0):
            hist.record(value)
        hist.record(2.0, count=2)
        assert hist.total == 5
        assert hist.min == 1.0 and hist.max == 5.0
        assert hist.sum == pytest.approx(13.0)
        assert hist.mean == pytest.approx(2.6)

    def test_zero_and_negative_values(self):
        hist = StreamingHistogram(3)
        hist.record(0.0)
        hist.record(-1.0)
        hist.record(10.0)
        assert hist.total == 3
        assert hist.zero_count == 2
        assert hist.percentile(0.5) == 0.0  # rank 2 is the zero bucket
        assert hist.min == -1.0 and hist.max == 10.0

    def test_reset(self):
        hist = StreamingHistogram(3)
        hist.record(4.0)
        hist.reset()
        assert hist.total == 0 and hist.bucket_count == 0
        assert hist.min is None and hist.max is None

    def test_bounded_memory(self):
        """Buckets scale with the value *range*, not the sample count."""
        hist = StreamingHistogram(3)
        rng = random.Random(7)
        for _ in range(50_000):
            hist.record(rng.uniform(1.0, 1e6))
        # log(1e6) / log(gamma) with gamma ~ 1.002 is ~6,900 buckets.
        ceiling = math.log(1e6) / math.log((1 + 1e-3) / (1 - 1e-3)) + 2
        assert hist.bucket_count <= ceiling
        before = hist.bucket_count
        for _ in range(50_000):
            hist.record(rng.uniform(1.0, 1e6))
        assert hist.bucket_count <= ceiling
        assert hist.bucket_count >= before  # same range: no blow-up

    def test_extremes_are_exact(self):
        hist = StreamingHistogram(2)
        for value in (1.0, 17.3, 123.456):
            hist.record(value)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 123.456

    @given(samples=sample_lists, digits=st.integers(min_value=1, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_quantiles_within_documented_bound(self, samples, digits):
        hist = StreamingHistogram(digits)
        for value in samples:
            hist.record(value)
        ordered = sorted(samples)
        for fraction in FRACTIONS:
            _assert_within_bound(hist, ordered, fraction)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_fraction_within_bound(self, fraction):
        rng = random.Random(42)
        samples = [rng.lognormvariate(2.0, 1.5) for _ in range(500)]
        hist = StreamingHistogram(3)
        for value in samples:
            hist.record(value)
        _assert_within_bound(hist, sorted(samples), fraction)


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------
class TestMerge:
    @given(left=sample_lists, right=sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenated_stream(self, left, right):
        split_a = StreamingHistogram(3)
        split_b = StreamingHistogram(3)
        whole = StreamingHistogram(3)
        for value in left:
            split_a.record(value)
            whole.record(value)
        for value in right:
            split_b.record(value)
            whole.record(value)
        merged = split_a.merge(split_b)
        assert merged is split_a  # in-place, returns self
        # Bucket-exact equivalence: identical counts => identical
        # quantile estimates at every fraction.
        assert merged.counts == whole.counts
        assert merged.zero_count == whole.zero_count
        assert merged.total == whole.total
        assert merged.min == whole.min and merged.max == whole.max
        assert merged.sum == pytest.approx(whole.sum)
        for fraction in FRACTIONS:
            assert merged.percentile(fraction) == whole.percentile(fraction)

    def test_merge_rejects_mixed_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            StreamingHistogram(3).merge(StreamingHistogram(2))

    def test_merge_all(self):
        shards = []
        whole = StreamingHistogram(3)
        rng = random.Random(3)
        for shard_index in range(4):
            shard = StreamingHistogram(3)
            for _ in range(100):
                value = rng.expovariate(0.1)
                shard.record(value)
                whole.record(value)
            shards.append(shard)
        merged = merge_all(shards)
        assert merged.counts == whole.counts
        # Inputs are untouched (merge_all copies).
        assert all(shard.total == 100 for shard in shards)
        assert merge_all([]).total == 0

    def test_round_trip_is_json_safe_and_exact(self):
        hist = StreamingHistogram(4, name="latency_us")
        for value in (0.0, 1.5, 1.5, 300.25, 9e5):
            hist.record(value)
        data = json.loads(json.dumps(hist.to_dict()))
        clone = StreamingHistogram.from_dict(data)
        assert clone.counts == hist.counts
        assert clone.zero_count == hist.zero_count
        assert clone.total == hist.total
        assert (clone.min, clone.max, clone.sum) == (hist.min, hist.max, hist.sum)
        assert clone.name == "latency_us"
        for fraction in FRACTIONS:
            assert clone.percentile(fraction) == hist.percentile(fraction)

    def test_prometheus_lines(self):
        hist = StreamingHistogram(2, name="flow.rtt us")
        for value in (1.0, 2.0, 400.0):
            hist.record(value)
        lines = hist.prometheus_lines()
        assert lines[0] == "# TYPE flow_rtt_us histogram"
        assert lines[-2] == f"flow_rtt_us_sum {hist.sum!r}"
        assert lines[-1] == "flow_rtt_us_count 3"
        assert lines[-3] == 'flow_rtt_us_bucket{le="+Inf"} 3'
        # Cumulative counts are monotone non-decreasing.
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in lines if "_bucket" in line]
        assert counts == sorted(counts)
        assert counts[-1] == 3


# ----------------------------------------------------------------------
# StatRegistry integration
# ----------------------------------------------------------------------
class TestRegistryStreaming:
    def test_streaming_histogram_is_cached(self):
        registry = StatRegistry()
        first = registry.streaming_histogram("lat", significant_digits=2)
        assert registry.streaming_histogram("lat") is first
        assert first.significant_digits == 2

    def test_snapshot_and_window_reset(self):
        registry = StatRegistry()
        hist = registry.streaming_histogram("lat")
        hist.record(10.0)
        hist.record(20.0)
        snap = registry.snapshot()
        assert snap["shist.lat.count"] == 2.0
        assert snap["shist.lat.max"] == 20.0
        assert snap["shist.lat.p50"] == pytest.approx(10.0, rel=1e-2)
        registry.reset_window(0, histograms=True)
        assert registry.snapshot()["shist.lat.count"] == 0.0
        # Without histograms=True the distribution survives the reset.
        hist.record(5.0)
        registry.reset_window(0)
        assert registry.snapshot()["shist.lat.count"] == 1.0

    def test_merge_streaming_across_registries(self):
        worker_a, worker_b = StatRegistry(), StatRegistry()
        worker_a.streaming_histogram("lat").record(1.0)
        worker_b.streaming_histogram("lat").record(3.0)
        worker_b.streaming_histogram("other").record(7.0)
        total = StatRegistry()
        total.merge_streaming(worker_a)
        total.merge_streaming(worker_b)
        assert total.streaming["lat"].total == 2
        assert total.streaming["lat"].max == 3.0
        assert total.streaming["other"].total == 1
        # Merging copies: mutating the total leaves workers untouched.
        total.streaming["lat"].record(9.0)
        assert worker_a.streaming["lat"].total == 1


# ----------------------------------------------------------------------
# Profiler attribution (stable labels, phases)
# ----------------------------------------------------------------------
class _Endpoint:
    def __init__(self, name):
        self.name = name

    def poll(self):
        pass


class _Indexed:
    def __init__(self, index):
        self.index = index

    def tick(self):
        pass


class _Evil:
    @property
    def name(self):
        raise RuntimeError("instrumented property")

    def step(self):
        pass


class _Functor:
    def __call__(self):
        pass


def _free_function(argument):
    return argument


class TestCallbackAttribution:
    def test_partials_of_same_function_share_one_row(self):
        first = functools.partial(_free_function, 1)
        second = functools.partial(functools.partial(_free_function), 2)
        assert describe_callback(first) == describe_callback(second)
        assert describe_callback(first).endswith("_free_function")

    def test_labels_never_contain_addresses(self):
        callbacks = [
            functools.partial(_free_function, 1),
            _Endpoint("nic0").poll,
            _Functor(),
            lambda: None,
        ]
        for callback in callbacks:
            label = describe_callback(callback)
            assert "0x" not in label, label
            # Stable: the same callable always produces the same label.
            assert describe_callback(callback) == label

    def test_distinct_instances_get_distinct_rows(self):
        nic0, nic1 = _Endpoint("nic0"), _Endpoint("nic1")
        assert describe_callback(nic0.poll).endswith("_Endpoint.poll[nic0]")
        assert describe_callback(nic1.poll).endswith("_Endpoint.poll[nic1]")
        assert describe_callback(nic0.poll) != describe_callback(nic1.poll)

    def test_integer_index_tags(self):
        assert describe_callback(_Indexed(2).tick).endswith("[2]")
        # bool is not a usable tag (an int subclass, but it means a flag)
        assert describe_callback(_Indexed(True).tick).endswith("_Indexed.tick")

    def test_raising_property_does_not_break_profiling(self):
        label = describe_callback(_Evil().step)
        assert label.endswith("_Evil.step")

    def test_functor_falls_back_to_type_name(self):
        label = describe_callback(_Functor())
        assert label.endswith("._Functor")

    def test_phase_of_folds_closures_and_tags(self):
        key = "repro.nic.x.Sim._handle.<locals>.done[nic1]"
        assert phase_of(key) == "repro.nic.x.Sim._handle"
        assert phase_of("repro.nic.x.Sim.poll") == "repro.nic.x.Sim.poll"
        assert phase_of("repro.nic.x.Sim.poll[3]") == "repro.nic.x.Sim.poll"


class TestProfilerPhases:
    def _loaded_profiler(self):
        profiler = SimProfiler()
        nic0, nic1 = _Endpoint("nic0"), _Endpoint("nic1")
        profiler.record(nic0.poll, 0.25)
        profiler.record(nic1.poll, 0.25)
        profiler.record(functools.partial(_free_function, 0), 0.5)
        return profiler

    def test_by_phase_merges_instances(self):
        phases = self._loaded_profiler().by_phase()
        endpoint_rows = [name for name in phases if name.endswith("_Endpoint.poll")]
        assert len(endpoint_rows) == 1
        count, wall = phases[endpoint_rows[0]]
        assert count == 2
        assert wall == pytest.approx(0.5)

    def test_to_dict_shape_and_shares(self):
        report = self._loaded_profiler().to_dict()
        assert report["total_callbacks"] == 3
        assert report["total_wall_s"] == pytest.approx(1.0)
        for section in ("callbacks", "phases", "modules"):
            rows = report[section]
            assert rows, section
            # Ranked by wall time, shares sum to ~1.
            walls = [row["wall_s"] for row in rows]
            assert walls == sorted(walls, reverse=True)
            assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        assert json.dumps(report)  # JSON-safe
        # Per-instance rows survive in the flat callback table...
        callback_keys = {row["key"] for row in report["callbacks"]}
        assert any(key.endswith("[nic0]") for key in callback_keys)
        # ...but fold into one phase row.
        phase_keys = {row["key"] for row in report["phases"]}
        assert not any("[" in key for key in phase_keys)

    def test_to_dict_top_n_truncates_callbacks_only(self):
        report = self._loaded_profiler().to_dict(top_n=1)
        assert len(report["callbacks"]) == 1
        assert len(report["phases"]) >= 2
