"""Conformance subsystem: monitors, oracles, fuzz/replay, golden corpus.

Includes the mutation smoke tests: a deliberately corrupted ordering
commit scan must be caught by the runtime monitor *and* by the
software-vs-RMW differential oracle, and a disabled-monitor run must be
byte-identical to a run that never imported the subsystem (pinned by
the golden corpus digests).
"""

import dataclasses
import json
import os
import types

import pytest

from repro.check import (
    NULL_MONITOR,
    InvariantMonitor,
    InvariantViolation,
    attach_monitor,
    verify_conservation,
)
from repro.check import golden as golden_mod
from repro.check.fuzz import (
    SHRINK_TRANSFORMS,
    apply_shrinks,
    fuzz,
    replay,
    run_monitored,
    spec_for_case,
)
from repro.check.oracles import (
    run_all_oracles,
    run_fault_oracle,
    run_loopback_oracle,
    run_ordering_oracle,
)
from repro.fabric import FabricSimulator, FabricSpec
from repro.faults import FaultPlan
from repro.firmware import ordering
from repro.firmware.ordering import OrderingBoard, OrderingMode
from repro.nic import NicConfig, ThroughputSimulator
from repro.units import mhz

WARMUP_S = 0.05e-3
MEASURE_S = 0.2e-3

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden.json")


def _config(**overrides):
    return NicConfig(cores=2, core_frequency_hz=mhz(133), **overrides)


def _run_armed(simulator, warmup_s=WARMUP_S, measure_s=MEASURE_S):
    monitor = InvariantMonitor()
    attach_monitor(simulator, monitor)
    result = simulator.run(warmup_s=warmup_s, measure_s=measure_s)
    return result, monitor


# ----------------------------------------------------------------------
# Monitor unit behavior
# ----------------------------------------------------------------------
class TestMonitorUnit:
    def test_null_monitor_is_inert(self):
        assert NULL_MONITOR.enabled is False
        # Every hook is a no-op and the report is empty.
        NULL_MONITOR.event_scheduled(1, 0, 0)
        NULL_MONITOR.board_marked(None, 0)
        NULL_MONITOR.wire_injected(None, 0, 1)
        assert NULL_MONITOR.report() == {}

    def test_schedule_in_the_past_raises(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation, match="scheduled in the past"):
            monitor.event_scheduled(ticket=1, when_ps=5, now_ps=10)

    def test_ticket_reuse_raises(self):
        monitor = InvariantMonitor()
        monitor.event_scheduled(1, 10, 0)
        with pytest.raises(InvariantViolation, match="reused while still live"):
            monitor.event_scheduled(1, 20, 10)

    def test_fired_unknown_ticket_raises(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation, match="never live"):
            monitor.event_fired(99, 10, 0)

    def test_ticket_conservation(self):
        monitor = InvariantMonitor()
        monitor.event_scheduled(1, 10, 0)
        monitor.event_scheduled(2, 20, 0)
        monitor.event_fired(1, 10, 0)
        monitor.check_ticket_conservation()  # 2 == 1 fired + 1 live
        assert monitor.ok
        monitor.events_scheduled += 1  # corrupt the ledger
        with pytest.raises(InvariantViolation, match="not conserved"):
            monitor.check_ticket_conservation()

    def test_board_commit_of_unmarked_slot_raises(self):
        monitor = InvariantMonitor()
        board = OrderingBoard(32, OrderingMode.RMW, name="unit")
        board.monitor = monitor
        board.mark_done(0)
        board.commit()
        assert monitor.ok
        # Pretend commit advanced over a slot that was never marked.
        with pytest.raises(InvariantViolation, match="never marked or skipped"):
            monitor.board_committed(board, 1, 2, 1)

    def test_lock_fifo_discipline(self):
        monitor = InvariantMonitor()
        lock = types.SimpleNamespace(name="l0")
        monitor.lock_acquired(lock, request_ps=5, grant_ps=5, free_at_ps=10)
        with pytest.raises(InvariantViolation, match="max\\(request"):
            # Granted before the previous holder freed the lock.
            monitor.lock_acquired(lock, request_ps=3, grant_ps=3, free_at_ps=12)

    def test_core_double_dispatch_raises(self):
        monitor = InvariantMonitor()
        owner = object()
        monitor.core_claimed(owner, 0)
        with pytest.raises(InvariantViolation, match="already busy"):
            monitor.core_claimed(owner, 0)

    def test_non_strict_collects_instead_of_raising(self):
        monitor = InvariantMonitor(strict=False)
        monitor.event_fired(7, 10, 0)       # never live
        monitor.event_cancelled(8)          # not in the heap
        assert not monitor.ok
        assert len(monitor.violations) == 2
        assert "2 violation(s)" in monitor.summary()


# ----------------------------------------------------------------------
# Armed monitors on full runs, every simulator tier
# ----------------------------------------------------------------------
def _tier_simulators():
    software = dataclasses.replace(_config(), ordering_mode=OrderingMode.SOFTWARE)
    plan = FaultPlan(seed=3, rx_fcs_rate=0.01, sdram_error_rate=0.002)
    return {
        "throughput-rmw": lambda: ThroughputSimulator(_config(), 1472),
        "throughput-sw": lambda: ThroughputSimulator(software, 1472),
        "throughput-faulted": lambda: ThroughputSimulator(
            _config(), 1472, fault_plan=plan
        ),
        "fabric-direct": lambda: FabricSimulator(
            _config(), FabricSpec.rpc_pair(seed=1)
        ),
        "fabric-switched": lambda: FabricSimulator(
            _config(),
            dataclasses.replace(
                FabricSpec.rpc_pair(seed=2), switch=True, port_queue_frames=4
            ),
        ),
    }


class TestMonitoredRuns:
    @pytest.mark.parametrize("tier", sorted(_tier_simulators()))
    def test_armed_run_is_clean_and_conserves(self, tier):
        simulator = _tier_simulators()[tier]()
        _result, monitor = _run_armed(simulator)
        assert monitor.ok, monitor.violations
        assert monitor.total_checks() > 100
        identities = verify_conservation(simulator, monitor=monitor)
        assert identities and all(identities.values())
        assert identities["kernel.ticket_conservation"]

    def test_armed_monitor_does_not_perturb_results(self):
        bare = ThroughputSimulator(_config(), 1472).run(
            warmup_s=WARMUP_S, measure_s=MEASURE_S
        )
        armed_sim = ThroughputSimulator(_config(), 1472)
        armed, monitor = _run_armed(armed_sim)
        assert monitor.ok
        assert armed.to_dict() == bare.to_dict()

    def test_attach_null_monitor_detaches(self):
        simulator = ThroughputSimulator(_config(), 1472)
        attach_monitor(simulator, InvariantMonitor())
        attach_monitor(simulator, NULL_MONITOR)
        assert simulator.sim.monitor is NULL_MONITOR
        assert simulator.queue.monitor is NULL_MONITOR

    def test_verify_reports_instead_of_raising_when_asked(self):
        simulator = ThroughputSimulator(_config(), 1472)
        simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        simulator._rx_done_frames += 1  # corrupt the ledger post-run
        with pytest.raises(InvariantViolation):
            verify_conservation(simulator)
        checked = verify_conservation(simulator, raise_on_failure=False)
        assert checked["rx.commit_accounting"] is False


# ----------------------------------------------------------------------
# Mutation smoke tests (acceptance criteria)
# ----------------------------------------------------------------------
def _install_overadvancing_scan(monkeypatch):
    """Commit scan that claims one extra, never-marked slot."""
    original = OrderingBoard._commit_software

    def corrupted(self):
        count, cost = original(self)
        self.commit_seq += 1
        self.committed += 1
        return count + 1, cost

    monkeypatch.setattr(OrderingBoard, "_commit_software", corrupted)


def _install_lazy_scan(monkeypatch):
    """Commit scan that stops after one slot (misses contiguous runs).

    Functionally wrong but locally consistent, so only the differential
    oracle (software board falls behind its RMW twin) can see it.
    """

    def lazy(self):
        if not self.is_marked(self.commit_seq):
            return 0, ordering._SW_COMMIT_BASE
        index = self.commit_seq % self.ring_size
        word_addr = 4 * (index // 32)
        word = self._bitmap.load_word(word_addr)
        self._bitmap.store_word(word_addr, word & ~(1 << (index % 32)))
        self.commit_seq += 1
        self.committed += 1
        return 1, ordering._SW_COMMIT_BASE + ordering._SW_COMMIT_PER_FRAME

    monkeypatch.setattr(OrderingBoard, "_commit_software", lazy)


class TestMutationSmoke:
    def test_monitor_catches_overadvancing_commit_scan(self, monkeypatch):
        _install_overadvancing_scan(monkeypatch)
        config = dataclasses.replace(
            _config(), ordering_mode=OrderingMode.SOFTWARE
        )
        simulator = ThroughputSimulator(config, 1472)
        attach_monitor(simulator, InvariantMonitor())
        with pytest.raises(InvariantViolation, match="board.commit"):
            simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)

    def test_oracle_catches_overadvancing_commit_scan(self, monkeypatch):
        _install_overadvancing_scan(monkeypatch)
        with pytest.raises(InvariantViolation):
            run_ordering_oracle(seed=0)

    def test_oracle_catches_lazy_commit_scan(self, monkeypatch):
        # The monitor cannot see this one (every step is locally legal);
        # the sw-vs-rmw diff is what catches it.
        _install_lazy_scan(monkeypatch)
        report = run_ordering_oracle(seed=0)
        assert not report.ok
        assert any("state" in check.name for check in report.failures)

    def test_corrupted_scan_breaks_a_real_run_under_monitor(self, monkeypatch):
        _install_lazy_scan(monkeypatch)
        config = dataclasses.replace(
            _config(), ordering_mode=OrderingMode.SOFTWARE
        )
        simulator = ThroughputSimulator(config, 1472)
        monitor = InvariantMonitor()
        attach_monitor(simulator, monitor)
        # A lazy scan still conserves everything a single run can see:
        # this documents *why* the differential oracle must exist.
        simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        assert monitor.ok


# ----------------------------------------------------------------------
# Differential oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_ordering_oracle_passes(self):
        report = run_ordering_oracle(seed=0)
        assert report.ok, report.summary()
        assert any(check.name == "progress" for check in report.checks)

    def test_ordering_oracle_deterministic(self):
        first = run_ordering_oracle(seed=5, rounds=60)
        second = run_ordering_oracle(seed=5, rounds=60)
        assert [str(c) for c in first.checks] == [str(c) for c in second.checks]

    def test_loopback_oracle_passes(self):
        report = run_loopback_oracle(measure_s=0.4e-3)
        assert report.ok, "\n".join(str(c) for c in report.failures)

    def test_fault_oracle_passes(self):
        # Default window: long enough for the 1% FCS rate to actually
        # commit holes (the oracle's non-vacuousness check requires it).
        report = run_fault_oracle()
        assert report.ok, "\n".join(str(c) for c in report.failures)

    def test_full_battery(self):
        reports = run_all_oracles(seed=0)
        assert len(reports) == 3
        for report in reports:
            assert report.ok, report.summary()
            assert "[PASS]" in report.summary()


# ----------------------------------------------------------------------
# Seeded fuzzing with replay
# ----------------------------------------------------------------------
class TestFuzz:
    def test_sample_point_deterministic(self):
        assert spec_for_case(3, 5) == spec_for_case(3, 5)
        labels = {spec_for_case(0, index).config.label for index in range(6)}
        assert len(labels) > 1, "corpus points are not diverse"

    def test_fuzz_clean_on_healthy_code(self):
        report = fuzz(3, seed=0)
        assert report.ok and report.cases == 3
        assert report.checks > 0
        assert "PASS" in report.summary()

    def test_run_monitored_returns_identities(self):
        result, monitor, identities = run_monitored(spec_for_case(0, 2))
        assert result is not None
        assert monitor.ok
        assert identities and all(identities.values())

    def test_shrink_transforms_apply(self):
        index = next(
            i for i in range(64)
            if spec_for_case(0, i).fabric_spec is not None
            and spec_for_case(0, i).fault_plan is not None
        )
        spec = spec_for_case(0, index)
        shrunk = apply_shrinks(
            spec, ["drop_fabric", "drop_faults", "single_core"]
        )
        assert shrunk.fabric_spec is None
        assert shrunk.fault_plan is None
        assert shrunk.config.cores == 1

    def test_unknown_shrink_rejected(self):
        with pytest.raises(KeyError):
            apply_shrinks(spec_for_case(0, 0), ["no_such_transform"])
        assert "drop_fabric" in SHRINK_TRANSFORMS

    def test_seeded_failure_shrinks_and_replays(self, tmp_path, monkeypatch):
        """The acceptance loop: inject a bug, fuzz finds it, the replay
        file reproduces it deterministically, and a fixed tree replays
        clean."""
        # Seed 0 / case 0 samples a software-ordering config, so the
        # corrupted software scan fires on the very first case.
        with monkeypatch.context() as patch:
            _install_overadvancing_scan(patch)
            report = fuzz(1, seed=0, replay_dir=str(tmp_path))
            assert not report.ok and len(report.failures) == 1
            failure = report.failures[0]
            assert failure.shrinks, "failure did not shrink"
            assert "board.commit" in failure.error
            path = failure.replay_path
            assert path and os.path.exists(path)
            payload = json.loads(open(path).read())
            assert payload["seed"] == 0 and payload["index"] == 0
            assert payload["shrinks"] == failure.shrinks
            assert "described_spec" in payload

            outcome = replay(path)
            assert outcome.reproduced
            assert "board.commit" in outcome.error

        # Bug removed: the same replay file now runs clean.
        outcome = replay(path)
        assert not outcome.reproduced
        assert outcome.error is None

    def test_replay_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"version": 999, "seed": 0, "index": 0, "shrinks": []}
        ))
        with pytest.raises(ValueError, match="version"):
            replay(str(path))


# ----------------------------------------------------------------------
# Golden-trace corpus
# ----------------------------------------------------------------------
class TestGolden:
    def test_digest_stable_and_sensitive(self):
        first = ThroughputSimulator(_config(), 1472).run(
            warmup_s=WARMUP_S, measure_s=MEASURE_S
        )
        second = ThroughputSimulator(_config(), 1472).run(
            warmup_s=WARMUP_S, measure_s=MEASURE_S
        )
        other = ThroughputSimulator(_config(), 256).run(
            warmup_s=WARMUP_S, measure_s=MEASURE_S
        )
        assert golden_mod.golden_digest(first) == golden_mod.golden_digest(second)
        assert golden_mod.golden_digest(first) != golden_mod.golden_digest(other)

    def test_corpus_matches_current_code(self):
        """The pinned digests (committed at the last intended behavioural
        change) still describe the code.  A failure here means the
        simulation drifted: regenerate deliberately with
        ``repro check --update-golden`` and review the diff."""
        mismatches = golden_mod.compare_corpus(GOLDEN_PATH)
        assert mismatches == {}, (
            f"golden drift in {sorted(mismatches)} - regenerate with "
            f"`repro check --update-golden` if intended"
        )

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "golden.json")
        digests = golden_mod.write_corpus(path)
        assert set(digests) == set(golden_mod.golden_specs())
        assert golden_mod.load_corpus(path) == digests
        payload = json.loads(open(path).read())
        assert "regenerate" in payload["comment"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCheckCli:
    def test_subcommand_registered(self):
        from repro.cli import build_parser

        assert "check" in build_parser().format_help()

    def test_check_battery_passes(self, capsys):
        from repro.cli import main

        code = main([
            "check", "--fuzz", "2", "--seed", "0",
            "--golden-path", GOLDEN_PATH,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS] ordering sw-vs-rmw" in out
        assert "golden corpus matches" in out
        assert "[PASS] fuzz: 2 cases" in out

    def test_check_update_and_verify_golden(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "golden.json")
        assert main(["check", "--update-golden", "--golden-path", path]) == 0
        assert os.path.exists(path)
        code = main(["check", "--skip-oracles", "--golden-path", path])
        assert code == 0
        assert "golden corpus matches" in capsys.readouterr().out

    def test_check_missing_golden_fails(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "check", "--skip-oracles",
            "--golden-path", str(tmp_path / "absent.json"),
        ])
        assert code == 1
        assert "golden corpus missing" in capsys.readouterr().err

    def test_check_replay_cli(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        with monkeypatch.context() as patch:
            _install_overadvancing_scan(patch)
            code = main([
                "check", "--skip-oracles", "--skip-golden",
                "--fuzz", "1", "--seed", "0", "--no-shrink",
                "--replay-dir", str(tmp_path),
            ])
            assert code == 1
        replay_path = str(tmp_path / "replay-0-0.json")
        assert os.path.exists(replay_path)
        # Healthy tree: the replay no longer reproduces -> exit 0.
        assert main(["check", "--replay", replay_path]) == 0
        assert "replay" in capsys.readouterr().out.lower()
