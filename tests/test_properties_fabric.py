"""Property-based tests (hypothesis) for the fabric wire/switch model.

These drive :class:`repro.fabric.wire.FabricWire` directly against a
stub fabric (no NIC endpoints, no kernel) so hypothesis can explore
thousands of frame schedules per second.  Properties:

* conservation: ``injected == delivered + switch_tail_drops`` on every
  schedule, and direct links never drop;
* ordering: per-source FIFO on direct links (each source MAC
  serializes), per-destination-port FIFO once a switch serializes;
* the armed :class:`InvariantMonitor` agrees (its wire hooks see the
  same schedule and must stay silent).
"""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.assists.mac import WireEvent
from repro.check.monitor import InvariantMonitor
from repro.fabric.flows import FabricFrame
from repro.fabric.spec import FabricSpec
from repro.fabric.wire import FabricWire
from repro.net.ethernet import EthernetTiming


# ----------------------------------------------------------------------
# Stub fabric: records scheduling/arrival/loss instead of simulating
# ----------------------------------------------------------------------
class _StubEndpoint:
    faults = None

    def __init__(self) -> None:
        self.arrivals = []

    def rx_arrive(self, frame, available_ps):
        self.arrivals.append((frame, available_ps))


class _StubTracer:
    enabled = False


class _StubSim:
    def __init__(self) -> None:
        self.pending = []

    def schedule_at(self, when_ps, callback):
        self.pending.append(callback)


class _StubFabric:
    def __init__(self, spec) -> None:
        self.endpoints = [_StubEndpoint() for _ in range(spec.nics)]
        self.sim = _StubSim()
        self.tracer = _StubTracer()
        self.timing = EthernetTiming()
        self.lost = []

    def frame_lost(self, frame, now_ps, reason):
        self.lost.append((frame, now_ps, reason))

    def drain(self):
        # Transmits happen in global wire_start order, so executing the
        # deferred callbacks in schedule order preserves per-link and
        # per-port delivery order (what the kernel's stable heap does).
        for callback in self.pending_callbacks():
            callback()

    def pending_callbacks(self):
        drained, self.sim.pending = self.sim.pending, []
        return drained


# ----------------------------------------------------------------------
# Schedules: (spec, [(src, dst_offset, payload, gap_ps), ...])
# ----------------------------------------------------------------------
@st.composite
def _schedules(draw):
    nics = draw(st.integers(min_value=2, max_value=4))
    spec = dataclasses.replace(
        FabricSpec.rpc_pair(seed=0),
        nics=nics,
        switch=draw(st.booleans()),
        port_queue_frames=draw(st.integers(min_value=1, max_value=4)),
        propagation_delay_ps=draw(st.sampled_from([0, 100_000, 1_000_000])),
        switch_latency_ps=draw(st.sampled_from([0, 250_000])),
    )
    frames = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=nics - 1),   # src
            st.integers(min_value=1, max_value=nics - 1),   # dst offset
            st.sampled_from([18, 256, 1472]),               # udp payload
            st.integers(min_value=0, max_value=3_000_000),  # pre-frame gap
        ),
        min_size=1,
        max_size=40,
    ))
    return spec, frames


def _run_schedule(spec, frames):
    fabric = _StubFabric(spec)
    wire = FabricWire(fabric, spec)
    monitor = InvariantMonitor()
    wire.monitor = monitor

    # Each source MAC serializes its own frames back-to-back.
    clocks = [0] * spec.nics
    timed = []
    for seq, (src, offset, payload, gap) in enumerate(frames):
        dst = (src + offset) % spec.nics
        frame = FabricFrame(
            flow="prop", src=src, dst=dst, udp_payload_bytes=payload,
            kind="stream", request_id=seq, created_ps=clocks[src],
        )
        start = clocks[src] + gap
        end = start + fabric.timing.frame_time_ps(frame.frame_bytes)
        clocks[src] = end
        timed.append((start, seq, src, frame, end))
    # The kernel presents transmits in global time order.
    for start, seq, src, frame, end in sorted(timed, key=lambda t: t[:2]):
        wire.transmit(src, frame, WireEvent(
            seq=seq, wire_start_ps=start, wire_end_ps=end, sdram_done_ps=end,
        ))
    fabric.drain()
    return fabric, wire, monitor


@given(_schedules())
@settings(max_examples=80, deadline=None)
def test_wire_conservation(case):
    spec, frames = case
    fabric, wire, monitor = _run_schedule(spec, frames)
    delivered = sum(len(ep.arrivals) for ep in fabric.endpoints)
    # injected == delivered + switch_tail_drops
    assert wire.forwarded + wire.drops == len(frames)
    assert delivered == wire.forwarded
    assert len(fabric.lost) == wire.drops
    if not spec.switch:
        assert wire.drops == 0, "direct links must never drop"
    assert monitor.ok, monitor.violations
    assert monitor.checks.get("wire.inject", 0) == len(frames)


@given(_schedules())
@settings(max_examples=80, deadline=None)
def test_wire_delivery_order(case):
    spec, frames = case
    fabric, _wire, monitor = _run_schedule(spec, frames)
    for endpoint in fabric.endpoints:
        if spec.switch:
            # One output port serializes everything for this NIC: the
            # whole arrival stream is FIFO.
            times = [when for _frame, when in endpoint.arrivals]
            assert times == sorted(times)
        else:
            # Dedicated links: FIFO per source.
            per_source = {}
            for frame, when in endpoint.arrivals:
                per_source.setdefault(frame.src, []).append(when)
            for times in per_source.values():
                assert times == sorted(times)
    assert monitor.ok


def test_saturated_port_tail_drops():
    """Directed: a 1-deep port fed back-to-back from 3 sources drops."""
    spec = dataclasses.replace(
        FabricSpec.rpc_pair(seed=0), nics=4, switch=True,
        port_queue_frames=1, propagation_delay_ps=0, switch_latency_ps=0,
    )
    # Every source floods destination 0 with full frames at t=0.
    frames = [(src, (0 - src) % 4, 1472, 0) for src in (1, 2, 3) for _ in range(4)]
    fabric, wire, monitor = _run_schedule(spec, frames)
    assert wire.drops > 0
    assert wire.forwarded + wire.drops == len(frames)
    assert len(fabric.lost) == wire.drops
    # Drop reasons are reported to the flow layer.
    assert {reason for _f, _t, reason in fabric.lost} == {"switch_tail_drop"}
    assert monitor.ok


def test_empty_port_never_drops():
    """Directed: a deep port under light load forwards everything."""
    spec = dataclasses.replace(
        FabricSpec.rpc_pair(seed=0), nics=2, switch=True,
        port_queue_frames=64,
    )
    frames = [(0, 1, 1472, 5_000_000) for _ in range(10)]
    fabric, wire, monitor = _run_schedule(spec, frames)
    assert wire.drops == 0
    assert sum(len(ep.arrivals) for ep in fabric.endpoints) == len(frames)
    assert monitor.ok
