"""Event kernel: scheduling order, clock domains, cancellation."""

import pytest

from repro.sim import ClockDomain, Simulator
from repro.units import mhz


class TestClockDomain:
    def test_period(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.period_ps == 5000

    def test_cycles_to_ps(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.cycles_to_ps(3) == 15000

    def test_fractional_cycles(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.cycles_to_ps(2.5) == 12500

    def test_ps_to_cycles(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.ps_to_cycles(15000) == pytest.approx(3.0)

    def test_current_cycle(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.current_cycle(14999) == 2
        assert clock.current_cycle(15000) == 3

    def test_next_edge_on_edge(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.next_edge(10000) == 10000

    def test_next_edge_between(self):
        clock = ClockDomain("core", mhz(200))
        assert clock.next_edge(10001) == 15000

    def test_cycles_to_ps_rounds_half_up(self):
        # Regression: round() uses banker's rounding, which maps 2.5 to
        # 2 — a half-quantum that silently shortens every other odd
        # half-cycle charge.  The policy is round-half-up.
        clock = ClockDomain("core", mhz(200))  # 5000 ps period
        assert clock.cycles_to_ps(0.0005) == 3   # 2.5 ps -> 3, not 2
        assert clock.cycles_to_ps(0.0007) == 4   # 3.5 ps -> 4 (agrees)
        assert clock.cycles_to_ps(0.0004) == 2   # 2.0 ps exact


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_respects_priority(self):
        sim = Simulator()
        order = []
        sim.schedule(10, lambda: order.append("late"), priority=5)
        sim.schedule(10, lambda: order.append("early"), priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_same_time_same_priority_fifo(self):
        sim = Simulator()
        order = []
        for index in range(5):
            sim.schedule(10, lambda i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(100, lambda: times.append(sim.now_ps))
        sim.schedule(250, lambda: times.append(sim.now_ps))
        sim.run()
        assert times == [100, 250]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_from_callback(self):
        sim = Simulator()
        seen = []
        def first():
            sim.schedule(5, lambda: seen.append(sim.now_ps))
        sim.schedule(10, first)
        sim.run()
        assert seen == [15]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: sim.schedule_at(50, lambda: seen.append(sim.now_ps)))
        sim.run()
        assert seen == [50]

    def test_run_until_stops_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append(1))
        sim.schedule(100, lambda: seen.append(2))
        sim.run(until_ps=50)
        assert seen == [1]
        assert sim.now_ps == 50
        sim.run()
        assert seen == [1, 2]

    def test_cancel(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(10, lambda: seen.append("cancelled"))
        sim.schedule(20, lambda: seen.append("kept"))
        sim.cancel(event)
        sim.run()
        assert seen == ["kept"]

    def test_stop_from_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: (seen.append(1), sim.stop()))
        sim.schedule(20, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for index in range(10):
            sim.schedule(index + 1, lambda i=index: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for index in range(7):
            sim.schedule(index, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_peek_next_time(self):
        sim = Simulator()
        sim.schedule(42, lambda: None)
        assert sim.peek_next_time() == 42

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.cancel(event)
        assert sim.peek_next_time() == 20

    def test_peek_empty(self):
        assert Simulator().peek_next_time() is None

    def test_pending_events_counts_live(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_events == 2

    def test_pending_events_excludes_cancelled_ghosts(self):
        sim = Simulator()
        ghost = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.cancel(ghost)
        # The ghost is still physically queued, but must not be counted.
        assert len(sim._queue) == 2
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_pending_events_after_cancel_of_fired_event(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run(until_ps=15)
        sim.cancel(event)  # documented no-op: event already fired
        assert sim.pending_events == 1


class TestCancelAfterFire:
    """Regression: cancelling fired events must not pollute the kernel.

    A fired ticket never re-enters the heap; recording it in
    ``_cancelled`` leaked the entry forever and silently degraded
    ``pending_events`` from O(1) to O(n) for the rest of the run.
    """

    def test_cancel_after_fire_leaves_no_residue(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.run()
        sim.cancel(event)
        assert sim._cancelled == set()

    def test_cancel_after_fire_does_not_accumulate(self):
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(100)]
        sim.run()
        for event in events:
            sim.cancel(event)
        assert sim._cancelled == set()
        # pending_events stays on the O(1) fast path (no ghosts).
        sim.schedule(5, lambda: None)
        assert sim.pending_events == 1

    def test_cancel_twice_then_pop_leaves_no_residue(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.cancel(event)
        sim.cancel(event)  # idempotent while still queued
        sim.run()
        assert sim._cancelled == set()
        # Cancelling again after the ghost was popped is a no-op too.
        sim.cancel(event)
        assert sim._cancelled == set()

    def test_cancel_after_peek_pops_ghost(self):
        sim = Simulator()
        ghost = sim.schedule(10, lambda: None)
        sim.cancel(ghost)
        assert sim.peek_next_time() is None
        sim.cancel(ghost)  # ghost already physically removed
        assert sim._cancelled == set()

    def test_live_set_tracks_heap(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        keep = sim.schedule(20, lambda: None)
        assert len(sim._live) == 2
        sim.run(until_ps=15)
        assert sim._live == {keep.ticket}
        sim.run()
        assert sim._live == set()


class TestRunUntilClamping:
    """Regression: ``run(until_ps < now_ps)`` must not rewind time."""

    def test_until_in_past_does_not_move_time_backwards(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        assert sim.now_ps == 100
        sim.schedule(50, lambda: None)  # pending at 150
        processed = sim.run(until_ps=40)
        assert processed == 0
        assert sim.now_ps == 100  # clamped, not rewound to 40

    def test_until_in_past_with_empty_queue(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        sim.run(until_ps=10)  # drained-queue path already guarded
        assert sim.now_ps == 100

    def test_until_between_now_and_head_still_advances(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(100, lambda: None)
        sim.run(until_ps=50)
        assert sim.now_ps == 50
        sim.run(until_ps=60)
        assert sim.now_ps == 60


class TestProfilerHook:
    def test_profiler_records_every_callback(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def record(self, callback, wall_s):
                self.calls.append((callback, wall_s))

        sim = Simulator()
        recorder = Recorder()
        sim.attach_profiler(recorder)
        for index in range(5):
            sim.schedule(index, lambda: None)
        sim.run()
        assert len(recorder.calls) == 5
        assert all(wall >= 0 for _cb, wall in recorder.calls)

    def test_detach_profiler(self):
        class Recorder:
            def __init__(self):
                self.calls = 0

            def record(self, callback, wall_s):
                self.calls += 1

        sim = Simulator()
        recorder = Recorder()
        sim.attach_profiler(recorder)
        sim.schedule(0, lambda: None)
        sim.run()
        sim.attach_profiler(None)
        sim.schedule(0, lambda: None)
        sim.run()
        assert recorder.calls == 1


class TestClocks:
    def test_add_clock_registers(self):
        sim = Simulator()
        clock = sim.add_clock("core", mhz(166))
        assert sim.clocks["core"] is clock

    def test_add_clock_idempotent(self):
        sim = Simulator()
        first = sim.add_clock("core", mhz(166))
        second = sim.add_clock("core", mhz(166))
        assert first is second

    def test_add_clock_conflict_raises(self):
        sim = Simulator()
        sim.add_clock("core", mhz(166))
        with pytest.raises(ValueError):
            sim.add_clock("core", mhz(200))

    def test_schedule_cycles(self):
        sim = Simulator()
        clock = sim.add_clock("core", mhz(200))
        seen = []
        sim.schedule_cycles(clock, 4, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [20000]

    def test_multi_clock_interleaving(self):
        sim = Simulator()
        core = sim.add_clock("core", mhz(200))    # 5000 ps
        sdram = sim.add_clock("sdram", mhz(500))  # 2000 ps
        order = []
        sim.schedule_cycles(core, 1, lambda: order.append("core"))
        sim.schedule_cycles(sdram, 2, lambda: order.append("sdram"))
        sim.run()
        assert order == ["sdram", "core"]  # 4000 ps before 5000 ps


class TestDelayNormalization:
    """Regression: float delays used to flow into the heap unchecked,
    splitting the integer-ps timeline into float timestamps."""

    def test_whole_float_delay_normalizes_to_int(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [5]
        assert type(seen[0]) is int

    def test_fractional_float_delay_raises(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.schedule(5.5, lambda: None)

    def test_fractional_absolute_time_raises(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.schedule_at(10.25, lambda: None)

    def test_integer_like_types_accepted(self):
        numpy = pytest.importorskip("numpy")
        sim = Simulator()
        seen = []
        sim.schedule(numpy.int64(7), lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [7]
        assert type(sim.now_ps) is int

    def test_bool_and_junk_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.schedule("10", lambda: None)


class TestGhostCompaction:
    """``pending_events`` is O(1) and mass cancellation physically
    shrinks the heap instead of leaving ghost entries behind."""

    def test_pending_events_is_live_count(self):
        sim = Simulator()
        events = [sim.schedule(k + 1, lambda: None) for k in range(200)]
        for event in events[:150]:
            sim.cancel(event)
        assert sim.pending_events == 50

    def test_mass_cancel_compacts_the_heap(self):
        sim = Simulator()
        events = [sim.schedule(k + 1, lambda: None) for k in range(200)]
        for event in events[:150]:
            sim.cancel(event)
        # Compaction is amortized (it runs when ghosts outnumber half
        # the heap), so at least one sweep must have fired by now.
        assert len(sim._queue) < 150
        assert len(sim._cancelled) < 64
        seen = []
        sim.schedule(500, lambda: seen.append(sim.now_ps))
        sim.run()
        assert sim.events_processed == 51
        assert seen == [500]

    def test_compaction_under_monitor_conserves_tickets(self):
        from repro.check.monitor import InvariantMonitor

        sim = Simulator()
        sim.monitor = InvariantMonitor()
        events = [sim.schedule(k + 1, lambda: None) for k in range(200)]
        for event in events[::2]:
            sim.cancel(event)
        sim.run()
        sim.monitor.check_ticket_conservation()
        assert not sim.monitor.violations


class TestKernelEdgeCases:
    def test_max_events_and_until_interleave(self):
        sim = Simulator()
        seen = []
        for index in range(10):
            sim.schedule(10 * (index + 1), lambda i=index: seen.append(i))
        # Budget binds first...
        assert sim.run(until_ps=85, max_events=3) == 3
        assert seen == [0, 1, 2]
        assert sim.now_ps == 30
        # ...then the horizon binds, clamping the clock between events.
        assert sim.run(until_ps=85, max_events=50) == 5
        assert seen == [0, 1, 2, 3, 4, 5, 6, 7]
        assert sim.now_ps == 85
        sim.run()
        assert seen == list(range(10))

    def test_schedule_at_exactly_now_fires_this_run(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule_at(sim.now_ps, lambda: seen.append("same-instant"))
            seen.append("first")

        sim.schedule(10, first)
        sim.run()
        assert seen == ["first", "same-instant"]
        assert sim.now_ps == 10

    def test_cancel_then_reschedule_with_monitor(self):
        from repro.check.monitor import InvariantMonitor

        sim = Simulator()
        sim.monitor = InvariantMonitor()
        seen = []
        event = sim.schedule(10, lambda: seen.append("old"))
        sim.cancel(event)
        sim.schedule(10, lambda: seen.append("new"))
        sim.run()
        sim.monitor.check_ticket_conservation()
        assert not sim.monitor.violations
        assert seen == ["new"]
