"""The one-shot evaluation report."""

import pytest

from repro.analysis.full_report import generate_full_report

# Regenerating the whole evaluation takes seconds even in fast mode:
# excluded from tier-1 (`-m "not slow"`), always run in CI (`-m ""`).
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def report():
    return generate_full_report(fast=True)


class TestFullReport:
    def test_contains_every_section(self, report):
        for section in (
            "Headline",
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
            "Figure 3", "Figure 7", "Figure 8",
        ):
            assert section in report

    def test_reports_paper_reference_values(self, report):
        for reference in ("435", "4.8", "39.5", "51.5", "30.8", "2.2 M/s"):
            assert reference in report

    def test_mentions_both_configurations(self, report):
        assert "software-only 6x200 MHz" in report
        assert "RMW-enhanced 6x166 MHz" in report

    def test_plain_text(self, report):
        assert isinstance(report, str)
        assert len(report.splitlines()) > 60
