"""The paper's atomic setb/update instructions, at word-semantics and
ISA level."""

import pytest

from repro.isa import Machine, MultiCoreMachine, assemble
from repro.isa.machine import Memory, apply_setb, apply_update


class TestApplySetb:
    def test_sets_single_bit(self):
        memory = Memory(64)
        apply_setb(memory, 0, 5)
        assert memory.load_word(0) == 1 << 5

    def test_bit_in_second_word(self):
        memory = Memory(64)
        apply_setb(memory, 0, 37)
        assert memory.load_word(0) == 0
        assert memory.load_word(4) == 1 << 5

    def test_base_offset(self):
        memory = Memory(64)
        apply_setb(memory, 16, 0)
        assert memory.load_word(16) == 1

    def test_idempotent(self):
        memory = Memory(64)
        apply_setb(memory, 0, 3)
        apply_setb(memory, 0, 3)
        assert memory.load_word(0) == 1 << 3

    def test_preserves_other_bits(self):
        memory = Memory(64)
        memory.store_word(0, 0xF0)
        apply_setb(memory, 0, 0)
        assert memory.load_word(0) == 0xF1

    def test_negative_index_rejected(self):
        from repro.isa.machine import MachineError
        with pytest.raises(MachineError):
            apply_setb(Memory(64), 0, -1)


class TestApplyUpdate:
    def test_empty_returns_last(self):
        memory = Memory(64)
        assert apply_update(memory, 0, -1) == -1

    def test_consecutive_run_cleared(self):
        memory = Memory(64)
        for index in (0, 1, 2):
            apply_setb(memory, 0, index)
        result = apply_update(memory, 0, -1)
        assert result == 2
        assert memory.load_word(0) == 0

    def test_stops_at_gap(self):
        memory = Memory(64)
        for index in (0, 1, 3):
            apply_setb(memory, 0, index)
        result = apply_update(memory, 0, -1)
        assert result == 1
        assert memory.load_word(0) == 1 << 3  # bit 3 untouched

    def test_gap_at_start_no_progress(self):
        memory = Memory(64)
        apply_setb(memory, 0, 2)
        assert apply_update(memory, 0, -1) == -1
        assert memory.load_word(0) == 1 << 2

    def test_resumes_from_last(self):
        memory = Memory(64)
        for index in range(6):
            apply_setb(memory, 0, index)
        assert apply_update(memory, 0, 2) == 5

    def test_examines_at_most_one_word(self):
        # Bits 30..35 set; starting after 29 must stop at the word
        # boundary (bit 31), leaving 32..35 for the next call.
        memory = Memory(64)
        for index in range(30, 36):
            apply_setb(memory, 0, index)
        first = apply_update(memory, 0, 29)
        assert first == 31
        second = apply_update(memory, 0, first)
        assert second == 35
        assert memory.load_word(0) == 0
        assert memory.load_word(4) == 0

    def test_word_aligned_start(self):
        memory = Memory(64)
        for index in range(32, 34):
            apply_setb(memory, 0, index)
        assert apply_update(memory, 0, 31) == 33


class TestIsaLevel:
    def test_update_loop_commits_across_words(self):
        source = """
        .data
        bitmap: .word 0, 0, 0
        .text
        main:
            la $t0, bitmap
            li $t8, 0
            li $t9, 40          # mark bits 0..39
        mark:
            setb $t0, $t8
            addiu $t9, $t9, -1
            bgtz $t9, mark
            addiu $t8, $t8, 1
            li $t3, -1
        harvest:
            update $t4, $t0, $t3
            subu $t5, $t4, $t3
            bgtz $t5, harvest
            move $t3, $t4
            move $v0, $t3
            halt
        """
        machine = Machine(assemble(source))
        machine.run()
        assert machine.register_by_name("v0") == 39
        base = machine.program.address_of("bitmap")
        assert machine.memory.load_word(base) == 0
        assert machine.memory.load_word(base + 4) == 0

    def test_setb_atomic_under_interleaving(self):
        # Two cores set disjoint bits of the same word with `setb`;
        # no update is lost regardless of the interleaving.  (The same
        # pattern with lw/or/sw races.)
        source = """
        .data
        bitmap: .word 0
        .text
        core0:
            la $t0, bitmap
            li $s0, 0
            li $s1, 16
        l0: setb $t0, $s0
            addiu $s0, $s0, 2   # even bits 0..30
            blt $s0, $s1, l0
            nop
            halt
        core1:
            la $t0, bitmap
            li $s0, 1
            li $s1, 17
        l1: setb $t0, $s0
            addiu $s0, $s0, 2   # odd bits 1..31
            blt $s0, $s1, l1
            nop
            halt
        """
        # blt expands to slt+branch; $s1 bound of 16/17 covers bits 0..15.
        program = assemble(source)
        system = MultiCoreMachine(program, core_count=2, entries=["core0", "core1"])
        system.run()
        word = system.memory.load_word(program.address_of("bitmap"))
        assert word == 0xFFFF

    def test_rmw_instruction_counts_tracked(self):
        source = """
        .data
        bitmap: .word 0
        .text
        main:
            la $t0, bitmap
            li $t1, 0
            setb $t0, $t1
            li $t2, -1
            update $v0, $t0, $t2
            halt
        """
        machine = Machine(assemble(source))
        machine.run()
        assert machine.rmw_ops == 2
