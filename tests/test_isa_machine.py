"""Functional interpreter: ALU semantics, memory, control flow, ll/sc."""

import pytest

from repro.isa import Machine, MachineError, Memory, MultiCoreMachine, assemble


def run(source: str) -> Machine:
    machine = Machine(assemble(source))
    machine.run()
    return machine


class TestAlu:
    def test_addu_wraps(self):
        m = run("li $t0, -1\nli $t1, 2\naddu $v0, $t0, $t1\nhalt")
        assert m.register_by_name("v0") == 1

    def test_subu(self):
        m = run("li $t0, 5\nli $t1, 7\nsubu $v0, $t0, $t1\nhalt")
        assert m.register_by_name("v0") == 0xFFFFFFFE

    def test_logic_ops(self):
        m = run(
            """
            li $t0, 0xF0F0
            li $t1, 0x0FF0
            and $v0, $t0, $t1
            or  $v1, $t0, $t1
            xor $a0, $t0, $t1
            nor $a1, $t0, $t1
            halt
            """
        )
        assert m.register_by_name("v0") == 0x00F0
        assert m.register_by_name("v1") == 0xFFF0
        assert m.register_by_name("a0") == 0xFF00
        assert m.register_by_name("a1") == 0xFFFF000F

    def test_slt_signed(self):
        m = run("li $t0, -1\nli $t1, 1\nslt $v0, $t0, $t1\nsltu $v1, $t0, $t1\nhalt")
        assert m.register_by_name("v0") == 1   # -1 < 1 signed
        assert m.register_by_name("v1") == 0   # 0xFFFFFFFF > 1 unsigned

    def test_slti(self):
        m = run("li $t0, -3\nslti $v0, $t0, -2\nsltiu $v1, $t0, -2\nhalt")
        assert m.register_by_name("v0") == 1

    def test_shifts(self):
        m = run(
            """
            li $t0, 0x80000000
            srl $v0, $t0, 4
            sra $v1, $t0, 4
            li $t1, 1
            sll $a0, $t1, 31
            halt
            """
        )
        assert m.register_by_name("v0") == 0x08000000
        assert m.register_by_name("v1") == 0xF8000000
        assert m.register_by_name("a0") == 0x80000000

    def test_variable_shifts(self):
        m = run("li $t0, 3\nli $t1, 1\nsllv $v0, $t0, $t1\nhalt")
        assert m.register_by_name("v0") == 8

    def test_lui(self):
        m = run("lui $v0, 0x1234\nhalt")
        assert m.register_by_name("v0") == 0x12340000

    def test_mul(self):
        m = run("li $t0, -3\nli $t1, 7\nmul $v0, $t0, $t1\nhalt")
        assert m.register_by_name("v0") == (-21) & 0xFFFFFFFF

    def test_register_zero_never_written(self):
        m = run("li $zero, 99\nhalt")
        assert m.read_register(0) == 0


class TestMemoryOps:
    def test_word_roundtrip(self):
        m = run(
            """
            .data
            buf: .space 8
            .text
            la $t0, buf
            li $t1, 0xDEAD
            sw $t1, 4($t0)
            lw $v0, 4($t0)
            halt
            """
        )
        assert m.register_by_name("v0") == 0xDEAD

    def test_byte_sign_extension(self):
        m = run(
            """
            .data
            b: .byte 0x80
            .text
            la $t0, b
            lb $v0, 0($t0)
            lbu $v1, 0($t0)
            halt
            """
        )
        assert m.register_by_name("v0") == 0xFFFFFF80
        assert m.register_by_name("v1") == 0x80

    def test_half_sign_extension(self):
        m = run(
            """
            .data
            .align 1
            h: .half 0x8001
            .text
            la $t0, h
            lh $v0, 0($t0)
            lhu $v1, 0($t0)
            halt
            """
        )
        assert m.register_by_name("v0") == 0xFFFF8001
        assert m.register_by_name("v1") == 0x8001

    def test_unaligned_word_faults(self):
        memory = Memory(1024)
        with pytest.raises(MachineError):
            memory.load_word(2)

    def test_out_of_bounds_faults(self):
        memory = Memory(1024)
        with pytest.raises(MachineError):
            memory.load_word(1024)

    def test_counters(self):
        m = run(
            """
            .data
            buf: .space 4
            .text
            la $t0, buf
            sw $0, 0($t0)
            lw $v0, 0($t0)
            halt
            """
        )
        assert m.loads == 1
        assert m.stores == 1


class TestControlFlow:
    def test_delay_slot_always_executes(self):
        m = run(
            """
            li $v0, 0
            beq $0, $0, skip
            addiu $v0, $v0, 1    # delay slot: must run
            addiu $v0, $v0, 100  # skipped
        skip:
            halt
            """
        )
        assert m.register_by_name("v0") == 1

    def test_not_taken_branch_falls_through(self):
        m = run(
            """
            li $t0, 1
            beqz $t0, skip
            nop
            li $v0, 42
        skip:
            halt
            """
        )
        assert m.register_by_name("v0") == 42

    def test_loop_countdown(self):
        m = run(
            """
            li $t0, 5
            li $v0, 0
        loop:
            addiu $v0, $v0, 2
            addiu $t0, $t0, -1
            bgtz $t0, loop
            nop
            halt
            """
        )
        assert m.register_by_name("v0") == 10

    def test_jal_jr_roundtrip(self):
        m = run(
            """
            jal func
            nop
            li $v1, 7
            halt
        func:
            li $v0, 3
            jr $ra
            nop
            """
        )
        assert m.register_by_name("v0") == 3
        assert m.register_by_name("v1") == 7

    def test_jal_return_address_past_delay_slot(self):
        m = run(
            """
            jal func
            nop
            halt
        func:
            move $v0, $ra
            jr $ra
            nop
            """
        )
        assert m.register_by_name("v0") == 8  # jal at 0, delay at 4, return to 8

    def test_branch_counters(self):
        m = run(
            """
            li $t0, 2
        loop:
            addiu $t0, $t0, -1
            bgtz $t0, loop
            nop
            halt
            """
        )
        assert m.branches == 2
        assert m.taken_branches == 1

    def test_bltz_bgez(self):
        m = run(
            """
            li $t0, -1
            li $v0, 0
            bltz $t0, neg
            nop
            b done
            nop
        neg:
            li $v0, 1
        done:
            halt
            """
        )
        assert m.register_by_name("v0") == 1

    def test_run_guard_against_infinite_loops(self):
        program = assemble("loop: b loop\nnop")
        machine = Machine(program)
        with pytest.raises(MachineError):
            machine.run(max_instructions=100)


class TestLlSc:
    def test_uncontended_sc_succeeds(self):
        m = run(
            """
            .data
            lock: .word 0
            .text
            la $t0, lock
            ll $t1, 0($t0)
            li $t1, 1
            sc $t1, 0($t0)
            move $v0, $t1
            halt
            """
        )
        assert m.register_by_name("v0") == 1

    def test_sc_fails_after_intervening_store(self):
        program = assemble(
            """
            .data
            lock: .word 0
            .text
            la $t0, lock
            ll $t1, 0($t0)
            sw $0, 0($t0)       # our own store kills the reservation
            li $t1, 1
            sc $t1, 0($t0)
            move $v0, $t1
            halt
            """
        )
        machine = Machine(program)
        machine.run()
        assert machine.register_by_name("v0") == 0

    def test_cross_core_invalidation(self):
        memory = Memory(1024)
        memory.load_linked(0, 16)
        memory.store_word(16, 5)  # any store to the word
        assert not memory.store_conditional(0, 16, 7)

    def test_sc_wrong_address_fails(self):
        memory = Memory(1024)
        memory.load_linked(0, 16)
        assert not memory.store_conditional(0, 20, 7)


class TestMultiCore:
    def test_shared_memory_visible(self):
        program = assemble(
            """
            .data
            flag: .word 0
            .text
        main:
            la $t0, flag
            li $t1, 1
            sw $t1, 0($t0)
            halt
            """
        )
        system = MultiCoreMachine(program, core_count=2)
        system.run()
        address = program.address_of("flag")
        assert system.memory.load_word(address) == 1

    def test_entries_per_core(self):
        program = assemble(
            """
            .data
            out: .word 0, 0
            .text
        core0:
            la $t0, out
            li $t1, 10
            sw $t1, 0($t0)
            halt
        core1:
            la $t0, out
            li $t1, 20
            sw $t1, 4($t0)
            halt
            """
        )
        system = MultiCoreMachine(program, core_count=2, entries=["core0", "core1"])
        system.run()
        base = program.address_of("out")
        assert system.memory.load_word(base) == 10
        assert system.memory.load_word(base + 4) == 20

    def test_spinlock_mutual_exclusion(self):
        # Two cores increment a shared counter 50 times each under an
        # ll/sc spinlock; the total must be exactly 100.
        program = assemble(
            """
            .data
            lock:    .word 0
            counter: .word 0
            .text
        main:
            li $s0, 50
        again:
            la $t0, lock
        spin:
            ll $t1, 0($t0)
            bnez $t1, spin
            nop
            li $t1, 1
            sc $t1, 0($t0)
            beqz $t1, spin
            nop
            la $t2, counter
            lw $t3, 0($t2)
            addiu $t3, $t3, 1
            sw $t3, 0($t2)
            sw $zero, 0($t0)
            addiu $s0, $s0, -1
            bgtz $s0, again
            nop
            halt
            """
        )
        system = MultiCoreMachine(program, core_count=2)
        system.run()
        assert system.memory.load_word(program.address_of("counter")) == 100

    def test_needs_at_least_one_core(self):
        program = assemble("halt")
        with pytest.raises(ValueError):
            MultiCoreMachine(program, core_count=0)
