"""Micro-tier NIC: real firmware kernels on the cycle-level system."""

import pytest

from repro.firmware.kernels import assemble_firmware
from repro.nic import MicroNic, NicConfig
from repro.units import mhz


@pytest.fixture(scope="module")
def result():
    config = NicConfig(cores=4, core_frequency_hz=mhz(166))
    nic = MicroNic(config, assemble_firmware("order_rmw", iterations=1))
    stats = nic.run()
    return config, nic, stats


class TestMicroNic:
    def test_all_cores_run_to_halt(self, result):
        _config, nic, stats = result
        assert len(stats) == 4
        assert all(s.instructions > 500 for s in stats)

    def test_shared_scratchpad_sees_all_accesses(self, result):
        _config, nic, _stats = result
        assert nic.scratchpad_accesses > 0

    def test_combined_stats_aggregate(self, result):
        _config, nic, stats = result
        combined = nic.combined_stats()
        assert combined.instructions == sum(s.instructions for s in stats)
        assert combined.cycles == sum(s.cycles for s in stats)

    def test_multicore_contention_visible(self):
        def conflicts(cores):
            config = NicConfig(cores=cores, core_frequency_hz=mhz(166),
                               scratchpad_banks=1)
            nic = MicroNic(config, assemble_firmware("order_rmw", iterations=1))
            nic.run()
            return nic.combined_stats().conflict_stalls / max(
                1, nic.combined_stats().instructions
            )
        assert conflicts(4) > conflicts(1)

    def test_entry_count_validation(self):
        config = NicConfig(cores=2, core_frequency_hz=mhz(166))
        with pytest.raises(ValueError):
            MicroNic(config, assemble_firmware(), entries=["main"])

    def test_ipc_in_plausible_band(self, result):
        _config, nic, _stats = result
        ipc = nic.combined_stats().ipc
        assert 0.4 < ipc < 1.0


class TestCrossTierValidation:
    """The macro-tier cost model and the micro tier must broadly agree
    on the cycle cost of the same instruction stream."""

    def test_cost_model_within_25_percent_of_pipeline(self):
        from repro.cpu.costmodel import CoreCostModel, OpProfile
        config = NicConfig(cores=1, core_frequency_hz=mhz(166))
        nic = MicroNic(config, assemble_firmware("order_sw", iterations=2))
        stats = nic.run()[0]

        machine = nic.cores[0].machine
        profile = OpProfile(
            instructions=stats.instructions,
            loads=machine.loads,
            stores=machine.stores,
            taken_branch_fraction=machine.taken_branches / stats.instructions,
            load_use_fraction=0.5,
        )
        model = CoreCostModel()
        predicted = model.cycles(profile, conflict_wait_per_access=0.0)
        assert predicted == pytest.approx(stats.cycles, rel=0.25)
