"""Memory-mapped assists + end-to-end receive firmware (micro tier)."""

import pytest

from repro.firmware.micro import (
    assemble_micro_receive,
    micro_receive_firmware,
    run_micro_receive,
)
from repro.isa.machine import MachineError
from repro.nic.microdev import (
    DEVICE_BASE,
    DMA_CMD_ADDR,
    DMA_PROD_ADDR,
    RX_CONS_ADDR,
    RX_PROD_ADDR,
    DeviceMemory,
)


class TestDeviceMemory:
    def test_rx_producer_follows_time(self):
        device = DeviceMemory(total_rx_frames=10, rx_interarrival_cycles=100)
        device.cycle = 0
        assert device.load_word(RX_PROD_ADDR) == 0
        device.cycle = 250
        assert device.load_word(RX_PROD_ADDR) == 2
        device.cycle = 10_000
        assert device.load_word(RX_PROD_ADDR) == 10  # capped at total

    def test_dma_completion_latency(self):
        device = DeviceMemory(dma_latency_cycles=40)
        device.cycle = 100
        device.store_word(DMA_CMD_ADDR, 0)
        device.cycle = 139
        assert device.load_word(DMA_PROD_ADDR) == 0
        device.cycle = 140
        assert device.load_word(DMA_PROD_ADDR) == 1

    def test_dma_pipelines(self):
        device = DeviceMemory(dma_latency_cycles=40)
        device.cycle = 100
        for _ in range(5):
            device.store_word(DMA_CMD_ADDR, 0)
        device.cycle = 140
        assert device.load_word(DMA_PROD_ADDR) == 5

    def test_cmd_readback_is_issue_count(self):
        device = DeviceMemory()
        device.store_word(DMA_CMD_ADDR, 7)
        device.store_word(DMA_CMD_ADDR, 9)
        assert device.load_word(DMA_CMD_ADDR) == 2

    def test_consumer_pointers_are_plain_storage(self):
        device = DeviceMemory()
        device.store_word(RX_CONS_ADDR, 17)
        assert device.load_word(RX_CONS_ADDR) == 17

    def test_read_only_registers(self):
        device = DeviceMemory()
        with pytest.raises(MachineError):
            device.store_word(RX_PROD_ADDR, 1)
        with pytest.raises(MachineError):
            device.store_word(DMA_PROD_ADDR, 1)

    def test_unmapped_register(self):
        device = DeviceMemory()
        with pytest.raises(MachineError):
            device.load_word(DEVICE_BASE + 0x30)

    def test_normal_memory_unaffected(self):
        device = DeviceMemory()
        device.store_word(0x1000, 0xABCD)
        assert device.load_word(0x1000) == 0xABCD

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceMemory(total_rx_frames=-1)
        with pytest.raises(ValueError):
            DeviceMemory(rx_interarrival_cycles=0)


class TestMicroReceiveFirmware:
    def test_source_assembles(self):
        program = assemble_micro_receive(64)
        mnemonics = {ins.mnemonic for ins in program.instructions}
        assert "setb" in mnemonics
        assert "update" in mnemonics
        assert "ll" in mnemonics and "sc" in mnemonics

    def test_frame_count_validation(self):
        with pytest.raises(ValueError):
            micro_receive_firmware(0)

    @pytest.mark.parametrize("cores", [1, 2, 4, 6])
    def test_all_frames_committed_in_order(self, cores):
        result = run_micro_receive(cores=cores, total_frames=64)
        assert result.completed_in_order
        assert result.dma_commands == 64

    def test_multicore_speedup(self):
        one = run_micro_receive(cores=1, total_frames=64)
        four = run_micro_receive(cores=4, total_frames=64)
        assert four.total_cycles < 0.5 * one.total_cycles

    def test_speedup_saturates_at_hardware_limits(self):
        """With fast arrivals the bottleneck becomes the DMA latency and
        claim serialization, not core count."""
        four = run_micro_receive(cores=4, total_frames=64,
                                 rx_interarrival_cycles=5)
        eight = run_micro_receive(cores=8, total_frames=64,
                                  rx_interarrival_cycles=5)
        assert eight.total_cycles > 0.5 * four.total_cycles

    def test_arrival_rate_bounds_completion(self):
        """The run can never finish before the last frame arrives."""
        result = run_micro_receive(cores=6, total_frames=32,
                                   rx_interarrival_cycles=50)
        assert result.total_cycles >= 32 * 50

    def test_dma_latency_visible_single_core(self):
        fast = run_micro_receive(cores=1, total_frames=16, dma_latency_cycles=5)
        slow = run_micro_receive(cores=1, total_frames=16, dma_latency_cycles=200)
        assert slow.total_cycles > fast.total_cycles + 15 * 150

    def test_non_divisible_frame_count(self):
        result = run_micro_receive(cores=3, total_frames=50)
        assert result.completed_in_order


class TestMicroDuplex:
    def test_both_directions_complete_in_order(self):
        from repro.firmware.micro import run_micro_duplex
        result = run_micro_duplex(cores=4, tx_frames=32, rx_frames=32)
        assert result.completed_in_order

    def test_more_cores_faster(self):
        from repro.firmware.micro import run_micro_duplex
        two = run_micro_duplex(cores=2, tx_frames=32, rx_frames=32)
        six = run_micro_duplex(cores=6, tx_frames=32, rx_frames=32)
        assert six.total_cycles < 0.7 * two.total_cycles

    def test_wire_serialization_floor(self):
        """The MAC serializes the transmit wire: completion can never
        beat tx_frames x wire_cycles."""
        from repro.firmware.micro import run_micro_duplex
        result = run_micro_duplex(cores=6, tx_frames=32, rx_frames=4,
                                  wire_cycles=60)
        assert result.total_cycles >= 32 * 60

    def test_asymmetric_traffic(self):
        from repro.firmware.micro import run_micro_duplex
        result = run_micro_duplex(cores=4, tx_frames=48, rx_frames=16)
        assert result.completed_in_order

    def test_needs_two_cores(self):
        import pytest as _pytest
        from repro.firmware.micro import run_micro_duplex
        with _pytest.raises(ValueError):
            run_micro_duplex(cores=1)

    def test_firmware_validation(self):
        import pytest as _pytest
        from repro.firmware.micro import micro_duplex_firmware
        with _pytest.raises(ValueError):
            micro_duplex_firmware(0, 8)


class TestTxDeviceRegisters:
    def test_txbd_fetch_capped_at_two_outstanding(self):
        from repro.nic.microdev import DeviceMemory, TXBD_CMD_ADDR, TXBD_PROD_ADDR
        device = DeviceMemory(total_tx_frames=64, dma_latency_cycles=40)
        device.cycle = 0
        for _ in range(10):
            device.store_word(TXBD_CMD_ADDR, 0)
        device.cycle = 40
        assert device.load_word(TXBD_PROD_ADDR) == 32  # only 2 accepted

    def test_txbd_never_fetches_past_traffic(self):
        from repro.nic.microdev import DeviceMemory, TXBD_CMD_ADDR, TXBD_PROD_ADDR
        device = DeviceMemory(total_tx_frames=20, dma_latency_cycles=1)
        for round_index in range(10):
            device.cycle = round_index * 10
            device.store_word(TXBD_CMD_ADDR, 0)
        device.cycle = 1000
        assert device.load_word(TXBD_PROD_ADDR) == 20

    def test_tx_ready_releases_wire_in_order(self):
        from repro.nic.microdev import (
            DeviceMemory, TX_READY_ADDR, TX_DONE_ADDR,
        )
        device = DeviceMemory(total_tx_frames=8, tx_wire_cycles=30)
        device.cycle = 100
        device.store_word(TX_READY_ADDR, 3)
        device.cycle = 129
        assert device.load_word(TX_DONE_ADDR) == 0
        device.cycle = 130
        assert device.load_word(TX_DONE_ADDR) == 1
        device.cycle = 190
        assert device.load_word(TX_DONE_ADDR) == 3

    def test_stale_ready_publish_ignored(self):
        from repro.nic.microdev import DeviceMemory, TX_READY_ADDR
        device = DeviceMemory(total_tx_frames=8)
        device.store_word(TX_READY_ADDR, 4)
        device.store_word(TX_READY_ADDR, 2)  # racing core with old value
        assert device._tx_ready == 4

    def test_ready_capped_at_traffic(self):
        from repro.nic.microdev import DeviceMemory, TX_READY_ADDR
        device = DeviceMemory(total_tx_frames=8)
        device.store_word(TX_READY_ADDR, 100)
        assert device._tx_ready == 8


class TestMicroOrderingVariants:
    def test_sw_ordering_also_correct(self):
        from repro.firmware.micro import run_micro_receive
        result = run_micro_receive(cores=4, total_frames=64, ordering="sw")
        assert result.completed_in_order

    def test_rmw_fewer_instructions(self):
        from repro.firmware.micro import run_micro_receive
        kwargs = dict(cores=1, total_frames=64,
                      rx_interarrival_cycles=5, dma_latency_cycles=20)
        sw = run_micro_receive(ordering="sw", **kwargs)
        rmw = run_micro_receive(ordering="rmw", **kwargs)
        assert rmw.total_instructions < 0.7 * sw.total_instructions

    def test_rmw_scales_where_locks_do_not(self):
        """At 4 cores the ordering lock serializes the software variant
        (cores burn instructions spinning); the RMW variant keeps
        scaling — the paper's firmware story at full ISA fidelity."""
        from repro.firmware.micro import run_micro_receive
        kwargs = dict(cores=4, total_frames=64,
                      rx_interarrival_cycles=5, dma_latency_cycles=20)
        sw = run_micro_receive(ordering="sw", **kwargs)
        rmw = run_micro_receive(ordering="rmw", **kwargs)
        assert rmw.total_cycles < 0.6 * sw.total_cycles
        assert sw.total_instructions > 2 * rmw.total_instructions  # spin waste

    def test_invalid_ordering_rejected(self):
        import pytest as _pytest
        from repro.firmware.micro import micro_receive_firmware
        with _pytest.raises(ValueError):
            micro_receive_firmware(16, ordering="maybe")


class TestHeaderFilterService:
    """The Section 8 'intrusion detection'-style service at ISA level."""

    def test_matches_counted_exactly(self):
        from repro.firmware.micro import run_micro_filter
        from repro.nic.microdev import header_word
        blocklist = tuple(header_word(seq) for seq in (0, 10, 20, 30))
        result = run_micro_filter(cores=4, total_frames=48, blocklist=blocklist)
        assert result.correct
        assert result.matches == 4

    def test_no_matches_when_blocklist_misses(self):
        from repro.firmware.micro import run_micro_filter
        result = run_micro_filter(cores=2, total_frames=32,
                                  blocklist=(0xDEADBEEF,))
        assert result.correct
        assert result.matches == 0

    def test_filtering_still_commits_in_order(self):
        from repro.firmware.micro import run_micro_filter
        result = run_micro_filter(cores=6, total_frames=64)
        assert result.committed == 64

    def test_service_costs_instructions(self):
        from repro.firmware.micro import run_micro_filter, run_micro_receive
        plain = run_micro_receive(cores=1, total_frames=32)
        filtered = run_micro_filter(cores=1, total_frames=32)
        assert filtered.total_instructions > plain.total_instructions + 32 * 5

    def test_race_free_under_many_cores(self):
        """The seqlock on the shared header-select register must never
        miscount, whatever the interleaving."""
        from repro.firmware.micro import run_micro_filter
        from repro.nic.microdev import header_word
        blocklist = tuple(header_word(seq) for seq in range(0, 64, 4))[:8]
        for cores in (2, 4, 8):
            result = run_micro_filter(cores=cores, total_frames=64,
                                      blocklist=blocklist,
                                      rx_interarrival_cycles=5)
            assert result.correct, cores

    def test_blocklist_validation(self):
        import pytest as _pytest
        from repro.firmware.micro import micro_filter_firmware
        with _pytest.raises(ValueError):
            micro_filter_firmware(16, ())
        with _pytest.raises(ValueError):
            micro_filter_firmware(0, (1,))


class TestHeaderWindow:
    def test_header_word_deterministic(self):
        from repro.nic.microdev import header_word
        assert header_word(5) == header_word(5)
        assert header_word(5) != header_word(6)

    def test_select_and_read(self):
        from repro.nic.microdev import (
            DeviceMemory, HDR_SEL_ADDR, HDR_VAL_ADDR, header_word,
        )
        device = DeviceMemory()
        device.store_word(HDR_SEL_ADDR, 9)
        assert device.load_word(HDR_VAL_ADDR) == header_word(9)
        assert device.load_word(HDR_SEL_ADDR) == 9

    def test_value_register_read_only(self):
        from repro.isa.machine import MachineError
        from repro.nic.microdev import DeviceMemory, HDR_VAL_ADDR
        with pytest.raises(MachineError):
            DeviceMemory().store_word(HDR_VAL_ADDR, 1)
