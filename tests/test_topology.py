"""Composed-topology fabric: spec validation, routing, hop timing,
end-to-end conservation, and the absent-config contract (ISSUE 10).
"""

import dataclasses
import json

import pytest

from repro.assists.mac import WireEvent
from repro.check.golden import golden_digest, _run_fabric_topology
from repro.check.monitor import InvariantMonitor
from repro.check.verify import attach_monitor, verify_conservation
from repro.exp.spec import describe
from repro.exp.sweep import Sweep
from repro.fabric import (
    FabricSimulator,
    FabricSpec,
    FlowTable,
    RpcFlowSpec,
    StreamFlowSpec,
    TopologyRouter,
    TopologySpec,
    ecmp_hash,
)
from repro.fabric.flows import FabricFrame
from repro.fabric.scale import ScaleFabric
from repro.fabric.wire import FabricWire
from repro.net.ethernet import EthernetTiming
from repro.nic.config import NicConfig
from repro.obs import NULL_TRACER
from repro.sim.kernel import Simulator
from repro.units import mhz


def _config():
    return NicConfig(cores=2, core_frequency_hz=mhz(133))


# ----------------------------------------------------------------------
# TopologySpec factories and validation
# ----------------------------------------------------------------------
class TestTopologySpec:
    def test_leaf_spine_shape(self):
        topo = TopologySpec.leaf_spine(racks=3, hosts_per_rack=4, spines=2)
        assert topo.switches == ("leaf0", "leaf1", "leaf2", "spine0", "spine1")
        assert topo.endpoints() == tuple(range(12))
        assert topo.switch_of(5) == "leaf1"
        # Full leaf x spine mesh.
        assert len(topo.switch_links) == 6
        assert set(topo.adjacency()["leaf0"]) == {"spine0", "spine1"}

    def test_fat_tree_shape(self):
        topo = TopologySpec.fat_tree(k=4)
        # k=4: 4 pods x (2 edge + 2 agg) + 4 cores, (k/2)^2 hosts/pod.
        assert len(topo.switches) == 20
        assert len(topo.endpoints()) == 16
        assert topo.switch_of(0) == "edge0_0"

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValueError, match="even"):
            TopologySpec.fat_tree(k=3)

    def test_rejects_host_link_to_unknown_switch(self):
        with pytest.raises(ValueError, match="unknown switch"):
            TopologySpec(switches=("s0",), host_links=((0, "nope"),))

    def test_rejects_duplicate_endpoint_attachment(self):
        with pytest.raises(ValueError, match="attached twice"):
            TopologySpec(
                switches=("s0", "s1"),
                host_links=((0, "s0"), (0, "s1")),
                switch_links=(("s0", "s1"),),
            )

    def test_rejects_switch_link_to_unknown_switch(self):
        with pytest.raises(ValueError, match="unknown switch"):
            TopologySpec(
                switches=("s0",),
                host_links=((0, "s0"),),
                switch_links=(("s0", "ghost"),),
            )

    def test_rejects_self_and_duplicate_links(self):
        with pytest.raises(ValueError, match="itself"):
            TopologySpec(
                switches=("s0",), host_links=((0, "s0"),),
                switch_links=(("s0", "s0"),),
            )
        with pytest.raises(ValueError, match="duplicate"):
            TopologySpec(
                switches=("s0", "s1"), host_links=((0, "s0"),),
                switch_links=(("s0", "s1"), ("s1", "s0")),
            )

    def test_rejects_disconnected_graph(self):
        with pytest.raises(ValueError, match="unreachable"):
            TopologySpec(
                switches=("s0", "s1"),
                host_links=((0, "s0"), (1, "s1")),
            )

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError, match="shard"):
            TopologySpec.leaf_spine(flow_shards=0)


class TestFabricSpecTopology:
    """Regression: FabricSpec must reject inconsistent topologies."""

    def test_requires_switch_mode(self):
        with pytest.raises(ValueError, match="switch=True"):
            FabricSpec(
                nics=4, switch=False,
                topology=TopologySpec.leaf_spine(),
                stream_flows=(StreamFlowSpec(src=0, dst=3, name="s"),),
            )

    def test_rejects_unknown_endpoint_reference(self):
        # Topology attaches endpoint 3, but the fabric only has 3 NICs.
        with pytest.raises(ValueError, match="outside the 3-NIC fabric"):
            FabricSpec(
                nics=3, switch=True,
                topology=TopologySpec.leaf_spine(racks=2, hosts_per_rack=2),
                stream_flows=(StreamFlowSpec(src=0, dst=2, name="s"),),
            )

    def test_rejects_unattached_endpoints(self):
        with pytest.raises(ValueError, match="unattached"):
            FabricSpec(
                nics=5, switch=True,
                topology=TopologySpec.leaf_spine(racks=2, hosts_per_rack=2),
                stream_flows=(StreamFlowSpec(src=0, dst=4, name="s"),),
            )


# ----------------------------------------------------------------------
# Absent-config contract
# ----------------------------------------------------------------------
class TestDescribeContract:
    def test_legacy_describe_has_no_topology_key(self):
        legacy = dataclasses.replace(
            FabricSpec.rpc_pair(seed=3), switch=True, port_queue_frames=4
        )
        assert "topology" not in describe(legacy)

    def test_topology_spec_describes_and_hashes(self):
        topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=2, spines=2)
        spec = FabricSpec(
            nics=4, switch=True, topology=topo,
            stream_flows=(StreamFlowSpec(src=0, dst=3, name="s"),),
        )
        desc = describe(spec)
        assert desc["topology"]["__type__"] == "TopologySpec"
        # Different topologies must hash to different cache keys.
        other = dataclasses.replace(
            spec, topology=TopologySpec.leaf_spine(
                racks=2, hosts_per_rack=2, spines=3
            )
        )
        assert json.dumps(desc, sort_keys=True, default=str) != json.dumps(
            describe(other), sort_keys=True, default=str
        )


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouter:
    def test_route_is_deterministic_and_memoized(self):
        topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=2, spines=4)
        router = TopologyRouter(topo)
        first = router.route("flowA", 0, 3)
        assert first == router.route("flowA", 0, 3)
        fresh = TopologyRouter(topo)
        assert first == fresh.route("flowA", 0, 3)

    def test_intra_rack_route_stays_on_the_leaf(self):
        topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=2, spines=4)
        router = TopologyRouter(topo)
        assert router.route("f", 0, 1) == ("leaf0",)
        assert router.route_ports("f", 0, 1) == ("leaf0->h1",)

    def test_cross_rack_route_and_ports(self):
        topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=2, spines=2)
        router = TopologyRouter(topo)
        path = router.route("f", 0, 3)
        assert path[0] == "leaf0" and path[-1] == "leaf1"
        assert path[1] in ("spine0", "spine1")
        ports = router.route_ports("f", 0, 3)
        assert ports == (
            f"leaf0->{path[1]}", f"{path[1]}->leaf1", "leaf1->h3",
        )
        assert router.hop_bound() == 3

    def test_ecmp_hash_is_stable(self):
        a = ecmp_hash(17, "f0", 0, 3)
        assert a == ecmp_hash(17, "f0", 0, 3)
        assert a != ecmp_hash(18, "f0", 0, 3)
        assert a != ecmp_hash(17, "f0", 0, 3, index=1)


# ----------------------------------------------------------------------
# Multi-hop latency oracle (the wire_end_ps reuse bugfix)
# ----------------------------------------------------------------------
class _SinkEndpoint:
    faults = None

    def __init__(self):
        self.arrivals = []

    def rx_arrive(self, frame, available_ps):
        self.arrivals.append((frame.request_id, available_ps))


class _KernelFabric:
    """Stub fabric on a *real* kernel, so multi-hop chains execute in
    time order exactly as in the full simulator."""

    def __init__(self, spec):
        self.spec = spec
        self.sim = Simulator()
        self.timing = EthernetTiming()
        self.tracer = NULL_TRACER
        self.endpoints = [_SinkEndpoint() for _ in range(spec.nics)]
        self.lost = []

    def frame_lost(self, frame, now_ps, reason):
        self.lost.append((frame.request_id, now_ps, reason))


def test_two_hop_latency_matches_hand_computed_oracle():
    """Per-hop timing: each traversed link re-serializes the frame and
    adds its own propagation; the source MAC's wire_end stamp is used
    for the *first* switch arrival only.  Regression for the multi-hop
    single-stamp reuse bug."""
    topo = TopologySpec(
        switches=("s0", "s1"),
        host_links=((0, "s0"), (1, "s1")),
        switch_links=(("s0", "s1"),),
    )
    prop, lat = 1_000_000, 500_000
    spec = FabricSpec(
        nics=2, switch=True, topology=topo,
        propagation_delay_ps=prop, switch_latency_ps=lat,
        stream_flows=(StreamFlowSpec(src=0, dst=1, name="s"),),
    )
    fabric = _KernelFabric(spec)
    wire = FabricWire(fabric, spec)
    frame = FabricFrame(
        flow="s", src=0, dst=1, udp_payload_bytes=1472,
        kind="stream", request_id=0, created_ps=0,
    )
    tf = fabric.timing.frame_time_ps(frame.frame_bytes)
    wire.transmit(0, frame, WireEvent(
        seq=0, wire_start_ps=0, wire_end_ps=tf, sdram_done_ps=tf,
    ))
    fabric.sim.run()
    assert not fabric.lost
    [(request_id, available_ps)] = fabric.endpoints[1].arrivals
    # Hop 1 (s0): frame fully in at tf + prop, forwarding decision at
    # +lat, re-serialized over [A1+lat, A1+lat+tf].
    a1 = tf + prop
    out1_end = a1 + lat + tf
    # Hop 2 (s1): arrives a full serialization later — NOT at the
    # source MAC's wire_end + prop.
    a2 = out1_end + prop
    out2_start = a2 + lat
    # Destination MAC re-serializes from the first bit off s1's port.
    oracle = out2_start + prop
    assert available_ps == oracle
    # The buggy single-stamp arithmetic would deliver one serialization
    # earlier; make the distinction explicit.
    assert oracle - (a1 + lat + prop + lat + prop) == tf


# ----------------------------------------------------------------------
# End-to-end: monitor, verify, reports, byte-identity
# ----------------------------------------------------------------------
def _incast_spec(qos=None):
    topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=2, spines=2)
    kwargs = {}
    flows = []
    for src in range(3):
        flows.append(StreamFlowSpec(
            src=src, dst=3, offered_fraction=0.4, name=f"s{src}",
            qos_class="best-effort" if qos is not None else "",
        ))
    if qos is not None:
        kwargs["qos"] = qos
    return FabricSpec(
        nics=4, switch=True, seed=7, topology=topo, port_queue_frames=16,
        stream_flows=tuple(flows), **kwargs,
    )


class TestEndToEnd:
    def test_incast_runs_clean_under_armed_monitor(self):
        simulator = FabricSimulator(
            _config(), _incast_spec(), estimator="exact"
        )
        monitor = InvariantMonitor(strict=True)
        attach_monitor(simulator, monitor)
        result = simulator.run(warmup_s=0.1e-3, measure_s=0.3e-3)
        verify_conservation(simulator, monitor)
        assert not monitor.violations
        report = result.topology
        assert report is not None
        # Per-link conservation in the measured window.
        for link, counts in report["per_link"].items():
            assert counts["entered"] >= counts["forwarded"] + counts["dropped"]
        assert report["hop_bound"] == 3
        assert report["flow_table"]["flows"] == 3
        assert sum(report["flow_table"]["shard_sizes"]) == 3

    def test_qos_composes_per_hop(self):
        from repro.qos import QosSpec

        qos = dataclasses.replace(QosSpec.mixed_criticality(), seed=5)
        simulator = FabricSimulator(
            _config(), _incast_spec(qos=qos), estimator="exact"
        )
        monitor = InvariantMonitor(strict=True)
        attach_monitor(simulator, monitor)
        result = simulator.run(warmup_s=0.1e-3, measure_s=0.3e-3)
        verify_conservation(simulator, monitor)
        assert result.qos is not None and result.topology is not None
        # QoS ports are keyed by link name in topology mode.
        assert all(
            "->" in port.index for port in simulator.wire.qos_ports()
        )

    def test_result_dict_omits_topology_when_absent(self):
        legacy = dataclasses.replace(
            FabricSpec.rpc_pair(seed=3), switch=True, port_queue_frames=4
        )
        result = FabricSimulator(_config(), legacy, estimator="exact").run(
            warmup_s=0.1e-3, measure_s=0.2e-3
        )
        assert "topology" not in result.to_dict()

    def test_golden_topology_run_fast_is_byte_identical(self):
        assert golden_digest(_run_fabric_topology()) == golden_digest(
            _run_fabric_topology(fast=True)
        )


# ----------------------------------------------------------------------
# FlowTable
# ----------------------------------------------------------------------
class TestFlowTable:
    def test_record_and_lookup(self):
        table = FlowTable(shards=4, seed=1)
        table.record_delivery("a", 0, 1, 12.5, 100)
        table.record_delivery("a", 0, 1, 13.5, 100)
        table.record_loss("b", 2, 3)
        assert len(table) == 2
        assert table.get("a", 0, 1).delivered == 2
        assert table.get("b", 2, 3).lost == 1
        assert table.delivered == 2 and table.lost == 1
        assert sum(table.shard_sizes()) == 2

    def test_shard_placement_follows_ecmp_hash(self):
        table = FlowTable(shards=8, seed=9)
        assert table.shard_of("f", 0, 1) == ecmp_hash(9, "f", 0, 1) % 8

    def test_summary_window_deltas(self):
        table = FlowTable(shards=2, seed=0)
        table.record_delivery("a", 0, 1, 10.0, 64)
        snap = table.window_snapshot()
        table.record_delivery("a", 0, 1, 11.0, 64)
        summary = table.summary(snap)
        assert summary["delivered"] == 1
        assert summary["payload_bytes"] == 64
        assert summary["flows"] == 1


# ----------------------------------------------------------------------
# Sweep + scale harness smoke
# ----------------------------------------------------------------------
class TestTopologyGrid:
    def test_points_replace_topology_only(self):
        base = _incast_spec()
        sweep = Sweep.topology_grid(
            "spines", base, spine_counts=[1, 2, 4],
            racks=2, hosts_per_rack=2,
        )
        assert [s.label for s in sweep] == [
            "spines=1", "spines=2", "spines=4"
        ]
        for point in sweep:
            assert point.fabric_spec.stream_flows == base.stream_flows
        spines = {len(p.fabric_spec.topology.switches) for p in sweep}
        assert spines == {3, 4, 6}


def test_scale_harness_smoke_conserves_frames():
    topo = TopologySpec.leaf_spine(racks=2, hosts_per_rack=4, spines=2)
    fab = ScaleFabric(topo)
    report = fab.run(flows=500)
    assert report["posted"] == 500
    assert report["posted"] == report["delivered"] + report["lost"]
    assert report["flows"] == 500
    for entered, forwarded, dropped in report["link_counts"].values():
        assert entered == forwarded + dropped
    # Determinism: an identical run reproduces every counter.
    again = ScaleFabric(topo).run(flows=500)
    assert again == report
