"""Firmware debugger: breakpoints, watchpoints, inspection."""

import pytest

from repro.isa import assemble
from repro.isa.debugger import Debugger

SOURCE = """
        .data
counter: .word 0
        .text
main:
        li $t0, 3
        la $t1, counter
loop:
        lw $t2, 0($t1)
        addiu $t2, $t2, 1
        sw $t2, 0($t1)
        addiu $t0, $t0, -1
        bgtz $t0, loop
        nop
done:
        halt
"""


def make() -> Debugger:
    return Debugger(assemble(SOURCE))


class TestBreakpoints:
    def test_break_at_label(self):
        debugger = make()
        debugger.add_breakpoint("done")
        reason = debugger.run()
        assert reason.kind == "breakpoint"
        assert reason.pc == debugger.program.address_of("done")
        # The loop body ran three times before reaching done.
        counter = debugger.program.address_of("counter")
        assert debugger.machine.memory.load_word(counter) == 3

    def test_break_midloop_hits_each_iteration(self):
        debugger = make()
        debugger.add_breakpoint("loop")
        hits = 0
        while debugger.run().kind == "breakpoint":
            hits += 1
        assert hits == 3

    def test_remove_breakpoint(self):
        debugger = make()
        debugger.add_breakpoint("done")
        debugger.remove_breakpoint("done")
        assert debugger.run().kind == "halted"

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            make().add_breakpoint(2)

    def test_breakpoints_listed(self):
        debugger = make()
        debugger.add_breakpoint("loop")
        debugger.add_breakpoint("done")
        assert len(debugger.breakpoints) == 2


class TestWatchpoints:
    def test_fires_on_store(self):
        debugger = make()
        debugger.add_watchpoint("counter")
        reason = debugger.run()
        assert reason.kind == "watchpoint"
        assert "0x0 -> 0x1" in reason.detail

    def test_fires_once_per_change(self):
        debugger = make()
        debugger.add_watchpoint("counter")
        changes = 0
        while debugger.run().kind == "watchpoint":
            changes += 1
        assert changes == 3


class TestExecution:
    def test_run_to_halt(self):
        debugger = make()
        assert debugger.run().kind == "halted"

    def test_step_limit(self):
        debugger = Debugger(assemble("loop: b loop\nnop"))
        assert debugger.run(max_steps=50).kind == "step-limit"

    def test_step_returns_none_midstream(self):
        debugger = make()
        assert debugger.step() is None

    def test_stepping_after_halt_reports_halted(self):
        debugger = make()
        debugger.run()
        assert debugger.step().kind == "halted"

    def test_history_records_disassembly(self):
        debugger = make()
        debugger.run()
        assert any("addiu" in text for _pc, text in debugger.history)


class TestInspection:
    def test_register_dump(self):
        debugger = make()
        debugger.run()
        dump = debugger.dump_registers()
        assert "$t2" in dump

    def test_memory_dump(self):
        debugger = make()
        debugger.run()
        dump = debugger.dump_memory("counter", words=1)
        assert "0x00000003" in dump

    def test_where_shows_label_offset(self):
        debugger = make()
        debugger.add_breakpoint("loop")
        debugger.run()
        assert debugger.where().startswith("loop+0x0:")

    def test_where_after_halt(self):
        debugger = make()
        debugger.run()
        assert "<halted>" in debugger.where()
