"""Seed-stability matrix: same seed, byte-identical results, every tier.

One parametrized test replaces the per-PR "run it twice and diff"
smokes that used to be copy-pasted alongside each new subsystem
(throughput, faults, fabric): the canonical runs are the golden
corpus's own specs (:func:`repro.check.golden.golden_specs`), so the
matrix and the pinned digests can never drift apart.  A sweep-engine
tier checks that the cache serves byte-identical results too.
"""

import pytest

from repro.check.golden import golden_digest, golden_specs


@pytest.mark.parametrize("tier", sorted(golden_specs()))
def test_repeat_runs_byte_identical(tier):
    runner = golden_specs()[tier]
    first, second = runner(), runner()
    assert first.to_dict() == second.to_dict()
    assert golden_digest(first) == golden_digest(second)


def test_fresh_simulator_state_does_not_leak(tier_order=("fabric-rpc", "throughput-rmw")):
    """Interleaving tiers does not change either tier's digest."""
    specs = golden_specs()
    lone = {tier: golden_digest(specs[tier]()) for tier in tier_order}
    interleaved = {}
    for tier in tier_order:
        interleaved[tier] = golden_digest(specs[tier]())
    assert interleaved == lone


def test_sweep_cache_serves_byte_identical_results(tmp_path):
    from repro.exp import Sweep, SweepRunner

    def outcome():
        sweep = Sweep.grid(
            "stability", core_counts=[1, 2], frequencies_mhz=[133],
            warmup_s=0.05e-3, measure_s=0.2e-3,
        )
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path), progress=None)
        return sweep.run(runner)

    first = outcome()
    second = outcome()          # entirely cache-served
    assert second.cache_hits == len(second)
    assert [r.to_dict() for r in first.results] == [
        r.to_dict() for r in second.results
    ]
    assert [golden_digest(r) for r in first.results] == [
        golden_digest(r) for r in second.results
    ]
