"""Hardware assists: PCI latency model, DMA engines, MAC timing."""

import pytest

from repro.assists import DmaAssist, MacReceiver, MacTransmitter, PciInterface
from repro.mem import GddrSdram
from repro.net.ethernet import EthernetTiming
from repro.sim import Simulator
from repro.units import mhz, seconds_to_ps


def _rig():
    sim = Simulator()
    sdram_clock = sim.add_clock("sdram", mhz(500))
    sdram = GddrSdram()
    pci = PciInterface(dma_latency_ps=seconds_to_ps(1.2e-6))
    return sim, sdram_clock, sdram, pci


class TestPciInterface:
    def test_latency_only(self):
        pci = PciInterface(dma_latency_ps=1000)
        assert pci.host_phase(500, 1518) == 1500

    def test_unlimited_pipelining_by_default(self):
        pci = PciInterface(dma_latency_ps=1000)
        first = pci.host_phase(0, 1518)
        second = pci.host_phase(0, 1518)
        assert first == second == 1000

    def test_optional_bandwidth_cap_serializes(self):
        pci = PciInterface(dma_latency_ps=0, bandwidth_bps=8e9)  # 1 GB/s
        first = pci.host_phase(0, 1000)   # 1 us
        second = pci.host_phase(0, 1000)
        assert second == first + first

    def test_stats(self):
        pci = PciInterface(dma_latency_ps=10)
        pci.host_phase(0, 100)
        pci.host_phase(0, 50)
        assert pci.transfers == 2
        assert pci.bytes_moved == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            PciInterface(dma_latency_ps=-1)
        with pytest.raises(ValueError):
            PciInterface().host_phase(0, 0)


class TestDmaAssist:
    def test_read_completion_after_host_and_sdram(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        completions = []
        dma.frame_transfer(0, 0x10000002, 0, 1518, completions.append)
        sim.run()
        assert len(completions) == 1
        # at least the host latency plus the ~100-cycle (200 ns) burst
        assert completions[0] >= pci.dma_latency_ps

    def test_write_goes_sdram_then_host(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("wr", sim, pci, sdram, clock, to_nic=False)
        completions = []
        dma.frame_transfer(0, 0x30000002, 4096, 1518, completions.append)
        sim.run()
        assert completions[0] >= pci.dma_latency_ps
        assert sdram.requests == 1

    def test_misaligned_host_buffer_pads_sdram(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        dma.frame_transfer(0, 0x10000003, 0, 1518, lambda _t: None)
        sim.run()
        assert sdram.transferred_bytes > sdram.useful_bytes

    def test_bursts_serialize_through_staging(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        done = []
        for index in range(4):
            dma.frame_transfer(0, 0x10000000, index * 2048, 1518, done.append)
        sim.run()
        assert len(done) == 4
        assert done == sorted(done)
        # four ~1520 B bursts at 16 B/cycle: at least 95 cycles apart
        deltas = [b - a for a, b in zip(done[:-1], done[1:])]
        assert all(delta >= 95 * clock.period_ps for delta in deltas)

    def test_descriptor_transfer_skips_sdram(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        transfer = dma.descriptor_transfer(0, 512)
        assert transfer.complete_ps == pci.dma_latency_ps
        assert not transfer.touched_sdram
        assert sdram.requests == 0

    def test_zero_bytes_rejected(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        with pytest.raises(ValueError):
            dma.frame_transfer(0, 0, 0, 0, lambda _t: None)

    def test_scratchpad_access_tracking(self):
        sim, clock, sdram, pci = _rig()
        dma = DmaAssist("rd", sim, pci, sdram, clock, to_nic=True)
        dma.note_scratchpad_accesses(9)
        assert dma.scratchpad_accesses == 9


class TestMacTransmitter:
    def test_wire_time_includes_preamble_and_ifg(self):
        sim, clock, sdram, pci = _rig()
        mac = MacTransmitter(sdram, clock)
        event = mac.transmit(0, 0, 0, 1518)
        wire = event.wire_end_ps - event.wire_start_ps
        assert wire == EthernetTiming().frame_time_ps(1518)

    def test_back_to_back_frames_serialize_on_wire(self):
        sim, clock, sdram, pci = _rig()
        mac = MacTransmitter(sdram, clock)
        first = mac.transmit(0, 0, 0, 1518)
        second = mac.transmit(0, 1, 2048, 1518)
        assert second.wire_start_ps >= first.wire_end_ps

    def test_sdram_read_precedes_wire(self):
        sim, clock, sdram, pci = _rig()
        mac = MacTransmitter(sdram, clock)
        event = mac.transmit(0, 0, 0, 1518)
        assert event.wire_start_ps >= event.sdram_done_ps

    def test_counters(self):
        sim, clock, sdram, pci = _rig()
        mac = MacTransmitter(sdram, clock)
        mac.transmit(0, 0, 0, 1518)
        assert mac.frames_sent == 1
        assert mac.bytes_sent == 1518


class TestMacReceiver:
    def _receiver(self, fraction=1.0):
        sim, clock, sdram, pci = _rig()
        timing = EthernetTiming()
        gap = round(timing.frame_time_ps(1518) / fraction)
        return MacReceiver(sdram, clock, interarrival_ps=gap), sdram

    def test_arrivals_periodic(self):
        mac, _ = self._receiver()
        first = mac.next_arrival_ps()
        mac.take_frame(first, 1518)
        second = mac.next_arrival_ps()
        assert second - first == mac.interarrival_ps

    def test_cannot_take_early(self):
        mac, _ = self._receiver()
        mac.take_frame(0, 1518)
        with pytest.raises(ValueError):
            mac.take_frame(0, 1518)  # next frame hasn't arrived

    def test_store_consumes_sdram(self):
        mac, sdram = self._receiver()
        event = mac.take_frame(0, 1518)
        done = mac.store(event.wire_end_ps, 0, 1518)
        assert sdram.requests == 1
        assert done > event.wire_end_ps

    def test_skip_backlog_drops_expired_slots(self):
        mac, _ = self._receiver()
        now = 10 * mac.interarrival_ps
        dropped = mac.skip_backlog(now)
        assert dropped == 9  # the 10th frame is still receivable

    def test_offered_frames_window(self):
        mac, _ = self._receiver()
        count = mac.offered_frames(0, 10 * mac.interarrival_ps)
        assert count == 10

    def test_validation(self):
        sim, clock, sdram, pci = _rig()
        with pytest.raises(ValueError):
            MacReceiver(sdram, clock, interarrival_ps=0)
