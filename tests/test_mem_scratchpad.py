"""Banked scratchpad + crossbar timing."""

import pytest

from repro.mem import Crossbar, Scratchpad
from repro.mem.crossbar import TOTAL_ACCESS_LATENCY
from repro.units import mhz


class TestCrossbar:
    def test_grant_immediately_when_free(self):
        xbar = Crossbar(4)
        assert xbar.request(0, requester=1, cycle=10) == 10

    def test_same_cycle_conflict_serializes(self):
        xbar = Crossbar(4)
        assert xbar.request(2, requester=0, cycle=5) == 5
        assert xbar.request(2, requester=1, cycle=5) == 6
        assert xbar.conflict_cycles == 1

    def test_different_banks_no_conflict(self):
        xbar = Crossbar(4)
        assert xbar.request(0, requester=0, cycle=5) == 5
        assert xbar.request(1, requester=1, cycle=5) == 5

    def test_completion_latency(self):
        xbar = Crossbar(4)
        grant = xbar.request(0, 0, 0)
        assert xbar.completion_cycle(grant) == TOTAL_ACCESS_LATENCY

    def test_bad_resource(self):
        with pytest.raises(ValueError):
            Crossbar(2).request(5, 0, 0)

    def test_negative_cycle(self):
        with pytest.raises(ValueError):
            Crossbar(2).request(0, 0, -1)

    def test_needs_resources(self):
        with pytest.raises(ValueError):
            Crossbar(0)

    def test_busy_until(self):
        xbar = Crossbar(2)
        xbar.request(0, 0, 3)
        assert xbar.busy_until(0) == 4


class TestScratchpadAddressing:
    def test_word_interleaving(self):
        pad = Scratchpad(banks=4)
        assert pad.bank_of(0) == 0
        assert pad.bank_of(4) == 1
        assert pad.bank_of(8) == 2
        assert pad.bank_of(12) == 3
        assert pad.bank_of(16) == 0

    def test_base_address_window(self):
        pad = Scratchpad(banks=2, capacity_bytes=1024, base_address=0x1000)
        assert pad.bank_of(0x1000) == 0
        with pytest.raises(ValueError):
            pad.bank_of(0x0FFC)
        with pytest.raises(ValueError):
            pad.bank_of(0x1400)

    def test_capacity_must_divide(self):
        with pytest.raises(ValueError):
            Scratchpad(banks=3, capacity_bytes=1000)


class TestScratchpadTiming:
    def test_minimum_two_cycle_latency(self):
        pad = Scratchpad(banks=4)
        access = pad.access(0, requester=0, cycle=100)
        assert access.latency == 2
        assert access.conflict_wait == 0

    def test_bank_conflict_waits(self):
        pad = Scratchpad(banks=4)
        first = pad.access(0, requester=0, cycle=100)
        second = pad.access(16, requester=1, cycle=100)  # same bank 0
        assert first.conflict_wait == 0
        assert second.conflict_wait == 1
        assert second.latency == 3

    def test_parallel_banks_no_wait(self):
        pad = Scratchpad(banks=4)
        for word in range(4):
            access = pad.access(word * 4, requester=word, cycle=50)
            assert access.conflict_wait == 0

    def test_conflict_accounting(self):
        pad = Scratchpad(banks=1)
        for _ in range(3):
            pad.access(0, 0, 10)
        assert pad.accesses == 3
        assert pad.conflict_cycles == 0 + 1 + 2


class TestScratchpadData:
    def test_store_load_roundtrip(self):
        pad = Scratchpad(banks=4)
        pad.store_word(64, 0xCAFE)
        assert pad.load_word(64) == 0xCAFE

    def test_rmw_setb_update(self):
        pad = Scratchpad(banks=4)
        pad.setb(0, 0)
        pad.setb(0, 1)
        assert pad.update(0, -1) == 1
        assert pad.load_word(0) == 0
        assert pad.rmw_ops == 3

    def test_out_of_window_rejected(self):
        pad = Scratchpad(banks=4, capacity_bytes=1024)
        with pytest.raises(ValueError):
            pad.load_word(2048)


class TestScratchpadBandwidth:
    def test_peak_bandwidth(self):
        pad = Scratchpad(banks=4)
        # 4 banks x 32 bits x 200 MHz = 25.6 Gb/s
        assert pad.peak_bandwidth_bps(mhz(200)) == pytest.approx(25.6e9)

    def test_consumed_bandwidth(self):
        pad = Scratchpad(banks=4)
        for word in range(100):
            pad.access((word * 4) % pad.capacity_bytes, 0, word)
        consumed = pad.consumed_bandwidth_bps(mhz(200), cycles=100)
        assert consumed == pytest.approx(100 * 32 * mhz(200) / 100)

    def test_consumed_zero_cycles(self):
        assert Scratchpad(banks=2).consumed_bandwidth_bps(mhz(200), 0) == 0.0

    def test_paper_scratchpad_sizing(self):
        # Section 2.3: a single 200 MHz 32-bit port gives 6.4 Gb/s,
        # "slightly more than the required 4.8 Gb/s".
        pad = Scratchpad(banks=1)
        assert pad.peak_bandwidth_bps(mhz(200)) == pytest.approx(6.4e9)
