"""Host side: descriptor rings, driver, memory layout."""

import pytest

from repro.host import BufferDescriptor, DescriptorRing, DriverModel, HostMemoryLayout
from repro.host.descriptors import FLAG_HEADER_REGION


class TestBufferDescriptor:
    def test_flags(self):
        header = BufferDescriptor(address=0x1000, length=42, flags=FLAG_HEADER_REGION)
        assert header.is_header and not header.is_end_of_frame

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferDescriptor(address=-1, length=10)
        with pytest.raises(ValueError):
            BufferDescriptor(address=0, length=0)


class TestDescriptorRing:
    def test_fifo_order(self):
        ring = DescriptorRing(4)
        for index in range(3):
            ring.push(BufferDescriptor(address=0x1000 + index, length=1, cookie=index))
        cookies = [ring.pop().cookie for _ in range(3)]
        assert cookies == [0, 1, 2]

    def test_full_rejects(self):
        ring = DescriptorRing(2)
        ring.push(BufferDescriptor(address=1, length=1))
        ring.push(BufferDescriptor(address=2, length=1))
        assert ring.is_full
        with pytest.raises(OverflowError):
            ring.push(BufferDescriptor(address=3, length=1))

    def test_empty_pop_rejects(self):
        with pytest.raises(IndexError):
            DescriptorRing(2).pop()

    def test_wraparound(self):
        ring = DescriptorRing(2)
        for round_index in range(10):
            ring.push(BufferDescriptor(address=round_index + 1, length=1, cookie=round_index))
            assert ring.pop().cookie == round_index

    def test_push_many_atomic(self):
        ring = DescriptorRing(3)
        ring.push(BufferDescriptor(address=1, length=1))
        batch = [BufferDescriptor(address=i + 2, length=1) for i in range(3)]
        with pytest.raises(OverflowError):
            ring.push_many(batch)
        assert len(ring) == 1  # nothing partially pushed

    def test_pop_many(self):
        ring = DescriptorRing(8)
        for index in range(5):
            ring.push(BufferDescriptor(address=index + 1, length=1, cookie=index))
        batch = ring.pop_many(3)
        assert [d.cookie for d in batch] == [0, 1, 2]
        assert len(ring) == 2

    def test_pop_many_too_many(self):
        ring = DescriptorRing(8)
        with pytest.raises(IndexError):
            ring.pop_many(1)

    def test_free_slots(self):
        ring = DescriptorRing(4)
        ring.push(BufferDescriptor(address=1, length=1))
        assert ring.free_slots == 3


class TestHostMemoryLayout:
    def test_headers_are_misaligned(self):
        layout = HostMemoryLayout()
        offsets = {layout.tx_header_address(seq) % 8 for seq in range(16)}
        assert offsets - {0}, "some header starts must be misaligned"

    def test_slots_do_not_collide(self):
        layout = HostMemoryLayout()
        a = layout.tx_header_address(0)
        b = layout.tx_header_address(1)
        assert abs(b - a) >= layout.slot_bytes - 16

    def test_payload_after_header(self):
        layout = HostMemoryLayout()
        assert layout.tx_payload_address(3) > layout.tx_header_address(3)

    def test_rx_region_separate(self):
        layout = HostMemoryLayout()
        assert layout.rx_buffer_address(0) >= layout.rx_region_base


class TestDriverModel:
    def _driver(self, **kwargs):
        return DriverModel(1472, 1518, **kwargs)

    def test_refill_posts_two_bds_per_frame(self):
        driver = self._driver(send_ring_capacity=8)
        frames = driver.refill_send_ring()
        assert frames == 4
        assert driver.send_bds_available() == 8

    def test_send_bd_pairs_share_cookie(self):
        driver = self._driver()
        driver.refill_send_ring()
        header, payload = driver.consume_send_bds(2)
        assert header.is_header
        assert payload.is_end_of_frame
        assert header.cookie == payload.cookie

    def test_finite_traffic_stops(self):
        driver = DriverModel(1472, 1518, max_frames=3)
        assert driver.refill_send_ring() == 3
        assert driver.refill_send_ring() == 0

    def test_saturation_refills_after_consume(self):
        driver = self._driver(send_ring_capacity=8)
        driver.refill_send_ring()
        driver.consume_send_bds(4)
        assert driver.refill_send_ring() == 2

    def test_recv_replenish(self):
        driver = self._driver(recv_ring_capacity=16)
        assert driver.replenish_recv_ring() == 16
        driver.consume_recv_bds(5)
        assert driver.replenish_recv_ring() == 5

    def test_payload_length_accounts_for_headers(self):
        driver = self._driver()
        driver.refill_send_ring()
        header, payload = driver.consume_send_bds(2)
        # 42 B header region + payload + 4 B CRC = frame
        assert header.length + payload.length + 4 == 1518

    def test_interrupt_coalescing_stats(self):
        driver = self._driver()
        driver.complete_sends(8, interrupt=True)
        driver.complete_receives(8, interrupt=False)
        assert driver.stats.interrupts == 1
        assert driver.stats.completions_per_interrupt == 16
