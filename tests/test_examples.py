"""Smoke tests: every example script runs end to end.

Each example is executed in-process via runpy with throttled arguments
so the suite stays fast; assertions check the headline output rather
than exact numbers.
"""

import runpy
import sys
from pathlib import Path

import pytest


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv, capsys):
    sys_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = sys_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["--millis", "0.3", "--cores", "4"], capsys)
        assert "UDP throughput" in out
        assert "per-core cycle breakdown" in out

    def test_firmware_playground(self, capsys):
        out = run_example(
            "firmware_playground.py", ["--cores", "2", "--iterations", "1"], capsys
        )
        assert "ISA-level ordering ablation" in out
        assert "reduction" in out

    def test_micro_nic_end_to_end(self, capsys):
        out = run_example("micro_nic_end_to_end.py", ["--frames", "24"], capsys)
        assert "in order?" in out
        assert "NO" not in out.split("in order?")[1].split("fabric")[0]
        # The macro act: the fabric loopback must agree with the direct
        # sim (the example asserts the 5% bound itself) and the RPC pair
        # must produce latency percentiles.
        assert "consistent: fabric path reproduces" in out
        assert "RTT p50" in out

    def test_micro_nic_show_firmware(self, capsys):
        out = run_example(
            "micro_nic_end_to_end.py", ["--frames", "8", "--show-firmware"], capsys
        )
        assert "setb" in out and "update" in out

    @pytest.mark.slow
    def test_design_space_sweep_quick(self, capsys):
        out = run_example("design_space_sweep.py", ["--quick"], capsys)
        assert "cheapest line-rate design" in out

    def test_frame_size_study(self, capsys):
        out = run_example(
            "frame_size_study.py", ["--sizes", "100", "1472", "--millis", "0.3"],
            capsys,
        )
        assert "peak frame rate" in out
        assert "IMIX extension" in out

    @pytest.mark.slow
    def test_reproduce_paper_fast(self, capsys, tmp_path):
        report_path = tmp_path / "evaluation.txt"
        out = run_example(
            "reproduce_paper.py", ["--fast", "--output", str(report_path)], capsys
        )
        assert "Table 6" in out
        assert report_path.exists()
        assert "Figure 8" in report_path.read_text()
