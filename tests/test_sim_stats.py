"""Statistics primitives."""

import pytest

from repro.sim import Counter, Histogram, RateMeter, StatRegistry
from repro.units import seconds_to_ps


class TestCounter:
    def test_add(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestRateMeter:
    def test_rate(self):
        meter = RateMeter("fps")
        meter.add(1000)
        assert meter.rate_per_second(seconds_to_ps(0.5)) == pytest.approx(2000)

    def test_reset_moves_window(self):
        meter = RateMeter("fps")
        meter.add(1000)
        meter.reset(seconds_to_ps(1.0))
        meter.add(100)
        rate = meter.rate_per_second(seconds_to_ps(1.5))
        assert rate == pytest.approx(200)

    def test_zero_window(self):
        meter = RateMeter("fps")
        meter.add(10)
        assert meter.rate_per_second(0) == 0.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("lat", [10, 100, 1000])
        for value in (5, 50, 500, 5000):
            hist.record(value)
        assert hist.counts == [1, 1, 1, 1]

    def test_mean_min_max(self):
        hist = Histogram("lat", [10])
        hist.record(4)
        hist.record(8)
        assert hist.mean == pytest.approx(6)
        assert hist.min == 4
        assert hist.max == 8

    def test_percentile(self):
        hist = Histogram("lat", [1, 2, 3, 4, 5])
        for value in (1, 2, 3, 4, 5):
            hist.record(value)
        assert hist.percentile(0.5) == 3
        assert hist.percentile(1.0) == 5

    def test_percentile_bounds(self):
        hist = Histogram("lat", [10])
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_empty_percentile(self):
        assert Histogram("lat", [10]).percentile(0.5) == 0.0

    def test_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", [])


class TestStatRegistry:
    def test_counter_identity(self):
        registry = StatRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_snapshot(self):
        registry = StatRegistry()
        registry.counter("a").add(2)
        registry.meter("b").add(3.5)
        snap = registry.snapshot()
        assert snap["counter.a"] == 2
        assert snap["meter.b"] == 3.5

    def test_reset_meters(self):
        registry = StatRegistry()
        registry.meter("b").add(5)
        registry.reset_meters(seconds_to_ps(1.0))
        assert registry.meter("b").total == 0.0
        assert registry.meter("b").window_start_ps == seconds_to_ps(1.0)

    def test_items_sorted(self):
        registry = StatRegistry()
        registry.counter("z").add(1)
        registry.counter("a").add(1)
        names = [name for name, _ in registry.items()]
        assert names == sorted(names)

    def test_snapshot_includes_histogram_summaries(self):
        registry = StatRegistry()
        histogram = registry.histogram("lat", [1, 10, 100])
        for value in (0.5, 5, 50, 50):
            histogram.record(value)
        snap = registry.snapshot()
        assert snap["histogram.lat.count"] == 4
        assert snap["histogram.lat.mean"] == pytest.approx(105.5 / 4)
        assert snap["histogram.lat.p50"] == histogram.percentile(0.50)
        assert snap["histogram.lat.p99"] == histogram.percentile(0.99)
        assert snap["histogram.lat.max"] == 50

    def test_snapshot_empty_histogram_is_safe(self):
        registry = StatRegistry()
        registry.histogram("lat", [1, 10])
        snap = registry.snapshot()
        assert snap["histogram.lat.count"] == 0
        assert snap["histogram.lat.max"] == 0.0

    def test_reset_counters(self):
        registry = StatRegistry()
        registry.counter("a").add(7)
        registry.reset_counters()
        assert registry.counter("a").value == 0

    def test_reset_window_covers_counters_and_meters(self):
        """Warm-up reset must exclude warm-up events from *both* kinds
        of accounting, not just the meters."""
        registry = StatRegistry()
        registry.counter("frames").add(10)
        registry.meter("bytes").add(100)
        histogram = registry.histogram("lat", [1, 10])
        histogram.record(5)
        registry.reset_window(seconds_to_ps(0.5))
        assert registry.counter("frames").value == 0
        assert registry.meter("bytes").total == 0.0
        assert registry.meter("bytes").window_start_ps == seconds_to_ps(0.5)
        assert histogram.total == 1  # histograms kept by default
        registry.reset_window(seconds_to_ps(0.6), histograms=True)
        assert histogram.total == 0 and histogram.max is None

    def test_histogram_reset_clears_samples(self):
        histogram = Histogram("lat", [1, 10])
        histogram.record(5)
        histogram.reset()
        assert histogram.total == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0.0
        histogram.record(3)
        assert histogram.total == 1 and histogram.max == 3
