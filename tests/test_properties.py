"""Property-based tests (hypothesis) on the core data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.firmware.ordering import OrderingBoard, OrderingMode
from repro.host.descriptors import BufferDescriptor, DescriptorRing
from repro.isa.machine import Memory, apply_setb, apply_update
from repro.mem.coherence import CoherentCacheSystem, MesiState, TraceAccess
from repro.mem.crossbar import Crossbar
from repro.net.ethernet import frame_bytes_for_udp_payload, udp_payload_for_frame_bytes


# ----------------------------------------------------------------------
# setb/update vs a reference big-int bitmap
# ----------------------------------------------------------------------
class _ReferenceBitmap:
    """Big-int model of the RMW semantics."""

    def __init__(self) -> None:
        self.bits = 0

    def setb(self, index: int) -> None:
        self.bits |= 1 << index

    def update(self, last: int) -> int:
        start = last + 1
        word_end = (start // 32) * 32 + 32
        position = start
        while position < word_end and self.bits & (1 << position):
            position += 1
        count = position - start
        if count == 0:
            return last
        mask = ((1 << count) - 1) << start
        self.bits &= ~mask
        return last + count


@st.composite
def rmw_operations(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("set"), st.integers(min_value=0, max_value=255)),
                st.tuples(st.just("update"), st.integers(min_value=-1, max_value=254)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestRmwSemantics:
    @given(rmw_operations())
    @settings(max_examples=200)
    def test_matches_reference_bitmap(self, ops):
        memory = Memory(64)  # 512 bits
        reference = _ReferenceBitmap()
        for op, argument in ops:
            if op == "set":
                apply_setb(memory, 0, argument)
                reference.setb(argument)
            else:
                got = apply_update(memory, 0, argument)
                expected = reference.update(argument)
                assert got == expected
        # Final bitmap state must agree word for word.
        for word_index in range(16):
            model_word = (reference.bits >> (32 * word_index)) & 0xFFFFFFFF
            assert memory.load_word(4 * word_index) == model_word

    @given(st.integers(min_value=0, max_value=511))
    def test_setb_sets_exactly_one_bit(self, index):
        memory = Memory(64)
        apply_setb(memory, 0, index)
        total = sum(
            bin(memory.load_word(4 * w)).count("1") for w in range(16)
        )
        assert total == 1

    @given(st.integers(min_value=-1, max_value=510))
    def test_update_never_crosses_word_boundary(self, last):
        memory = Memory(64)
        for word_index in range(16):
            memory.store_word(4 * word_index, 0xFFFFFFFF)
        result = apply_update(memory, 0, last)
        # Progress is bounded by the distance to the word boundary.
        boundary = ((last + 1) // 32) * 32 + 32
        assert result <= boundary - 1


# ----------------------------------------------------------------------
# Ordering board invariants
# ----------------------------------------------------------------------
@st.composite
def mark_permutations(draw):
    count = draw(st.integers(min_value=1, max_value=96))
    order = draw(st.permutations(list(range(count))))
    return list(order)


class TestOrderingProperties:
    @given(mark_permutations())
    @settings(max_examples=100)
    def test_everything_marked_eventually_commits(self, order):
        board = OrderingBoard(128, OrderingMode.RMW)
        total = 0
        for seq in order:
            board.mark_done(seq)
            count, _ = board.commit()
            total += count
        count, _ = board.commit()
        total += count
        assert total == len(order)
        assert board.commit_seq == len(order)

    @given(mark_permutations())
    @settings(max_examples=100)
    def test_commit_pointer_monotonic_and_gapless(self, order):
        board = OrderingBoard(128, OrderingMode.SOFTWARE)
        marked = set()
        previous = 0
        for seq in order:
            board.mark_done(seq)
            marked.add(seq)
            board.commit()
            assert board.commit_seq >= previous
            # The commit pointer never passes an unmarked frame.
            assert all(s in marked for s in range(board.commit_seq))
            previous = board.commit_seq

    @given(mark_permutations())
    @settings(max_examples=60)
    def test_modes_agree(self, order):
        software = OrderingBoard(128, OrderingMode.SOFTWARE)
        rmw = OrderingBoard(128, OrderingMode.RMW)
        for seq in order:
            software.mark_done(seq)
            rmw.mark_done(seq)
            sw_count, _ = software.commit()
            rmw_count, _ = rmw.commit()
            assert sw_count == rmw_count
        assert software.commit_seq == rmw.commit_seq


# ----------------------------------------------------------------------
# Descriptor ring vs a deque reference
# ----------------------------------------------------------------------
@st.composite
def ring_scripts(draw):
    return draw(
        st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=200)
    )


class TestRingProperties:
    @given(ring_scripts())
    @settings(max_examples=100)
    def test_matches_deque(self, script):
        from collections import deque

        ring = DescriptorRing(8)
        reference = deque()
        cookie = 0
        for action in script:
            if action == "push":
                if len(reference) == 8:
                    continue
                descriptor = BufferDescriptor(address=1, length=1, cookie=cookie)
                ring.push(descriptor)
                reference.append(cookie)
                cookie += 1
            else:
                if not reference:
                    continue
                assert ring.pop().cookie == reference.popleft()
        assert len(ring) == len(reference)


# ----------------------------------------------------------------------
# Crossbar: one grant per resource per cycle
# ----------------------------------------------------------------------
class TestCrossbarProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # resource
                st.integers(min_value=0, max_value=50),  # request cycle
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=100)
    def test_no_double_grants(self, requests):
        crossbar = Crossbar(4)
        granted = set()
        ordered = sorted(requests, key=lambda r: r[1])
        for requester, (resource, cycle) in enumerate(ordered):
            grant = crossbar.request(resource, requester, cycle)
            assert grant >= cycle
            assert (resource, grant) not in granted
            granted.add((resource, grant))


# ----------------------------------------------------------------------
# MESI: single-writer, no M+S coexistence
# ----------------------------------------------------------------------
@st.composite
def coherence_traces(draw):
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),      # cache
                st.integers(min_value=0, max_value=15),     # line index
                st.booleans(),                              # write?
            ),
            min_size=1,
            max_size=150,
        )
    )


class TestMesiProperties:
    @given(coherence_traces())
    @settings(max_examples=100)
    def test_single_writer_invariant(self, raw_trace):
        system = CoherentCacheSystem(4, 256, line_bytes=16)
        for cache_id, line_index, is_write in raw_trace:
            system.access(TraceAccess(cache_id, line_index * 16, is_write))
            for line in range(16):
                states = [
                    cache.lines.get(line, MesiState.INVALID)
                    for cache in system.caches
                ]
                modified = states.count(MesiState.MODIFIED)
                exclusive = states.count(MesiState.EXCLUSIVE)
                shared = states.count(MesiState.SHARED)
                assert modified <= 1
                assert exclusive <= 1
                if modified or exclusive:
                    assert shared == 0

    @given(coherence_traces())
    @settings(max_examples=50)
    def test_accounting_consistent(self, raw_trace):
        system = CoherentCacheSystem(4, 256, line_bytes=16)
        for cache_id, line_index, is_write in raw_trace:
            system.access(TraceAccess(cache_id, line_index * 16, is_write))
        stats = system.stats
        assert stats.hits + stats.misses == len(raw_trace)
        assert stats.reads + stats.writes == len(raw_trace)
        assert stats.write_accesses_causing_invalidation <= stats.writes


# ----------------------------------------------------------------------
# Ethernet frame geometry roundtrips
# ----------------------------------------------------------------------
class TestEthernetProperties:
    @given(st.integers(min_value=18, max_value=1472))
    def test_payload_frame_roundtrip(self, payload):
        frame = frame_bytes_for_udp_payload(payload)
        assert 64 <= frame <= 1518
        assert udp_payload_for_frame_bytes(frame) == payload

    @given(st.integers(min_value=18, max_value=1472))
    def test_frame_monotonic_in_payload(self, payload):
        if payload < 1472:
            assert frame_bytes_for_udp_payload(payload) <= frame_bytes_for_udp_payload(
                payload + 1
            )
