"""Property-based tests on the ISA: interpreter vs Python reference,
encode/decode, and the ILP analyzer's bounds."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ilp import BranchModel, IlpConfig, IssueOrder, PipelineModel, analyze_trace
from repro.isa import Machine, assemble, decode, encode
from repro.isa.instructions import Instruction

WORD = 0xFFFFFFFF

_ALU_OPS = ("addu", "subu", "and", "or", "xor", "nor")

# Registers $t0..$t7 as a playground.
_REGS = tuple(range(8, 16))


@st.composite
def straight_line_programs(draw):
    """A random straight-line ALU program plus its Python evaluation."""
    count = draw(st.integers(min_value=1, max_value=30))
    seeds = {
        reg: draw(st.integers(min_value=0, max_value=WORD)) for reg in _REGS
    }
    operations = []
    for _ in range(count):
        op = draw(st.sampled_from(_ALU_OPS))
        rd = draw(st.sampled_from(_REGS))
        rs = draw(st.sampled_from(_REGS))
        rt = draw(st.sampled_from(_REGS))
        operations.append((op, rd, rs, rt))
    return seeds, operations


def _python_eval(seeds, operations):
    regs = dict(seeds)
    for op, rd, rs, rt in operations:
        a, b = regs[rs], regs[rt]
        if op == "addu":
            value = a + b
        elif op == "subu":
            value = a - b
        elif op == "and":
            value = a & b
        elif op == "or":
            value = a | b
        elif op == "xor":
            value = a ^ b
        else:  # nor
            value = ~(a | b)
        regs[rd] = value & WORD
    return regs


class TestInterpreterAgainstReference:
    @given(straight_line_programs())
    @settings(max_examples=150, deadline=None)
    def test_alu_matches_python(self, case):
        seeds, operations = case
        lines = []
        for reg, value in seeds.items():
            lines.append(f"li ${reg}, {value & 0xFFFF}")
            lines.append(f"lui $1, {value >> 16}")
            lines.append(f"ori $1, $1, {value & 0xFFFF}")
            lines.append(f"move ${reg}, $1")
        for op, rd, rs, rt in operations:
            lines.append(f"{op} ${rd}, ${rs}, ${rt}")
        lines.append("halt")
        machine = Machine(assemble("\n".join(lines)))
        machine.run()
        expected = _python_eval(seeds, operations)
        for reg in _REGS:
            assert machine.read_register(reg) == expected[reg]


class TestEncodingProperties:
    @given(
        st.sampled_from(_ALU_OPS),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_rtype_roundtrip(self, op, rd, rs, rt):
        ins = Instruction(op, rd=rd, rs=rs, rt=rt)
        decoded = decode(encode(ins))
        assert (decoded.mnemonic, decoded.rd, decoded.rs, decoded.rt) == (op, rd, rs, rt)

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    )
    def test_lw_roundtrip(self, rt, rs, imm):
        decoded = decode(encode(Instruction("lw", rt=rt, rs=rs, imm=imm)))
        assert (decoded.rt, decoded.rs, decoded.imm) == (rt, rs, imm)

    @given(st.integers(min_value=0, max_value=(1 << 26) - 1))
    def test_jump_roundtrip(self, target):
        decoded = decode(encode(Instruction("j", target=target)))
        assert decoded.target == target


class TestIlpBounds:
    @given(straight_line_programs())
    @settings(max_examples=30, deadline=None)
    def test_ipc_bounded_by_width_and_positive(self, case):
        seeds, operations = case
        lines = []
        for reg, value in seeds.items():
            lines.append(f"li ${reg}, {value & 0x7FFF}")
        for op, rd, rs, rt in operations:
            lines.append(f"{op} ${rd}, ${rs}, ${rt}")
        lines.append("halt")
        trace = []
        machine = Machine(assemble("\n".join(lines)), trace=trace)
        machine.run()
        for width in (1, 2, 4):
            config = IlpConfig(
                IssueOrder.OUT_OF_ORDER, width, PipelineModel.PERFECT, BranchModel.PBP
            )
            ipc = analyze_trace(trace, config)
            assert 0 < ipc <= width + 1e-9
