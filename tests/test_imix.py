"""Mixed frame sizes (IMIX extension)."""

import pytest

from repro.net.ethernet import EthernetTiming
from repro.net.workload import ConstantSize, ImixSize
from repro.nic import RMW_166MHZ, ThroughputSimulator


class TestConstantSize:
    def test_payload_constant(self):
        model = ConstantSize(800)
        assert model.payload_bytes(0) == model.payload_bytes(999) == 800

    def test_frame_bytes(self):
        assert ConstantSize(1472).frame_bytes(5) == 1518

    def test_means(self):
        model = ConstantSize(1472)
        assert model.mean_payload_bytes == 1472
        assert model.mean_frame_bytes == 1518
        assert model.max_frame_bytes == 1518

    def test_line_rate_matches_ethernet_timing(self):
        model = ConstantSize(1472)
        timing = EthernetTiming()
        assert model.line_rate_fps(timing) == pytest.approx(
            timing.frames_per_second(1518)
        )

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            ConstantSize(5000)


class TestImixSize:
    def test_pattern_repeats(self):
        model = ImixSize()
        n = model.pattern_length
        assert model.payload_bytes(0) == model.payload_bytes(n)

    def test_classic_ratio(self):
        model = ImixSize()
        sizes = [model.payload_bytes(i) for i in range(model.pattern_length)]
        assert sizes.count(18) == 7
        assert sizes.count(548) == 4
        assert sizes.count(1472) == 1

    def test_pattern_is_permutation_of_multiset(self):
        model = ImixSize()
        sizes = sorted(model.payload_bytes(i) for i in range(model.pattern_length))
        assert sizes == sorted([18] * 7 + [548] * 4 + [1472])

    def test_large_frames_spread_out(self):
        model = ImixSize()
        big = [i for i in range(model.pattern_length)
               if model.payload_bytes(i) == 1472]
        assert len(big) == 1  # one per pattern; the stride walk spreads repeats

    def test_mean_frame_bytes(self):
        model = ImixSize()
        # (7*64 + 4*594 + 1*1518) / 12
        assert model.mean_frame_bytes == pytest.approx((7 * 64 + 4 * 594 + 1518) / 12)

    def test_max_frame(self):
        assert ImixSize().max_frame_bytes == 1518

    def test_line_rate_above_max_size_rate(self):
        timing = EthernetTiming()
        assert ImixSize().line_rate_fps(timing) > timing.frames_per_second(1518)

    def test_custom_pattern(self):
        model = ImixSize(pattern=((100, 1), (1000, 1)))
        sizes = {model.payload_bytes(0), model.payload_bytes(1)}
        assert sizes == {100, 1000}

    def test_validation(self):
        with pytest.raises(ValueError):
            ImixSize(pattern=())
        with pytest.raises(ValueError):
            ImixSize(pattern=((100, 0),))


class TestImixSimulation:
    @pytest.fixture(scope="class")
    def result(self):
        simulator = ThroughputSimulator(RMW_166MHZ, size_model=ImixSize())
        return simulator.run(warmup_s=0.3e-3, measure_s=0.5e-3)

    def test_processing_bound(self, result):
        # The IMIX line rate is ~3.3 M fps/direction; the 6-core NIC
        # saturates near 2 M total — far below the link.
        assert result.line_rate_fraction() < 0.6
        assert result.core_utilization > 0.95

    def test_frame_rate_matches_saturation(self, result):
        assert 1.2e6 < result.total_fps < 3.0e6

    def test_goodput_accounts_real_payloads(self, result):
        # Goodput must equal delivered payload bytes / time, which for
        # the 362 B mean mix is far below the max-frame 19 Gb/s.
        assert 2.0 < result.udp_throughput_gbps < 9.0

    def test_mean_sizes_reported(self, result):
        assert result.frame_bytes == pytest.approx(362, abs=2)

    def test_drops_occur_under_overload(self, result):
        assert result.rx_dropped > 0

    def test_conservation_of_payload(self, result):
        # Delivered payload per frame must average to the mix's mean.
        mean = result.rx_payload_bytes / max(1, result.rx_frames)
        model = ImixSize()
        assert mean == pytest.approx(model.mean_payload_bytes, rel=0.25)
