"""Multi-queue (RSS) host interface: hashing, steering, scaling.

Covers the `repro.host.rss` layer end to end: the Toeplitz hash against
the published Microsoft verification vector, deterministic steering,
fast/reference byte-identity with the multi-queue model armed, the
cache-key contract (absent config => legacy keys byte-identical), and
the headline ablation behaviour — one ring serializes host completion
work on one core (host-limited), N rings spread it (wire-limited).
"""

import json
import struct

import pytest

from repro.exp import RunSpec, WorkloadSpec
from repro.host.rss import (
    HostQueueModel,
    RSS_DEFAULT_KEY,
    RssSpec,
    ToeplitzHash,
    flow_key_bytes,
    toeplitz_key,
)
from repro.nic import NicConfig, RMW_166MHZ, ThroughputSimulator
from repro.sim import Simulator

# Long enough for the single-ring arm to drain its initial buffer
# credit and reach its host-limited steady state before measuring.
WARMUP = 0.6e-3
MEASURE = 0.8e-3


def _ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


# ----------------------------------------------------------------------
# Toeplitz hash
# ----------------------------------------------------------------------
class TestToeplitz:
    def test_published_verification_vector(self):
        # Microsoft RSS verification suite, IPv4 with ports:
        # src 66.9.149.187:2794 -> dst 161.142.100.80:1766 hashes to
        # 0x51ccc178 under the published 40-byte key.
        h = ToeplitzHash(RSS_DEFAULT_KEY)
        data = flow_key_bytes(
            _ip(66, 9, 149, 187), _ip(161, 142, 100, 80), 2794, 1766
        )
        assert h.hash(data) == 0x51CCC178

    def test_flow_key_bytes_layout(self):
        data = flow_key_bytes(1, 2, 3, 4)
        assert data == struct.pack(">IIHH", 1, 2, 3, 4)
        assert len(data) == 12

    def test_table_matches_bitwise_definition(self):
        # The 256-entry-table formulation must agree with the classic
        # slide-one-bit-per-input-bit definition on arbitrary input.
        key = toeplitz_key(7)
        h = ToeplitzHash(key)
        data = bytes(range(1, 13))
        key_int = int.from_bytes(key, "big")
        key_bits = len(key) * 8
        expected = 0
        for bit in range(len(data) * 8):
            if data[bit // 8] & (0x80 >> (bit % 8)):
                expected ^= (key_int >> (key_bits - 32 - bit)) & 0xFFFFFFFF
        assert h.hash(data) == expected

    def test_seeded_keys_deterministic_and_distinct(self):
        assert toeplitz_key(0) == RSS_DEFAULT_KEY
        assert toeplitz_key(1) == toeplitz_key(1)
        assert toeplitz_key(1) != toeplitz_key(2)
        assert len(toeplitz_key(123, length=52)) == 52

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            ToeplitzHash(b"\x01\x02\x03")
        with pytest.raises(ValueError):
            toeplitz_key(0, length=2)

    def test_oversized_input_rejected(self):
        h = ToeplitzHash(RSS_DEFAULT_KEY, max_input_bytes=12)
        with pytest.raises(ValueError):
            h.hash(bytes(13))


# ----------------------------------------------------------------------
# RssSpec validation
# ----------------------------------------------------------------------
class TestRssSpec:
    def test_defaults_valid(self):
        spec = RssSpec()
        assert spec.rings == 4
        assert spec.core_count == 4

    def test_host_cores_override(self):
        assert RssSpec(rings=8, host_cores=2).core_count == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rings": 0},
            {"indirection_entries": 0},
            {"interrupt_coalesce_frames": 0},
            {"synthetic_flows": 0},
            {"host_cores": -1},
            {"completion_ps": -1},
            {"interrupt_ps": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RssSpec(**kwargs)


# ----------------------------------------------------------------------
# Steering
# ----------------------------------------------------------------------
class TestSteering:
    def _model(self, rings=4):
        return HostQueueModel(
            RssSpec(rings=rings), sim=Simulator(), frame_bytes=1514,
            send_ring_capacity=32, recv_ring_capacity=16,
        )

    def test_deterministic_and_memoized(self):
        a = self._model()
        b = self._model()
        flows = [(_ip(10, 0, 0, 1), _ip(10, 0, 0, 2), 0x8000 + i, 9999)
                 for i in range(64)]
        first = [a.ring_for(*flow) for flow in flows]
        assert [a.ring_for(*flow) for flow in flows] == first  # memo stable
        assert [b.ring_for(*flow) for flow in flows] == first  # fresh model
        assert all(0 <= ring < 4 for ring in first)

    def test_distinct_flows_spread_across_rings(self):
        model = self._model(rings=4)
        rings = {
            model.ring_for(_ip(10, 0, 0, 1), _ip(10, 0, 0, 2), port, 9999)
            for port in range(0x8000, 0x8040)
        }
        assert len(rings) == 4  # 64 flows land on all 4 rings

    def test_single_ring_gets_everything(self):
        model = self._model(rings=1)
        for port in range(0x8000, 0x8010):
            assert model.ring_for(1, 2, port, 4) == 0

    def test_seed_changes_placement(self):
        base = self._model()
        seeded = HostQueueModel(
            RssSpec(rings=4, hash_seed=99), sim=Simulator(), frame_bytes=1514,
            send_ring_capacity=32, recv_ring_capacity=16,
        )
        flows = [(1, 2, 0x8000 + i, 4) for i in range(64)]
        assert (
            [base.ring_for(*f) for f in flows]
            != [seeded.ring_for(*f) for f in flows]
        )


# ----------------------------------------------------------------------
# Host-core contention pump: fast/reference event-order identity
# ----------------------------------------------------------------------
class TestHostCorePump:
    def _drive(self, fast):
        sim = Simulator()
        model = HostQueueModel(
            RssSpec(rings=2, completion_ps=100, interrupt_ps=50),
            sim=sim, frame_bytes=1514,
            send_ring_capacity=8, recv_ring_capacity=8, fast=fast,
        )
        order = []
        model.on_rx_processed = lambda count: order.append(
            ("rx", sim.now_ps, count)
        )
        # Two rings complete batches at the same instant: both pumps arm
        # timers for the same timestamp, and the drain order must be the
        # arm order in both modes (the satellite-3 tie-break audit).
        def kick():
            model.complete_rx(0, 3, sim.now_ps)
            model.complete_rx(1, 3, sim.now_ps)
            model.complete_rx(0, 2, sim.now_ps)
        sim.schedule_at(1_000, kick)
        sim.run()
        return order

    def test_same_instant_timers_fire_in_arm_order(self):
        reference = self._drive(fast=False)
        assert reference == self._drive(fast=True)
        # ring0's first batch and ring1's batch run on separate cores in
        # parallel, finishing at the same instant, ring0 armed first.
        assert [entry[2] for entry in reference] == [3, 3, 2]
        assert reference[0][1] == reference[1][1]

    def test_single_core_serializes(self):
        sim = Simulator()
        model = HostQueueModel(
            RssSpec(rings=2, host_cores=1, completion_ps=100, interrupt_ps=0),
            sim=sim, frame_bytes=1514,
            send_ring_capacity=8, recv_ring_capacity=8,
        )
        done = []
        model.on_rx_processed = lambda count: done.append(sim.now_ps)
        sim.schedule_at(0, lambda: (
            model.complete_rx(0, 1, 0), model.complete_rx(1, 1, 0)
        ))
        sim.run()
        assert done == [100, 200]  # one core: second batch waits

    def test_backlog_defers_delivery_until_recycle(self):
        sim = Simulator()
        model = HostQueueModel(
            RssSpec(rings=1, completion_ps=100, interrupt_ps=0),
            sim=sim, frame_bytes=1514,
            send_ring_capacity=8, recv_ring_capacity=4,
        )
        ring = model.rings[0]
        sim.schedule_at(0, lambda: model.complete_rx(0, 6, 0))
        sim.run()
        # Only 4 buffers existed; 2 frames backlogged past the first
        # drain, then delivered from recycled buffers.
        assert ring.rx_backlog == 0
        assert ring.rx_backlog_peak == 6  # all 6 land before any drain
        assert ring.rx_completed == 6
        assert ring.rx_posted == ring.rx_completed + len(ring.recv_ring)


# ----------------------------------------------------------------------
# Cache-key contract
# ----------------------------------------------------------------------
class TestCacheKeyContract:
    def test_absent_rss_leaves_key_inputs_unchanged(self):
        spec = RunSpec(config=RMW_166MHZ, workload=WorkloadSpec())
        assert "rss" not in spec.key_inputs()

    def test_present_rss_changes_key(self):
        base = RunSpec(config=RMW_166MHZ, workload=WorkloadSpec())
        with_rss = RunSpec(
            config=RMW_166MHZ, workload=WorkloadSpec(), rss=RssSpec()
        )
        assert "rss" in with_rss.key_inputs()
        assert base.key != with_rss.key

    def test_ring_count_differentiates_keys(self):
        keys = {
            RunSpec(config=RMW_166MHZ, rss=RssSpec(rings=n)).key
            for n in (1, 2, 4)
        }
        assert len(keys) == 3


# ----------------------------------------------------------------------
# Full-simulator integration
# ----------------------------------------------------------------------
def _run(rss, fast=False, payload=1472, offered=1.0):
    sim = ThroughputSimulator(
        RMW_166MHZ, payload, offered_fraction=offered, fast=fast, rss=rss
    )
    return sim.run(warmup_s=WARMUP, measure_s=MEASURE)


class TestThroughputIntegration:
    @pytest.fixture(scope="class")
    def four_ring(self):
        return _run(RssSpec(rings=4))

    @pytest.fixture(scope="class")
    def one_ring(self):
        return _run(RssSpec(rings=1))

    def test_result_carries_rss_report(self, four_ring):
        report = four_ring.rss
        assert report["rings"] == 4
        assert len(report["per_ring"]) == 4
        assert len(report["per_core"]) == 4
        assert four_ring.to_dict()["rss"] == report

    def test_no_rss_no_report(self):
        result = _run(None)
        assert result.rss is None
        assert "rss" not in result.to_dict()

    def test_one_ring_is_host_limited(self, one_ring, four_ring):
        # The ablation headline: one ring serializes every completion on
        # one saturated host core and throughput collapses below the
        # wire; four rings spread the work and keep the wire full.
        busy_1 = max(c["busy_fraction"] for c in one_ring.rss["per_core"])
        busy_4 = max(c["busy_fraction"] for c in four_ring.rss["per_core"])
        assert busy_1 > 0.99
        assert busy_4 < 0.6
        assert four_ring.udp_throughput_gbps > 1.4 * one_ring.udp_throughput_gbps

    def test_per_core_completion_rate_scales(self, one_ring, four_ring):
        rate_1 = sum(c["completions_per_s"] for c in one_ring.rss["per_core"])
        rate_4 = sum(c["completions_per_s"] for c in four_ring.rss["per_core"])
        assert rate_4 > 1.5 * rate_1  # wire-limited vs host-limited

    def test_steering_spreads_recv_completions(self, four_ring):
        recv = [r["recv_completions"] for r in four_ring.rss["per_ring"]]
        assert sum(recv) > 0
        assert sum(1 for count in recv if count > 0) >= 3

    def test_fast_mode_byte_identical(self, four_ring):
        fast = _run(RssSpec(rings=4), fast=True)
        assert (
            json.dumps(fast.to_dict(), sort_keys=True)
            == json.dumps(four_ring.to_dict(), sort_keys=True)
        )

    def test_fast_mode_byte_identical_one_ring(self, one_ring):
        fast = _run(RssSpec(rings=1), fast=True)
        assert (
            json.dumps(fast.to_dict(), sort_keys=True)
            == json.dumps(one_ring.to_dict(), sort_keys=True)
        )

    def test_runs_deterministic(self, four_ring):
        again = _run(RssSpec(rings=4))
        assert (
            json.dumps(again.to_dict(), sort_keys=True)
            == json.dumps(four_ring.to_dict(), sort_keys=True)
        )


class TestFabricIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.fabric import FabricSimulator, FabricSpec

        fabric = FabricSimulator(
            NicConfig(cores=6, core_frequency_hz=166_000_000),
            FabricSpec.rpc_pair(concurrency=8),
            rss=RssSpec(rings=4),
        )
        return fabric.run(warmup_s=0.2e-3, measure_s=0.4e-3)

    def test_each_nic_reports_rss(self, result):
        assert len(result.nics) == 2
        for nic in result.nics:
            assert nic.rss is not None
            assert nic.rss["rings"] == 4

    def test_rpc_flow_completes(self, result):
        assert result.primary_flow.delivered > 0

    def test_fabric_rss_deterministic(self):
        from repro.fabric import FabricSimulator, FabricSpec

        def run(fast):
            fabric = FabricSimulator(
                NicConfig(cores=6, core_frequency_hz=166_000_000),
                FabricSpec.rpc_pair(concurrency=4),
                rss=RssSpec(rings=2),
                fast=fast,
            )
            result = fabric.run(warmup_s=0.1e-3, measure_s=0.2e-3)
            return json.dumps(result.to_dict(), sort_keys=True)

        reference = run(False)
        assert run(False) == reference
        assert run(True) == reference


# ----------------------------------------------------------------------
# Conservation under the armed monitor
# ----------------------------------------------------------------------
class TestRingConservation:
    def test_verify_throughput_with_rss(self):
        from repro.check import InvariantMonitor, attach_monitor, verify_conservation

        simulator = ThroughputSimulator(RMW_166MHZ, 1472, rss=RssSpec(rings=4))
        monitor = InvariantMonitor()
        attach_monitor(simulator, monitor)
        simulator.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        assert not monitor.violations
        assert monitor.checks.get("ring.post", 0) > 0
        assert monitor.checks.get("ring.complete", 0) > 0
        identities = verify_conservation(simulator, monitor=monitor)
        for index in range(4):
            assert identities[f"rss.ring{index}.rx_conservation"]
            assert identities[f"rss.ring{index}.tx_conservation"]

    def test_verify_fabric_with_rss(self):
        from repro.check import InvariantMonitor, attach_monitor, verify_conservation

        from repro.fabric import FabricSimulator, FabricSpec

        fabric = FabricSimulator(
            NicConfig(cores=6, core_frequency_hz=166_000_000),
            FabricSpec.rpc_pair(concurrency=4),
            rss=RssSpec(rings=2),
        )
        monitor = InvariantMonitor()
        attach_monitor(fabric, monitor)
        fabric.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        assert not monitor.violations
        assert monitor.checks.get("ring.complete", 0) > 0
        verify_conservation(fabric, monitor=monitor)
