"""Two-pass assembler: labels, directives, pseudo-instructions, errors."""

import pytest

from repro.isa import AssemblerError, assemble


class TestBasics:
    def test_empty_text(self):
        program = assemble(".text\n")
        assert program.instructions == []

    def test_single_instruction(self):
        program = assemble("addu $t0, $t1, $t2")
        assert len(program.instructions) == 1
        assert program.instructions[0].mnemonic == "addu"

    def test_comments_stripped(self):
        program = assemble("addu $t0, $t1, $t2  # comment\n# full line\n")
        assert len(program.instructions) == 1

    def test_numeric_registers(self):
        program = assemble("addu $8, $9, $10")
        ins = program.instructions[0]
        assert (ins.rd, ins.rs, ins.rt) == (8, 9, 10)

    def test_register_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("addu $32, $0, $0")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("bogus $t0, $t1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("addu $t0, $t1")


class TestLabels:
    def test_text_label_address(self):
        program = assemble("start: nop\nsecond: nop")
        assert program.address_of("start") == 0
        assert program.address_of("second") == 4

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("b missing\nnop")

    def test_address_of_missing_symbol(self):
        program = assemble("nop")
        with pytest.raises(KeyError):
            program.address_of("nowhere")

    def test_label_on_own_line(self):
        program = assemble("alone:\n    nop")
        assert program.address_of("alone") == 0

    def test_forward_branch(self):
        program = assemble("beq $0, $0, end\nnop\nend: nop")
        # offset from the delay slot: end is 1 word past it
        assert program.instructions[0].imm == 1

    def test_backward_branch(self):
        program = assemble("top: nop\nbeq $0, $0, top\nnop")
        assert program.instructions[1].imm == -2


class TestDirectives:
    def test_word_data(self):
        program = assemble(".data\nvals: .word 1, 2, 3\n.text\nnop")
        assert program.data == (1).to_bytes(4, "little") + (2).to_bytes(4, "little") + (3).to_bytes(4, "little")

    def test_space(self):
        program = assemble(".data\nbuf: .space 16\n.text\nnop")
        assert program.data == b"\x00" * 16

    def test_byte_and_half(self):
        program = assemble(".data\n.byte 0xAB\n.half 0x1234\n.text\nnop")
        assert program.data == b"\xab\x34\x12"

    def test_align(self):
        program = assemble(".data\n.byte 1\n.align 2\nw: .word 5\n.text\nnop")
        assert program.address_of("w") == program.data_base + 4

    def test_word_with_label_value(self):
        program = assemble(".data\na: .word 7\nptr: .word a\n.text\nnop")
        stored = int.from_bytes(program.data[4:8], "little")
        assert stored == program.address_of("a")

    def test_data_label_addresses(self):
        program = assemble(".data\nx: .word 1\ny: .word 2\n.text\nnop")
        assert program.address_of("y") == program.address_of("x") + 4

    def test_instruction_in_data_section_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\naddu $t0, $t1, $t2")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.bogus 1")


class TestPseudoInstructions:
    def test_nop_is_sll_zero(self):
        ins = assemble("nop").instructions[0]
        assert (ins.mnemonic, ins.rd, ins.rt, ins.shamt) == ("sll", 0, 0, 0)

    def test_move(self):
        ins = assemble("move $t0, $t1").instructions[0]
        assert (ins.mnemonic, ins.rd, ins.rs, ins.rt) == ("addu", 8, 9, 0)

    def test_li_small(self):
        program = assemble("li $t0, 100")
        assert len(program.instructions) == 1
        assert program.instructions[0].mnemonic == "addiu"

    def test_li_negative(self):
        program = assemble("li $t0, -5")
        assert program.instructions[0].imm == -5

    def test_li_unsigned_16bit(self):
        program = assemble("li $t0, 0xBEEF")
        assert len(program.instructions) == 1
        assert program.instructions[0].mnemonic == "ori"

    def test_li_large_expands_to_two(self):
        program = assemble("li $t0, 0x12345678")
        assert [i.mnemonic for i in program.instructions] == ["lui", "ori"]

    def test_la(self):
        program = assemble(".data\nbuf: .word 0\n.text\nla $t0, buf")
        assert [i.mnemonic for i in program.instructions] == ["lui", "ori"]

    def test_lw_label_expands(self):
        program = assemble(".data\nv: .word 9\n.text\nlw $t0, v")
        assert [i.mnemonic for i in program.instructions] == ["lui", "lw"]

    def test_beqz(self):
        ins = assemble("beqz $t0, out\nnop\nout: nop").instructions[0]
        assert (ins.mnemonic, ins.rs, ins.rt) == ("beq", 8, 0)

    def test_bnez(self):
        ins = assemble("bnez $t0, out\nnop\nout: nop").instructions[0]
        assert ins.mnemonic == "bne"

    def test_blt_expands_to_slt_bne(self):
        program = assemble("blt $t0, $t1, out\nnop\nout: nop")
        assert [i.mnemonic for i in program.instructions[:2]] == ["slt", "bne"]

    def test_bge_expands_to_slt_beq(self):
        program = assemble("bge $t0, $t1, out\nnop\nout: nop")
        assert [i.mnemonic for i in program.instructions[:2]] == ["slt", "beq"]

    def test_bltu_uses_sltu(self):
        program = assemble("bltu $t0, $t1, out\nnop\nout: nop")
        assert program.instructions[0].mnemonic == "sltu"

    def test_pseudo_sizes_match_first_pass(self):
        # A label *after* multi-instruction pseudos must land correctly.
        program = assemble(
            """
            li $t0, 0x12345678
            la $t1, target
            blt $t0, $t1, target
            nop
        target: nop
        """
        )
        # li(2) + la(2) + blt(2) + nop(1) = 7 instructions
        assert program.address_of("target") == 7 * 4


class TestJumps:
    def test_j_to_label(self):
        program = assemble("main: j main\nnop")
        assert program.instructions[0].target == 0

    def test_jalr_default_ra(self):
        ins = assemble("jalr $t0").instructions[0]
        assert (ins.rd, ins.rs) == (31, 8)

    def test_jalr_explicit(self):
        ins = assemble("jalr $s0, $t0").instructions[0]
        assert (ins.rd, ins.rs) == (16, 8)


class TestProgramHelpers:
    def test_instruction_at(self):
        program = assemble("nop\nhalt")
        assert program.instruction_at(4).mnemonic == "halt"

    def test_instruction_at_out_of_range(self):
        program = assemble("nop")
        with pytest.raises(IndexError):
            program.instruction_at(100)

    def test_text_bytes(self):
        program = assemble("nop\nnop\nnop")
        assert program.text_bytes == 12

    def test_source_lines_recorded(self):
        program = assemble("addu $t0, $t1, $t2   # trailing")
        assert "addu" in program.source_lines[0]
