"""Tests for corners the main suites don't reach."""

import pytest

from repro.cpu.costmodel import OpProfile
from repro.firmware.ordering import OrderingCost, ZERO_COST
from repro.firmware.profiles import (
    DEFAULT_FIRMWARE_PROFILES,
    FirmwareProfiles,
    ideal_frame_totals,
)
from repro.nic import RMW_166MHZ, ThroughputSimulator
from repro.nic.throughput import FunctionStats


class TestFirmwareProfiles:
    def test_ideal_totals_match_paper_arithmetic(self):
        totals = ideal_frame_totals()
        assert totals["send_instructions"] == pytest.approx(281.8)
        assert totals["recv_instructions"] == pytest.approx(253.5)
        assert totals["send_accesses"] == pytest.approx(82.0 + 18.0)
        assert totals["recv_accesses"] == pytest.approx(70.0 + 14.6)

    def test_spin_cost_scales_with_wait(self):
        profiles = FirmwareProfiles()
        short = profiles.spin_cost(6.0)
        long = profiles.spin_cost(60.0)
        assert long.instructions == pytest.approx(10 * short.instructions)

    def test_spin_cost_zero_wait(self):
        assert DEFAULT_FIRMWARE_PROFILES.spin_cost(0).instructions == 0

    def test_spin_fills_its_own_cycles(self):
        """One spin trip's cost model cycles ~= the trip's duration, so
        charged spin profiles fill lock waits with real work."""
        from repro.cpu.costmodel import CoreCostModel
        profiles = FirmwareProfiles()
        trip = profiles.spin_cost(profiles.spin_loop_cycles)
        cycles = CoreCostModel(imiss_rate=0).cycles(trip, 0.2)
        assert cycles == pytest.approx(profiles.spin_loop_cycles, rel=0.25)


class TestOrderingCost:
    def test_addition(self):
        total = OrderingCost(1, 2, 3) + OrderingCost(10, 20, 30)
        assert (total.instructions, total.loads, total.stores) == (11, 22, 33)

    def test_zero_identity(self):
        cost = OrderingCost(5, 1, 2)
        summed = cost + ZERO_COST
        assert summed.instructions == 5


class TestFunctionStats:
    def test_per_frame(self):
        stats = FunctionStats(instructions=100, loads=10, stores=5, cycles=150)
        per = stats.per_frame(10)
        assert per["instructions"] == 10
        assert per["accesses"] == 1.5
        assert per["cycles"] == 15

    def test_per_frame_zero_guard(self):
        assert FunctionStats().per_frame(0)["instructions"] == 0.0

    def test_accesses_property(self):
        assert FunctionStats(loads=3, stores=4).accesses == 7


class TestLatencyPercentiles:
    def test_p99_at_least_mean(self):
        result = ThroughputSimulator(RMW_166MHZ, 1472).run(0.2e-3, 0.4e-3)
        assert result.p99_rx_commit_latency_s >= result.mean_rx_commit_latency_s * 0.8
        assert result.p99_rx_commit_latency_s < 1e-3


class TestFiguresHelpers:
    def test_single_core_unreachable_returns_none(self):
        from repro.analysis.figures import single_core_line_rate_frequency
        found = single_core_line_rate_frequency(
            frequencies_mhz=(100,), target_fraction=0.99
        )
        assert found is None

    def test_figure7_ethernet_limit_value(self):
        from repro.analysis.figures import figure7_ethernet_limit
        assert figure7_ethernet_limit() == pytest.approx(19.14, abs=0.05)

    def test_saturation_frame_rates_keys(self):
        from repro.analysis.figures import saturation_frame_rates
        rates = saturation_frame_rates(100, warmup_s=0.2e-3, measure_s=0.3e-3)
        assert set(rates) == {"software_200mhz", "rmw_166mhz"}


class TestOpProfileEdges:
    def test_scaled_zero(self):
        profile = OpProfile(instructions=10, loads=2, stores=2)
        zero = profile.scaled(0)
        assert zero.instructions == 0
        assert zero.accesses == 0

    def test_plus_preserves_totals(self):
        a = OpProfile(instructions=100, loads=10, stores=10)
        b = OpProfile(instructions=50, loads=5, stores=5)
        combined = a.plus(b)
        assert combined.instructions == 150
        assert combined.accesses == 30


class TestKernelBehaviour:
    def test_bd_fetch_copies_descriptors(self):
        """The descriptor-parsing kernel must copy address/length of
        every descriptor into the assist command queue."""
        from repro.firmware.kernels import BD_FETCH_KERNEL, _DATA_SEGMENT
        from repro.isa import Machine, assemble

        source = """
        .text
        main:
            la $t0, ring        # fill two descriptors first
            li $t1, 0x1000
            sw $t1, 0($t0)      # addr
            li $t1, 64
            sw $t1, 4($t0)      # len
            li $t1, 0x4         # end-of-frame flag
            sw $t1, 8($t0)
            jal bd_fetch
            nop
            halt
        """ + BD_FETCH_KERNEL + _DATA_SEGMENT
        machine = Machine(assemble(source))
        machine.run()
        outq = machine.program.address_of("outq")
        assert machine.memory.load_word(outq) == 0x1000
        assert machine.memory.load_word(outq + 4) == 64
        assert machine.memory.load_word(outq + 8) == 0x1000 + 64  # end addr

    def test_dispatch_kernel_builds_event(self):
        from repro.firmware.kernels import DISPATCH_KERNEL, _DATA_SEGMENT
        from repro.isa import Machine, assemble

        source = """
        .text
        main:
            la $t0, hwptr
            li $t1, 9
            sw $t1, 0($t0)      # hardware progress = 9
            li $t1, 4
            sw $t1, 4($t0)      # software progress = 4
            jal dispatch
            nop
            halt
        """ + DISPATCH_KERNEL + _DATA_SEGMENT
        machine = Machine(assemble(source))
        machine.run()
        evq = machine.program.address_of("evq")
        assert machine.memory.load_word(evq) == 4       # first sequence
        assert machine.memory.load_word(evq + 4) == 5   # count
        hwptr = machine.program.address_of("hwptr")
        assert machine.memory.load_word(hwptr + 4) == 9  # swptr caught up


class TestSensitivity:
    def test_nominal_point_holds(self):
        from repro.analysis.sensitivity import sensitivity_analysis
        points = sensitivity_analysis(
            overhead_factors=(1.0,), dma_latencies_s=(1.2e-6,)
        )
        assert len(points) == 1
        assert points[0].conclusions_hold
        assert points[0].software_needs_higher_clock

    def test_labels_distinct(self):
        from repro.analysis.sensitivity import sensitivity_analysis
        points = sensitivity_analysis(
            overhead_factors=(1.0,), dma_latencies_s=(0.6e-6, 1.2e-6)
        )
        labels = [p.label for p in points]
        assert len(labels) == len(set(labels))
