"""The HI/LO multiply-divide unit."""

import pytest

from repro.isa import Machine, assemble, decode, encode
from repro.isa.instructions import Instruction


def run(source):
    machine = Machine(assemble(source))
    machine.run()
    return machine


class TestMultiply:
    def test_mult_signed(self):
        m = run("li $t0, -3\nli $t1, 1000\nmult $t0, $t1\nmflo $v0\nmfhi $v1\nhalt")
        assert m.register_by_name("v0") == (-3000) & 0xFFFFFFFF
        assert m.register_by_name("v1") == 0xFFFFFFFF  # sign extension

    def test_mult_large_fills_hi(self):
        m = run(
            """
            li $t0, 0x10000
            li $t1, 0x10000
            mult $t0, $t1
            mfhi $v0
            mflo $v1
            halt
            """
        )
        assert m.register_by_name("v0") == 1
        assert m.register_by_name("v1") == 0

    def test_multu_unsigned(self):
        m = run(
            """
            li $t0, 0xFFFFFFFF
            li $t1, 2
            multu $t0, $t1
            mfhi $v0
            mflo $v1
            halt
            """
        )
        assert m.register_by_name("v0") == 1
        assert m.register_by_name("v1") == 0xFFFFFFFE


class TestDivide:
    def test_div_quotient_and_remainder(self):
        m = run("li $t0, 17\nli $t1, 5\ndiv $t0, $t1\nmflo $v0\nmfhi $v1\nhalt")
        assert m.register_by_name("v0") == 3
        assert m.register_by_name("v1") == 2

    def test_div_truncates_toward_zero(self):
        m = run("li $t0, -17\nli $t1, 5\ndiv $t0, $t1\nmflo $v0\nmfhi $v1\nhalt")
        assert m.register_by_name("v0") == (-3) & 0xFFFFFFFF
        assert m.register_by_name("v1") == (-2) & 0xFFFFFFFF

    def test_divu(self):
        m = run(
            """
            li $t0, 0xFFFFFFFE
            li $t1, 3
            divu $t0, $t1
            mflo $v0
            mfhi $v1
            halt
            """
        )
        assert m.register_by_name("v0") == 0xFFFFFFFE // 3
        assert m.register_by_name("v1") == 0xFFFFFFFE % 3

    def test_divide_by_zero_pinned(self):
        m = run("li $t0, 5\ndiv $t0, $zero\nmflo $v0\nmfhi $v1\nhalt")
        assert m.register_by_name("v0") == 0
        assert m.register_by_name("v1") == 0


class TestDependences:
    def test_hilo_pseudo_register(self):
        mult = Instruction("mult", rs=8, rt=9)
        mflo = Instruction("mflo", rd=2)
        assert mult.destination_register() == Instruction.HILO
        assert mflo.source_registers() == (Instruction.HILO,)
        assert mflo.destination_register() == 2

    def test_encode_decode_roundtrip(self):
        for mnemonic in ("mult", "multu", "div", "divu"):
            decoded = decode(encode(Instruction(mnemonic, rs=4, rt=5)))
            assert (decoded.mnemonic, decoded.rs, decoded.rt) == (mnemonic, 4, 5)
        for mnemonic in ("mfhi", "mflo"):
            decoded = decode(encode(Instruction(mnemonic, rd=7)))
            assert (decoded.mnemonic, decoded.rd) == (mnemonic, 7)

    def test_ilp_sees_hilo_dependence(self):
        from repro.ilp import BranchModel, IlpConfig, IssueOrder, PipelineModel, analyze_trace
        trace = []
        machine = Machine(
            assemble("li $t0, 6\nli $t1, 7\nmult $t0, $t1\nmflo $v0\nhalt"),
            trace=trace,
        )
        machine.run()
        config = IlpConfig(
            IssueOrder.OUT_OF_ORDER, 4, PipelineModel.PERFECT, BranchModel.PBP
        )
        # mflo depends on mult through HI/LO: the 5 instructions cannot
        # all collapse; mult then mflo serialize.
        assert analyze_trace(trace, config) < 4.0

    def test_operand_count_validation(self):
        from repro.isa import AssemblerError
        with pytest.raises(AssemblerError):
            assemble("mult $t0, $t1, $t2")
        with pytest.raises(AssemblerError):
            assemble("mfhi $t0, $t1")
