"""Experiment drivers: every table/figure generator produces sound data.

Full-fidelity reproduction runs live in benchmarks/; these tests use
reduced windows and check structure + headline invariants.
"""

import pytest

from repro.analysis import (
    figure3_cache_study,
    format_table,
    render_series,
    table1_ideal_profile,
    table2_ilp_limits,
    table3_ipc_breakdown,
    table4_bandwidth,
    table5_rmw_profiles,
    table6_cycles,
)
from repro.analysis.cache_study import MetadataTraceGenerator, CACHE_COUNT
from repro.analysis.tables import rmw_reductions, _run
from repro.nic.config import RMW_166MHZ, SOFTWARE_200MHZ


@pytest.fixture(scope="module")
def software_result():
    return _run(SOFTWARE_200MHZ, warmup_s=0.3e-3, measure_s=0.5e-3)


@pytest.fixture(scope="module")
def rmw_result():
    return _run(RMW_166MHZ, warmup_s=0.3e-3, measure_s=0.5e-3)


class TestTable1:
    def test_function_rows_present(self):
        rows = table1_ideal_profile()
        for label in ("Fetch Send BD", "Send Frame", "Fetch Receive BD", "Receive Frame"):
            assert label in rows

    def test_line_rate_mips_matches_paper(self):
        rows = table1_ideal_profile()
        derived = rows["(derived) line-rate MIPS"]
        assert derived["send"] == pytest.approx(229, abs=2)
        assert derived["receive"] == pytest.approx(206, abs=2)
        assert derived["total"] == pytest.approx(435, abs=3)

    def test_control_bandwidth_matches_paper(self):
        rows = table1_ideal_profile()
        assert rows["(derived) control bandwidth Gb/s"]["total"] == pytest.approx(
            4.8, abs=0.05
        )


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_ilp_limits(iterations=2)

    def test_six_rows(self, rows):
        assert len(rows) == 6

    def test_all_branch_pipeline_columns(self, rows):
        for row in rows:
            for pipe in ("perfect", "stalls"):
                for bp in ("pbp", "pbp1", "nobp"):
                    assert f"{pipe}/{bp}" in row

    def test_io1_nobp_stalls_near_0_9(self, rows):
        io1 = next(r for r in rows if r["order"] == "IO" and r["width"] == 1)
        assert 0.7 <= io1["stalls/nobp"] <= 1.0

    def test_complexity_tradeoff_shape(self, rows):
        """OOO-2 with PBP1 beats IO-1 without BP by roughly 2x but needs
        far more hardware — the paper's argument for many simple cores."""
        io1 = next(r for r in rows if r["order"] == "IO" and r["width"] == 1)
        ooo2 = next(r for r in rows if r["order"] == "OOO" and r["width"] == 2)
        ratio = ooo2["stalls/pbp1"] / io1["stalls/nobp"]
        assert 1.4 < ratio < 2.6


class TestTable3:
    def test_breakdown_shape(self, software_result):
        breakdown = table3_ipc_breakdown(result=software_result)
        assert breakdown["total"] == pytest.approx(1.0, abs=0.02)
        assert breakdown["execution"] > 0.55
        assert breakdown["imiss"] < 0.05
        assert 0.05 < breakdown["load"] < 0.25
        assert breakdown["conflict"] < 0.12


class TestTable4:
    def test_rows_and_invariants(self, software_result):
        rows = table4_bandwidth(result=software_result)
        for memory in ("Instruction Memory", "Scratchpads", "Frame Memory"):
            assert memory in rows
            assert rows[memory]["consumed"] <= rows[memory]["peak"]
        assert rows["Frame Memory"]["required"] == pytest.approx(39.5, abs=0.2)
        assert rows["Scratchpads"]["required"] == pytest.approx(4.8, abs=0.1)
        # Consumed must exceed required (overprovisioning argument).
        assert rows["Scratchpads"]["consumed"] > rows["Scratchpads"]["required"]
        assert rows["Frame Memory"]["consumed"] > rows["Frame Memory"]["required"] - 0.5


class TestTables5And6:
    def test_table5_structure(self, software_result, rmw_result):
        table = table5_rmw_profiles(software_result, rmw_result)
        assert set(table) == {"ideal", "software", "rmw"}
        assert "send_dispatch_ordering" in table["software"]

    def test_rmw_reductions_signs(self, software_result, rmw_result):
        table = table5_rmw_profiles(software_result, rmw_result)
        reductions = rmw_reductions(table)
        assert reductions["send_ordering_instructions_pct"] > 25
        assert reductions["recv_ordering_instructions_pct"] > 5
        assert (
            reductions["send_ordering_instructions_pct"]
            > reductions["recv_ordering_instructions_pct"]
        )
        assert reductions["send_ordering_accesses_pct"] > 25

    def test_table6_totals(self, software_result, rmw_result):
        rows = table6_cycles(software_result, rmw_result)
        assert rows["send_total"]["rmw_cycles"] < rows["send_total"]["software_cycles"]
        # Receive changes much less (paper: -4.7%).
        recv_delta = 1 - rows["recv_total"]["rmw_cycles"] / rows["recv_total"]["software_cycles"]
        assert -0.1 < recv_delta < 0.25


class TestFigure3:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure3_cache_study(frames=600)

    def test_hit_ratio_plateaus_near_55(self, sweep):
        largest = sweep[32768]
        assert largest.hit_ratio < 0.60

    def test_hit_ratio_monotonic(self, sweep):
        ratios = [sweep[size].hit_ratio for size in sorted(sweep)]
        for before, after in zip(ratios[:-1], ratios[1:]):
            assert after >= before - 0.01

    def test_invalidations_below_one_percent(self, sweep):
        for stats in sweep.values():
            assert stats.write_invalidation_ratio < 0.01

    def test_trace_uses_eight_caches(self):
        trace = MetadataTraceGenerator(frames=50).generate()
        assert {a.cache_id for a in trace} <= set(range(CACHE_COUNT))
        assert max(a.cache_id for a in trace) == CACHE_COUNT - 1


class TestRendering:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text
        assert "2.500" in text

    def test_render_series(self):
        text = render_series("curve", [(1, 2.0), (3, 4.0)], "x", "y")
        assert "curve" in text
        assert "4.000" in text


class TestAsciiChart:
    def test_renders_all_series(self):
        from repro.analysis import ascii_chart
        chart = ascii_chart(
            "demo",
            {"a": [(0, 0), (10, 10)], "b": [(0, 10), (10, 0)]},
            width=20, height=8,
        )
        assert "demo" in chart
        assert "o a" in chart and "x b" in chart
        assert "o" in chart and "x" in chart

    def test_empty_series(self):
        from repro.analysis import ascii_chart
        assert "(no data)" in ascii_chart("empty", {})

    def test_flat_series_does_not_divide_by_zero(self):
        from repro.analysis import ascii_chart
        chart = ascii_chart("flat", {"a": [(1, 5), (2, 5), (3, 5)]})
        assert "flat" in chart

    def test_axis_labels(self):
        from repro.analysis import ascii_chart
        chart = ascii_chart("c", {"a": [(0, 0), (1, 1)]}, x_label="MHz",
                            y_label="Gb/s")
        assert "MHz" in chart and "Gb/s" in chart
