"""Frame-ordering boards: software-only vs RMW-enhanced."""

import pytest

from repro.firmware import OrderingBoard, OrderingMode

SW = OrderingMode.SOFTWARE
RMW = OrderingMode.RMW


class TestBoardBasics:
    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_in_order_completion_commits_immediately(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(0)
        board.mark_done(1)
        count, _cost = board.commit()
        assert count == 2
        assert board.commit_seq == 2

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_gap_blocks_commit(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(1)  # frame 0 not done yet
        count, _cost = board.commit()
        assert count == 0
        assert board.commit_seq == 0

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_gap_fill_releases_run(self, mode):
        board = OrderingBoard(64, mode)
        for seq in (1, 2, 3):
            board.mark_done(seq)
        board.mark_done(0)
        count, _cost = board.commit()
        assert count == 4

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_out_of_order_marks_commit_in_order(self, mode):
        board = OrderingBoard(64, mode)
        for seq in (5, 3, 0, 1, 4, 2):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 6
        assert board.commit_seq == 6

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_commit_crosses_word_boundaries(self, mode):
        board = OrderingBoard(128, mode)
        for seq in range(70):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 70

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_ring_wraparound(self, mode):
        board = OrderingBoard(32, mode)
        for wrap in range(4):
            for offset in range(32):
                board.mark_done(wrap * 32 + offset)
            count, _cost = board.commit()
            assert count == 32
        assert board.commit_seq == 128

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_double_commit_idempotent(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(0)
        board.commit()
        count, _cost = board.commit()
        assert count == 0

    def test_lap_protection(self):
        board = OrderingBoard(32, RMW)
        with pytest.raises(ValueError):
            board.mark_done(32)  # would alias bit 0 while seq 0 pending

    def test_already_committed_rejected(self):
        board = OrderingBoard(32, RMW)
        board.mark_done(0)
        board.commit()
        with pytest.raises(ValueError):
            board.mark_done(0)

    def test_ring_size_validation(self):
        with pytest.raises(ValueError):
            OrderingBoard(33, RMW)
        with pytest.raises(ValueError):
            OrderingBoard(0, RMW)

    def test_requires_lock_flag(self):
        assert OrderingBoard(32, SW).requires_lock
        assert not OrderingBoard(32, RMW).requires_lock

    def test_pending_counts_whole_ring(self):
        # Regression: `pending` used to stop scanning at the first
        # unmarked slot, undercounting frames marked behind a gap.
        board = OrderingBoard(64, RMW)
        board.mark_done(0)
        board.mark_done(1)
        board.mark_done(3)
        assert board.pending == 3

    def test_pending_counts_gapped_bitmap(self):
        board = OrderingBoard(64, RMW)
        for seq in (0, 2, 5, 9, 33, 63):
            board.mark_done(seq)
        assert board.pending == 6
        committed, _ = board.commit()
        assert committed == 1  # only seq 0 was consecutive
        assert board.pending == 5  # the gapped marks all still pending

    def test_pending_after_partial_commit_behind_gap(self):
        board = OrderingBoard(32, RMW)
        board.mark_done(0)
        board.mark_done(1)
        board.mark_done(4)
        board.commit()
        assert board.commit_seq == 2
        assert board.pending == 1  # seq 4 waits behind the 2-3 gap


class TestSkipRecovery:
    """Fault recovery: holes resequence past without wedging the pointer."""

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_skip_lets_commit_cross_the_hole(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(0)
        board.skip(1)  # frame 1 dropped at the MAC
        board.mark_done(2)
        count, _cost = board.commit()
        assert count == 3
        assert board.commit_seq == 3
        assert board.marked == 2
        assert board.skipped == 1

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_skip_behind_gap_waits_like_a_mark(self, mode):
        board = OrderingBoard(64, mode)
        board.skip(1)
        count, _cost = board.commit()
        assert count == 0  # still gated on frame 0
        board.mark_done(0)
        count, _cost = board.commit()
        assert count == 2

    def test_skip_respects_lap_protection(self):
        board = OrderingBoard(32, RMW)
        with pytest.raises(ValueError):
            board.skip(32)


class TestModeEquivalence:
    """Both implementations must express identical ordering semantics."""

    def test_same_commit_sequence_for_any_interleaving(self):
        import random
        rng = random.Random(42)
        for _trial in range(20):
            order = list(range(48))
            rng.shuffle(order)
            boards = {mode: OrderingBoard(64, mode) for mode in (SW, RMW)}
            commits = {mode: [] for mode in (SW, RMW)}
            for seq in order:
                for mode, board in boards.items():
                    board.mark_done(seq)
                    count, _ = board.commit()
                    commits[mode].append(count)
            assert commits[SW] == commits[RMW]
            assert boards[SW].commit_seq == boards[RMW].commit_seq == 48

    def test_same_commit_sequence_across_ring_wraps(self):
        """Windowed random interleaving driven far past the ring size, so
        the RMW ``last = index - 1`` boundary case (-1 at every ring and
        word wrap) is exercised against the software scan."""
        import random
        rng = random.Random(7)
        ring = 32
        total = 5 * ring + 17
        boards = {mode: OrderingBoard(ring, mode) for mode in (SW, RMW)}
        commits = {mode: [] for mode in (SW, RMW)}
        next_seq = 0
        window = []
        while next_seq < total or window:
            # Keep an in-flight window inside the lap-protection bound:
            # never issue a sequence a full ring ahead of the commit
            # pointer (the earliest unmarked frame pins that pointer).
            frontier = boards[SW].commit_seq
            while (next_seq < total and len(window) < ring // 2
                   and next_seq < frontier + ring):
                window.append(next_seq)
                next_seq += 1
            seq = window.pop(rng.randrange(len(window)))
            for mode, board in boards.items():
                board.mark_done(seq)
                count, _ = board.commit()
                commits[mode].append(count)
        assert commits[SW] == commits[RMW]
        assert boards[SW].commit_seq == boards[RMW].commit_seq == total

    def test_skip_equivalence_with_random_holes(self):
        import random
        rng = random.Random(13)
        ring = 64
        total = 3 * ring
        holes = {seq for seq in range(total) if rng.random() < 0.2}
        boards = {mode: OrderingBoard(ring, mode) for mode in (SW, RMW)}
        for start in range(0, total, ring // 2):
            chunk = list(range(start, start + ring // 2))
            rng.shuffle(chunk)
            for seq in chunk:
                for board in boards.values():
                    if seq in holes:
                        board.skip(seq)
                    else:
                        board.mark_done(seq)
            counts = {mode: board.commit()[0] for mode, board in boards.items()}
            assert counts[SW] == counts[RMW]
        assert boards[SW].commit_seq == boards[RMW].commit_seq == total
        assert boards[SW].skipped == boards[RMW].skipped == len(holes)


class TestRmwRingWrap:
    """Regression coverage for ``_commit_rmw``'s word/ring boundary
    arithmetic (``last = index - 1`` is -1 exactly at a ring wrap)."""

    def test_commit_starting_exactly_at_ring_boundary(self):
        ring = 32
        board = OrderingBoard(ring, RMW)
        for seq in range(ring):
            board.mark_done(seq)
        assert board.commit()[0] == ring
        assert board.commit_seq % ring == 0  # pointer parked on the wrap
        for seq in range(ring, ring + 5):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 5
        assert board.commit_seq == ring + 5

    def test_run_spanning_the_wrap_commits_in_two_calls(self):
        ring = 32
        board = OrderingBoard(ring, RMW)
        for seq in range(ring - 4):
            board.mark_done(seq)
        board.commit()
        # Mark a run crossing the wrap: 28..31 then 32..35.
        for seq in range(ring - 4, ring + 4):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 8  # the loop follows the run across the wrap
        assert board.commit_seq == ring + 4

    def test_many_laps_stay_consistent(self):
        ring = 32
        board = OrderingBoard(ring, RMW)
        for lap in range(8):
            base = lap * ring
            for offset in (1, 0, 3, 2):  # small out-of-order shuffle
                for seq in range(base + offset, base + ring, 4):
                    board.mark_done(seq)
            count, _cost = board.commit()
            assert count == ring
        assert board.commit_seq == 8 * ring
        assert board.pending == 0


class TestCostAsymmetry:
    """The RMW instructions exist to make ordering cheap."""

    def _total_cost(self, mode, frames=64):
        board = OrderingBoard(128, mode)
        instructions = 0.0
        accesses = 0.0
        for seq in range(frames):
            cost = board.mark_done(seq)
            instructions += cost.instructions
            accesses += cost.loads + cost.stores
        _count, cost = board.commit()
        instructions += cost.instructions
        accesses += cost.loads + cost.stores
        return instructions, accesses

    def test_rmw_marks_cheaper(self):
        sw_mark = OrderingBoard(64, SW).mark_done(0)
        rmw_mark = OrderingBoard(64, RMW).mark_done(0)
        assert rmw_mark.instructions < sw_mark.instructions
        assert (rmw_mark.loads + rmw_mark.stores) < (sw_mark.loads + sw_mark.stores)

    def test_rmw_commit_scales_per_word_not_per_frame(self):
        sw_board = OrderingBoard(128, SW)
        rmw_board = OrderingBoard(128, RMW)
        for seq in range(64):
            sw_board.mark_done(seq)
            rmw_board.mark_done(seq)
        _c, sw_cost = sw_board.commit()
        _c, rmw_cost = rmw_board.commit()
        # 64 frames: software pays ~64 loop trips, RMW pays ~3 updates.
        assert rmw_cost.instructions < sw_cost.instructions / 5

    def test_overall_reduction_exceeds_half(self):
        sw_instructions, sw_accesses = self._total_cost(SW)
        rmw_instructions, rmw_accesses = self._total_cost(RMW)
        assert rmw_instructions < 0.5 * sw_instructions
        assert rmw_accesses < 0.5 * sw_accesses

    def test_hw_pointer_board_costs_more_in_software(self):
        plain = OrderingBoard(64, SW)
        hw = OrderingBoard(64, SW, hw_pointer=True)
        for seq in range(8):
            plain.mark_done(seq)
            hw.mark_done(seq)
        _c, plain_cost = plain.commit()
        _c, hw_cost = hw.commit()
        assert hw_cost.instructions > plain_cost.instructions
