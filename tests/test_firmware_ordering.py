"""Frame-ordering boards: software-only vs RMW-enhanced."""

import pytest

from repro.firmware import OrderingBoard, OrderingMode

SW = OrderingMode.SOFTWARE
RMW = OrderingMode.RMW


class TestBoardBasics:
    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_in_order_completion_commits_immediately(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(0)
        board.mark_done(1)
        count, _cost = board.commit()
        assert count == 2
        assert board.commit_seq == 2

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_gap_blocks_commit(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(1)  # frame 0 not done yet
        count, _cost = board.commit()
        assert count == 0
        assert board.commit_seq == 0

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_gap_fill_releases_run(self, mode):
        board = OrderingBoard(64, mode)
        for seq in (1, 2, 3):
            board.mark_done(seq)
        board.mark_done(0)
        count, _cost = board.commit()
        assert count == 4

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_out_of_order_marks_commit_in_order(self, mode):
        board = OrderingBoard(64, mode)
        for seq in (5, 3, 0, 1, 4, 2):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 6
        assert board.commit_seq == 6

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_commit_crosses_word_boundaries(self, mode):
        board = OrderingBoard(128, mode)
        for seq in range(70):
            board.mark_done(seq)
        count, _cost = board.commit()
        assert count == 70

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_ring_wraparound(self, mode):
        board = OrderingBoard(32, mode)
        for wrap in range(4):
            for offset in range(32):
                board.mark_done(wrap * 32 + offset)
            count, _cost = board.commit()
            assert count == 32
        assert board.commit_seq == 128

    @pytest.mark.parametrize("mode", [SW, RMW])
    def test_double_commit_idempotent(self, mode):
        board = OrderingBoard(64, mode)
        board.mark_done(0)
        board.commit()
        count, _cost = board.commit()
        assert count == 0

    def test_lap_protection(self):
        board = OrderingBoard(32, RMW)
        with pytest.raises(ValueError):
            board.mark_done(32)  # would alias bit 0 while seq 0 pending

    def test_already_committed_rejected(self):
        board = OrderingBoard(32, RMW)
        board.mark_done(0)
        board.commit()
        with pytest.raises(ValueError):
            board.mark_done(0)

    def test_ring_size_validation(self):
        with pytest.raises(ValueError):
            OrderingBoard(33, RMW)
        with pytest.raises(ValueError):
            OrderingBoard(0, RMW)

    def test_requires_lock_flag(self):
        assert OrderingBoard(32, SW).requires_lock
        assert not OrderingBoard(32, RMW).requires_lock

    def test_pending_counts_consecutive(self):
        board = OrderingBoard(64, RMW)
        board.mark_done(0)
        board.mark_done(1)
        board.mark_done(3)
        assert board.pending == 2


class TestModeEquivalence:
    """Both implementations must express identical ordering semantics."""

    def test_same_commit_sequence_for_any_interleaving(self):
        import random
        rng = random.Random(42)
        for _trial in range(20):
            order = list(range(48))
            rng.shuffle(order)
            boards = {mode: OrderingBoard(64, mode) for mode in (SW, RMW)}
            commits = {mode: [] for mode in (SW, RMW)}
            for seq in order:
                for mode, board in boards.items():
                    board.mark_done(seq)
                    count, _ = board.commit()
                    commits[mode].append(count)
            assert commits[SW] == commits[RMW]
            assert boards[SW].commit_seq == boards[RMW].commit_seq == 48


class TestCostAsymmetry:
    """The RMW instructions exist to make ordering cheap."""

    def _total_cost(self, mode, frames=64):
        board = OrderingBoard(128, mode)
        instructions = 0.0
        accesses = 0.0
        for seq in range(frames):
            cost = board.mark_done(seq)
            instructions += cost.instructions
            accesses += cost.loads + cost.stores
        _count, cost = board.commit()
        instructions += cost.instructions
        accesses += cost.loads + cost.stores
        return instructions, accesses

    def test_rmw_marks_cheaper(self):
        sw_mark = OrderingBoard(64, SW).mark_done(0)
        rmw_mark = OrderingBoard(64, RMW).mark_done(0)
        assert rmw_mark.instructions < sw_mark.instructions
        assert (rmw_mark.loads + rmw_mark.stores) < (sw_mark.loads + sw_mark.stores)

    def test_rmw_commit_scales_per_word_not_per_frame(self):
        sw_board = OrderingBoard(128, SW)
        rmw_board = OrderingBoard(128, RMW)
        for seq in range(64):
            sw_board.mark_done(seq)
            rmw_board.mark_done(seq)
        _c, sw_cost = sw_board.commit()
        _c, rmw_cost = rmw_board.commit()
        # 64 frames: software pays ~64 loop trips, RMW pays ~3 updates.
        assert rmw_cost.instructions < sw_cost.instructions / 5

    def test_overall_reduction_exceeds_half(self):
        sw_instructions, sw_accesses = self._total_cost(SW)
        rmw_instructions, rmw_accesses = self._total_cost(RMW)
        assert rmw_instructions < 0.5 * sw_instructions
        assert rmw_accesses < 0.5 * sw_accesses

    def test_hw_pointer_board_costs_more_in_software(self):
        plain = OrderingBoard(64, SW)
        hw = OrderingBoard(64, SW, hw_pointer=True)
        for seq in range(8):
            plain.mark_done(seq)
            hw.mark_done(seq)
        _c, plain_cost = plain.commit()
        _c, hw_cost = hw.commit()
        assert hw_cost.instructions > plain_cost.instructions
