"""Cross-module integration tests: determinism, backpressure, and
end-to-end timing chains."""

import pytest

from repro.firmware.ordering import OrderingMode
from repro.net.ethernet import EthernetTiming
from repro.nic import NicConfig, RMW_166MHZ, ThroughputSimulator
from repro.units import mhz
from dataclasses import replace


def run(config, payload=1472, warmup=0.2e-3, measure=0.4e-3, offered=1.0):
    return ThroughputSimulator(config, payload, offered_fraction=offered).run(
        warmup_s=warmup, measure_s=measure
    )


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        first = run(RMW_166MHZ)
        second = run(RMW_166MHZ)
        assert first.tx_frames == second.tx_frames
        assert first.rx_frames == second.rx_frames
        assert first.busy_cycles == pytest.approx(second.busy_cycles)
        assert first.scratchpad_core_accesses == second.scratchpad_core_accesses
        assert first.sdram_transferred_bytes == second.sdram_transferred_bytes

    def test_micro_tier_deterministic(self):
        from repro.firmware.kernels import assemble_firmware
        from repro.nic import MicroNic

        def one_run():
            nic = MicroNic(NicConfig(cores=3), assemble_firmware("order_sw", 1))
            nic.run()
            return nic.combined_stats()

        a, b = one_run(), one_run()
        assert a.cycles == b.cycles
        assert a.conflict_stalls == b.conflict_stalls


class TestBackpressure:
    def test_tiny_rx_buffer_forces_drops(self):
        # Two frames of buffering cannot cover the ~2 us land-to-commit
        # pipeline at 812 kfps, so the MAC must tail-drop.
        config = replace(RMW_166MHZ, rx_buffer_bytes=3072)
        result = run(config)
        assert result.rx_dropped > 0
        assert result.rx_fps < 0.9 * EthernetTiming().frames_per_second(1518)

    def test_tiny_tx_buffer_limits_send(self):
        config = replace(RMW_166MHZ, tx_buffer_bytes=4096)  # ~2 frames
        result = run(config)
        assert result.tx_fps < 0.7 * EthernetTiming().frames_per_second(1518)
        # Receive is unaffected by the transmit buffer.
        assert result.rx_fps > 0.9 * EthernetTiming().frames_per_second(1518)

    def test_small_bd_staging_still_functions(self):
        config = replace(RMW_166MHZ, tx_bd_buffer_frames=16)
        result = run(config)
        assert result.tx_frames > 0

    def test_huge_dma_latency_grows_inflight_not_throughput(self):
        slow_host = replace(RMW_166MHZ, dma_latency_s=20e-6)
        fast_host = RMW_166MHZ
        slow = run(slow_host)
        fast = run(fast_host)
        # Latency is hidden by outstanding frames: throughput holds to
        # within a few percent despite ~17x the host latency.
        assert slow.total_fps > 0.9 * fast.total_fps

    def test_constrained_recv_ring_survives(self):
        config = replace(RMW_166MHZ, recv_ring_capacity=32, recv_bd_low_water=16)
        result = run(config)
        assert result.rx_frames > 0


class TestEndToEndChains:
    def test_every_committed_rx_frame_was_offered(self):
        result = run(RMW_166MHZ)
        assert result.rx_frames <= result.rx_offered + 64  # warmup carryover

    def test_tx_wire_rate_never_exceeds_link(self):
        result = run(RMW_166MHZ)
        limit = EthernetTiming().frames_per_second(1518)
        assert result.tx_fps <= limit * 1.01

    def test_sdram_traffic_scales_with_frames(self):
        result = run(RMW_166MHZ)
        frames = result.tx_frames + result.rx_frames
        # Each frame crosses the SDRAM twice (~2 x 1518 B useful).
        expected = frames * 2 * 1518
        assert result.sdram_useful_bytes == pytest.approx(expected, rel=0.1)

    def test_event_queue_stays_bounded(self):
        result = run(RMW_166MHZ)
        assert result.event_queue_high_water < 256

    def test_offered_fraction_sweep_monotonic(self):
        rates = []
        for offered in (0.25, 0.5, 0.75, 1.0):
            rates.append(run(RMW_166MHZ, offered=offered).rx_fps)
        assert rates == sorted(rates)

    def test_outstanding_frames_in_the_hundreds(self):
        """Section 7: the NIC keeps 'several hundred outstanding frames
        in various stages of processing' to hide DMA latency."""
        result = run(RMW_166MHZ)
        assert 50 < result.mean_outstanding_frames < 1500

    def test_rx_commit_latency_dominated_by_dma(self):
        result = run(RMW_166MHZ)
        # Land-to-commit covers firmware dispatch + host DMA (1.2 us)
        # + completion processing: a few microseconds, not milliseconds.
        assert 1.2e-6 < result.mean_rx_commit_latency_s < 50e-6

    def test_latency_grows_with_host_latency(self):
        slow = run(replace(RMW_166MHZ, dma_latency_s=10e-6))
        fast = run(RMW_166MHZ)
        assert slow.mean_rx_commit_latency_s > fast.mean_rx_commit_latency_s

    def test_interrupt_coalescing_active(self):
        simulator = ThroughputSimulator(RMW_166MHZ, 1472)
        simulator.run(warmup_s=0.2e-3, measure_s=0.4e-3)
        stats = simulator.driver.stats
        assert stats.interrupts > 0
        assert stats.completions_per_interrupt > 1.5


class TestConfigSurface:
    def test_with_helpers(self):
        base = NicConfig()
        assert base.with_cores(8).cores == 8
        assert base.with_frequency(mhz(200)).core_frequency_hz == mhz(200)
        assert base.with_ordering(OrderingMode.SOFTWARE).ordering_mode is (
            OrderingMode.SOFTWARE
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NicConfig(cores=0)
        with pytest.raises(ValueError):
            NicConfig(scratchpad_banks=0)
        with pytest.raises(ValueError):
            NicConfig(send_batch_max=0)
        with pytest.raises(ValueError):
            NicConfig(ordering_ring=100)

    def test_label(self):
        assert "6x166MHz" in RMW_166MHZ.label
        assert RMW_166MHZ.label.endswith("rmw")

    def test_run_window_validation(self):
        simulator = ThroughputSimulator(RMW_166MHZ, 1472)
        with pytest.raises(ValueError):
            simulator.run(warmup_s=-1, measure_s=1e-3)
        with pytest.raises(ValueError):
            ThroughputSimulator(RMW_166MHZ, 1472).run(warmup_s=0, measure_s=0)


class TestChecksumService:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            NicConfig(checksum_offload="magic")

    def test_assist_mode_free(self):
        none = run(RMW_166MHZ)
        assist = run(replace(RMW_166MHZ, checksum_offload="assist"))
        assert assist.line_rate_fraction() == pytest.approx(
            none.line_rate_fraction(), abs=0.03
        )

    def test_firmware_mode_collapses_throughput(self):
        firmware = run(replace(RMW_166MHZ, checksum_offload="firmware"))
        assert firmware.line_rate_fraction() < 0.4
        assert firmware.core_utilization > 0.95


class TestBurstyArrivals:
    def test_same_average_load(self):
        smooth = run(RMW_166MHZ, offered=0.5)
        bursty = ThroughputSimulator(
            RMW_166MHZ, 1472, offered_fraction=0.5, rx_burst_frames=8
        ).run(warmup_s=0.2e-3, measure_s=0.4e-3)
        assert bursty.rx_fps == pytest.approx(smooth.rx_fps, rel=0.1)

    def test_bursts_overflow_small_buffers(self):
        """On/off traffic at a modest average rate drops frames a
        smooth stream of the same rate would not — the buffer-sizing
        story behind the paper's generous SDRAM staging."""
        config = replace(RMW_166MHZ, rx_buffer_bytes=4096)
        smooth = ThroughputSimulator(config, 100, offered_fraction=0.12).run(
            warmup_s=0.3e-3, measure_s=0.5e-3
        )
        bursty = ThroughputSimulator(
            config, 100, offered_fraction=0.12, rx_burst_frames=64
        ).run(warmup_s=0.3e-3, measure_s=0.5e-3)
        assert bursty.rx_dropped > 10 * max(1, smooth.rx_dropped)
        assert bursty.rx_fps < smooth.rx_fps

    def test_burst_size_validated(self):
        with pytest.raises(ValueError):
            ThroughputSimulator(RMW_166MHZ, 1472, rx_burst_frames=0)
