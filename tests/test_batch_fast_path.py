"""Batched fast path: chained timers, chunk sources, conformance.

The contract under test is byte-identity: every observable sequence —
event order, tie-breaking against heap events, monitor ticket
accounting, golden-corpus digests — must match the reference per-event
heap path exactly.  See docs/observability.md ("Batched fast path").
"""

import os

import pytest

from repro.check import golden as golden_mod
from repro.check.monitor import InvariantMonitor
from repro.net.workload import ConstantSize, ImixSize
from repro.sim import Simulator
from repro.sim import batch as batch_mod
from repro.sim.stats import Histogram

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden.json")


# ----------------------------------------------------------------------
# ChainedTimer: the ticket-faithful single-slot chain replacement
# ----------------------------------------------------------------------
class TestChainedTimer:
    def test_fires_at_armed_time(self):
        sim = Simulator()
        fired = []
        timer = sim.batch.timer(lambda: fired.append(sim.now_ps))
        timer.arm(250)
        sim.run()
        assert fired == [250]
        assert sim.events_processed == 1

    def test_callback_may_rearm(self):
        sim = Simulator()
        fired = []

        def pump():
            fired.append(sim.now_ps)
            if len(fired) < 5:
                timer.arm(sim.now_ps + 100)

        timer = sim.batch.timer(pump)
        timer.arm(0)
        sim.run()
        assert fired == [0, 100, 200, 300, 400]
        assert sim.events_processed == 5

    def test_double_arm_raises(self):
        sim = Simulator()
        timer = sim.batch.timer(lambda: None)
        timer.arm(10)
        with pytest.raises(RuntimeError):
            timer.arm(20)

    def test_arm_in_past_raises(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        timer = sim.batch.timer(lambda: None)
        with pytest.raises(ValueError):
            timer.arm(50)

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        fired = []
        timer = sim.batch.timer(lambda: fired.append(sim.now_ps))
        timer.arm(10)
        assert timer.pending == 1
        timer.cancel()
        timer.cancel()
        assert timer.pending == 0
        sim.run()
        assert fired == []

    def test_tie_order_matches_schedule_order(self):
        # The timer allocates a real kernel ticket at arm() time, so a
        # same-(time, priority) race against heap events resolves in
        # program order — exactly like the schedule_at chain it replaces.
        sim = Simulator()
        order = []
        sim.schedule_at(100, lambda: order.append("heap-first"))
        timer = sim.batch.timer(lambda: order.append("timer"))
        timer.arm(100)
        sim.schedule_at(100, lambda: order.append("heap-second"))
        sim.run()
        assert order == ["heap-first", "timer", "heap-second"]

    def test_monitor_ticket_conservation(self):
        sim = Simulator()
        sim.monitor = InvariantMonitor()
        fired = []

        def pump():
            fired.append(sim.now_ps)
            if len(fired) < 3:
                timer.arm(sim.now_ps + 7)

        timer = sim.batch.timer(pump)
        timer.arm(0)
        cancelled = sim.batch.timer(lambda: None)
        cancelled.arm(1)
        cancelled.cancel()
        sim.run()
        sim.monitor.check_ticket_conservation()
        assert not sim.monitor.violations
        assert fired == [0, 7, 14]


# ----------------------------------------------------------------------
# BatchSource: precomputed-quanta chunk draining
# ----------------------------------------------------------------------
class TestBatchSource:
    def test_chunk_drain_covers_every_quantum(self):
        sim = Simulator()
        chunks = []
        sim.batch.periodic(
            5, 10, 1000,
            chunk_fn=lambda start, times: chunks.append((start, list(times))),
            window=256,
        )
        sim.run()
        flat = [t for _start, times in chunks for t in times]
        assert flat == [5 + 10 * k for k in range(1000)]
        assert chunks[0][0] == 0
        assert sum(len(times) for _start, times in chunks) == 1000
        assert sim.events_processed == 1000
        assert sim.now_ps == 5 + 10 * 999

    def test_heap_event_splits_the_chunk(self):
        sim = Simulator()
        order = []
        sim.batch.periodic(
            0, 10, 10,
            chunk_fn=lambda start, times: order.extend(
                ("batch", int(t)) for t in times
            ),
        )
        sim.schedule_at(35, lambda: order.append(("heap", 35)))
        sim.run()
        assert order.index(("heap", 35)) == 4  # after quanta 0,10,20,30
        assert [item for item in order if item[0] == "batch"] == [
            ("batch", 10 * k) for k in range(10)
        ]

    def test_same_instant_heap_event_wins_tie(self):
        # TIE_LOSER rank: a heap event at the exact quantum time always
        # fires before the batch consumes that quantum.
        sim = Simulator()
        order = []
        sim.batch.periodic(
            0, 10, 5,
            chunk_fn=lambda start, times: order.extend(int(t) for t in times),
        )
        sim.schedule_at(20, lambda: order.append("heap@20"))
        sim.run()
        assert order == [0, 10, "heap@20", 20, 30, 40]

    def test_until_ps_clamps_and_resumes(self):
        sim = Simulator()
        seen = []
        sim.batch.periodic(
            0, 10, 10,
            chunk_fn=lambda start, times: seen.extend(int(t) for t in times),
        )
        sim.run(until_ps=45)
        assert seen == [0, 10, 20, 30, 40]
        assert sim.now_ps == 45
        assert sim.pending_events == 5
        sim.run()
        assert seen == [10 * k for k in range(10)]

    def test_max_events_budget_limits_chunks(self):
        sim = Simulator()
        seen = []
        sim.batch.periodic(
            0, 10, 100,
            chunk_fn=lambda start, times: seen.extend(int(t) for t in times),
        )
        processed = sim.run(max_events=7)
        assert processed == 7
        assert seen == [10 * k for k in range(7)]
        sim.run()
        assert len(seen) == 100

    def test_stop_from_chunk(self):
        sim = Simulator()
        seen = []

        def chunk(start, times):
            seen.extend(int(t) for t in times)
            if seen[-1] >= 30:
                sim.stop()

        # A heap event every quantum keeps chunks at width one, so the
        # stop request takes effect mid-stream.
        sim.batch.periodic(0, 10, 10, chunk_fn=chunk)
        for k in range(10):
            sim.schedule_at(10 * k, lambda: None)
        sim.run()
        assert seen[-1] == 30

    def test_at_times_explicit_list(self):
        sim = Simulator()
        seen = []
        sim.batch.at_times(
            [3, 7, 7, 20],
            chunk_fn=lambda start, times: seen.extend(int(t) for t in times),
        )
        sim.run()
        assert seen == [3, 7, 7, 20]

    def test_per_event_fn_mode(self):
        sim = Simulator()
        seen = []
        sim.batch.periodic(0, 5, 4, fn=lambda index, when: seen.append(
            (index, when, sim.now_ps)
        ))
        sim.run()
        assert seen == [(0, 0, 0), (1, 5, 5), (2, 10, 10), (3, 15, 15)]

    def test_pending_and_peek_include_source(self):
        sim = Simulator()
        sim.batch.periodic(40, 10, 3, chunk_fn=lambda start, times: None)
        sim.schedule(100, lambda: None)
        assert sim.pending_events == 4
        assert sim.peek_next_time() == 40

    def test_monitor_forces_per_event_conformance(self):
        # With a monitor attached the source degrades to one-quantum
        # dispatch with per-event tickets — conservation must hold and
        # the event order must match the monitor-off run exactly.
        def trace(with_monitor):
            sim = Simulator()
            if with_monitor:
                sim.monitor = InvariantMonitor()
            order = []
            sim.batch.periodic(
                0, 10, 20,
                chunk_fn=lambda start, times: order.extend(
                    int(t) for t in times
                ),
            )
            sim.schedule_at(50, lambda: order.append("heap"))
            sim.run()
            if with_monitor:
                sim.monitor.check_ticket_conservation()
                assert not sim.monitor.violations
            return order

        assert trace(True) == trace(False)

    def test_pure_python_fallback_matches_numpy(self, monkeypatch):
        if not batch_mod.HAVE_NUMPY:
            pytest.skip("numpy unavailable; the fallback IS the path")

        def trace():
            sim = Simulator()
            order = []
            sim.batch.periodic(
                0, 7, 5001,
                chunk_fn=lambda start, times: order.append(
                    (start, [int(t) for t in times])
                ),
                window=512,
            )
            sim.schedule_at(7 * 2500, lambda: order.append("heap"))
            sim.run()
            return order, sim.events_processed, sim.now_ps

        with_numpy = trace()
        monkeypatch.setattr(batch_mod, "_np", None)
        without = trace()
        assert with_numpy == without


# ----------------------------------------------------------------------
# Vectorized helpers: exact equivalence with their scalar twins
# ----------------------------------------------------------------------
class TestVectorizedHelpers:
    @pytest.mark.parametrize("model", [ConstantSize(1472), ImixSize()])
    def test_size_arrays_match_scalar_reads(self, model):
        assert model.supports_batch
        start, count = 3, 50
        payloads = model.payload_bytes_array(start, count)
        frames = model.frame_bytes_array(start, count)
        assert [int(v) for v in payloads] == [
            model.payload_bytes(start + k) for k in range(count)
        ]
        assert [int(v) for v in frames] == [
            model.frame_bytes(start + k) for k in range(count)
        ]

    def test_recorded_model_opts_out(self):
        from repro.fabric.endpoint import RecordedSizeModel

        assert not RecordedSizeModel().supports_batch

    def test_histogram_record_many_matches_scalar(self):
        import random

        rng = random.Random(11)
        samples = [rng.uniform(0, 2e-6) for _ in range(500)]
        bounds = [k * 1e-7 for k in range(1, 20)]
        one = Histogram("latency", bounds)
        two = Histogram("latency", bounds)
        for value in samples:
            one.record(value)
        two.record_many(samples)
        assert one.counts == two.counts
        assert one.sum == two.sum
        assert one.total == two.total
        assert one.min == two.min and one.max == two.max


# ----------------------------------------------------------------------
# End-to-end byte-identity: the acceptance gate
# ----------------------------------------------------------------------
class TestFastPathGolden:
    def test_fast_corpus_matches_pinned_digests(self):
        """Every canonical golden spec, run with ``fast=True``, must
        produce the byte-identical digest pinned for the reference
        path.  One corpus serves both modes — that IS the contract."""
        mismatches = golden_mod.compare_corpus(GOLDEN_PATH, fast=True)
        assert mismatches == {}, (
            f"fast path diverged from the golden corpus in "
            f"{sorted(mismatches)}"
        )
