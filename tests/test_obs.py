"""Observability layer: tracer, exporters, sampler, profiler.

The critical property throughout: observation never changes what is
observed.  The determinism tests prove a traced/sampled/profiled run
produces the same simulated timeline and statistics as a bare one.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.nic.config import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.obs import (
    FrameStage,
    MetricsSampler,
    NULL_TRACER,
    RX_STAGE_ORDER,
    SimProfiler,
    STAGE_ORDERS,
    TX_STAGE_ORDER,
    Tracer,
    chrome_trace_dict,
    describe_callback,
    prometheus_metric_name,
    prometheus_text,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.units import mhz


def quick_sim(tracer=None) -> ThroughputSimulator:
    config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    return ThroughputSimulator(config, 1472, tracer=tracer)


@pytest.fixture(scope="module")
def traced_run():
    """One short traced run shared by the lifecycle/exporter tests."""
    tracer = Tracer()
    sim = quick_sim(tracer=tracer)
    result = sim.run(warmup_s=0.1e-3, measure_s=0.2e-3)
    return tracer, sim, result


class TestTracerPrimitives:
    def test_instant_and_complete_record(self):
        tracer = Tracer()
        tracer.instant("core0", "tick", 1000, seq=1)
        tracer.complete("core0", "handler", 2000, 500, seq=2)
        assert len(tracer) == 2
        assert tracer.events[0].phase == "i"
        assert tracer.events[1].phase == "X"
        assert tracer.events[1].dur_ps == 500

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.complete("core0", "bad", 100, -5)

    def test_span_nesting_lifo(self):
        tracer = Tracer()
        tracer.begin("core0", "outer", 0)
        tracer.begin("core0", "inner", 10)
        assert tracer.open_depth("core0") == 2
        tracer.end("core0", 20)
        tracer.end("core0", 30)
        assert tracer.open_depth("core0") == 0
        phases = [(e.phase, e.name) for e in tracer.events]
        assert phases == [
            ("B", "outer"), ("B", "inner"), ("E", "inner"), ("E", "outer"),
        ]

    def test_unbalanced_end_is_dropped_not_corrupting(self):
        tracer = Tracer()
        tracer.end("core0", 5)
        assert tracer.dropped_ends == 1
        assert len(tracer.events) == 0

    def test_null_tracer_is_silent_and_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x", "y", 0)
        NULL_TRACER.complete("x", "y", 0, 1)
        NULL_TRACER.begin("x", "y", 0)
        NULL_TRACER.end("x", 0)
        NULL_TRACER.counter("x", "y", 0, 1.0)
        NULL_TRACER.frame_stage("tx", 0, FrameStage.WIRE, 0)

    def test_frame_stage_first_timestamp_wins(self):
        tracer = Tracer()
        tracer.frame_stage("tx", 7, FrameStage.EVENT_DISPATCHED, 100)
        tracer.frame_stage("tx", 7, FrameStage.EVENT_DISPATCHED, 200)  # retry
        assert tracer.frame_lifecycle("tx", 7)[FrameStage.EVENT_DISPATCHED] == 100
        assert len(tracer.events) == 2  # both remain on the timeline


class TestFrameLifecycle:
    def test_stage_orders_cover_issue_stages(self):
        # rx-landed -> dispatch -> handler -> DMA issued/complete -> wire.
        assert RX_STAGE_ORDER[0] is FrameStage.RX_LANDED
        assert TX_STAGE_ORDER[-1] is FrameStage.WIRE
        for order in STAGE_ORDERS.values():
            assert FrameStage.EVENT_DISPATCHED in order
            assert FrameStage.HANDLER_RUN in order
            assert FrameStage.DMA_ISSUED in order
            assert FrameStage.DMA_COMPLETE in order

    def test_run_produces_complete_lifecycles(self, traced_run):
        tracer, _sim, result = traced_run
        assert result.tx_frames > 0 and result.rx_frames > 0
        for direction in ("tx", "rx"):
            complete = tracer.complete_frames(direction)
            assert len(complete) > 10, f"no complete {direction} lifecycles traced"

    def test_lifecycle_ordering_invariant(self, traced_run):
        tracer, _sim, _result = traced_run
        checked = 0
        for direction, order in STAGE_ORDERS.items():
            for seq in tracer.complete_frames(direction):
                stages = tracer.frame_lifecycle(direction, seq)
                times = [stages[stage] for stage in order]
                assert times == sorted(times), (
                    f"{direction} frame {seq} visited stages out of order: "
                    f"{list(zip([s.value for s in order], times))}"
                )
                checked += 1
        assert checked > 20

    def test_tracks_cover_cores_assists_and_macs(self, traced_run):
        tracer, _sim, _result = traced_run
        tracks = {event.track for event in tracer.events}
        for expected in ("core0", "core1", "dma-read", "dma-write",
                        "mac-tx", "mac-rx", "event-queue"):
            assert expected in tracks, f"missing track {expected}"


class TestChromeTraceExport:
    def test_schema_validity(self, traced_run):
        tracer, _sim, _result = traced_run
        payload = chrome_trace_dict(tracer)
        assert "traceEvents" in payload
        events = payload["traceEvents"]
        assert events, "empty trace"
        tids_named = set()
        for event in events:
            assert set(event) >= {"name", "ph", "pid", "tid"}
            assert event["ph"] in {"M", "X", "B", "E", "i", "C"}
            if event["ph"] == "M":
                if event["name"] == "thread_name":
                    tids_named.add(event["tid"])
                continue
            assert "ts" in event and event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Every non-metadata event rides a named thread/track.
        used = {e["tid"] for e in events if e["ph"] != "M"}
        assert used <= tids_named

    def test_json_round_trip(self, traced_run, tmp_path):
        tracer, _sim, _result = traced_run
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ns"
        assert len(loaded["traceEvents"]) >= len(tracer.events)

    def test_open_spans_closed_at_export(self):
        tracer = Tracer()
        tracer.begin("core0", "never-ended", 100)
        payload = chrome_trace_dict(tracer)
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases.count("B") == phases.count("E")


class TestMetricsSampler:
    def test_periodic_sampling(self):
        sim = Simulator()
        state = {"value": 0}

        def bump():
            state["value"] += 1
            sim.schedule(1_000_000, bump)

        sim.schedule(1_000_000, bump)
        sampler = MetricsSampler(sim, lambda: {"v": state["value"]}, 10_000_000)
        sampler.start()
        sim.run(until_ps=100_000_000)
        assert len(sampler.samples) == 10
        times = [ts for ts, _ in sampler.samples]
        assert times == sorted(times)
        values = [s["v"] for _, s in sampler.samples]
        assert values == sorted(values) and values[-1] > values[0]

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSampler(Simulator(), dict, 0)

    def test_csv_and_json_export(self, tmp_path):
        sim = Simulator()
        sampler = MetricsSampler(sim, lambda: {"a": 1.0, "b": 2.0}, 1000)
        sampler.start()
        sim.run(until_ps=3000)
        csv_text = sampler.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "t_ps,t_us,a,b"
        assert len(lines) == 1 + len(sampler.samples)
        parsed = json.loads(sampler.to_json())
        assert parsed["interval_ps"] == 1000
        assert parsed["samples"][0]["a"] == 1.0
        path = tmp_path / "m.csv"
        sampler.write(str(path), fmt="csv")
        assert path.read_text() == csv_text

    def test_stop_cancels_queued_tick(self):
        """Regression: stop() must cancel the in-flight tick on the kernel.

        Leaving the queued ``_tick`` behind as a live no-op inflated
        ``pending_events`` and made ``run()`` keep advancing simulated
        time to the dead tick's timestamp after the sampler stopped.
        """
        sim = Simulator()
        sampler = MetricsSampler(sim, lambda: {"v": 1.0}, 10_000)
        sampler.start()
        sim.run(until_ps=25_000)  # ticks at 10_000 and 20_000 fired
        assert len(sampler.samples) == 2
        sampler.stop()
        # The queued tick at 30_000 is cancelled, not a live zombie.
        assert sim.pending_events == 0
        assert sim.peek_next_time() is None
        sim.run()
        assert sim.now_ps == 25_000  # time did not advance to 30_000
        assert len(sampler.samples) == 2

    def test_stop_before_start_is_noop(self):
        sim = Simulator()
        sampler = MetricsSampler(sim, lambda: {"v": 1.0}, 10_000)
        sampler.stop()
        assert sim.pending_events == 0

    def test_restart_after_stop(self):
        sim = Simulator()
        sampler = MetricsSampler(sim, lambda: {"v": 1.0}, 10_000)
        sampler.start()
        sim.run(until_ps=15_000)
        sampler.stop()
        sampler.start()
        sim.run(until_ps=45_000)
        # One sample before stop (t=10k), then 25k+10k=... ticks resume
        # one interval after the restart instant (15k): 25k, 35k, 45k.
        times = [ts for ts, _ in sampler.samples]
        assert times == [10_000, 25_000, 35_000, 45_000]

    def test_throughput_sim_sampling_has_histograms(self):
        sim = quick_sim()
        sampler = sim.sample_metrics_every(50_000_000)
        sim.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        assert len(sampler.samples) >= 3
        final = sampler.samples[-1][1]
        assert "histogram.rx_commit_latency_us.p99" in final
        assert "counter.tx_wire_frames" in final
        assert final["counter.tx_wire_frames"] > 0


class TestPrometheusFormat:
    _LINE = re.compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9.e+-]+(nan|inf)?)$"
    )

    def test_text_format_is_valid(self):
        text = prometheus_text(
            {"counter.tx.frames": 42, "gauge.depth": 3.5,
             "histogram.lat.p99": 12.0},
        )
        lines = text.strip().splitlines()
        assert lines, "empty exposition"
        for line in lines:
            assert self._LINE.match(line), f"bad prometheus line: {line!r}"
        assert "# TYPE repro_counter_tx_frames counter" in lines
        assert "# TYPE repro_gauge_depth gauge" in lines
        assert "repro_counter_tx_frames 42" in lines

    def test_metric_name_sanitization(self):
        assert prometheus_metric_name("a.b-c/d") == "repro_a_b_c_d"
        assert re.match(r"^[a-zA-Z_:]", prometheus_metric_name("9lives", prefix=""))

    def test_sampler_prom_output(self, tmp_path):
        sim = quick_sim()
        sampler = sim.sample_metrics_every(100_000_000)
        sim.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        path = tmp_path / "metrics.prom"
        sampler.write(str(path), fmt="prom")
        body = path.read_text()
        assert "repro_counter_tx_wire_frames" in body
        for line in body.strip().splitlines():
            assert self._LINE.match(line), f"bad prometheus line: {line!r}"


class TestDeterminism:
    def test_traced_run_matches_untraced(self):
        """The acceptance invariant: tracing + sampling + profiling must
        not move a single simulated timestamp or statistic."""
        bare = quick_sim()
        bare_result = bare.run(warmup_s=0.1e-3, measure_s=0.2e-3)

        tracer = Tracer()
        instrumented = quick_sim(tracer=tracer)
        instrumented.sample_metrics_every(50_000_000)
        instrumented.sim.attach_profiler(SimProfiler())
        traced_result = instrumented.run(warmup_s=0.1e-3, measure_s=0.2e-3)

        assert instrumented.sim.now_ps == bare.sim.now_ps
        assert traced_result.to_dict() == bare_result.to_dict()
        assert len(tracer.events) > 0

    def test_traced_timestamps_lie_inside_run_window(self):
        tracer = Tracer()
        sim = quick_sim(tracer=tracer)
        sim.run(warmup_s=0.1e-3, measure_s=0.1e-3)
        # MAC wire spans may extend slightly past the cut-off; lifecycle
        # record times must all be non-negative and bounded by the last
        # scheduled horizon.
        horizon = sim.sim.now_ps * 2
        for event in tracer.events:
            assert 0 <= event.ts_ps <= horizon


class TestSimProfiler:
    def test_attribution_and_topn(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.attach_profiler(profiler)

        def busy():
            sum(range(200))

        for index in range(50):
            sim.schedule(index, busy)
            sim.schedule(index, lambda: None)
        sim.run()
        assert profiler.total_callbacks == 100
        keys = {key for key, _count, _wall in profiler.top(10)}
        assert any("busy" in key for key in keys)
        report = profiler.report(5)
        assert "simulator profile" in report
        assert "100 callbacks" in report

    def test_describe_unwraps_partials_and_methods(self):
        import functools

        def base():
            pass

        partial = functools.partial(functools.partial(base))
        assert describe_callback(partial).endswith("base")
        assert "TestSimProfiler" in describe_callback(self.test_attribution_and_topn)

    def test_by_module_collapses_keys(self):
        profiler = SimProfiler()
        profiler.record(quick_sim, 0.5)
        modules = profiler.by_module()
        assert any(name.startswith("tests.test_obs") or "test_obs" in name
                   for name in modules)

    def test_profiling_does_not_change_simulated_time(self):
        def make():
            sim = Simulator()
            for index in range(100):
                sim.schedule(index * 7, lambda: None)
            return sim

        bare = make()
        bare.run()
        profiled = make()
        profiled.attach_profiler(SimProfiler())
        profiled.run()
        assert profiled.now_ps == bare.now_ps
        assert profiled.events_processed == bare.events_processed


class TestMicroDeviceTracing:
    def test_register_accesses_traced(self):
        from repro.nic.microdev import (
            DMA_CMD_ADDR,
            DeviceMemory,
            RX_PROD_ADDR,
        )

        tracer = Tracer()
        memory = DeviceMemory(total_rx_frames=4, tracer=tracer)
        memory.cycle = 100
        memory.load_word(RX_PROD_ADDR)
        memory.store_word(DMA_CMD_ADDR, 1)
        names = [event.name for event in tracer.events]
        assert "rd RX_PROD" in names
        assert "wr DMA_CMD" in names
        assert all(event.track == "microdev" for event in tracer.events)

    def test_untraced_device_identical_behavior(self):
        from repro.nic.microdev import DeviceMemory, DMA_CMD_ADDR, DMA_PROD_ADDR

        plain = DeviceMemory(total_rx_frames=4)
        traced = DeviceMemory(total_rx_frames=4, tracer=Tracer())
        for memory in (plain, traced):
            memory.store_word(DMA_CMD_ADDR, 1)
            memory.cycle = 1000
        assert plain.load_word(DMA_PROD_ADDR) == traced.load_word(DMA_PROD_ADDR)
