"""InvariantMonitor shadow-state lifetime: the id-reuse staleness fix.

The monitor keys shadow state (board commit pointers, ring descriptor
counts, lock grant fronts) by ``id(obj)``.  CPython ``id()`` values are
only unique among *live* objects: once a watched object is garbage
collected, its id can be handed to a replacement object, which would
then inherit the dead object's shadow and trip a phantom violation.
The fix pins a strong reference to every identity-keyed object in
``InvariantMonitor._pins``.

``TestUnpinnedMutation`` is the mutation test referenced from
``repro/check/monitor.py``: it disables the pin and demonstrates the
pre-fix failure, proving the pin is load-bearing.
"""

import gc

import pytest

from repro.check.monitor import InvariantMonitor, InvariantViolation
from repro.host.rss import HostQueueModel, RssSpec
from repro.sim import Simulator


class _FakeBoard:
    """Duck-typed OrderingBoard: just what ``_board()`` reads."""

    def __init__(self, name, commit_seq=0, ring_size=8):
        self.name = name
        self.commit_seq = commit_seq
        self.ring_size = ring_size


def _commit_one(monitor, board):
    monitor.board_marked(board, board.commit_seq)
    old = board.commit_seq
    board.commit_seq += 1
    monitor.board_committed(board, old, board.commit_seq, 1)


def _churn_until_id_reuse(dead_id, attempts=1000):
    """Allocate boards until the allocator hands back ``dead_id``.

    CPython returns a freed object's slot to the next same-size
    allocation, so when the dead board really was collected this hits
    on the first attempt; a pinned (still-referenced) board's id is
    never handed out.
    """
    for _ in range(attempts):
        replacement = _FakeBoard("replacement")
        if id(replacement) == dead_id:
            return replacement
        del replacement
    return None


class TestShadowPinning:
    def test_board_churn_keeps_shadows_distinct(self):
        # N boards created and dropped against one shared monitor: each
        # must get a fresh shadow (no inherited commit pointers), which
        # only holds because the monitor pins every watched board.
        monitor = InvariantMonitor()
        for round_ in range(32):
            board = _FakeBoard(f"board{round_}")
            _commit_one(monitor, board)
            del board
            gc.collect()
        assert not monitor.violations
        assert len(monitor._pins) == 32  # every dead board stays pinned

    def test_ring_host_churn_keeps_shadows_distinct(self):
        monitor = InvariantMonitor()
        for _ in range(8):
            host = HostQueueModel(
                RssSpec(rings=2, completion_ps=100, interrupt_ps=0),
                sim=Simulator(), frame_bytes=1514,
                send_ring_capacity=8, recv_ring_capacity=4,
            )
            host.monitor = monitor
            host.complete_rx(0, 2, now_ps=0)
            host.sim.run()
            del host
            gc.collect()
        assert not monitor.violations

    def test_pin_is_idempotent(self):
        monitor = InvariantMonitor()
        board = _FakeBoard("b")
        _commit_one(monitor, board)
        _commit_one(monitor, board)
        assert list(monitor._pins.values()) == [board]


class TestUnpinnedMutation:
    def test_unpinned_shadow_inherits_dead_board_state(self, monkeypatch):
        # The mutation: neuter the pin and reproduce the pre-fix bug.
        # A watched board dies, the allocator reuses its id for a fresh
        # board, and the monitor misattributes the dead board's shadow
        # — a phantom "already-committed" violation on a brand-new
        # board's very first mark.
        monkeypatch.setattr(
            InvariantMonitor, "_pin", lambda self, obj: None
        )
        monitor = InvariantMonitor()
        board = _FakeBoard("victim")
        _commit_one(monitor, board)  # shadow commit_seq advances to 1
        dead_id = id(board)
        del board
        replacement = _churn_until_id_reuse(dead_id)
        if replacement is None:
            pytest.skip("allocator never reused the id; mutation unprovable")
        with pytest.raises(InvariantViolation, match="already-committed"):
            # seq 0 on a fresh board is legal; the inherited shadow
            # (commit_seq == 1) makes the monitor reject it.
            monitor.board_marked(replacement, 0)

    def test_pinned_shadow_survives_identical_churn(self):
        # Control arm: the exact same churn with the pin active cannot
        # reuse the id (the dead board is still referenced), so the
        # replacement gets a fresh shadow and the same mark is legal.
        monitor = InvariantMonitor()
        board = _FakeBoard("victim")
        _commit_one(monitor, board)
        dead_id = id(board)
        del board
        replacement = _churn_until_id_reuse(dead_id, attempts=64)
        assert replacement is None  # the pin keeps the id occupied
        fresh = _FakeBoard("fresh")
        monitor.board_marked(fresh, 0)
        assert not monitor.violations
