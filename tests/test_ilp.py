"""ILP limit analyzer (Table 2's machinery)."""

import pytest

from repro.ilp import (
    BranchModel,
    IlpConfig,
    IssueOrder,
    PipelineModel,
    TABLE2_CONFIGS,
    analyze_trace,
    ipc_table,
)
from repro.isa.trace import TraceEntry


def _entry(dest=None, sources=(), load=False, store=False, branch=False,
           jump=False, taken=False, addr=None, pc=0):
    return TraceEntry(
        pc=pc,
        mnemonic="synthetic",
        sources=tuple(sources),
        destination=dest,
        is_load=load,
        is_store=store,
        is_branch=branch,
        is_jump=jump,
        taken=taken,
        mem_address=addr,
    )


def _independent(n):
    """n mutually independent ALU instructions."""
    return [_entry(dest=i + 1) for i in range(n)]


def _chain(n):
    """n serially dependent ALU instructions."""
    return [_entry(dest=1, sources=(1,)) for _ in range(n)]


IO = IssueOrder.IN_ORDER
OOO = IssueOrder.OUT_OF_ORDER
PERFECT = PipelineModel.PERFECT
STALLS = PipelineModel.STALLS
PBP = BranchModel.PBP


class TestConfig:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            IlpConfig(IO, 0, PERFECT, PBP)

    def test_label(self):
        config = IlpConfig(OOO, 2, STALLS, BranchModel.NOBP)
        assert config.label == "OOO-2/stalls/nobp"

    def test_table2_config_count(self):
        # 2 orders x 3 widths x 2 pipelines x 3 branch models
        assert len(TABLE2_CONFIGS) == 36

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace([], IlpConfig(IO, 1, PERFECT, PBP))


class TestDataflowLimits:
    def test_independent_ops_fill_width(self):
        trace = _independent(40)
        assert analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, PBP)) == pytest.approx(4.0)

    def test_serial_chain_is_ipc_one(self):
        trace = _chain(40)
        for width in (1, 2, 4):
            ipc = analyze_trace(trace, IlpConfig(OOO, width, PERFECT, PBP))
            assert ipc == pytest.approx(1.0)

    def test_width_one_caps_ipc(self):
        trace = _independent(40)
        assert analyze_trace(trace, IlpConfig(IO, 1, PERFECT, PBP)) == pytest.approx(1.0)

    def test_ipc_never_exceeds_width(self):
        trace = _independent(100)
        for config in TABLE2_CONFIGS:
            assert analyze_trace(trace, config) <= config.width + 1e-9

    def test_load_use_latency_under_stalls(self):
        # load -> use on width 1: perfect gives 1.0; stalls add a bubble.
        trace = []
        for _ in range(20):
            trace.append(_entry(dest=1, load=True, addr=0))
            trace.append(_entry(dest=2, sources=(1,)))
        perfect = analyze_trace(trace, IlpConfig(IO, 1, PERFECT, PBP))
        stalled = analyze_trace(trace, IlpConfig(IO, 1, STALLS, PBP))
        assert perfect == pytest.approx(1.0)
        assert stalled < perfect

    def test_one_memory_port_under_stalls(self):
        trace = [_entry(dest=i + 1, load=True, addr=16 * i) for i in range(40)]
        ipc = analyze_trace(trace, IlpConfig(OOO, 4, STALLS, PBP))
        assert ipc == pytest.approx(1.0, abs=0.05)

    def test_store_load_forwarding_dependence(self):
        # A load from the word a store just wrote cannot issue in the
        # same cycle as the store, even out-of-order.
        with_dep = [
            _entry(store=True, sources=(3,), addr=64),
            _entry(dest=4, load=True, addr=64),
        ]
        without_dep = [
            _entry(store=True, sources=(3,), addr=64),
            _entry(dest=4, load=True, addr=128),
        ]
        dep_ipc = analyze_trace(with_dep, IlpConfig(OOO, 4, PERFECT, PBP))
        free_ipc = analyze_trace(without_dep, IlpConfig(OOO, 4, PERFECT, PBP))
        assert dep_ipc == pytest.approx(1.0)
        assert free_ipc == pytest.approx(2.0)


class TestBranchModels:
    def _branchy(self, n, taken=True):
        trace = []
        for i in range(n):
            trace.append(_entry(dest=1))
            trace.append(_entry(branch=True, sources=(2,), taken=taken))
        return trace

    def test_nobp_ends_issue_cycle(self):
        trace = self._branchy(20, taken=False)
        pbp = analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, PBP))
        nobp = analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, BranchModel.NOBP))
        assert nobp < pbp

    def test_pbp1_limits_branches_per_cycle(self):
        trace = [_entry(branch=True, taken=False) for _ in range(40)]
        pbp = analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, PBP))
        pbp1 = analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, BranchModel.PBP1))
        assert pbp == pytest.approx(4.0)
        assert pbp1 == pytest.approx(1.0)

    def test_taken_branch_penalty_only_with_stalls(self):
        taken = self._branchy(20, taken=True)
        nobp_perfect = analyze_trace(taken, IlpConfig(IO, 1, PERFECT, BranchModel.NOBP))
        nobp_stalls = analyze_trace(taken, IlpConfig(IO, 1, STALLS, BranchModel.NOBP))
        assert nobp_stalls < nobp_perfect


class TestOrderingRelations:
    """Relations Table 2 depends on, over a realistic trace."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.firmware.kernels import capture_trace
        return capture_trace("order_sw", iterations=2)

    # NOTE: the scheduler is greedy earliest-fit, which exhibits the
    # classic Graham scheduling anomalies: tightening a constraint can
    # occasionally *improve* the greedy schedule by a fraction of a
    # percent.  The monotonicity assertions therefore carry a 2%
    # relative tolerance.
    TOL = 0.02

    def test_ooo_geq_inorder(self, trace):
        for width in (1, 2, 4):
            for pipeline in (PERFECT, STALLS):
                for branch in BranchModel:
                    io = analyze_trace(trace, IlpConfig(IO, width, pipeline, branch))
                    ooo = analyze_trace(trace, IlpConfig(OOO, width, pipeline, branch))
                    assert ooo >= io * (1 - self.TOL)

    def test_wider_is_no_slower(self, trace):
        for order in (IO, OOO):
            ipc1 = analyze_trace(trace, IlpConfig(order, 1, STALLS, PBP))
            ipc2 = analyze_trace(trace, IlpConfig(order, 2, STALLS, PBP))
            ipc4 = analyze_trace(trace, IlpConfig(order, 4, STALLS, PBP))
            assert ipc1 <= ipc2 * (1 + self.TOL)
            assert ipc2 <= ipc4 * (1 + self.TOL)

    def test_better_branch_prediction_no_slower(self, trace):
        for order in (IO, OOO):
            for width in (1, 2, 4):
                pbp = analyze_trace(trace, IlpConfig(order, width, STALLS, PBP))
                pbp1 = analyze_trace(trace, IlpConfig(order, width, STALLS, BranchModel.PBP1))
                nobp = analyze_trace(trace, IlpConfig(order, width, STALLS, BranchModel.NOBP))
                assert pbp >= pbp1 * (1 - self.TOL)
                assert pbp1 >= nobp * (1 - self.TOL)

    def test_perfect_pipeline_no_slower(self, trace):
        for config in TABLE2_CONFIGS:
            if config.pipeline is not PipelineModel.STALLS:
                continue
            perfect = IlpConfig(config.issue_order, config.width, PERFECT, config.branch)
            assert analyze_trace(trace, perfect) >= analyze_trace(trace, config) * (1 - self.TOL)

    def test_paper_trend_io_hazards_dominate(self, trace):
        """In-order: removing pipeline hazards helps more than branch
        prediction (the paper's first 'obvious and well-known trend')."""
        base = analyze_trace(trace, IlpConfig(IO, 4, STALLS, BranchModel.NOBP))
        fix_pipeline = analyze_trace(trace, IlpConfig(IO, 4, PERFECT, BranchModel.NOBP))
        fix_branches = analyze_trace(trace, IlpConfig(IO, 4, STALLS, PBP))
        assert (fix_pipeline - base) > (fix_branches - base) * 0.8

    def test_paper_trend_ooo_branches_dominate(self, trace):
        """Out-of-order: branch prediction matters more than hazards."""
        base = analyze_trace(trace, IlpConfig(OOO, 4, STALLS, BranchModel.NOBP))
        fix_pipeline = analyze_trace(trace, IlpConfig(OOO, 4, PERFECT, BranchModel.NOBP))
        fix_branches = analyze_trace(trace, IlpConfig(OOO, 4, STALLS, PBP))
        assert (fix_branches - base) > (fix_pipeline - base)

    def test_single_issue_inorder_sustains_high_fraction(self, trace):
        """The design point: IO-1 with stalls and no BP stays near 0.9
        IPC, motivating simple cores (Section 2.2)."""
        ipc = analyze_trace(trace, IlpConfig(IO, 1, STALLS, BranchModel.NOBP))
        assert 0.7 <= ipc <= 1.0

    def test_ipc_table_covers_all_configs(self, trace):
        table = ipc_table(trace)
        assert set(table) == set(TABLE2_CONFIGS)
