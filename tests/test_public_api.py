"""Public-API integrity: every ``__all__`` name resolves and the
package surface documented in the README exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.isa",
    "repro.ilp",
    "repro.cpu",
    "repro.mem",
    "repro.assists",
    "repro.host",
    "repro.net",
    "repro.firmware",
    "repro.nic",
    "repro.analysis",
]


class TestPublicApi:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_readme_entry_points_exist(self):
        import repro

        assert callable(repro.ThroughputSimulator)
        assert callable(repro.MicroNic)
        assert callable(repro.NicConfig)
        assert repro.RMW_166MHZ.cores == 6
        assert repro.SOFTWARE_200MHZ.core_frequency_hz == 200e6

    def test_version_is_semver(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_cli_entry_point_importable(self):
        from repro.cli import main

        assert callable(main)

    def test_py_typed_marker_present(self):
        from pathlib import Path

        import repro

        package_dir = Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()

    def test_no_package_requires_missing_dependencies(self):
        """Everything imports with only the declared dependency set."""
        for package in PACKAGES:
            importlib.import_module(package)
