"""DriverModel ring wraparound and refill/consume interleavings.

The send and receive rings use unbounded produced/consumed indices that
wrap modulo capacity; these tests drive both rings far past several
wraps under the interleavings the firmware actually produces (refill
after partial consume, consume-to-empty, flow-driven frame budgets) and
pin the zero-interrupt completions guard.
"""

import pytest

from repro.host import DescriptorRing, DriverModel
from repro.host.descriptors import BufferDescriptor
from repro.host.driver import DriverStats


def _driver(send_capacity=8, recv_capacity=6, max_frames=None):
    return DriverModel(
        udp_payload_bytes=1472,
        frame_bytes=1514,
        send_ring_capacity=send_capacity,
        recv_ring_capacity=recv_capacity,
        max_frames=max_frames,
    )


class TestRingWraparound:
    def test_indices_grow_past_capacity(self):
        ring = DescriptorRing(4)
        for index in range(25):
            ring.push(BufferDescriptor(address=1 + index, length=1, cookie=index))
            assert ring.pop().cookie == index
        assert ring.produced == ring.consumed == 25
        assert ring.produced > ring.capacity  # genuinely wrapped

    def test_partial_drain_across_wrap_keeps_fifo(self):
        ring = DescriptorRing(5)
        pushed = popped = 0
        out = []
        # Push 3 / pop 2 repeatedly: occupancy oscillates across the
        # wrap boundary with the ring never empty and never full.
        for _ in range(40):
            for _ in range(3):
                if not ring.is_full:
                    ring.push(
                        BufferDescriptor(address=1, length=1, cookie=pushed)
                    )
                    pushed += 1
            for _ in range(2):
                if not ring.is_empty:
                    out.append(ring.pop().cookie)
                    popped += 1
        out.extend(ring.pop().cookie for _ in range(len(ring)))
        assert out == list(range(pushed))

    def test_send_ring_wraps_under_refill_consume(self):
        driver = _driver(send_capacity=8)
        consumed = []
        # 50 iterations x 2 frames x 2 BDs = 200 BDs through an 8-slot
        # ring: > 25 full wraps.
        for _ in range(50):
            driver.refill_send_ring()
            consumed.extend(driver.consume_send_bds(4))  # two frames
        cookies = [bd.cookie for bd in consumed]
        # Two BDs (header, payload) per frame, frames in posted order.
        assert cookies == [seq for seq in range(100) for _ in range(2)]
        header_flags = [bd.is_header for bd in consumed]
        assert header_flags == [True, False] * 100

    def test_recv_ring_wraps_under_replenish_consume(self):
        driver = _driver(recv_capacity=6)
        consumed = []
        driver.replenish_recv_ring()
        for _ in range(30):
            consumed.extend(driver.consume_recv_bds(3))
            driver.replenish_recv_ring()
            assert driver.recv_ring.is_full  # replenish always tops up
        assert [bd.cookie for bd in consumed] == list(range(90))
        assert driver.stats.recv_buffers_posted == 90 + 6


class TestRefillConsumeInterleavings:
    def test_refill_after_partial_consume_posts_only_free_slots(self):
        driver = _driver(send_capacity=8)
        assert driver.refill_send_ring() == 4  # 8 slots / 2 BDs per frame
        driver.consume_send_bds(2)  # one frame leaves
        assert driver.refill_send_ring() == 1  # exactly one frame of room
        assert driver.send_bds_available() == 8
        # One more BD of room is not enough for a 2-BD frame.
        driver.consume_send_bds(1)
        assert driver.refill_send_ring() == 0

    def test_consume_to_empty_then_refill(self):
        driver = _driver(send_capacity=4)
        driver.refill_send_ring()
        driver.consume_send_bds(driver.send_bds_available())
        assert driver.send_ring.is_empty
        assert driver.refill_send_ring() == 2
        assert driver.send_bds_available() == 4

    def test_flow_driven_budget_gates_refill(self):
        # The fabric endpoint pattern: max_frames grows one post at a
        # time and refill must never manufacture frames beyond it.
        driver = _driver(send_capacity=16, max_frames=0)
        assert driver.refill_send_ring() == 0
        for budget in range(1, 6):
            driver.max_frames = budget
            assert driver.refill_send_ring() == 1
            assert driver.refill_send_ring() == 0  # idempotent at budget
        assert driver.send_bds_available() == 10
        assert driver.stats.frames_posted == 5

    def test_overconsume_raises(self):
        driver = _driver(send_capacity=4)
        driver.refill_send_ring()
        with pytest.raises(IndexError):
            driver.consume_send_bds(5)


class TestCompletionsPerInterrupt:
    def test_zero_interrupts_reports_zero(self):
        # Completion counts without a single interrupt (coalescing
        # window never closed) must not divide by zero.
        stats = DriverStats()
        assert stats.completions_per_interrupt == 0.0
        driver = _driver()
        driver.complete_sends(3, interrupt=False)
        driver.complete_receives(2, interrupt=False)
        assert driver.stats.interrupts == 0
        assert driver.stats.completions_per_interrupt == 0.0

    def test_coalescing_ratio(self):
        driver = _driver()
        driver.complete_sends(6, interrupt=True)
        driver.complete_receives(4, interrupt=True)
        assert driver.stats.completions_per_interrupt == 5.0
