"""DriverModel ring wraparound and refill/consume interleavings.

The send and receive rings use unbounded produced/consumed indices that
wrap modulo capacity; these tests drive both rings far past several
wraps under the interleavings the firmware actually produces (refill
after partial consume, consume-to-empty, flow-driven frame budgets) and
pin the zero-interrupt completions guard.

The multi-queue classes drive the same properties through
:class:`repro.host.rss.HostQueueModel`: per-ring wraparound, refill
interleaving across steered rings, and a chi-squared bound on the
Toeplitz steering distribution.
"""

import pytest

from repro.host import DescriptorRing, DriverModel
from repro.host.descriptors import BufferDescriptor
from repro.host.driver import DriverStats
from repro.host.rss import HostQueueModel, RssSpec
from repro.sim import Simulator


def _driver(send_capacity=8, recv_capacity=6, max_frames=None):
    return DriverModel(
        udp_payload_bytes=1472,
        frame_bytes=1514,
        send_ring_capacity=send_capacity,
        recv_ring_capacity=recv_capacity,
        max_frames=max_frames,
    )


class TestRingWraparound:
    def test_indices_grow_past_capacity(self):
        ring = DescriptorRing(4)
        for index in range(25):
            ring.push(BufferDescriptor(address=1 + index, length=1, cookie=index))
            assert ring.pop().cookie == index
        assert ring.produced == ring.consumed == 25
        assert ring.produced > ring.capacity  # genuinely wrapped

    def test_partial_drain_across_wrap_keeps_fifo(self):
        ring = DescriptorRing(5)
        pushed = popped = 0
        out = []
        # Push 3 / pop 2 repeatedly: occupancy oscillates across the
        # wrap boundary with the ring never empty and never full.
        for _ in range(40):
            for _ in range(3):
                if not ring.is_full:
                    ring.push(
                        BufferDescriptor(address=1, length=1, cookie=pushed)
                    )
                    pushed += 1
            for _ in range(2):
                if not ring.is_empty:
                    out.append(ring.pop().cookie)
                    popped += 1
        out.extend(ring.pop().cookie for _ in range(len(ring)))
        assert out == list(range(pushed))

    def test_send_ring_wraps_under_refill_consume(self):
        driver = _driver(send_capacity=8)
        consumed = []
        # 50 iterations x 2 frames x 2 BDs = 200 BDs through an 8-slot
        # ring: > 25 full wraps.
        for _ in range(50):
            driver.refill_send_ring()
            consumed.extend(driver.consume_send_bds(4))  # two frames
        cookies = [bd.cookie for bd in consumed]
        # Two BDs (header, payload) per frame, frames in posted order.
        assert cookies == [seq for seq in range(100) for _ in range(2)]
        header_flags = [bd.is_header for bd in consumed]
        assert header_flags == [True, False] * 100

    def test_recv_ring_wraps_under_replenish_consume(self):
        driver = _driver(recv_capacity=6)
        consumed = []
        driver.replenish_recv_ring()
        for _ in range(30):
            consumed.extend(driver.consume_recv_bds(3))
            driver.replenish_recv_ring()
            assert driver.recv_ring.is_full  # replenish always tops up
        assert [bd.cookie for bd in consumed] == list(range(90))
        assert driver.stats.recv_buffers_posted == 90 + 6


class TestRefillConsumeInterleavings:
    def test_refill_after_partial_consume_posts_only_free_slots(self):
        driver = _driver(send_capacity=8)
        assert driver.refill_send_ring() == 4  # 8 slots / 2 BDs per frame
        driver.consume_send_bds(2)  # one frame leaves
        assert driver.refill_send_ring() == 1  # exactly one frame of room
        assert driver.send_bds_available() == 8
        # One more BD of room is not enough for a 2-BD frame.
        driver.consume_send_bds(1)
        assert driver.refill_send_ring() == 0

    def test_consume_to_empty_then_refill(self):
        driver = _driver(send_capacity=4)
        driver.refill_send_ring()
        driver.consume_send_bds(driver.send_bds_available())
        assert driver.send_ring.is_empty
        assert driver.refill_send_ring() == 2
        assert driver.send_bds_available() == 4

    def test_flow_driven_budget_gates_refill(self):
        # The fabric endpoint pattern: max_frames grows one post at a
        # time and refill must never manufacture frames beyond it.
        driver = _driver(send_capacity=16, max_frames=0)
        assert driver.refill_send_ring() == 0
        for budget in range(1, 6):
            driver.max_frames = budget
            assert driver.refill_send_ring() == 1
            assert driver.refill_send_ring() == 0  # idempotent at budget
        assert driver.send_bds_available() == 10
        assert driver.stats.frames_posted == 5

    def test_overconsume_raises(self):
        driver = _driver(send_capacity=4)
        driver.refill_send_ring()
        with pytest.raises(IndexError):
            driver.consume_send_bds(5)


class TestCompletionsPerInterrupt:
    def test_zero_interrupts_reports_zero(self):
        # Completion counts without a single interrupt (coalescing
        # window never closed) must not divide by zero.
        stats = DriverStats()
        assert stats.completions_per_interrupt == 0.0
        driver = _driver()
        driver.complete_sends(3, interrupt=False)
        driver.complete_receives(2, interrupt=False)
        assert driver.stats.interrupts == 0
        assert driver.stats.completions_per_interrupt == 0.0

    def test_coalescing_ratio(self):
        driver = _driver()
        driver.complete_sends(6, interrupt=True)
        driver.complete_receives(4, interrupt=True)
        assert driver.stats.completions_per_interrupt == 5.0


class TestWindowReset:
    def test_reset_between_batch_and_interrupt(self):
        # Regression: a measurement-window reset landing between a
        # completion batch and its coalesced interrupt used to snapshot
        # the raw totals, crediting the batch to the old window and its
        # interrupt to the new one — the new window then reported 0
        # completions against 1 interrupt.  The fix attributes pending
        # (not-yet-interrupted) completions to the window their
        # interrupt lands in.
        stats = DriverStats()
        stats.record_sends(5)       # coalescing window still open...
        stats.reset_window()        # ...when the measured window starts
        stats.note_interrupt()      # interrupt fires inside the window
        assert stats.window_send_completions == 5
        assert stats.window_interrupts == 1
        assert stats.window_completions_per_interrupt == 5.0

    def test_reset_after_interrupt_excludes_closed_batches(self):
        stats = DriverStats()
        stats.record_sends(8)
        stats.note_interrupt()      # batch fully closed pre-window
        stats.reset_window()
        assert stats.window_send_completions == 0
        assert stats.window_interrupts == 0
        assert stats.window_completions_per_interrupt == 0.0

    def test_mixed_directions_split_at_reset(self):
        stats = DriverStats()
        stats.record_sends(4)
        stats.note_interrupt()      # closed: stays in the old window
        stats.record_receives(3)    # open: moves to the new window
        stats.reset_window()
        stats.note_interrupt()
        stats.record_sends(2)
        stats.note_interrupt()
        assert stats.window_send_completions == 2
        assert stats.window_recv_completions == 3
        assert stats.window_interrupts == 2
        assert stats.window_completions_per_interrupt == 2.5


# ----------------------------------------------------------------------
# Multi-queue host rings
# ----------------------------------------------------------------------
def _host(rings=4, send_capacity=8, recv_capacity=6, **spec_kwargs):
    spec = RssSpec(rings=rings, completion_ps=100, interrupt_ps=0,
                   **spec_kwargs)
    return HostQueueModel(
        spec, sim=Simulator(), frame_bytes=1514,
        send_ring_capacity=send_capacity, recv_ring_capacity=recv_capacity,
    )


class TestMultiRingWraparound:
    def test_send_rings_wrap_under_steered_refill(self):
        # Round-robin steering across 4 rings, 8-slot (4-frame) send
        # rings: 80 frames are 20 per ring = 5 full ring generations.
        host = _host(rings=4, send_capacity=8)
        driver = DriverModel(
            udp_payload_bytes=1472, frame_bytes=1514,
            send_ring_capacity=512, recv_ring_capacity=16,
        )
        completed = 0
        while completed < 80:
            host.refill_send(driver, lambda seq: seq % 4)
            # NIC completes the oldest 4 frames (one per ring); running
            # the sim lets the host cores process the batches and
            # return the transmit credit the next refill needs.
            host.complete_tx(completed, 4, lambda seq: seq % 4,
                             host.sim.now_ps)
            host.sim.run()
            completed += 4
        for ring in host.rings:
            assert ring.tx_completed == 20
            # 20 completed frames = 40 BDs through an 8-slot ring: the
            # indices wrapped at least 5 times (the trailing refill may
            # have posted a few frames beyond the completed 80).
            assert ring.send_ring.produced >= 40
            assert ring.tx_posted == ring.tx_completed + len(ring.send_ring) // 2

    def test_recv_rings_wrap_under_backlog_recycle(self):
        host = _host(rings=2, recv_capacity=4)
        ring = host.rings[0]
        for round_ in range(1, 11):
            host.complete_rx(0, 4, now_ps=host.sim.now_ps)
            host.sim.run()
            assert ring.rx_completed == 4 * round_
        # 40 completions through a 4-buffer ring: 10 full generations,
        # refill-on-poll kept conservation exact the whole way.
        assert ring.recv_ring.produced == 4 + 40  # initial fill + recycles
        assert ring.rx_posted == ring.rx_completed + len(ring.recv_ring)

    def test_skewed_steering_keeps_other_rings_live(self):
        # All traffic on ring 0 must not consume ring 1's credit.
        host = _host(rings=2, recv_capacity=4)
        host.complete_rx(0, 12, now_ps=0)
        host.sim.run()
        assert host.rings[0].rx_completed == 12
        assert host.rings[1].rx_completed == 0
        assert len(host.rings[1].recv_ring) == 4  # untouched, fully posted


class TestMultiRingRefillInterleaving:
    def test_refill_interleaves_across_rings(self):
        # Frames steer 0,1,0,1,...; posting must land alternately and
        # stop the moment the *steered* ring is full (head-of-line in
        # frame order), not when the aggregate ring is.
        host = _host(rings=2, send_capacity=4)  # 2 frames per ring
        driver = DriverModel(
            udp_payload_bytes=1472, frame_bytes=1514,
            send_ring_capacity=512, recv_ring_capacity=16,
        )
        posted = host.refill_send(driver, lambda seq: seq % 2)
        assert posted == 4  # 2 frames per ring, strictly alternating
        assert [len(r.send_ring) for r in host.rings] == [4, 4]
        # Complete one frame on ring 1 only: the next frame in sequence
        # steers to ring 0 (still full), so nothing posts.
        host.complete_tx(0, 1, lambda seq: 1, 0)
        host.sim.run()
        assert host.refill_send(driver, lambda seq: 0) == 0
        # A ring-1-steered refill fits exactly one frame.
        assert host.refill_send(driver, lambda seq: 1) == 1

    def test_tx_credit_bounds_total_outstanding(self):
        host = _host(rings=2, send_capacity=4)
        driver = DriverModel(
            udp_payload_bytes=1472, frame_bytes=1514,
            send_ring_capacity=512, recv_ring_capacity=16,
        )
        assert host.tx_credit == 4  # 2 rings x (4 slots // 2)
        host.refill_send(driver, lambda seq: seq % 2)
        assert host.tx_credit == 0
        host.complete_tx(0, 2, lambda seq: seq % 2, 0)
        host.sim.run()  # host cores process, credit returns
        assert host.tx_credit == 2

    def test_flow_budget_respected(self):
        host = _host(rings=4, send_capacity=64)
        driver = DriverModel(
            udp_payload_bytes=1472, frame_bytes=1514,
            send_ring_capacity=512, recv_ring_capacity=16, max_frames=3,
        )
        assert host.refill_send(driver, lambda seq: seq % 4) == 3
        assert host.refill_send(driver, lambda seq: seq % 4) == 0
        driver.max_frames = 5
        assert host.refill_send(driver, lambda seq: seq % 4) == 2


class TestSteeringDistribution:
    def test_chi_squared_bound_over_rings(self):
        # 1024 distinct flow tuples over >= 4 rings: the Toeplitz hash +
        # indirection table must spread flows close to uniformly.  The
        # chi-squared statistic over k=rings cells with expected n/k per
        # cell is compared against the 99.9% quantile of chi2(k-1) —
        # a deterministic check (fixed key, fixed flows), generous
        # enough to be stable, tight enough to catch a broken hash
        # (e.g. all-one-ring collapses are thousands of sigma out).
        quantiles = {4: 16.27, 8: 24.32}  # chi2_{0.999}(k-1)
        for rings in (4, 8):
            host = _host(rings=rings, send_capacity=64)
            counts = [0] * rings
            flows = 1024
            for i in range(flows):
                counts[host.ring_for(
                    0x0A00_0001 + (i % 7), 0x0A00_0100 + (i % 11),
                    0x8000 + i, 9999,
                )] += 1
            expected = flows / rings
            chi2 = sum((c - expected) ** 2 / expected for c in counts)
            assert chi2 < quantiles[rings], (
                f"{rings} rings: chi2={chi2:.1f}, counts={counts}"
            )
            assert all(counts)  # no starved ring
