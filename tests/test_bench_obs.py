"""Tests for the benchmark observatory (`repro.obs.bench`).

Exercises the pytest-benchmark-compatible timer shim, discovery of
``bench_*.py`` modules, structured BENCH_<name>.json emission (schema,
env fingerprint), and the noise-aware regression comparator — including
the acceptance gate that an injected synthetic regression is flagged
with a nonzero exit through the CLI.
"""

import json
import os
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchTimer,
    QUICK_BENCHES,
    compare_reports,
    discover,
    env_fingerprint,
    load_report,
    run_bench,
    select_benches,
    write_report,
)

REPO_BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


def _make_bench_dir(tmp_path, name, body):
    """A throwaway bench package with one module inside it."""
    package = tmp_path / name
    package.mkdir()
    (package / "__init__.py").write_text("")
    (package / "bench_tiny.py").write_text(textwrap.dedent(body))
    return str(package)


TINY_BENCH = """
    BENCH_TOLERANCE = {"test_widened": 0.75}

    def _work():
        return sum(range(2000))

    def test_direct_call(benchmark):
        result = benchmark(_work)
        assert result == sum(range(2000))

    def test_pedantic_call(benchmark):
        benchmark.pedantic(_work, rounds=2, iterations=1)

    def test_widened(benchmark):
        benchmark(_work)

    def test_boom(benchmark):
        benchmark(_work)
        raise AssertionError("shape check failed")

    def not_a_bench():
        pass

    def test_needs_other_fixture(benchmark, tmp_path):
        pass
"""


class TestBenchTimer:
    def test_call_records_default_rounds_and_returns_result(self):
        timer = BenchTimer(rounds=4)
        result = timer(lambda value: value * 2, 21)
        assert result == 42
        assert len(timer.samples_s) == 4
        assert all(sample >= 0.0 for sample in timer.samples_s)

    def test_pedantic_honors_rounds_and_iterations(self):
        timer = BenchTimer(rounds=9)
        calls = []
        timer.pedantic(calls.append, args=(1,), rounds=2, iterations=3)
        assert len(calls) == 6
        assert len(timer.samples_s) == 2


class TestDiscovery:
    def test_discovers_repo_benches(self):
        names = discover(REPO_BENCH_DIR)
        assert "bench_tracer_overhead" in names
        assert "bench_streaming_hist" in names
        assert all(name.startswith("bench_") for name in names)
        assert names == sorted(names)

    def test_quick_subset_names_exist(self):
        names = set(discover(REPO_BENCH_DIR))
        missing = [name for name in QUICK_BENCHES if name not in names]
        assert not missing, f"QUICK_BENCHES lists unknown modules: {missing}"
        quick = select_benches(REPO_BENCH_DIR, quick=True)
        assert set(quick) == set(QUICK_BENCHES)

    def test_only_filter(self):
        picked = select_benches(REPO_BENCH_DIR, only=["tracer"])
        assert picked == ["bench_tracer_overhead"]
        with pytest.raises(ValueError, match="no benchmark matches"):
            select_benches(REPO_BENCH_DIR, only=["no_such_bench"])

    def test_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            discover("/no/such/dir")


class TestRunAndEmit:
    def test_run_writes_valid_report(self, tmp_path):
        bench_dir = _make_bench_dir(tmp_path, "obsbench_run", TINY_BENCH)
        report = run_bench("bench_tiny", bench_dir, rounds=3)
        assert report.bench == "tiny"
        assert not report.ok  # test_boom failed
        # Only single-parameter `benchmark` functions are entry points.
        assert set(report.functions) == {
            "test_direct_call", "test_pedantic_call", "test_widened",
            "test_boom",
        }
        assert report.functions["test_direct_call"].status == "ok"
        assert len(report.functions["test_direct_call"].samples_s) == 3
        assert len(report.functions["test_pedantic_call"].samples_s) == 2
        assert report.functions["test_widened"].tolerance == 0.75
        boom = report.functions["test_boom"]
        assert boom.status == "failed"
        assert "shape check failed" in boom.error

        path = write_report(report, str(tmp_path / "out"))
        assert os.path.basename(path) == "BENCH_tiny.json"
        data = load_report(path)
        assert data["schema"] == BENCH_SCHEMA
        env = data["env"]
        for key in ("python", "platform", "cpu_count", "git_sha", "timestamp"):
            assert key in env, key
        record = data["functions"]["test_direct_call"]
        assert record["unit"] == "s"
        assert record["median_s"] >= record["min_s"] >= 0.0
        assert record["rounds"] == 3

    def test_env_fingerprint_git_sha(self):
        repo_root = os.path.dirname(REPO_BENCH_DIR)
        sha = env_fingerprint(repo_root)["git_sha"]
        assert sha == "unknown" or len(str(sha)) == 40

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": 99, "bench": "x"}))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_report(str(path))


def _fake_report(tmp_path, directory, values, tolerance=None):
    """Write a synthetic BENCH_fake.json with the given median seconds."""
    out_dir = tmp_path / directory
    out_dir.mkdir(exist_ok=True)
    functions = {}
    for name, median in values.items():
        record = {
            "status": "ok", "unit": "s", "direction": "lower",
            "rounds": 3, "samples_s": [median] * 3,
            "min_s": median, "median_s": median, "mean_s": median,
        }
        if tolerance and name in tolerance:
            record["tolerance"] = tolerance[name]
        functions[name] = record
    payload = {
        "schema": BENCH_SCHEMA, "bench": "fake", "module": "x.bench_fake",
        "wall_s": 1.0, "env": {}, "functions": functions,
    }
    path = out_dir / "BENCH_fake.json"
    path.write_text(json.dumps(payload))
    return str(out_dir)


class TestCompare:
    def test_identical_reports_pass(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"t": 1.0})
        comparison = compare_reports(old, old)
        assert comparison.ok
        assert comparison.deltas[0].verdict == "ok"

    def test_regression_flagged_beyond_tolerance(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"t": 1.0})
        new = _fake_report(tmp_path, "new", {"t": 1.5})
        comparison = compare_reports(old, new, tolerance=0.25)
        assert not comparison.ok
        assert comparison.regressions[0].metric == "fake::t"
        assert "regression" in comparison.summary() or "▲" in comparison.summary()
        # Within tolerance: fine.
        assert compare_reports(old, new, tolerance=0.6).ok

    def test_improvement_is_not_a_failure(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"t": 1.0})
        new = _fake_report(tmp_path, "new", {"t": 0.5})
        comparison = compare_reports(old, new)
        assert comparison.ok
        assert comparison.deltas[0].verdict == "improvement"

    def test_per_metric_tolerance_overrides_default(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"t": 1.0}, tolerance={"t": 2.0})
        new = _fake_report(tmp_path, "new", {"t": 2.5}, tolerance={"t": 2.0})
        # +150% but the metric allows +200%.
        assert compare_reports(old, new, tolerance=0.25).ok

    def test_missing_metrics_are_noted_not_failed(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"gone": 1.0})
        new = _fake_report(tmp_path, "new", {"added": 1.0})
        comparison = compare_reports(old, new)
        assert comparison.ok
        assert "fake::added" in comparison.missing_old
        assert "fake::gone" in comparison.missing_new

    def test_min_stat_selection(self, tmp_path):
        old = _fake_report(tmp_path, "old", {"t": 1.0})
        new = _fake_report(tmp_path, "new", {"t": 1.5})
        assert not compare_reports(old, new, stat="min_s").ok
        with pytest.raises(ValueError):
            compare_reports(old, new, stat="mean_s")


class TestBenchCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["bench", "--bench-dir", REPO_BENCH_DIR, "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_tracer_overhead" in out
        assert "[quick]" in out

    def test_compare_exit_codes(self, tmp_path, capsys):
        old = _fake_report(tmp_path, "old", {"t": 1.0})
        new = _fake_report(tmp_path, "new", {"t": 3.0})
        assert cli_main(["bench", "--compare", old, old]) == 0
        # The acceptance gate: a synthetic regression yields exit 1.
        assert cli_main(["bench", "--compare", old, new]) == 1
        assert "regressions" in capsys.readouterr().out
        # Loosening the default tolerance clears it.
        assert cli_main(["bench", "--compare", old, new,
                         "--tolerance", "5.0"]) == 0
        # Unreadable inputs are a usage error, not a crash.
        assert cli_main(["bench", "--compare", "/no/old", "/no/new"]) == 2

    def test_run_tiny_bench_end_to_end(self, tmp_path):
        bench_dir = _make_bench_dir(tmp_path, "obsbench_cli", TINY_BENCH)
        out_dir = str(tmp_path / "results")
        code = cli_main(["bench", "--bench-dir", bench_dir,
                         "--out-dir", out_dir, "--rounds", "2"])
        assert code == 1  # test_boom fails
        data = load_report(os.path.join(out_dir, "BENCH_tiny.json"))
        assert data["functions"]["test_direct_call"]["rounds"] == 2
