"""Port-composed frame datapath (Spinach/LSE-style composition)."""


from repro.assists.datapath import (
    BurstRequest,
    SdramControllerModule,
    run_transmit_datapath,
)
from repro.mem.sdram import GddrSdram
from repro.net.ethernet import EthernetTiming
from repro.sim import Simulator, SimModule
from repro.sim.module import connect


def _controller():
    sim = Simulator()
    clock = sim.add_clock("sdram", 500e6)
    controller = SdramControllerModule(sim, GddrSdram(), clock)
    return sim, clock, controller


class TestSdramControllerModule:
    def _requester(self, sim, controller, name):
        module = SimModule(sim, name)
        req = module.add_port("req")
        rsp = module.add_port("rsp")
        to_ctrl, from_ctrl = controller.attach()
        connect(req, to_ctrl)
        connect(from_ctrl, rsp)
        replies = []
        rsp.on_receive(replies.append)
        return req, replies

    def test_single_burst_completes(self):
        sim, _clock, controller = _controller()
        req, replies = self._requester(sim, controller, "a")
        req.send(BurstRequest(7, 0, 1518, False))
        sim.run()
        assert len(replies) == 1
        assert replies[0].tag == 7
        assert controller.bursts_served == 1

    def test_bursts_serialize_on_the_bus(self):
        sim, clock, controller = _controller()
        req, replies = self._requester(sim, controller, "a")
        for tag in range(4):
            req.send(BurstRequest(tag, tag * 2048, 1600, False))
        sim.run()
        finishes = [r.finish_ps for r in replies]
        burst_ps = clock.cycles_to_ps(1600 // 16)
        for earlier, later in zip(finishes[:-1], finishes[1:]):
            assert later - earlier >= burst_ps * 0.9

    def test_round_robin_interleaves_requesters(self):
        sim, _clock, controller = _controller()
        req_a, replies_a = self._requester(sim, controller, "a")
        req_b, replies_b = self._requester(sim, controller, "b")
        for tag in range(8):
            req_a.send(BurstRequest(tag, tag * 2048, 1518, False))
        req_b.send(BurstRequest(100, 64 * 2048, 1518, False))
        sim.run()
        # B's single burst must not wait for all eight of A's.
        assert replies_b[0].finish_ps < max(r.finish_ps for r in replies_a)

    def test_fifo_per_requester(self):
        sim, _clock, controller = _controller()
        req, replies = self._requester(sim, controller, "a")
        for tag in (3, 1, 2):
            req.send(BurstRequest(tag, tag * 2048, 512, False))
        sim.run()
        assert [r.tag for r in replies] == [3, 1, 2]


class TestTransmitDatapath:
    def test_all_frames_reach_the_wire(self):
        result = run_transmit_datapath(frames=32)
        assert result.frames == 32
        assert len(result.dma_completions) == 32

    def test_two_bursts_per_frame(self):
        # One host->SDRAM write and one SDRAM->MAC read per frame.
        result = run_transmit_datapath(frames=16)
        assert result.bursts_served == 32

    def test_wire_near_line_rate(self):
        """Section 2.3: the streamed SDRAM sustains the wire — once
        primed, back-to-back frames keep the link >90% busy."""
        result = run_transmit_datapath(frames=64)
        utilization = result.wire_utilization(1518, EthernetTiming())
        assert utilization > 0.90

    def test_wire_events_in_order(self):
        result = run_transmit_datapath(frames=48)
        tags = [event.tag for event in result.wire_events]
        assert tags == sorted(tags)

    def test_host_latency_delays_first_frame_only(self):
        fast = run_transmit_datapath(frames=32, host_latency_ps=100_000)
        slow = run_transmit_datapath(frames=32, host_latency_ps=2_000_000)
        delta = slow.last_wire_end_ps - fast.last_wire_end_ps
        # The extra latency is paid once (pipeline fill), not per frame.
        assert delta < 3 * (2_000_000 - 100_000)

    def test_small_frames_gap_limited(self):
        result = run_transmit_datapath(frames=64, frame_bytes=64)
        timing = EthernetTiming()
        # 64 B frames: wire time is tiny; completion is bounded below by
        # the per-frame wire slots.
        assert result.last_wire_end_ps >= 63 * timing.frame_time_ps(64)
