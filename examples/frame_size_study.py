#!/usr/bin/env python
"""Frame-size study: where does the NIC stop being link-bound?

Replays Figure 8's experiment — full-duplex UDP streams of varying
datagram size through both line-rate configurations — and reports, per
size: achieved throughput vs the Ethernet duplex limit, the total frame
rate, receive drops, and which resource saturated (link vs cores).

Run:
    python examples/frame_size_study.py
    python examples/frame_size_study.py --sizes 18 256 1472
"""

import argparse

from repro.net.ethernet import EthernetTiming, frame_bytes_for_udp_payload
from repro.nic import RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator
from repro.units import to_gbps


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[18, 100, 200, 400, 800, 1200, 1472],
        help="UDP datagram sizes to sweep",
    )
    parser.add_argument("--millis", type=float, default=0.8)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    timing = EthernetTiming()
    configs = [("software @200MHz", SOFTWARE_200MHZ), ("rmw @166MHz", RMW_166MHZ)]

    header = (f"{'UDP bytes':>9}  {'limit Gb/s':>10}  "
              + "  ".join(f"{name:>22}" for name, _ in configs))
    print(header)
    print("-" * len(header))

    saturation = {name: 0.0 for name, _ in configs}
    for payload in args.sizes:
        frame = frame_bytes_for_udp_payload(payload)
        limit = to_gbps(timing.duplex_payload_limit_bps(payload))
        cells = []
        for name, config in configs:
            result = ThroughputSimulator(config, payload).run(
                warmup_s=0.4e-3, measure_s=args.millis * 1e-3
            )
            bound = "link" if result.line_rate_fraction() > 0.97 else "cores"
            cells.append(
                f"{result.udp_throughput_gbps:6.2f} Gb/s "
                f"{result.total_fps / 1e6:5.2f}M {bound:>5}"
            )
            saturation[name] = max(saturation[name], result.total_fps)
        print(f"{payload:>9}  {limit:>10.2f}  " + "  ".join(f"{c:>22}" for c in cells))

    print()
    for name, peak in saturation.items():
        print(f"peak frame rate, {name}: {peak / 1e6:.2f} M frames/s "
              "(paper: both saturate near 2.2 M)")

    # Extension: the classic 7:4:1 Internet mix (not in the paper).
    from repro.net.workload import ImixSize

    print()
    print("IMIX extension (7:4:1 mix of 64/594/1518 B frames, mean 362 B):")
    for name, config in configs:
        result = ThroughputSimulator(config, size_model=ImixSize()).run(
            warmup_s=0.4e-3, measure_s=args.millis * 1e-3
        )
        print(f"  {name:18s} {result.udp_throughput_gbps:5.2f} Gb/s, "
              f"{result.total_fps / 1e6:.2f} M frames/s "
              f"({result.line_rate_fraction():.0%} of the mix's line rate)")

    print()
    print("Reading the table: at 1472 B both designs ride the Ethernet limit;")
    print("as datagrams shrink, constant per-frame processing dominates and")
    print("throughput saturates at a fixed frame rate — the 'cores' rows.")
    print("Realistic IMIX traffic is therefore processing-bound too.")


if __name__ == "__main__":
    main()
