#!/usr/bin/env python
"""Run real MIPS firmware kernels on the cycle-level NIC model.

This example exercises the repository's full ISA stack: it assembles the
frame-ordering kernels (lock-based and RMW-enhanced) from MIPS source,
runs them on the multi-core cycle-level controller (cores + I-caches +
banked scratchpad + crossbar), and reports the instruction-count and
cycle-count advantage of the paper's `setb`/`update` instructions.

Run:
    python examples/firmware_playground.py
    python examples/firmware_playground.py --cores 6 --banks 2
"""

import argparse

from repro.firmware.kernels import assemble_firmware, ordering_instruction_counts
from repro.ilp import BranchModel, IlpConfig, IssueOrder, PipelineModel, analyze_trace
from repro.firmware.kernels import capture_trace
from repro.nic import MicroNic, NicConfig
from repro.units import mhz


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=2,
                        help="firmware main-loop iterations per core")
    return parser.parse_args()


def run_variant(args, kernel: str):
    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(166),
        scratchpad_banks=args.banks,
    )
    nic = MicroNic(config, assemble_firmware(kernel, iterations=args.iterations))
    nic.run()
    return nic


def main() -> None:
    args = parse_args()

    print("=== ISA-level ordering ablation (single core, 16-frame bundle) ===")
    counts = ordering_instruction_counts(frames=16)
    reduction = 100 * (1 - counts["order_rmw"] / counts["order_sw"])
    print(f"  lock-based ordering kernel:  {counts['order_sw']:5d} instructions")
    print(f"  RMW-enhanced ordering kernel: {counts['order_rmw']:4d} instructions")
    print(f"  reduction: {reduction:.1f}%")

    print()
    print(f"=== cycle-level run: {args.cores} cores, {args.banks} banks ===")
    for kernel in ("order_sw", "order_rmw"):
        nic = run_variant(args, kernel)
        combined = nic.combined_stats()
        print(f"  {kernel:10s}: {combined.instructions:7d} instructions, "
              f"{combined.cycles:7d} cycles, IPC {combined.ipc:.3f}")
        breakdown = combined.breakdown()
        pieces = ", ".join(f"{k} {v:.3f}" for k, v in breakdown.items())
        print(f"              {pieces}")

    print()
    print("=== ILP limits of the firmware trace (Table 2 excerpt) ===")
    trace = capture_trace("order_sw", iterations=2)
    for order, width in ((IssueOrder.IN_ORDER, 1), (IssueOrder.OUT_OF_ORDER, 2),
                         (IssueOrder.OUT_OF_ORDER, 4)):
        config = IlpConfig(order, width, PipelineModel.STALLS, BranchModel.NOBP)
        pbp = IlpConfig(order, width, PipelineModel.STALLS, BranchModel.PBP)
        print(f"  {config.label:22s} IPC {analyze_trace(trace, config):.2f}   "
              f"(with perfect BP: {analyze_trace(trace, pbp):.2f})")

    print()
    print("Conclusion: a 2-wide out-of-order core roughly doubles the simple")
    print("core's IPC at several times the area/power — the paper instead")
    print("scales out with many single-issue cores (Section 2.2).")


if __name__ == "__main__":
    main()
