#!/usr/bin/env python
"""Regenerate the paper's entire evaluation section in one run.

Produces a text report with every table and figure (paper-vs-measured
where the paper states numbers).  Use ``--fast`` for a ~20 s pass with
slightly noisier values, and ``--output`` to also write the report to a
file.

Run:
    python examples/reproduce_paper.py --fast
    python examples/reproduce_paper.py --output evaluation.txt
"""

import argparse

from repro.analysis.full_report import generate_full_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shorter windows and smaller sweeps")
    parser.add_argument("--output", type=str, default="",
                        help="also write the report to this file")
    args = parser.parse_args()

    report = generate_full_report(fast=args.fast)
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.output}")


if __name__ == "__main__":
    main()
