#!/usr/bin/env python
"""Design-space exploration: find the cheapest line-rate configuration.

Sweeps processor count x frequency x firmware variant (the Figure 7
axes plus the Section 6.3 firmware comparison) and reports which
configurations sustain full-duplex 10 Gb/s line rate, ranking them by an
area/power proxy (cores x frequency).

This is the workflow the paper's conclusion implies: "A controller
operating at 166 MHz with 6 simple pipelined cores ... can achieve 99%
of theoretical peak throughput".

Run:
    python examples/design_space_sweep.py
    python examples/design_space_sweep.py --quick
"""

import argparse

from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig, ThroughputSimulator
from repro.units import mhz


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid and shorter windows")
    parser.add_argument("--target", type=float, default=0.985,
                        help="line-rate fraction counted as 'line rate'")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.quick:
        core_counts, freqs = (2, 4, 6), (133, 166, 200)
        measure_s = 0.5e-3
    else:
        core_counts, freqs = (1, 2, 4, 6, 8), (100, 133, 150, 166, 175, 200)
        measure_s = 0.8e-3

    rows = []
    for ordering in (OrderingMode.SOFTWARE, OrderingMode.RMW):
        for cores in core_counts:
            for frequency in freqs:
                config = NicConfig(
                    cores=cores,
                    core_frequency_hz=mhz(frequency),
                    ordering_mode=ordering,
                )
                result = ThroughputSimulator(config, 1472).run(
                    warmup_s=0.4e-3, measure_s=measure_s
                )
                rows.append((config, result))
                marker = "*" if result.line_rate_fraction() >= args.target else " "
                print(f"  {marker} {config.label:28s} "
                      f"{result.udp_throughput_gbps:6.2f} Gb/s "
                      f"({result.line_rate_fraction():6.1%} of line rate, "
                      f"util {result.core_utilization:4.0%})")

    line_rate_configs = [
        (config, result) for config, result in rows
        if result.line_rate_fraction() >= args.target
    ]
    if not line_rate_configs:
        print("\nno configuration reached line rate — widen the grid")
        return

    def cost(config: NicConfig) -> float:
        # A crude area/power proxy: total core-GHz.
        return config.cores * config.core_frequency_hz / 1e9

    line_rate_configs.sort(key=lambda pair: cost(pair[0]))
    print("\nline-rate configurations, cheapest first (cores x GHz):")
    for config, result in line_rate_configs[:8]:
        print(f"  {config.label:28s} cost {cost(config):.3f} core-GHz, "
              f"util {result.core_utilization:.0%}")
    best, _ = line_rate_configs[0]
    print(f"\ncheapest line-rate design: {best.label}")
    print("(the paper's pick: 6 cores x 166 MHz with the RMW firmware)")


if __name__ == "__main__":
    main()
