#!/usr/bin/env python
"""Quickstart: simulate the paper's headline NIC configuration.

Builds the RMW-enhanced 6-core / 166 MHz controller, streams full-duplex
maximum-sized UDP datagrams through it, and prints the throughput,
per-core cycle breakdown, and memory-bandwidth figures the paper reports
in Section 6.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --cores 4 --mhz 200 --ordering software
"""

import argparse

from repro.firmware.ordering import OrderingMode
from repro.net.ethernet import EthernetTiming
from repro.nic import NicConfig, ThroughputSimulator
from repro.units import mhz


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=6, help="processor cores")
    parser.add_argument("--mhz", type=float, default=166, help="core frequency (MHz)")
    parser.add_argument("--banks", type=int, default=4, help="scratchpad banks")
    parser.add_argument(
        "--ordering",
        choices=["rmw", "software"],
        default="rmw",
        help="frame-ordering firmware variant",
    )
    parser.add_argument("--payload", type=int, default=1472, help="UDP payload bytes")
    parser.add_argument("--millis", type=float, default=1.0, help="measured window (ms)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    ordering = OrderingMode.RMW if args.ordering == "rmw" else OrderingMode.SOFTWARE
    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(args.mhz),
        scratchpad_banks=args.banks,
        ordering_mode=ordering,
    )
    print(f"configuration: {config.label}, UDP payload {args.payload} B")

    simulator = ThroughputSimulator(config, args.payload)
    result = simulator.run(warmup_s=0.4e-3, measure_s=args.millis * 1e-3)

    timing = EthernetTiming()
    limit_fps = timing.frames_per_second(result.frame_bytes)
    print()
    print(f"transmit: {result.tx_fps:12,.0f} frames/s  ({result.tx_fps / limit_fps:6.1%} of line rate)")
    print(f"receive:  {result.rx_fps:12,.0f} frames/s  ({result.rx_fps / limit_fps:6.1%} of line rate)")
    print(f"UDP throughput: {result.udp_throughput_gbps:.2f} Gb/s "
          f"(duplex Ethernet limit {2 * timing.payload_throughput_bps(args.payload) / 1e9:.2f} Gb/s)")
    print(f"core utilization: {result.core_utilization:.1%}; "
          f"rx frames dropped at the MAC: {result.rx_dropped}")

    print()
    print("per-core cycle breakdown (Table 3 format):")
    for component, share in result.ipc_breakdown().items():
        print(f"  {component:10s} {share:6.3f}")

    print()
    print("memory bandwidth (Table 4 format):")
    report = result.bandwidth_report()
    print(f"  scratchpads:  {report['scratchpad_consumed_gbps']:6.2f} Gb/s consumed "
          f"of {report['scratchpad_peak_gbps']:6.2f} peak")
    print(f"  frame memory: {report['frame_memory_consumed_gbps']:6.2f} Gb/s consumed "
          f"of {report['frame_memory_peak_gbps']:6.2f} peak")
    print(f"  instr memory: {report['imem_consumed_gbps']:6.2f} Gb/s consumed "
          f"of {report['imem_peak_gbps']:6.2f} peak")

    print()
    print("per-function costs (Table 5/6 format, per frame):")
    for name, stats in result.function_stats.items():
        frames = result.tx_frames if name.startswith(("fetch_send", "send")) else result.rx_frames
        if frames == 0:
            continue
        print(f"  {name:26s} {stats.instructions / frames:7.1f} instr  "
              f"{stats.accesses / frames:6.1f} accesses  "
              f"{stats.cycles / frames:7.1f} cycles")


if __name__ == "__main__":
    main()
