#!/usr/bin/env python
"""Drive real assembly firmware through a complete end-to-end path.

The deepest-fidelity demo in the repository, in two acts:

1. **Micro (ISA level)** — MIPS firmware (with the paper's
   `setb`/`update` atomic instructions) runs on the cycle-level
   multi-core model and services memory-mapped hardware assists —
   claiming arriving frames with ll/sc, programming the DMA engine, and
   publishing an in-order commit pointer.  Prints the multi-core
   speedup, demonstrating frame-level parallelism at ISA level.
2. **Macro (system level)** — the same receive path, now as one
   endpoint of the network fabric (`repro.fabric`): a 1-NIC loopback
   stream is cross-checked against the direct `ThroughputSimulator`
   path (the goodputs must agree exactly — same pipeline, different
   traffic edge), then a 2-NIC closed-loop RPC pair reports the
   host-to-host latency percentiles the single-NIC harness cannot.

Run:
    python examples/micro_nic_end_to_end.py
    python examples/micro_nic_end_to_end.py --frames 128 --dma-latency 100
"""

import argparse

from repro.firmware.micro import micro_receive_firmware, run_micro_receive


def fabric_cross_check(millis: float) -> None:
    """Route the NIC model through the fabric API and assert the
    loopback goodput matches the direct-sim path exactly."""
    from repro.fabric import FabricSimulator, FabricSpec
    from repro.nic import NicConfig, ThroughputSimulator

    config = NicConfig()
    warmup_s, measure_s = 0.2e-3, millis * 1e-3

    direct = ThroughputSimulator(config, udp_payload_bytes=1472)
    direct_result = direct.run(warmup_s=warmup_s, measure_s=measure_s)
    direct_gbps = direct_result.rx_payload_bytes * 8 / measure_s / 1e9

    loop = FabricSimulator(config, FabricSpec.loopback())
    loop_result = loop.run(warmup_s=warmup_s, measure_s=measure_s)
    flow = loop_result.primary_flow

    print("\nfabric cross-check (1-NIC loopback vs direct sim):")
    print(f"  direct rx goodput:  {direct_gbps:.4f} Gb/s")
    print(f"  fabric loopback:    {flow.goodput_gbps:.4f} Gb/s "
          f"({flow.delivered} frames, {flow.lost} lost)")
    # Same pipeline, same windows: the fabric's flow-driven traffic
    # edge must reproduce the direct path's saturation goodput.  The
    # residual is a constant few frames in flight across the window
    # boundaries, so it shrinks as 1/measure-window; at the default
    # 1 ms window it sits well inside the 5% bound.
    assert abs(flow.goodput_gbps - direct_gbps) <= 0.05 * direct_gbps + 1e-9, (
        f"fabric loopback {flow.goodput_gbps} Gb/s diverged from "
        f"direct sim {direct_gbps} Gb/s"
    )
    print("  consistent: fabric path reproduces the direct-sim goodput")

    rpc = FabricSimulator(config, FabricSpec.rpc_pair(concurrency=4))
    rpc_result = rpc.run(warmup_s=warmup_s, measure_s=measure_s)
    rtt = rpc_result.primary_flow.rtt
    print("2-NIC closed-loop RPC (what only the fabric can measure):")
    print(f"  {rpc_result.primary_flow.completed} exchanges, RTT "
          f"p50 {rtt.p50_us:.1f} us / p99 {rtt.p99_us:.1f} us "
          f"/ max {rtt.max_us:.1f} us")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=64)
    parser.add_argument("--interarrival", type=int, default=25,
                        help="cycles between frame arrivals")
    parser.add_argument("--dma-latency", type=int, default=40,
                        help="DMA completion latency (cycles)")
    parser.add_argument("--show-firmware", action="store_true")
    parser.add_argument("--skip-fabric", action="store_true",
                        help="skip the system-level fabric cross-check")
    parser.add_argument("--fabric-millis", type=float, default=1.0,
                        help="fabric measurement window (simulated ms)")
    args = parser.parse_args()

    if args.show_firmware:
        print(micro_receive_firmware(args.frames))
        return

    print(f"receiving {args.frames} frames "
          f"(arrival every {args.interarrival} cycles, "
          f"DMA latency {args.dma_latency} cycles)\n")
    print(f"{'cores':>5}  {'cycles':>8}  {'cyc/frame':>9}  "
          f"{'instructions':>12}  {'in order?':>9}  {'speedup':>7}")
    baseline = None
    for cores in (1, 2, 4, 6, 8):
        result = run_micro_receive(
            cores=cores,
            total_frames=args.frames,
            rx_interarrival_cycles=args.interarrival,
            dma_latency_cycles=args.dma_latency,
        )
        if baseline is None:
            baseline = result.total_cycles
        print(f"{cores:>5}  {result.total_cycles:>8}  "
              f"{result.cycles_per_frame:>9.1f}  "
              f"{result.total_instructions:>12}  "
              f"{'yes' if result.completed_in_order else 'NO':>9}  "
              f"{baseline / result.total_cycles:>6.2f}x")

    floor = args.frames * args.interarrival
    print(f"\nhard floor (last frame's arrival): {floor} cycles — "
          "speedup saturates once cores outpace the wire,")
    print("exactly the regime where Figure 7's curves flatten at the "
          "Ethernet limit.")

    if not args.skip_fabric:
        fabric_cross_check(args.fabric_millis)


if __name__ == "__main__":
    main()
