#!/usr/bin/env python
"""Drive real assembly firmware through a complete receive path.

The deepest-fidelity demo in the repository: MIPS firmware (with the
paper's `setb`/`update` atomic instructions) runs on the cycle-level
multi-core model and services memory-mapped hardware assists — claiming
arriving frames with ll/sc, programming the DMA engine, and publishing
an in-order commit pointer to the hardware.  Prints the multi-core
speedup, demonstrating frame-level parallelism at ISA level.

Run:
    python examples/micro_nic_end_to_end.py
    python examples/micro_nic_end_to_end.py --frames 128 --dma-latency 100
"""

import argparse

from repro.firmware.micro import micro_receive_firmware, run_micro_receive


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=64)
    parser.add_argument("--interarrival", type=int, default=25,
                        help="cycles between frame arrivals")
    parser.add_argument("--dma-latency", type=int, default=40,
                        help="DMA completion latency (cycles)")
    parser.add_argument("--show-firmware", action="store_true")
    args = parser.parse_args()

    if args.show_firmware:
        print(micro_receive_firmware(args.frames))
        return

    print(f"receiving {args.frames} frames "
          f"(arrival every {args.interarrival} cycles, "
          f"DMA latency {args.dma_latency} cycles)\n")
    print(f"{'cores':>5}  {'cycles':>8}  {'cyc/frame':>9}  "
          f"{'instructions':>12}  {'in order?':>9}  {'speedup':>7}")
    baseline = None
    for cores in (1, 2, 4, 6, 8):
        result = run_micro_receive(
            cores=cores,
            total_frames=args.frames,
            rx_interarrival_cycles=args.interarrival,
            dma_latency_cycles=args.dma_latency,
        )
        if baseline is None:
            baseline = result.total_cycles
        print(f"{cores:>5}  {result.total_cycles:>8}  "
              f"{result.cycles_per_frame:>9.1f}  "
              f"{result.total_instructions:>12}  "
              f"{'yes' if result.completed_in_order else 'NO':>9}  "
              f"{baseline / result.total_cycles:>6.2f}x")

    floor = args.frames * args.interarrival
    print(f"\nhard floor (last frame's arrival): {floor} cycles — "
          "speedup saturates once cores outpace the wire,")
    print("exactly the regime where Figure 7's curves flatten at the "
          "Ethernet limit.")


if __name__ == "__main__":
    main()
