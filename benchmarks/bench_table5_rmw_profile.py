"""Table 5 — execution profiles (instructions and memory accesses per
packet, by function) for the ideal firmware, the software-only
parallelization, and the RMW-enhanced parallelization.

Paper headline reductions from the `setb`/`update` instructions:
ordering+dispatch instructions -51.5% (send) and -30.8% (receive);
ordering+dispatch memory accesses -65.0% (send) and -35.2% (receive);
locking gets slightly *worse* (contention moves to the remaining locks).
The same `setb`/`update` win is also measured at true ISA level on the
assembly ordering kernels."""

import pytest

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table, table5_rmw_profiles
from repro.analysis.tables import (
    FUNCTION_LABELS,
    RECV_FUNCTIONS,
    SEND_FUNCTIONS,
    rmw_reductions,
)
from repro.firmware.kernels import ordering_instruction_counts
from repro.nic import RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator


def _experiment():
    software = ThroughputSimulator(SOFTWARE_200MHZ, 1472).run(WARMUP_S, MEASURE_S)
    rmw = ThroughputSimulator(RMW_166MHZ, 1472).run(WARMUP_S, MEASURE_S)
    table = table5_rmw_profiles(software, rmw)
    isa_counts = ordering_instruction_counts(frames=16)
    return table, rmw_reductions(table), isa_counts


def bench_table5_rmw_profile(benchmark):
    table, reductions, isa_counts = run_once(benchmark, _experiment)

    rows = []
    for name in SEND_FUNCTIONS + RECV_FUNCTIONS:
        ideal = table["ideal"].get(name)
        rows.append([
            FUNCTION_LABELS[name],
            ideal["instructions"] if ideal else "-",
            table["software"][name]["instructions"],
            table["rmw"][name]["instructions"],
            ideal["accesses"] if ideal else "-",
            table["software"][name]["accesses"],
            table["rmw"][name]["accesses"],
        ])
    emit(format_table(
        ["Function", "I ideal", "I software", "I rmw", "A ideal", "A software", "A rmw"],
        rows,
        title="Table 5: per-packet instructions (I) and memory accesses (A)",
    ))
    emit(format_table(
        ["Reduction", "measured %", "paper %"],
        [
            ["send ordering+dispatch instructions",
             reductions["send_ordering_instructions_pct"], 51.5],
            ["recv ordering+dispatch instructions",
             reductions["recv_ordering_instructions_pct"], 30.8],
            ["send ordering+dispatch accesses",
             reductions["send_ordering_accesses_pct"], 65.0],
            ["recv ordering+dispatch accesses",
             reductions["recv_ordering_accesses_pct"], 35.2],
        ],
    ))
    isa_cut = 100 * (1 - isa_counts["order_rmw"] / isa_counts["order_sw"])
    emit(f"ISA-level ordering kernel instruction reduction: {isa_cut:.1f}% "
         f"({isa_counts['order_sw']} -> {isa_counts['order_rmw']} instructions)")

    # Shape: send saves roughly half, receive saves clearly less, and
    # the send savings exceed the receive savings on both metrics.
    assert 30 < reductions["send_ordering_instructions_pct"] < 70
    assert 10 < reductions["recv_ordering_instructions_pct"] < 50
    assert (
        reductions["send_ordering_instructions_pct"]
        > reductions["recv_ordering_instructions_pct"]
    )
    assert (
        reductions["send_ordering_accesses_pct"]
        > reductions["recv_ordering_accesses_pct"]
    )
    # Task functions stay near their ideal costs in both variants.
    for name in ("fetch_send_bd", "send_frame", "fetch_recv_bd", "recv_frame"):
        ideal = table["ideal"][name]["instructions"]
        assert table["rmw"][name]["instructions"] == pytest.approx(ideal, rel=0.35)
    # ISA-level: the RMW kernel does the same work in far fewer
    # instructions.
    assert isa_counts["order_rmw"] < 0.5 * isa_counts["order_sw"]
