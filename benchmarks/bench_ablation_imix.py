"""Ablation — realistic Internet-mix traffic (extension beyond the paper).

The paper evaluates uniform frame sizes (Figure 8); real links carry a
mix.  This bench runs the classic 7:4:1 IMIX (64/594/1518 B frames,
~362 B mean) through both line-rate configurations and compares against
the uniform small-frame saturation point.  Expected result: IMIX is
processing-bound at the same ~2 M frames/s the uniform sweep saturates
at — per-frame cost, not bytes, is what limits a programmable NIC."""

import pytest

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table
from repro.net.workload import ImixSize
from repro.nic import RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator


def _experiment():
    results = {}
    for key, config in (("software_200", SOFTWARE_200MHZ), ("rmw_166", RMW_166MHZ)):
        imix = ThroughputSimulator(config, size_model=ImixSize()).run(
            WARMUP_S, MEASURE_S
        )
        uniform_small = ThroughputSimulator(config, 100).run(WARMUP_S, MEASURE_S)
        results[key] = (imix, uniform_small)
    return results


def bench_ablation_imix(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for key, (imix, uniform) in results.items():
        rows.append([
            key,
            imix.udp_throughput_gbps,
            imix.total_fps / 1e6,
            imix.line_rate_fraction(),
            uniform.total_fps / 1e6,
        ])
    emit(format_table(
        ["Config", "IMIX Gb/s", "IMIX Mfps", "IMIX line frac", "100B-uniform Mfps"],
        rows,
        title="Ablation: 7:4:1 IMIX traffic (mean frame 362 B)",
    ))

    for key, (imix, uniform) in results.items():
        # Processing-bound on IMIX: frame rate within ~20% of the
        # uniform small-frame saturation rate, far below the link.
        assert imix.line_rate_fraction() < 0.6, key
        assert imix.total_fps == pytest.approx(uniform.total_fps, rel=0.25), key
        assert imix.core_utilization > 0.9, key
