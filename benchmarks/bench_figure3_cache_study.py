"""Figure 3 — collective hit ratio of per-agent MESI caches on the
frame-metadata trace, swept over cache size (16 B - 32 KB).

Paper result: the curve "never goes above 55%" and "fewer than 1% of
write accesses cause an invalidation in another cache" — caching fails
for lack of locality, motivating the scratchpad."""

from benchmarks._helpers import emit, run_once
from repro.analysis import figure3_cache_study, format_table


def bench_figure3_cache_study(benchmark):
    # The trace covers one in-flight metadata window (< the 1024-frame
    # ring), matching the scale of the paper's SMPCache traces; past a
    # ring wrap, slot reuse would add wrap-invalidations the original
    # short traces never see.
    sweep = run_once(benchmark, figure3_cache_study, 1000)

    rows = [
        [
            size,
            100.0 * stats.hit_ratio,
            100.0 * stats.write_invalidation_ratio,
            stats.accesses,
        ]
        for size, stats in sorted(sweep.items())
    ]
    emit(format_table(
        ["Cache size (B)", "Hit ratio %", "Invalidating writes %", "Accesses"],
        rows,
        title="Figure 3: MESI cache hit ratio vs per-cache size "
              "(fully associative, LRU, 16 B lines, 8 caches)",
    ))

    ratios = [stats.hit_ratio for _size, stats in sorted(sweep.items())]
    # Plateau: the biggest cache is barely better than a mid-size one,
    # and never exceeds ~55% (we allow 60% for trace variance).
    assert ratios[-1] < 0.60
    assert ratios[-1] - ratios[4] < 0.10
    # Monotone non-decreasing in capacity.
    for before, after in zip(ratios[:-1], ratios[1:]):
        assert after >= before - 0.01
    # Invalidations are not the problem.
    for stats in sweep.values():
        assert stats.write_invalidation_ratio < 0.01
