"""Table 4 — required vs peak vs consumed bandwidth of the three NIC
memories at the 6-core line-rate operating point.

Paper values: instruction memory nearly idle (port unused ~97% of the
time); scratchpads ~9.4 Gb/s consumed (251.6 M core + 41.7 M assist
accesses/s); frame memory 39.7 Gb/s consumed vs 39.5 required (the
difference is unrecoverable misalignment padding)."""

import pytest

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table, table4_bandwidth
from repro.nic import SOFTWARE_200MHZ, ThroughputSimulator


def _experiment():
    result = ThroughputSimulator(SOFTWARE_200MHZ, 1472).run(WARMUP_S, MEASURE_S)
    return table4_bandwidth(result=result), result


def bench_table4_bandwidth(benchmark):
    rows, result = run_once(benchmark, _experiment)
    report = result.bandwidth_report()

    emit(format_table(
        ["Memory", "Required (Gb/s)", "Peak (Gb/s)", "Consumed (Gb/s)"],
        [
            [name, data["required"], data["peak"], data["consumed"]]
            for name, data in rows.items()
        ],
        title="Table 4: bandwidth by memory, 6 cores @ 200 MHz",
    ))
    emit(format_table(
        ["Access stream", "measured M/s", "paper M/s"],
        [
            ["core scratchpad accesses", report["scratchpad_core_maccesses_per_s"], 251.6],
            ["assist scratchpad accesses", report["scratchpad_assist_maccesses_per_s"], 41.7],
        ],
    ))

    assert result.line_rate_fraction() > 0.97
    # Every memory is overprovisioned: consumed < peak, required < peak.
    for data in rows.values():
        assert data["consumed"] <= data["peak"]
        assert data["required"] <= data["peak"]
    # Scratchpad consumption lands near the paper's 9.4 Gb/s.
    assert rows["Scratchpads"]["consumed"] == pytest.approx(9.4, abs=2.0)
    # Frame memory: consumed slightly exceeds the useful requirement due
    # to misalignment (paper: 39.7 vs 39.5).
    assert rows["Frame Memory"]["consumed"] == pytest.approx(39.7, abs=1.5)
    assert rows["Frame Memory"]["consumed"] > report["frame_memory_useful_gbps"]
    # Instruction memory port nearly idle (~97% unused in the paper).
    assert rows["Instruction Memory"]["consumed"] < 0.05 * rows["Instruction Memory"]["peak"]
    # Assist access rate near the paper's 41.7 M/s.
    assert report["scratchpad_assist_maccesses_per_s"] == pytest.approx(41.7, rel=0.35)
