"""Ablation — the RMW instructions at full ISA fidelity.

The Table 5/6 benches measure the `setb`/`update` savings in the
macro-tier model; this bench measures the same comparison with *no
model at all*: both ordering implementations run as real MIPS firmware
on the cycle-level multi-core NIC, servicing the same memory-mapped
hardware, with every spin iteration, crossbar conflict, and cache miss
simulated.

Expected shape: single-core, the RMW variant saves ~40% of instructions
(no contention — the pure instruction-count win).  At four cores, the
lock-based variant collapses — cores burn their cycles spinning on the
ordering lock — while the RMW variant keeps scaling.  This is the
paper's Section 3.3/6.3 story, reproduced end to end."""


from benchmarks._helpers import emit, run_once
from repro.analysis import format_table
from repro.firmware.micro import run_micro_receive

# Fast arrivals + short DMA latency make ordering the bottleneck.
KWARGS = dict(total_frames=64, rx_interarrival_cycles=5, dma_latency_cycles=20)


def _experiment():
    results = {}
    for ordering in ("sw", "rmw"):
        for cores in (1, 2, 4, 6):
            results[(ordering, cores)] = run_micro_receive(
                cores=cores, ordering=ordering, **KWARGS
            )
    return results


def bench_ablation_micro_ordering(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for cores in (1, 2, 4, 6):
        sw = results[("sw", cores)]
        rmw = results[("rmw", cores)]
        rows.append([
            cores,
            sw.total_cycles, rmw.total_cycles,
            sw.total_instructions, rmw.total_instructions,
        ])
    emit(format_table(
        ["Cores", "SW cycles", "RMW cycles", "SW instr", "RMW instr"],
        rows,
        title="Ablation: frame ordering at ISA level (64 frames, cycle-accurate)",
    ))

    for key, result in results.items():
        assert result.completed_in_order, key

    one_sw = results[("sw", 1)]
    one_rmw = results[("rmw", 1)]
    four_sw = results[("sw", 4)]
    four_rmw = results[("rmw", 4)]

    # Single core: a pure instruction-count win, >=30%.
    assert one_rmw.total_instructions < 0.7 * one_sw.total_instructions
    assert one_rmw.total_cycles < one_sw.total_cycles
    # Four cores: the ordering lock serializes the software variant and
    # its spin instructions balloon; the RMW variant keeps scaling.
    assert four_rmw.total_cycles < 0.6 * four_sw.total_cycles
    assert four_sw.total_instructions > 1.5 * four_rmw.total_instructions
    # The RMW variant gets meaningful multicore speedup; software stalls.
    rmw_speedup = one_rmw.total_cycles / four_rmw.total_cycles
    sw_speedup = one_sw.total_cycles / four_sw.total_cycles
    emit(f"1->4 core speedup: RMW {rmw_speedup:.2f}x vs software {sw_speedup:.2f}x")
    assert rmw_speedup > sw_speedup
