"""Fault-layer overhead guard.

The fault-injection layer's contract (docs/faults.md) is that a run
without an *enabled* :class:`~repro.faults.FaultPlan` never attaches a
:class:`~repro.faults.FaultInjector`: every hook is a single
``self.faults is not None`` / ``self.injector is not None`` check, and
the simulation is byte-identical to a pre-fault-layer build.  This
benchmark measures the same experiment with no plan and with an
explicit all-zero (disabled) plan, and asserts the disabled-path
overhead stays under 2% wall time.  An enabled plan is timed too, as
an informational line (faults legitimately cost work).

Wall-clock measurements on shared CI hosts are noisy, so the guard is
measured carefully: several alternating repetitions, best-of (the
minimum is the least-noise estimator for a deterministic workload),
and the threshold is asserted on the ratio of the minima.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, run_once
from repro.faults import FaultPlan
from repro.nic import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.units import mhz

REPS = 5
WARMUP_S = 0.05e-3
MEASURE_S = 0.25e-3
MAX_DISABLED_OVERHEAD = 0.02  # 2%

_DISABLED_PLAN = FaultPlan()  # all rates zero => never attaches
_ENABLED_PLAN = FaultPlan(rx_fcs_rate=0.01, sdram_error_rate=0.002,
                          pci_stall_rate=0.001)


def _run_experiment(fault_plan=None):
    config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    simulator = ThroughputSimulator(config, 1472, fault_plan=fault_plan)
    return simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)


def _time_run(fault_plan=None) -> float:
    started = time.perf_counter()
    _run_experiment(fault_plan=fault_plan)
    return time.perf_counter() - started


def _measure_overhead():
    # One untimed run first to warm caches and interpreter state.
    _run_experiment()
    baseline, disabled, enabled = [], [], []
    for _ in range(REPS):
        # Alternate variants to spread slow-host drift evenly.
        baseline.append(_time_run(fault_plan=None))
        disabled.append(_time_run(fault_plan=_DISABLED_PLAN))
        enabled.append(_time_run(fault_plan=_ENABLED_PLAN))
    return min(baseline), min(disabled), min(enabled)


def test_disabled_fault_plan_overhead_under_two_percent(benchmark):
    base_s, disabled_s, enabled_s = run_once(benchmark, _measure_overhead)
    overhead = disabled_s / base_s - 1.0
    enabled_overhead = enabled_s / base_s - 1.0
    emit(
        "Fault-layer overhead guard\n"
        f"  no plan (default):     {base_s * 1e3:8.2f} ms\n"
        f"  disabled FaultPlan():  {disabled_s * 1e3:8.2f} ms "
        f"({overhead:+.2%})\n"
        f"  enabled plan:          {enabled_s * 1e3:8.2f} ms "
        f"({enabled_overhead:+.2%}, informational)\n"
        f"  guard threshold:       <{MAX_DISABLED_OVERHEAD:.0%}"
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled fault plan added {overhead:.2%} wall time "
        f"(limit {MAX_DISABLED_OVERHEAD:.0%}): "
        f"{disabled_s:.4f}s vs {base_s:.4f}s"
    )
    # Sanity both ways: a disabled plan must not attach the layer, an
    # enabled one must actually inject (the guard is not vacuous).
    config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    assert ThroughputSimulator(config, 1472,
                               fault_plan=_DISABLED_PLAN).faults is None
    simulator = ThroughputSimulator(config, 1472, fault_plan=_ENABLED_PLAN)
    simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
    assert simulator.faults is not None
    assert any(simulator.faults.counters.values()), "enabled plan injected nothing"
