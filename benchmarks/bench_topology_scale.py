"""Endpoints-vs-wallclock scaling of the composed-topology fabric.

The ISSUE 10 tentpole's performance claim is architectural, not
constant-factor: per-link ports are lazily materialized, flow state is
sharded, and routes are memoized per flow tuple, so wall time grows
near-linearly in offered frames — not in ``endpoints x flows``.  This
bench drives the :class:`~repro.fabric.scale.ScaleFabric` harness at
three fabric sizes with a proportional flow population and records the
curve as a trajectory point (``repro bench --compare`` guards it).

Assertions are qualitative shape, not absolute speed:

* frame conservation holds at every size (posted == delivered + lost,
  per-link entered == forwarded + dropped);
* growing the fabric 16x (64 -> 1024 endpoints) with 16x the flows
  costs less than 64x the wall time of the small arm — a superlinear
  (O(n^2)-ish) regression in the graph path blows through that
  immediately, while CI noise does not.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, run_once
from repro.fabric.scale import ScaleFabric
from repro.fabric.topology import TopologySpec

#: (racks, hosts_per_rack, spines, flows) — endpoints = racks * hosts.
ARMS = (
    (4, 16, 2, 2_500),     # 64 endpoints
    (4, 64, 4, 10_000),    # 256 endpoints
    (4, 256, 4, 40_000),   # 1024 endpoints
)

#: Wall-ratio ceiling for the 16x-endpoints arm relative to the small
#: arm (see module docstring).
SCALE_FACTOR_CEILING = 64.0


def _run_arm(racks, hosts_per_rack, spines, flows):
    topology = TopologySpec.leaf_spine(
        racks=racks, hosts_per_rack=hosts_per_rack, spines=spines
    )
    fabric = ScaleFabric(topology)
    start = time.perf_counter()
    report = fabric.run(flows=flows)
    report["wall_s"] = time.perf_counter() - start
    return report


def _measure():
    return [_run_arm(*arm) for arm in ARMS]


def test_wallclock_scales_subquadratically(benchmark):
    reports = run_once(benchmark, _measure)
    lines = ["Topology scale curve (endpoints -> wall seconds)"]
    for (racks, hosts, spines, flows), report in zip(ARMS, reports):
        lines.append(
            f"  {report['endpoints']:5d} endpoints ({racks}x{hosts}, "
            f"{spines} spines) {flows:6d} flows: "
            f"{report['wall_s']:.2f} s, "
            f"{report['delivered']} delivered / {report['lost']} lost, "
            f"{report['links_used']} links"
        )
    emit("\n".join(lines))

    for report, (_, _, _, flows) in zip(reports, ARMS):
        assert report["posted"] == flows
        assert report["posted"] == report["delivered"] + report["lost"]
        for link, (entered, fwd, dropped) in report["link_counts"].items():
            assert entered == fwd + dropped, link
    small, large = reports[0], reports[-1]
    assert large["endpoints"] == 16 * small["endpoints"]
    # Guard against superlinear blowup, with floor-clamping so a
    # sub-millisecond small arm cannot make the ratio meaningless.
    ratio = large["wall_s"] / max(small["wall_s"], 0.05)
    assert ratio < SCALE_FACTOR_CEILING, (
        f"1024-endpoint arm cost {ratio:.1f}x the 64-endpoint arm "
        f"(ceiling {SCALE_FACTOR_CEILING:g}x)"
    )
