"""Figure 8 — full-duplex throughput vs UDP datagram size for the
software-only (200 MHz) and RMW-enhanced (166 MHz) configurations, with
the Ethernet duplex limit as reference.

Paper: both configurations track the Ethernet limit at large frames and
saturate at roughly 2.2 M frames/s for small frames, where processing
(not the link) is the bottleneck.

The 14-point sweep runs through the experiment engine (``repro.exp``):
set ``REPRO_SWEEP_JOBS=4`` to fan it across cores and
``REPRO_CACHE_DIR=...`` to make re-runs incremental (docs/experiments.md)."""

import pytest

from benchmarks._helpers import emit, run_once
from repro.analysis import figure8_frame_sizes, render_series
from repro.analysis.figures import saturation_frame_rates


def _experiment():
    curves = figure8_frame_sizes()
    rates = saturation_frame_rates(udp_payload_bytes=100)
    return curves, rates


def bench_figure8_framesizes(benchmark):
    curves, rates = run_once(benchmark, _experiment)

    for name in ("ethernet_limit", "software_200mhz", "rmw_166mhz"):
        emit(render_series(name, curves[name], "UDP bytes", "Gb/s"))
    emit(
        "saturation frame rates (100 B datagrams): "
        f"software {rates['software_200mhz'] / 1e6:.2f} Mfps, "
        f"rmw {rates['rmw_166mhz'] / 1e6:.2f} Mfps (paper: ~2.2 Mfps both)"
    )

    limit = dict(curves["ethernet_limit"])
    software = dict(curves["software_200mhz"])
    rmw = dict(curves["rmw_166mhz"])

    # Maximum-sized frames: both configurations at the Ethernet limit.
    assert software[1472] >= 0.95 * limit[1472]
    assert rmw[1472] >= 0.95 * limit[1472]
    # Small frames: processing-bound, far below the link limit.
    assert software[18] < 0.25 * limit[18]
    assert rmw[18] < 0.25 * limit[18]
    # Throughput grows monotonically with datagram size for every curve.
    for name in ("software_200mhz", "rmw_166mhz"):
        values = [v for _s, v in curves[name]]
        assert values == sorted(values)
    # Both saturate at the same order of magnitude, ~2 M frames/s.
    assert 1.2e6 < rates["software_200mhz"] < 3.0e6
    assert 1.2e6 < rates["rmw_166mhz"] < 3.0e6
    assert rates["rmw_166mhz"] == pytest.approx(rates["software_200mhz"], rel=0.25)
