"""Streaming-histogram ingest/merge microbenchmark and accuracy guard.

The :class:`repro.obs.hist.StreamingHistogram` is the fabric's default
latency estimator, so its ``record()`` sits on the per-delivered-frame
hot path.  This bench measures the ingest rate over a heavy-tailed
sample stream, checks the merged-shard path, and re-asserts the
documented relative-error bound end to end — the qualitative shape the
observatory trajectory tracks.
"""

from __future__ import annotations

import random

from benchmarks._helpers import emit, run_once
from repro.obs.hist import StreamingHistogram, exact_percentile, merge_all

SAMPLES = 200_000
SHARDS = 8
FRACTIONS = (0.50, 0.90, 0.99, 0.999)


def _sample_stream():
    rng = random.Random(20260807)
    # Lognormal: a plausible latency shape with a long tail.
    return [rng.lognormvariate(3.0, 1.0) for _ in range(SAMPLES)]


def _ingest_and_merge():
    samples = _sample_stream()
    whole = StreamingHistogram(3, name="whole")
    for value in samples:
        whole.record(value)
    shards = [StreamingHistogram(3, name=f"shard{i}") for i in range(SHARDS)]
    for index, value in enumerate(samples):
        shards[index % SHARDS].record(value)
    merged = merge_all(shards)
    return samples, whole, merged


def test_streaming_hist_ingest_and_bound(benchmark):
    samples, whole, merged = run_once(benchmark, _ingest_and_merge)
    assert whole.total == merged.total == SAMPLES
    # Sharded ingestion aggregates bucket-exactly.
    assert merged.counts == whole.counts

    samples.sort()
    lines = [f"Streaming histogram: {SAMPLES} samples, "
             f"{whole.bucket_count} buckets"]
    for fraction in FRACTIONS:
        exact = exact_percentile(samples, fraction)
        estimate = whole.percentile(fraction)
        error = abs(estimate - exact) / exact
        lines.append(
            f"  p{fraction * 100:g}: exact {exact:10.3f}  "
            f"streaming {estimate:10.3f}  rel err {error:.2e}"
        )
        assert error <= whole.relative_error + 1e-9, (
            f"p{fraction * 100:g} error {error:.2e} exceeds the documented "
            f"bound {whole.relative_error:g}"
        )
    # Bounded memory: buckets grow with the value range, not the count.
    assert whole.bucket_count < 5_000
    emit("\n".join(lines))
