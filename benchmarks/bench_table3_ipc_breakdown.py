"""Table 3 — per-core computation-bandwidth breakdown at the paper's
6 x 200 MHz line-rate operating point.

Paper values: execution 0.72, instruction-miss stalls 0.01, load stalls
0.12, scratchpad conflict stalls 0.05, pipeline stalls 0.10 (total 1.00).
"""

import pytest

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table, table3_ipc_breakdown
from repro.nic import SOFTWARE_200MHZ, ThroughputSimulator

PAPER = {
    "execution": 0.72,
    "imiss": 0.01,
    "load": 0.12,
    "conflict": 0.05,
    "pipeline": 0.10,
}


def _experiment():
    result = ThroughputSimulator(SOFTWARE_200MHZ, 1472).run(WARMUP_S, MEASURE_S)
    return table3_ipc_breakdown(result=result), result


def bench_table3_ipc_breakdown(benchmark):
    breakdown, result = run_once(benchmark, _experiment)

    rows = [
        [name, breakdown[name], PAPER[name]]
        for name in ("execution", "imiss", "load", "conflict", "pipeline")
    ]
    rows.append(["total", breakdown["total"], 1.00])
    emit(format_table(
        ["Component", "measured IPC share", "paper"],
        rows,
        title="Table 3: computation bandwidth breakdown, 6 cores @ 200 MHz",
    ))

    assert result.line_rate_fraction() > 0.97  # measured *at* line rate
    assert breakdown["total"] == pytest.approx(1.0, abs=0.02)
    # Shape: execution dominates, then load stalls, then pipeline, with
    # conflicts and instruction misses small.
    assert breakdown["execution"] == pytest.approx(PAPER["execution"], abs=0.08)
    assert breakdown["load"] == pytest.approx(PAPER["load"], abs=0.05)
    assert breakdown["conflict"] == pytest.approx(PAPER["conflict"], abs=0.04)
    assert breakdown["pipeline"] == pytest.approx(PAPER["pipeline"], abs=0.05)
    assert breakdown["imiss"] <= 0.02
    order = sorted(PAPER, key=PAPER.get, reverse=True)
    assert breakdown[order[0]] > breakdown[order[1]] > breakdown[order[-1]]
