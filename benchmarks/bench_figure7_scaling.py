"""Figure 7 — full-duplex UDP throughput vs core frequency for 1, 2, 4,
6, and 8 cores (1472 B datagrams, 4 scratchpad banks).

Paper anchors: 6 cores reach ~96% of line rate at 175 MHz and within 1%
at 200 MHz; 8 cores are at line rate from 175 MHz; a single core needs
roughly 800 MHz (our model measures the equivalent crossover).

The 30-point grid runs through the experiment engine (``repro.exp``):
set ``REPRO_SWEEP_JOBS=4`` to fan it across cores and
``REPRO_CACHE_DIR=...`` to make re-runs incremental (docs/experiments.md)."""


from benchmarks._helpers import emit, run_once
from repro.analysis import figure7_scaling, render_series
from repro.analysis.figures import (
    figure7_ethernet_limit,
    single_core_line_rate_frequency,
)


def _experiment():
    curves = figure7_scaling(
        core_counts=(1, 2, 4, 6, 8),
        frequencies_mhz=(100, 125, 150, 166, 175, 200),
    )
    single = single_core_line_rate_frequency(
        frequencies_mhz=(600, 800, 1000, 1200), target_fraction=0.98
    )
    return curves, single


def bench_figure7_scaling(benchmark):
    curves, single_core_mhz = run_once(benchmark, _experiment)
    limit = figure7_ethernet_limit()

    emit(f"Ethernet Limit (Duplex): {limit:.2f} Gb/s")
    for cores, series in sorted(curves.items()):
        emit(render_series(f"{cores} processors", series, "MHz", "Gb/s"))
    emit(f"single core line-rate frequency: ~{single_core_mhz} MHz (paper: ~800 MHz)")

    # More cores never hurt at a fixed frequency.
    for frequency_index in range(6):
        by_cores = [curves[c][frequency_index][1] for c in (1, 2, 4, 6, 8)]
        for slower, faster in zip(by_cores[:-1], by_cores[1:]):
            assert faster >= slower * 0.97

    # Throughput rises with frequency until the Ethernet limit.
    for cores, series in curves.items():
        values = [v for _f, v in series]
        for before, after in zip(values[:-1], values[1:]):
            assert after >= before * 0.97

    # Paper anchors for the 6- and 8-core configurations.
    six = dict(curves[6])
    eight = dict(curves[8])
    assert six[175] >= 0.92 * limit
    assert six[200] >= 0.97 * limit
    assert eight[200] >= 0.97 * limit
    # A couple of slow cores cannot reach line rate.
    two = dict(curves[2])
    assert two[200] < 0.8 * limit
    # Single core needs several times the 6-core per-core clock.
    assert single_core_mhz is not None
    assert 600 <= single_core_mhz <= 1200
