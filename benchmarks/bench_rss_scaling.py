"""RSS scaling — the paper's single-ring host interface vs a modern
multi-queue (receive-side-scaling) host model.

The paper funnels every host interaction through one descriptor-ring
pair, which is fine for a single-CPU 2004 host but serializes all
completion processing on one core.  This bench sweeps ring count under
the host-core contention model: one ring is host-limited (its core
saturates below duplex line rate), N >= 2 rings spread the completion
work and restore wire-limited throughput, and per-core utilization
falls roughly in proportion to the ring count."""

from dataclasses import replace

from benchmarks._helpers import emit, run_once, sweep_kwargs
from repro.analysis import format_table
from repro.exp import RunSpec, Sweep
from repro.host.rss import RssSpec
from repro.nic import RMW_166MHZ

RING_COUNTS = (1, 2, 4, 8)
# Long enough for the single-ring arm to drain its initial buffer
# credit and settle into its host-limited steady state.
WARMUP_S = 0.8e-3
MEASURE_S = 1.0e-3


def _experiment():
    # rss_grid maps rings <= 1 to the paper baseline (no host model);
    # add an explicit single-ring RSS arm on the same task-level
    # firmware as the multi-ring arms for the host-limited data point.
    grid = Sweep.rss_grid(
        "bench-rss-scaling",
        RING_COUNTS,
        base_config=RMW_166MHZ,
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
    )
    one_ring = RunSpec(
        config=replace(RMW_166MHZ, task_level_firmware=True),
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
        label="1ring-rss",
        rss=RssSpec(rings=1),
    )
    sweep = Sweep("bench-rss-scaling", list(grid.specs) + [one_ring])
    outcome = sweep.run(**sweep_kwargs())
    return Sweep.rows(outcome)


def bench_rss_ring_scaling(benchmark):
    rows = run_once(benchmark, _experiment)

    table = []
    for row in rows:
        table.append([
            row["label"],
            row["rss_rings"],
            f"{row['udp_throughput_gbps']:.2f}",
            f"{row['host_core_busy_max']:.2f}"
            if row["host_core_busy_max"] is not None else "-",
            f"{row['host_completions_per_s'] / 1e6:.2f}"
            if row["host_completions_per_s"] is not None else "-",
        ])
    emit(format_table(
        ["Arm", "Rings", "UDP Gb/s", "Max core busy", "Mcompl/s"],
        table,
        title="RSS scaling: paper 1-ring host vs multi-queue (1472 B, RMW 166 MHz)",
    ))

    by_rings = {row["rss_rings"]: row for row in rows if "ring-rss" in row["label"]}
    paper = next(row for row in rows if row["label"] == "1ring-paper")

    # The paper baseline itself is wire-limited (no host model).
    assert paper["udp_throughput_gbps"] > 18.5
    # One ring under the host model: the core saturates and throughput
    # collapses below the wire.
    assert by_rings[1]["host_core_busy_max"] > 0.99
    assert by_rings[1]["udp_throughput_gbps"] < 0.8 * paper["udp_throughput_gbps"]
    # Two rings already restore wire-limited throughput...
    for rings in (2, 4, 8):
        assert by_rings[rings]["udp_throughput_gbps"] > 0.95 * paper["udp_throughput_gbps"]
    # ...and past that, extra rings only dilute per-core load: total
    # completion rate stays wire-limited while max busy keeps falling.
    assert by_rings[4]["host_core_busy_max"] < 0.6 * by_rings[2]["host_core_busy_max"]
    assert by_rings[8]["host_core_busy_max"] < by_rings[4]["host_core_busy_max"]
    assert (
        by_rings[4]["host_completions_per_s"]
        > 1.5 * by_rings[1]["host_completions_per_s"]
    )
