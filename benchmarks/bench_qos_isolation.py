"""Mixed-criticality QoS isolation guard (the ISSUE 9 ablation).

A 3-NIC incast over the switched fabric: NIC 0 streams the
*guaranteed* class at a fixed provisioned load while NIC 1 streams the
*best-effort* class at an uncongested load and again well past the
output port's capacity, both converging on NIC 2.  The per-class
queueing + DRR scheduler + RED AQM must deliver the
Papaefstathiou-style guarantee the subsystem exists to demonstrate:

* the guaranteed class loses **zero** frames at every load and its
  one-way p999 stays inside the provisioned bound even while the port
  is overloaded;
* every loss (RED or tail) lands on best-effort, and at overload RED
  is actually shedding (drops > 0) — the guard is not vacuous;
* best-effort still makes forward progress (work conservation: the
  scheduler never idles the port while best-effort holds frames).

The runs are deterministic (seeded keyed RED decisions), so the
assertions are exact, not statistical.  Wall time is recorded as the
trajectory point; a 4-core NIC is required so the sources can actually
overload the 10G port (2 cores cap out near 5.7 Gb/s).
"""

from __future__ import annotations

from benchmarks._helpers import emit, run_once
from repro.fabric import FabricSimulator, FabricSpec, StreamFlowSpec
from repro.nic import NicConfig
from repro.qos import QosSpec
from repro.units import mhz

SEED = 5
GUARANTEED_LOAD = 0.25
UNCONGESTED_LOAD = 0.3
OVERLOAD = 1.0
P999_BOUND_US = 150.0
WARMUP_S = 0.2e-3
MEASURE_S = 0.5e-3


def _base_spec() -> FabricSpec:
    qos = QosSpec.mixed_criticality(
        scheduler="drr",
        guaranteed_p999_bound_us=P999_BOUND_US,
        seed=SEED,
    )
    return FabricSpec(
        nics=3,
        switch=True,
        seed=SEED,
        qos=qos,
        stream_flows=(
            StreamFlowSpec(src=0, dst=2, offered_fraction=GUARANTEED_LOAD,
                           name="gold", qos_class="guaranteed"),
            StreamFlowSpec(src=1, dst=2, offered_fraction=1.0,
                           name="bulk", qos_class="best-effort"),
        ),
    )


def _run_arm(load: float):
    spec = _base_spec().with_load(load, flows=["bulk"])
    config = NicConfig(cores=4, core_frequency_hz=mhz(133))
    simulator = FabricSimulator(config, spec, estimator="exact")
    return simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)


def _measure():
    return _run_arm(UNCONGESTED_LOAD), _run_arm(OVERLOAD)


def test_guaranteed_class_isolated_under_overload(benchmark):
    calm, overload = run_once(benchmark, _measure)
    lines = ["Mixed-criticality isolation (drr scheduler, RED AQM)"]
    for label, result in (("calm", calm), ("overload", overload)):
        classes = result.qos["classes"]
        gold, bulk = classes["guaranteed"], classes["best-effort"]
        lines.append(
            f"  {label:9s} gold {gold['goodput_gbps']:.2f} Gb/s "
            f"p999 {gold['oneway']['p999_us']:.1f} us "
            f"(bound {P999_BOUND_US:g}), BE {bulk['goodput_gbps']:.2f} Gb/s "
            f"tail {bulk['tail_drops']} red {bulk['red_drops']}"
        )
    emit("\n".join(lines))

    for label, result in (("calm", calm), ("overload", overload)):
        gold = result.qos["classes"]["guaranteed"]
        # Isolation: the guaranteed class never loses a frame ...
        assert gold["tail_drops"] == 0 and gold["red_drops"] == 0, (
            f"{label}: guaranteed class dropped frames "
            f"(tail {gold['tail_drops']}, red {gold['red_drops']})"
        )
        # ... and its provisioned tail bound holds.
        assert gold["oneway"]["p999_us"] <= P999_BOUND_US, (
            f"{label}: guaranteed p999 {gold['oneway']['p999_us']:.1f} us "
            f"exceeds bound {P999_BOUND_US:g} us"
        )
        assert gold["delivered"] > 0

    bulk_calm = calm.qos["classes"]["best-effort"]
    bulk_over = overload.qos["classes"]["best-effort"]
    # The overload arm actually overloads: RED sheds best-effort frames.
    assert bulk_over["red_drops"] > 0, "overload arm shed no RED drops"
    assert bulk_calm["red_drops"] + bulk_calm["tail_drops"] == 0, (
        "calm arm should be loss-free"
    )
    # Best-effort is squeezed, not starved (DRR work conservation).
    assert bulk_over["delivered"] > 0
    assert bulk_over["goodput_gbps"] >= bulk_calm["goodput_gbps"], (
        "best-effort goodput fell under overload despite spare port capacity"
    )
