"""Calibration-sensitivity study.

The model's per-handler cost profiles are calibrated constants, so this
bench perturbs them (±30% on every parallelization-overhead constant,
0.5x-2x on the host DMA latency) and re-checks the reproduction's
headline conclusions.  The robust conclusions — RMW sustains line rate
at 166 MHz, never loses to the lock-based firmware, and saves more on
send than receive — must hold at every point; the sharper "software
needs a 200 MHz clock" statement is expected to hold at and above the
calibrated overhead level (with cheaper-than-calibrated firmware the
whole system is simply over-provisioned)."""

from benchmarks._helpers import emit, run_once
from repro.analysis import format_table
from repro.analysis.sensitivity import sensitivity_analysis


def bench_sensitivity(benchmark):
    points = run_once(benchmark, sensitivity_analysis)

    emit(format_table(
        ["Perturbation", "RMW@166", "SW@166", "send save %", "recv save %",
         "robust?", "sw needs >166?"],
        [
            [p.label, p.rmw_166_fraction, p.software_166_fraction,
             p.send_saving_pct, p.recv_saving_pct,
             "yes" if p.conclusions_hold else "NO",
             "yes" if p.software_needs_higher_clock else "no"]
            for p in points
        ],
        title="Sensitivity of headline conclusions to calibration",
    ))

    # Robust conclusions hold everywhere.
    for point in points:
        assert point.conclusions_hold, point.label
    # The clock-reduction conclusion holds at and above calibration.
    nominal = next(p for p in points if p.label == "overhead x1.0")
    heavy = next(p for p in points if p.label == "overhead x1.3")
    assert nominal.software_needs_higher_clock
    assert heavy.software_needs_higher_clock
    # Send savings beat receive savings at every point (Table 5 shape).
    assert all(p.send_saving_pct > p.recv_saving_pct for p in points)
