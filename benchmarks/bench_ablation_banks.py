"""Ablation — scratchpad bank count.

Section 2.3 argues a single scratchpad bank has just enough *bandwidth*
(6.4 vs 4.8 Gb/s at 200 MHz) but that queueing at one bank would hurt
latency, so the design overprovisions with multiple banks.  This sweep
quantifies that: with few banks the conflict-stall share of the IPC
breakdown grows and throughput drops below line rate."""

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once, sweep_kwargs
from repro.analysis import format_table
from repro.exp import Sweep
from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig
from repro.units import mhz

BANK_COUNTS = (1, 2, 4, 8)


def _experiment():
    # One engine sweep over the bank-count axis (parallel + cached when
    # REPRO_SWEEP_JOBS / REPRO_CACHE_DIR are set).
    sweep = Sweep.of_configs(
        "ablation-banks",
        configs=[
            NicConfig(
                cores=6,
                core_frequency_hz=mhz(166),
                scratchpad_banks=banks,
                ordering_mode=OrderingMode.RMW,
            )
            for banks in BANK_COUNTS
        ],
        udp_payload_bytes=1472,
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
        labels=[f"{banks}banks" for banks in BANK_COUNTS],
    )
    outcome = sweep.run(**sweep_kwargs())
    return dict(zip(BANK_COUNTS, outcome.results))


def bench_ablation_scratchpad_banks(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for banks, result in sorted(results.items()):
        breakdown = result.ipc_breakdown()
        rows.append([
            banks,
            result.line_rate_fraction(),
            breakdown.get("conflict", 0.0),
            result.conflict_wait,
        ])
    emit(format_table(
        ["Banks", "Line-rate fraction", "Conflict IPC share", "Expected wait (cyc)"],
        rows,
        title="Ablation: scratchpad bank count (6 cores @ 166 MHz, RMW)",
    ))

    # The conflict share of the cycle budget shrinks with more banks.
    shares = [results[b].ipc_breakdown()["conflict"] for b in (1, 2, 4, 8)]
    assert shares[0] > shares[2]
    assert shares[1] >= shares[3] - 0.01
    # One bank is no better than four, and four reaches line rate.
    one = results[1].line_rate_fraction()
    four = results[4].line_rate_fraction()
    assert four >= one - 0.02
    # The paper's chosen configuration (4 banks) reaches line rate.
    assert four > 0.97
