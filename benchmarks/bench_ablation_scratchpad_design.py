"""Ablation — shared banked scratchpad vs private per-core scratchpads.

Section 4: "If each core had its own private scratchpad, the access
latency could be reduced to a single cycle by eliminating the crossbar.
However, each core would then be limited to only accessing its local
scratchpad or would require a much higher latency to access a remote
location."

NIC metadata is inherently shared (descriptors migrate between stages on
different cores, and the assists read/write them too), so a private
design pays remote accesses on a large fraction of loads.  We sweep
that fraction: the shared banked design (1 stall/load + mild conflicts)
wins unless sharing is implausibly low — quantifying why the paper
chose the dancehall crossbar."""

from dataclasses import replace

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table
from repro.cpu.costmodel import CoreCostModel
from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig, ThroughputSimulator
from repro.units import mhz

REMOTE_LATENCY_CYCLES = 5.0  # request + remote bank + return, no crossbar


def _private_cost_model(remote_fraction: float) -> CoreCostModel:
    # Local loads stall 0 cycles; remote loads stall latency-1 cycles.
    stall = remote_fraction * (REMOTE_LATENCY_CYCLES - 1.0)
    return CoreCostModel(load_stall_cycles=stall)


def _experiment():
    results = {}
    base = NicConfig(
        cores=6, core_frequency_hz=mhz(150), ordering_mode=OrderingMode.RMW
    )
    results["shared-banked"] = ThroughputSimulator(base, 1472).run(WARMUP_S, MEASURE_S)
    for remote_fraction in (0.2, 0.4, 0.6):
        config = replace(
            base,
            cost_model=_private_cost_model(remote_fraction),
            # No crossbar: bank conflicts vanish (one core per bank).
            scratchpad_banks=64,
        )
        key = f"private-{int(100 * remote_fraction)}%-remote"
        results[key] = ThroughputSimulator(config, 1472).run(WARMUP_S, MEASURE_S)
    return results


def bench_ablation_scratchpad_design(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for name, result in results.items():
        breakdown = result.ipc_breakdown()
        rows.append([
            name,
            result.line_rate_fraction(),
            breakdown["load"],
            breakdown["conflict"],
        ])
    emit(format_table(
        ["Design", "Line-rate fraction", "Load-stall share", "Conflict share"],
        rows,
        title="Ablation: scratchpad organization (6 cores @ 150 MHz, RMW)",
    ))

    shared = results["shared-banked"].line_rate_fraction()
    low_sharing = results["private-20%-remote"].line_rate_fraction()
    high_sharing = results["private-60%-remote"].line_rate_fraction()
    # With little sharing a private design would win on latency...
    assert low_sharing >= shared - 0.02
    # ...but at realistic NIC sharing levels the shared banked design
    # is at least as good, and the private design's load stalls grow.
    assert shared >= high_sharing - 0.02
    assert (
        results["private-60%-remote"].ipc_breakdown()["load"]
        > results["private-20%-remote"].ipc_breakdown()["load"]
    )
