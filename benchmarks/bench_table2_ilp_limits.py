"""Table 2 — theoretical peak IPC of the NIC firmware trace for
in-order/out-of-order cores of width 1/2/4 under perfect and realistic
pipelines and three branch-prediction models."""

from benchmarks._helpers import emit, run_once
from repro.analysis import format_table, table2_ilp_limits

_COLUMNS = (
    "perfect/pbp", "perfect/pbp1", "perfect/nobp",
    "stalls/pbp", "stalls/pbp1", "stalls/nobp",
)


def bench_table2_ilp_limits(benchmark):
    rows = run_once(benchmark, table2_ilp_limits, 4)

    table_rows = [
        [f'{row["order"]}-{row["width"]}'] + [row[c] for c in _COLUMNS]
        for row in rows
    ]
    emit(format_table(
        ["Config"] + list(_COLUMNS),
        table_rows,
        title="Table 2: theoretical peak IPC of NIC firmware",
    ))

    by_key = {(r["order"], r["width"]): r for r in rows}
    io1 = by_key[("IO", 1)]
    ooo2 = by_key[("OOO", 2)]
    ooo4 = by_key[("OOO", 4)]

    # Paper trend 1: for in-order cores, pipeline hazards matter more
    # than branch prediction.
    io4 = by_key[("IO", 4)]
    hazard_gain = io4["perfect/nobp"] - io4["stalls/nobp"]
    branch_gain = io4["stalls/pbp"] - io4["stalls/nobp"]
    assert hazard_gain > branch_gain * 0.8

    # Paper trend 2: for out-of-order cores, branch prediction matters
    # more than hazards.
    hazard_gain = ooo4["perfect/nobp"] - ooo4["stalls/nobp"]
    branch_gain = ooo4["stalls/pbp"] - ooo4["stalls/nobp"]
    assert branch_gain > hazard_gain

    # The complexity argument: a 2-wide OOO core with PBP1 gives about
    # twice the IPC of the simple in-order core, at far higher cost.
    ratio = ooo2["stalls/pbp1"] / io1["stalls/nobp"]
    emit(f"OOO-2/PBP1 vs IO-1/noBP speedup: {ratio:.2f}x (paper: ~2x)")
    assert 1.4 < ratio < 2.6

    # The base design point sustains most of its issue slots.
    assert 0.7 <= io1["stalls/nobp"] <= 1.0
