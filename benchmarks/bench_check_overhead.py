"""Disabled-monitor overhead guard.

The conformance layer's contract (docs/validation.md) is that a run
without a monitor attached pays essentially nothing for the hook
sites: every site is ``if self.monitor.enabled:`` against the shared
``NULL_MONITOR`` null object — the same pattern (and budget) as the
tracer's.  This benchmark measures the same experiment with the
default null monitor, an explicitly attached ``NULL_MONITOR``, and an
armed ``InvariantMonitor``, and asserts the disabled-path overhead
stays under 2% wall time.

Measured like ``bench_tracer_overhead``: alternating repetitions,
best-of (minimum is the least-noise estimator for a deterministic
workload), threshold on the ratio of minima.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, run_once
from repro.check import NULL_MONITOR, InvariantMonitor, attach_monitor
from repro.nic import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.units import mhz

REPS = 5
WARMUP_S = 0.05e-3
MEASURE_S = 0.25e-3
MAX_NULL_OVERHEAD = 0.02  # 2%


def _run_experiment(monitor=None):
    config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    simulator = ThroughputSimulator(config, 1472)
    if monitor is not None:
        attach_monitor(simulator, monitor)
    result = simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
    return result, simulator


def _time_run(monitor=None) -> float:
    started = time.perf_counter()
    _run_experiment(monitor=monitor)
    return time.perf_counter() - started


def _measure_overhead():
    # One untimed run first to warm caches and interpreter state.
    _run_experiment()
    baseline, nulled, armed = [], [], []
    for _ in range(REPS):
        # Alternate variants to spread slow-host drift evenly.
        baseline.append(_time_run(monitor=None))
        nulled.append(_time_run(monitor=NULL_MONITOR))
        armed.append(_time_run(monitor=InvariantMonitor()))
    return min(baseline), min(nulled), min(armed)


def test_null_monitor_overhead_under_two_percent(benchmark):
    base_s, null_s, armed_s = run_once(benchmark, _measure_overhead)
    overhead = null_s / base_s - 1.0
    armed_overhead = armed_s / base_s - 1.0
    emit(
        "Disabled-monitor overhead guard\n"
        f"  no monitor (default):   {base_s * 1e3:8.2f} ms\n"
        f"  explicit NULL_MONITOR:  {null_s * 1e3:8.2f} ms "
        f"({overhead:+.2%})\n"
        f"  armed InvariantMonitor: {armed_s * 1e3:8.2f} ms "
        f"({armed_overhead:+.2%}, informational)\n"
        f"  guard threshold:        <{MAX_NULL_OVERHEAD:.0%}"
    )
    # The default path and the explicit NULL_MONITOR path are the same
    # object, so this bounds the cost of every `monitor.enabled` gate.
    assert overhead < MAX_NULL_OVERHEAD, (
        f"null monitor added {overhead:.2%} wall time "
        f"(limit {MAX_NULL_OVERHEAD:.0%}): {null_s:.4f}s vs {base_s:.4f}s"
    )
    # Sanity: the armed monitor actually checks (guard is not vacuous),
    # and the monitored run is numerically identical to the bare run.
    monitor = InvariantMonitor()
    armed_result, _sim = _run_experiment(monitor=monitor)
    bare_result, _sim = _run_experiment()
    assert monitor.total_checks() > 0, "armed monitor checked nothing"
    assert monitor.ok, monitor.violations
    assert armed_result.to_dict() == bare_result.to_dict(), (
        "armed monitor perturbed the simulation"
    )
