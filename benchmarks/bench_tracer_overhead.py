"""Null-tracer overhead guard.

The telemetry layer's contract (docs/observability.md) is that a run
without a tracer attached pays essentially nothing for the
instrumentation sites: every site is a single attribute check against
the shared ``NULL_TRACER`` null object.  This benchmark measures the
same experiment with and without an explicit null tracer and asserts
the disabled-path overhead stays under 2% wall time.

Wall-clock measurements on shared CI hosts are noisy, so the guard is
measured carefully: several alternating repetitions, best-of (the
minimum is the least-noise estimator for a deterministic workload),
and the threshold is asserted on the ratio of the minima.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, run_once
from repro.nic import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.obs import NULL_TRACER, Tracer
from repro.units import mhz

REPS = 5
WARMUP_S = 0.05e-3
MEASURE_S = 0.25e-3
MAX_NULL_OVERHEAD = 0.02  # 2%


def _run_experiment(tracer=None):
    config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    simulator = ThroughputSimulator(config, 1472, tracer=tracer)
    return simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)


def _time_run(tracer=None) -> float:
    started = time.perf_counter()
    _run_experiment(tracer=tracer)
    return time.perf_counter() - started


def _measure_overhead():
    # One untimed run first to warm caches and interpreter state.
    _run_experiment()
    baseline, nulled, traced = [], [], []
    for _ in range(REPS):
        # Alternate variants to spread slow-host drift evenly.
        baseline.append(_time_run(tracer=None))
        nulled.append(_time_run(tracer=NULL_TRACER))
        traced.append(_time_run(tracer=Tracer()))
    return min(baseline), min(nulled), min(traced)


def test_null_tracer_overhead_under_two_percent(benchmark):
    base_s, null_s, traced_s = run_once(benchmark, _measure_overhead)
    overhead = null_s / base_s - 1.0
    enabled_overhead = traced_s / base_s - 1.0
    emit(
        "Null-tracer overhead guard\n"
        f"  no tracer (default):   {base_s * 1e3:8.2f} ms\n"
        f"  explicit NULL_TRACER:  {null_s * 1e3:8.2f} ms "
        f"({overhead:+.2%})\n"
        f"  enabled Tracer():      {traced_s * 1e3:8.2f} ms "
        f"({enabled_overhead:+.2%}, informational)\n"
        f"  guard threshold:       <{MAX_NULL_OVERHEAD:.0%}"
    )
    # The default path and the explicit NULL_TRACER path are the same
    # object, so this bounds the cost of every `tracer.enabled` gate.
    assert overhead < MAX_NULL_OVERHEAD, (
        f"null tracer added {overhead:.2%} wall time "
        f"(limit {MAX_NULL_OVERHEAD:.0%}): {null_s:.4f}s vs {base_s:.4f}s"
    )
    # Sanity: the enabled tracer actually records (guard is not vacuous).
    tracer = Tracer()
    _run_experiment(tracer=tracer)
    assert tracer.events, "enabled tracer recorded nothing"
