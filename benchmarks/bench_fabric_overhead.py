"""Fabric-layer consistency and overhead guard.

The fabric's 1-NIC loopback topology (``FabricSpec.loopback()``) runs
the *same* firmware/assist/memory pipeline as a bare
:class:`~repro.nic.throughput.ThroughputSimulator` — only the traffic
edges differ (flow-driven posts and wire-fed arrivals instead of the
analytic saturation streams).  This benchmark asserts the two paths
agree:

* **modeled goodput** (deterministic, the real guard): the loopback
  flow's delivered goodput must stay within 5% of the bare simulator's
  receive goodput over the same windows.  The residual is a constant
  handful of frames in flight across the window boundaries, so it
  shrinks as 1/measure-window; the 1 ms window used here leaves a wide
  margin.
* **wall time** (informational): the fabric's per-frame bookkeeping
  (frame identity maps, recorded sizes, flow callbacks) costs real
  work; the ratio is reported so regressions are visible, but shared-CI
  noise makes it a poor hard gate.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, run_once
from repro.fabric import FabricSimulator, FabricSpec
from repro.nic import NicConfig
from repro.nic.throughput import ThroughputSimulator
from repro.units import mhz

REPS = 3
WARMUP_S = 0.2e-3
MEASURE_S = 1.0e-3
MAX_GOODPUT_DIVERGENCE = 0.05  # 5%


def _config() -> NicConfig:
    # Compute-bound point: both paths bottleneck on the same pipeline,
    # so the goodput comparison is sharp (not hidden under line rate).
    return NicConfig(cores=2, core_frequency_hz=mhz(133))


def _run_bare():
    simulator = ThroughputSimulator(_config(), 1472)
    return simulator.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)


def _run_fabric():
    fabric = FabricSimulator(_config(), FabricSpec.loopback())
    return fabric.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)


def _measure():
    # Untimed warm-up pass for interpreter/caches.
    _run_bare()
    bare_result = fabric_result = None
    bare_times, fabric_times = [], []
    for _ in range(REPS):
        started = time.perf_counter()
        bare_result = _run_bare()
        bare_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        fabric_result = _run_fabric()
        fabric_times.append(time.perf_counter() - started)
    return bare_result, fabric_result, min(bare_times), min(fabric_times)


def test_loopback_fabric_tracks_bare_simulator(benchmark):
    bare, fabric, bare_s, fabric_s = run_once(benchmark, _measure)
    bare_gbps = bare.rx_payload_bytes * 8 / MEASURE_S / 1e9
    flow = fabric.primary_flow
    divergence = abs(flow.goodput_gbps - bare_gbps) / bare_gbps
    wall_ratio = fabric_s / bare_s
    emit(
        "Fabric loopback vs bare ThroughputSimulator\n"
        f"  bare rx goodput:     {bare_gbps:8.4f} Gb/s "
        f"({bare_s * 1e3:.1f} ms wall)\n"
        f"  fabric loopback:     {flow.goodput_gbps:8.4f} Gb/s "
        f"({fabric_s * 1e3:.1f} ms wall, {flow.delivered} delivered, "
        f"{flow.lost} lost)\n"
        f"  goodput divergence:  {divergence:.2%} "
        f"(guard <{MAX_GOODPUT_DIVERGENCE:.0%})\n"
        f"  wall-time ratio:     {wall_ratio:.2f}x (informational)"
    )
    assert flow.lost == 0, f"lossless loopback dropped {flow.lost} frames"
    assert divergence <= MAX_GOODPUT_DIVERGENCE, (
        f"1-NIC fabric goodput {flow.goodput_gbps:.4f} Gb/s diverged "
        f"{divergence:.2%} from bare simulator {bare_gbps:.4f} Gb/s "
        f"(limit {MAX_GOODPUT_DIVERGENCE:.0%})"
    )
    # The guard is not vacuous: the loopback actually moved traffic and
    # measured one-way latency.
    assert flow.delivered > 0 and flow.oneway.count == flow.delivered
    assert flow.oneway.p99_us >= flow.oneway.p50_us > 0
