"""Shared utilities for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures, prints it in the paper's row/series format (run pytest with
``-s`` to see it), and asserts the qualitative shape the paper reports.
Simulation experiments run once per benchmark (``pedantic`` mode) —
they are measurements, not microbenchmarks to be repeated.
"""

from __future__ import annotations

from typing import Callable

# Standard measurement windows for full-fidelity runs.
WARMUP_S = 0.4e-3
MEASURE_S = 1.0e-3


def sweep_kwargs() -> dict:
    """Engine arguments for benches that sweep via :class:`repro.exp.Sweep`.

    Defaults come from the environment — ``REPRO_SWEEP_JOBS`` for the
    worker count and ``REPRO_CACHE_DIR`` for the result cache — so
    ``REPRO_SWEEP_JOBS=4 pytest benchmarks ...`` parallelizes every
    migrated bench without touching its code, and a CI cache directory
    makes overlapping drivers share simulation points.
    """
    return {"jobs": None, "cache_dir": None}


def run_once(benchmark, function: Callable, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a report block (visible with pytest -s)."""
    print()
    print(text)
