"""Model validation — macro-tier cost model vs cycle-level execution.

The throughput simulator times handlers with a statistical cost model
(`repro.cpu.costmodel`) instead of executing instructions.  This bench
quantifies that substitution: the same firmware kernels run on the
cycle-level pipeline, and the cost model predicts their cycle counts
from their operation mixes.  Prediction error within ~25% on every
kernel/configuration is the accuracy budget DESIGN.md §5 claims."""


from benchmarks._helpers import emit, run_once
from repro.analysis import format_table
from repro.cpu.costmodel import CoreCostModel, OpProfile
from repro.firmware.kernels import assemble_firmware
from repro.firmware.micro import assemble_micro_receive
from repro.nic import MicroNic, NicConfig
from repro.nic.microdev import DeviceMemory
from repro.units import mhz


def _measure(program, banks=4, shared_memory=None):
    config = NicConfig(cores=1, core_frequency_hz=mhz(166), scratchpad_banks=banks)
    nic = MicroNic(config, program, shared_memory=shared_memory)
    stats = nic.run()[0]
    machine = nic.cores[0].machine
    profile = OpProfile(
        instructions=stats.instructions,
        loads=machine.loads,
        stores=machine.stores,
        taken_branch_fraction=machine.taken_branches / max(1, stats.instructions),
        load_use_fraction=0.5,
    )
    predicted = CoreCostModel().cycles(profile, conflict_wait_per_access=0.0)
    return stats, predicted


def _experiment():
    cases = {}
    for kernel in ("order_sw", "order_rmw"):
        program = assemble_firmware(kernel, iterations=2)
        cases[f"kernels/{kernel}"] = _measure(program)
    rx_program = assemble_micro_receive(32)
    device = DeviceMemory(total_rx_frames=32, rx_interarrival_cycles=1,
                          dma_latency_cycles=1)
    cases["micro-receive"] = _measure(rx_program, shared_memory=device)
    return cases


def bench_model_validation(benchmark):
    cases = run_once(benchmark, _experiment)

    rows = []
    errors = {}
    for name, (stats, predicted) in cases.items():
        error = (predicted - stats.cycles) / stats.cycles
        errors[name] = error
        rows.append([name, stats.instructions, stats.cycles, predicted,
                     100 * error])
    emit(format_table(
        ["Workload", "Instructions", "Measured cycles", "Predicted cycles",
         "Error %"],
        rows,
        title="Macro-tier cost model vs cycle-level pipeline (1 core)",
    ))

    # The firmware kernels are the cost model's home turf: within 25%.
    assert abs(errors["kernels/order_sw"]) < 0.25
    assert abs(errors["kernels/order_rmw"]) < 0.25
    # The polling-heavy micro firmware is the hardest case (its spin
    # loops have an unusual mix); still within 35%.
    assert abs(errors["micro-receive"]) < 0.35
