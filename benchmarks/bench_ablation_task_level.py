"""Ablation — task-level (event-register) firmware vs frame-level
(distributed-queue) firmware.

Section 3.2's motivation: with the Tigon-II event register, "so long as
a processor is engaged in handling a specific type of event, no other
processor can simultaneously handle that same type of event", so
task-level parallelism cannot use many cores.  This bench runs both
organizations on identical hardware and compares scaling."""

import pytest

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table
from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig, ThroughputSimulator
from repro.units import mhz


def _experiment():
    results = {}
    for task_level in (False, True):
        for cores in (1, 2, 4, 6, 8):
            config = NicConfig(
                cores=cores,
                core_frequency_hz=mhz(133),
                ordering_mode=OrderingMode.RMW,
                task_level_firmware=task_level,
            )
            key = ("task" if task_level else "frame", cores)
            results[key] = ThroughputSimulator(config, 1472).run(WARMUP_S, MEASURE_S)
    return results


def bench_ablation_task_level_firmware(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for cores in (1, 2, 4, 6, 8):
        frame = results[("frame", cores)].line_rate_fraction()
        task = results[("task", cores)].line_rate_fraction()
        rows.append([cores, frame, task])
    emit(format_table(
        ["Cores", "Frame-level", "Task-level"],
        rows,
        title="Ablation: firmware organization (line-rate fraction @ 133 MHz)",
    ))

    # Identical at one core (no parallelism to restrict).
    one_frame = results[("frame", 1)].line_rate_fraction()
    one_task = results[("task", 1)].line_rate_fraction()
    assert abs(one_frame - one_task) < 0.08
    # At low core counts the restriction rarely binds (within noise);
    # past the number of busy event types, task-level hits its ceiling.
    for cores in (2, 4):
        frame = results[("frame", cores)].line_rate_fraction()
        task = results[("task", cores)].line_rate_fraction()
        assert frame == pytest.approx(task, abs=0.06)
    frame6 = results[("frame", 6)].line_rate_fraction()
    task6 = results[("task", 6)].line_rate_fraction()
    assert frame6 > 0.97          # frame-level reaches line rate
    assert task6 < frame6 - 0.10  # task-level cannot
    # Adding cores past the ceiling buys task-level nothing.
    task8 = results[("task", 8)].total_fps
    task6_fps = results[("task", 6)].total_fps
    emit(f"task-level 6->8 core speedup: {task8 / task6_fps:.3f}x (plateau)")
    assert task8 <= task6_fps * 1.05
