"""Experiment-engine performance guard (``repro.exp``).

Not a paper figure: this bench guards the engine's own claims on an
8-point figure-7-style grid —

* a fully-cached second pass is **>= 10x** faster than the cold pass
  (content-addressed cache hits skip simulation entirely);
* with >= 4 host CPUs, ``jobs=4`` beats serial by **>= 2x** wall time
  (asserted only when the hardware can show it; single-CPU CI runners
  report the ratio without asserting);
* every path — serial, parallel, cached — returns **byte-identical**
  results;
* per-point engine overhead (hashing + cache round-trip) stays
  negligible next to a simulation point.
"""

import os
import pickle
import tempfile
import time

from benchmarks._helpers import emit, run_once
from repro.exp import ResultCache, Sweep, SweepRunner, spec_key

# 8 points, short windows: enough simulated work for stable ratios
# without making CI wait on full-fidelity runs.
CORE_COUNTS = (2, 4)
FREQUENCIES_MHZ = (100, 133, 166, 200)
WARMUP_S = 0.1e-3
MEASURE_S = 0.2e-3


def _grid() -> Sweep:
    return Sweep.grid(
        "engine-bench",
        core_counts=CORE_COUNTS,
        frequencies_mhz=FREQUENCIES_MHZ,
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
    )


def _timed_run(sweep, **runner_kwargs):
    runner = SweepRunner(progress=None, **runner_kwargs)
    started = time.perf_counter()
    outcome = runner.run(sweep.specs)
    return outcome, time.perf_counter() - started


def _experiment():
    sweep = _grid()
    with tempfile.TemporaryDirectory(prefix="sweep-bench-") as cache_dir:
        serial, serial_s = _timed_run(sweep, jobs=1, cache_dir=None)
        jobs = 4
        parallel, parallel_s = _timed_run(sweep, jobs=jobs, cache_dir=None)
        cold, cold_s = _timed_run(sweep, jobs=1, cache_dir=cache_dir)
        warm, warm_s = _timed_run(sweep, jobs=1, cache_dir=cache_dir)

        # Per-point engine overhead: key hashing plus one cache
        # round-trip, measured directly.
        spec = sweep.specs[0]
        started = time.perf_counter()
        for _ in range(100):
            spec_key(spec)
        key_s = (time.perf_counter() - started) / 100
        probe = ResultCache(os.path.join(cache_dir, "probe"))
        started = time.perf_counter()
        for index in range(100):
            probe.put(f"{index:064x}", warm.results[0])
            probe.get(f"{index:064x}")
        cache_s = (time.perf_counter() - started) / 100

    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "key_overhead_s": key_s,
        "cache_roundtrip_s": cache_s,
        "pickles": {
            "serial": [pickle.dumps(r) for r in serial.results],
            "parallel": [pickle.dumps(r) for r in parallel.results],
            "cold": [pickle.dumps(r) for r in cold.results],
            "warm": [pickle.dumps(r) for r in warm.results],
        },
        "warm_hits": warm.cache_hits,
        "warm_executed": warm.executed,
    }


def bench_sweep_engine(benchmark):
    data = run_once(benchmark, _experiment)

    points = len(CORE_COUNTS) * len(FREQUENCIES_MHZ)
    cached_speedup = data["cold_s"] / data["warm_s"]
    parallel_speedup = data["serial_s"] / data["parallel_s"]
    per_point_s = data["serial_s"] / points
    emit(
        f"Experiment engine, {points}-point grid "
        f"({data['cpus']} host CPU(s))\n"
        f"  serial            {data['serial_s'] * 1e3:9.1f} ms "
        f"({per_point_s * 1e3:.1f} ms/point)\n"
        f"  jobs={data['jobs']}            {data['parallel_s'] * 1e3:9.1f} ms "
        f"({parallel_speedup:.1f}x vs serial)\n"
        f"  cold + cache fill {data['cold_s'] * 1e3:9.1f} ms\n"
        f"  fully cached      {data['warm_s'] * 1e3:9.1f} ms "
        f"({cached_speedup:.1f}x vs cold)\n"
        f"  spec_key          {data['key_overhead_s'] * 1e6:9.1f} us/point\n"
        f"  cache round-trip  {data['cache_roundtrip_s'] * 1e6:9.1f} us/point"
    )

    # Warm pass simulated nothing.
    assert data["warm_hits"] == points
    assert data["warm_executed"] == 0
    # A fully-cached pass is at least 10x faster than the cold pass.
    assert cached_speedup >= 10, f"cached speedup only {cached_speedup:.1f}x"
    # Parallel speedup needs the cores to exist; on >= 4-CPU hosts the
    # pool must at least halve the wall time.
    if data["cpus"] >= 4:
        assert parallel_speedup >= 2, (
            f"jobs={data['jobs']} speedup only {parallel_speedup:.1f}x "
            f"on {data['cpus']} CPUs"
        )
    # Engine overhead is noise next to a simulation point.
    overhead = data["key_overhead_s"] + data["cache_roundtrip_s"]
    assert overhead < 0.05 * per_point_s
    # Every execution path returns byte-identical results.
    assert data["pickles"]["parallel"] == data["pickles"]["serial"]
    assert data["pickles"]["cold"] == data["pickles"]["serial"]
    assert data["pickles"]["warm"] == data["pickles"]["serial"]
