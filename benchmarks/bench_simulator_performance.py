"""Microbenchmarks of the simulator's own primitives.

Unlike the table/figure benches (which run once and assert paper
shapes), these measure the *simulator's* performance — the numbers that
determine how long a full evaluation takes and where optimization
effort should go.  pytest-benchmark's repeated timing is meaningful
here."""

from repro.firmware.kernels import assemble_firmware, kernel_source
from repro.isa import Machine, assemble
from repro.isa.machine import Memory, apply_setb, apply_update
from repro.mem.coherence import CoherentCacheSystem, TraceAccess
from repro.sim import Simulator


def bench_event_kernel(benchmark):
    """Schedule-and-drain throughput of the discrete-event kernel."""

    def run():
        sim = Simulator()
        for index in range(5000):
            sim.schedule(index, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 5000


def bench_functional_interpreter(benchmark):
    """Instructions per second of the functional MIPS machine."""
    program = assemble(
        """
        .data
        buf: .word 0, 1, 2, 3, 4, 5, 6, 7
        .text
        main:
            li $t0, 200
        outer:
            la $t1, buf
            li $t2, 8
        inner:
            lw $t3, 0($t1)
            addu $v0, $v0, $t3
            addiu $t2, $t2, -1
            bgtz $t2, inner
            addiu $t1, $t1, 4
            addiu $t0, $t0, -1
            bgtz $t0, outer
            nop
            halt
        """
    )

    def run():
        machine = Machine(program)
        machine.run()
        return machine.instructions_executed

    instructions = benchmark(run)
    assert instructions > 8000


def bench_pipelined_core(benchmark):
    """Cycle-level core: instructions simulated per second."""
    from repro.cpu import PipelinedCore
    from repro.mem import Scratchpad

    program = assemble_firmware("order_rmw", iterations=1)

    def run():
        core = PipelinedCore(program, Scratchpad())
        stats = core.run()
        return stats.instructions

    instructions = benchmark(run)
    assert instructions > 500


def bench_assembler(benchmark):
    """Two-pass assembly of the full firmware kernel source."""
    source = kernel_source("order_sw", iterations=4)
    program = benchmark(assemble, source)
    assert program.text_bytes > 0


def bench_rmw_update(benchmark):
    """The `update` word-scan primitive (hot in ordering-heavy runs)."""
    memory = Memory(256)
    for index in range(512):
        apply_setb(memory, 0, index)

    def run():
        # Re-set a word and harvest it.
        memory.store_word(0, 0xFFFFFFFF)
        last = -1
        while True:
            new_last = apply_update(memory, 0, last)
            if new_last == last or new_last >= 31:
                return new_last
            last = new_last

    assert benchmark(run) == 31


def bench_mesi_access(benchmark):
    """Coherence-simulator accesses per second."""
    trace = [
        TraceAccess(i % 4, (i * 48) % 4096, i % 3 == 0) for i in range(2000)
    ]

    def run():
        system = CoherentCacheSystem(4, 1024, line_bytes=16)
        system.run_trace(trace)
        return system.stats.accesses

    assert benchmark(run) == 2000


def bench_throughput_simulator(benchmark):
    """Wall time of a short macro-tier window (the dominant cost of the
    figure benches)."""
    from repro.nic import RMW_166MHZ, ThroughputSimulator

    def run():
        simulator = ThroughputSimulator(RMW_166MHZ, 1472)
        result = simulator.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        return result.tx_frames

    frames = benchmark.pedantic(run, rounds=3, iterations=1)
    assert frames > 0
