"""Microbenchmarks of the simulator's own primitives.

Unlike the table/figure benches (which run once and assert paper
shapes), these measure the *simulator's* performance — the numbers that
determine how long a full evaluation takes and where optimization
effort should go.  pytest-benchmark's repeated timing is meaningful
here."""

from repro.firmware.kernels import assemble_firmware, kernel_source
from repro.isa import Machine, assemble
from repro.isa.machine import Memory, apply_setb, apply_update
from repro.mem.coherence import CoherentCacheSystem, TraceAccess
from repro.sim import Simulator


def bench_event_kernel(benchmark):
    """Schedule-and-drain throughput of the discrete-event kernel."""

    def run():
        sim = Simulator()
        for index in range(5000):
            sim.schedule(index, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 5000


def bench_event_kernel_fast(benchmark):
    """Chunk-drain throughput of the batched fast path: the same 5000
    homogeneous quanta as ``bench_event_kernel``, but drained through
    one :class:`BatchSource` instead of per-event heap traffic."""

    def run():
        sim = Simulator()
        fired = [0]

        def chunk(start_index, times):
            fired[0] += len(times)

        sim.batch.periodic(0, 1, 5000, chunk_fn=chunk)
        sim.run()
        assert fired[0] == 5000
        return sim.events_processed

    events = benchmark(run)
    assert events == 5000


def bench_fast_path_speedup(benchmark):
    """The fast-path acceptance gate: batched chunk drain must process
    homogeneous periodic events at >=10x the per-event heap drain.

    Both sides run the *same* 100k-quantum schedule through the same
    ``Simulator.run`` loop; only the scheduling idiom differs.  The
    reported sample is the reference/fast wall-time ratio (best of
    three each), and the bench fails outright below the 10x bar."""
    import time as _time

    quanta = 100_000

    def reference_s() -> float:
        sim = Simulator()
        callback = lambda: None  # noqa: E731 - minimal homogeneous handler
        for index in range(quanta):
            sim.schedule(index, callback)
        started = _time.perf_counter()
        sim.run()
        elapsed = _time.perf_counter() - started
        assert sim.events_processed == quanta
        return elapsed

    def fast_s() -> float:
        sim = Simulator()
        fired = [0]

        def chunk(start_index, times):
            fired[0] += len(times)

        sim.batch.periodic(0, 1, quanta, chunk_fn=chunk)
        started = _time.perf_counter()
        sim.run()
        elapsed = _time.perf_counter() - started
        assert sim.events_processed == quanta and fired[0] == quanta
        return elapsed

    def run():
        reference = min(reference_s() for _ in range(3))
        fast = min(fast_s() for _ in range(3))
        return reference / max(fast, 1e-9)

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedup >= 10.0, (
        f"batched fast path is only {speedup:.1f}x the reference heap "
        f"drain; the PR gate requires >=10x"
    )


def bench_functional_interpreter(benchmark):
    """Instructions per second of the functional MIPS machine."""
    program = assemble(
        """
        .data
        buf: .word 0, 1, 2, 3, 4, 5, 6, 7
        .text
        main:
            li $t0, 200
        outer:
            la $t1, buf
            li $t2, 8
        inner:
            lw $t3, 0($t1)
            addu $v0, $v0, $t3
            addiu $t2, $t2, -1
            bgtz $t2, inner
            addiu $t1, $t1, 4
            addiu $t0, $t0, -1
            bgtz $t0, outer
            nop
            halt
        """
    )

    def run():
        machine = Machine(program)
        machine.run()
        return machine.instructions_executed

    instructions = benchmark(run)
    assert instructions > 8000


def bench_pipelined_core(benchmark):
    """Cycle-level core: instructions simulated per second."""
    from repro.cpu import PipelinedCore
    from repro.mem import Scratchpad

    program = assemble_firmware("order_rmw", iterations=1)

    def run():
        core = PipelinedCore(program, Scratchpad())
        stats = core.run()
        return stats.instructions

    instructions = benchmark(run)
    assert instructions > 500


def bench_assembler(benchmark):
    """Two-pass assembly of the full firmware kernel source."""
    source = kernel_source("order_sw", iterations=4)
    program = benchmark(assemble, source)
    assert program.text_bytes > 0


def bench_rmw_update(benchmark):
    """The `update` word-scan primitive (hot in ordering-heavy runs)."""
    memory = Memory(256)
    for index in range(512):
        apply_setb(memory, 0, index)

    def run():
        # Re-set a word and harvest it.
        memory.store_word(0, 0xFFFFFFFF)
        last = -1
        while True:
            new_last = apply_update(memory, 0, last)
            if new_last == last or new_last >= 31:
                return new_last
            last = new_last

    assert benchmark(run) == 31


def bench_mesi_access(benchmark):
    """Coherence-simulator accesses per second."""
    trace = [
        TraceAccess(i % 4, (i * 48) % 4096, i % 3 == 0) for i in range(2000)
    ]

    def run():
        system = CoherentCacheSystem(4, 1024, line_bytes=16)
        system.run_trace(trace)
        return system.stats.accesses

    assert benchmark(run) == 2000


def bench_throughput_simulator(benchmark):
    """Wall time of a short macro-tier window (the dominant cost of the
    figure benches)."""
    from repro.nic import RMW_166MHZ, ThroughputSimulator

    def run():
        simulator = ThroughputSimulator(RMW_166MHZ, 1472)
        result = simulator.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        return result.tx_frames

    frames = benchmark.pedantic(run, rounds=3, iterations=1)
    assert frames > 0


def bench_throughput_simulator_fast(benchmark):
    """The same macro-tier window on the batched fast path (``--fast``).

    No speedup assertion here: full runs are dominated by the Python
    frame handlers, so the honest comparison against
    ``bench_throughput_simulator`` is reported, not gated.  The >=10x
    gate lives in ``bench_fast_path_speedup`` where the kernel itself
    is the workload."""
    from repro.nic import RMW_166MHZ, ThroughputSimulator

    def run():
        simulator = ThroughputSimulator(RMW_166MHZ, 1472, fast=True)
        result = simulator.run(warmup_s=0.1e-3, measure_s=0.2e-3)
        return result.tx_frames

    frames = benchmark.pedantic(run, rounds=3, iterations=1)
    assert frames > 0
