"""Table 1 — per-frame instruction and data-access counts of the four
NIC processing functions, plus the Section 2.1 line-rate arithmetic
(812,744 fps, 435 MIPS, 4.8 Gb/s control, 39.5 Gb/s frame data)."""

import pytest

from benchmarks._helpers import emit, run_once
from repro.analysis import format_table, table1_ideal_profile


def bench_table1_ideal_profile(benchmark):
    rows = run_once(benchmark, table1_ideal_profile)

    table_rows = []
    for label in ("Fetch Send BD", "Send Frame", "Fetch Receive BD", "Receive Frame"):
        entry = rows[label]
        table_rows.append([label, entry["instructions"], entry["data_accesses"]])
    emit(format_table(
        ["Function", "Instructions", "Data Accesses"],
        table_rows,
        title="Table 1: average per-frame costs (ideal firmware)",
    ))
    derived = [
        ["line-rate MIPS (send)", rows["(derived) line-rate MIPS"]["send"], 229],
        ["line-rate MIPS (receive)", rows["(derived) line-rate MIPS"]["receive"], 206],
        ["line-rate MIPS (total)", rows["(derived) line-rate MIPS"]["total"], 435],
        ["control bandwidth Gb/s", rows["(derived) control bandwidth Gb/s"]["total"], 4.8],
        ["frames/s per direction", rows["(derived) frames per second per direction"]["fps"], 812744],
        ["frame data bandwidth Gb/s", rows["(derived) frame data bandwidth Gb/s"]["total"], 39.5],
    ]
    emit(format_table(["Derived quantity", "measured", "paper"], derived))

    # Shape assertions (Section 2.1's arithmetic).
    assert rows["(derived) line-rate MIPS"]["total"] == pytest.approx(435, abs=3)
    assert rows["(derived) control bandwidth Gb/s"]["total"] == pytest.approx(4.8, abs=0.05)
    assert rows["(derived) frames per second per direction"]["fps"] == pytest.approx(
        812_744, abs=2
    )
    assert rows["(derived) frame data bandwidth Gb/s"]["total"] == pytest.approx(
        39.5, abs=0.1
    )
