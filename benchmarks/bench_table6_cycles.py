"""Table 6 — cycles per packet by function for the two line-rate
configurations: software-only at 200 MHz vs RMW-enhanced at 166 MHz.

Paper: both achieve full-duplex line rate; the RMW variant cuts send
cycles by 28.4% and receive cycles by 4.7%, which is what allows the
17% clock reduction (200 -> 166 MHz)."""


from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table, table6_cycles
from repro.analysis.tables import FUNCTION_LABELS
from repro.nic import NicConfig, RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator
from repro.firmware.ordering import OrderingMode
from repro.units import mhz


def _experiment():
    software = ThroughputSimulator(SOFTWARE_200MHZ, 1472).run(WARMUP_S, MEASURE_S)
    rmw = ThroughputSimulator(RMW_166MHZ, 1472).run(WARMUP_S, MEASURE_S)
    software_166 = ThroughputSimulator(
        NicConfig(cores=6, core_frequency_hz=mhz(166),
                  ordering_mode=OrderingMode.SOFTWARE),
        1472,
    ).run(WARMUP_S, MEASURE_S)
    return table6_cycles(software, rmw), software, rmw, software_166


def bench_table6_cycles(benchmark):
    rows, software, rmw, software_166 = run_once(benchmark, _experiment)

    labels = dict(FUNCTION_LABELS)
    labels["send_total"] = "Send Total"
    labels["recv_total"] = "Receive Total"
    emit(format_table(
        ["Function", "Software-only @200MHz", "RMW-enhanced @166MHz"],
        [
            [labels[name], data["software_cycles"], data["rmw_cycles"]]
            for name, data in rows.items()
        ],
        title="Table 6: cycles per packet by function",
    ))
    send_cut = 1 - rows["send_total"]["rmw_cycles"] / rows["send_total"]["software_cycles"]
    recv_cut = 1 - rows["recv_total"]["rmw_cycles"] / rows["recv_total"]["software_cycles"]
    emit(f"send cycle reduction: {100 * send_cut:.1f}% (paper 28.4%)")
    emit(f"recv cycle reduction: {100 * recv_cut:.1f}% (paper 4.7%)")
    emit(f"software-only at 166 MHz: {software_166.line_rate_fraction():.3f} of line rate "
         "(must fall short — the RMW savings are what enable 166 MHz)")

    # Both headline configurations run at line rate.
    assert software.line_rate_fraction() > 0.97
    assert rmw.line_rate_fraction() > 0.97
    # The software firmware cannot hold line rate at 166 MHz.
    assert software_166.line_rate_fraction() < 0.99
    # Send saves substantially, receive barely (paper: 28.4% vs 4.7%).
    assert 0.15 < send_cut < 0.40
    assert -0.05 < recv_cut < 0.20
    assert send_cut > recv_cut + 0.10
