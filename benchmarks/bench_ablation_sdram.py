"""Ablation — frame-memory bandwidth provisioning.

Table 4's corollary: full-duplex line rate *requires* 39.5 Gb/s of
frame-memory bandwidth, and the paper provisions 64 Gb/s (64-bit GDDR
at 500 MHz) to absorb misalignment padding, row activations, and
burst-arbitration slack.  This sweep derates the SDRAM clock: at
250 MHz the 32 Gb/s peak is *below* the physical requirement and no
amount of processing can reach line rate; at 375 MHz (48 Gb/s) it
squeaks through; the paper's 500 MHz leaves healthy margin."""

import pytest

from dataclasses import replace

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once
from repro.analysis import format_table
from repro.nic import RMW_166MHZ, ThroughputSimulator
from repro.units import mhz


def _experiment():
    results = {}
    for sdram_mhz in (250, 375, 500, 625):
        config = replace(RMW_166MHZ, sdram_frequency_hz=mhz(sdram_mhz))
        results[sdram_mhz] = ThroughputSimulator(config, 1472).run(
            WARMUP_S, MEASURE_S
        )
    return results


def bench_ablation_sdram_bandwidth(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for sdram_mhz, result in sorted(results.items()):
        report = result.bandwidth_report()
        rows.append([
            sdram_mhz,
            report["frame_memory_peak_gbps"],
            report["frame_memory_consumed_gbps"],
            result.line_rate_fraction(),
        ])
    emit(format_table(
        ["SDRAM MHz", "Peak Gb/s", "Consumed Gb/s", "Line-rate fraction"],
        rows,
        title="Ablation: frame-memory clock (6x166 MHz RMW, 1472 B UDP)",
    ))

    # Below the 39.5 Gb/s requirement: physically impossible.
    starved = results[250]
    assert starved.bandwidth_report()["frame_memory_peak_gbps"] < 39.5
    assert starved.line_rate_fraction() < 0.85
    # The paper's 500 MHz reaches line rate with margin.
    assert results[500].line_rate_fraction() > 0.97
    # Extra bandwidth beyond that buys nothing (the cores are the
    # next constraint).
    assert results[625].line_rate_fraction() == pytest.approx(
        results[500].line_rate_fraction(), abs=0.02
    )
    # Consumed bandwidth never exceeds the configured peak.
    for result in results.values():
        report = result.bandwidth_report()
        assert report["frame_memory_consumed_gbps"] <= report["frame_memory_peak_gbps"] * 1.01
