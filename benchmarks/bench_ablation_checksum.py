"""Ablation — checksum offload service (Section 8 extension).

The paper motivates programmable NICs with services beyond Ethernet
(TCP offload, iSCSI, ...).  This bench adds the simplest such service —
IP/UDP checksumming — in the two plausible places:

* **assist** — folded into the MAC/DMA data stream (how real NICs do
  it): firmware just reads a status word, throughput unchanged;
* **firmware** — cores walk every payload word, which forces them into
  the *frame* memory the partitioned design deliberately keeps them out
  of: throughput collapses, and even 4x the cores cannot restore line
  rate.

The punchline supports the paper's design: programmability is for
*control-path* services; payload-touching services need assists."""

import pytest

from dataclasses import replace

from benchmarks._helpers import MEASURE_S, WARMUP_S, emit, run_once, sweep_kwargs
from repro.analysis import format_table
from repro.exp import Sweep
from repro.firmware.ordering import OrderingMode
from repro.nic import NicConfig
from repro.units import mhz

BASE = NicConfig(cores=6, core_frequency_hz=mhz(166), ordering_mode=OrderingMode.RMW)

# (cores, checksum mode) — the five simulation points of this ablation.
POINTS = (
    ("6", "none"),
    ("6", "assist"),
    ("6", "firmware"),
    ("12", "firmware"),
    ("24", "firmware"),
)


def _experiment():
    sweep = Sweep.of_configs(
        "ablation-checksum",
        configs=[
            replace(BASE, cores=int(cores), checksum_offload=mode)
            for cores, mode in POINTS
        ],
        udp_payload_bytes=1472,
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
        labels=[f"{cores}c/{mode}" for cores, mode in POINTS],
    )
    outcome = sweep.run(**sweep_kwargs())
    return dict(zip(POINTS, outcome.results))


def bench_ablation_checksum_offload(benchmark):
    results = run_once(benchmark, _experiment)

    rows = [
        [f"{cores} cores / {mode}", result.line_rate_fraction(),
         result.udp_throughput_gbps, result.core_utilization]
        for (cores, mode), result in results.items()
    ]
    emit(format_table(
        ["Configuration", "Line-rate fraction", "Gb/s", "Core util"],
        rows,
        title="Ablation: checksum service placement (166 MHz, RMW firmware)",
    ))

    none = results[("6", "none")].line_rate_fraction()
    assist = results[("6", "assist")].line_rate_fraction()
    firmware6 = results[("6", "firmware")].line_rate_fraction()
    firmware24 = results[("24", "firmware")].line_rate_fraction()

    # Assist-side checksumming is effectively free.
    assert assist == pytest.approx(none, abs=0.02)
    assert assist > 0.97
    # Firmware checksumming collapses throughput...
    assert firmware6 < 0.35
    # ...and even 4x the cores cannot restore line rate.
    assert firmware24 < 0.9
    # Scaling is at least monotonic (it is a compute problem).
    assert firmware24 > results[("12", "firmware")].line_rate_fraction() > firmware6
