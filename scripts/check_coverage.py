#!/usr/bin/env python
"""Coverage ratchet: fail if line coverage drops below the pinned floor.

CI runs the full suite under ``pytest --cov=repro --cov-report=json``
and then this script, which compares the measured line coverage of
``src/repro/`` against the floor pinned in ``scripts/coverage_floor.json``:

.. code-block:: console

    $ python -m pytest -q -m "" --cov=repro --cov-report=json
    $ python scripts/check_coverage.py                # gate
    $ python scripts/check_coverage.py --update       # ratchet the floor up

The floor only ever rises (``--update`` refuses to lower it), so
coverage can improve but never silently regress.  The script parses the
JSON report with the stdlib only — it does not import ``coverage``
itself, which keeps it runnable in environments without the package.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

RATCHET_PATH = os.path.join(os.path.dirname(__file__), "coverage_floor.json")


def load_measured(report_path: str) -> float:
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return float(report["totals"]["percent_covered"])


def load_floor(path: str = RATCHET_PATH) -> float:
    with open(path, "r", encoding="utf-8") as handle:
        return float(json.load(handle)["floor_percent"])


def write_floor(floor: float, path: str = RATCHET_PATH) -> None:
    payload = {
        "comment": (
            "Line-coverage floor for src/repro/ (ratchet: may only rise; "
            "bump with `python scripts/check_coverage.py --update` after "
            "improving coverage)."
        ),
        "floor_percent": floor,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="coverage.json",
                        help="pytest-cov JSON report (default: coverage.json)")
    parser.add_argument("--floor-file", default=RATCHET_PATH)
    parser.add_argument("--update", action="store_true",
                        help="raise the floor to the measured value "
                             "(never lowers it)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.report):
        print(f"no coverage report at {args.report}; run "
              f"`python -m pytest -q -m \"\" --cov=repro --cov-report=json` "
              f"first (requires pytest-cov)", file=sys.stderr)
        return 2

    measured = load_measured(args.report)
    floor = load_floor(args.floor_file)

    if args.update:
        # Ratchet: round down to one decimal so flaky hundredths of a
        # percent (executed-once lines moving between runs) don't churn.
        candidate = int(measured * 10) / 10.0
        if candidate > floor:
            write_floor(candidate, args.floor_file)
            print(f"floor raised {floor:.1f}% -> {candidate:.1f}% "
                  f"(measured {measured:.2f}%)")
        else:
            print(f"floor stays at {floor:.1f}% "
                  f"(measured {measured:.2f}% does not exceed it)")
        return 0

    if measured + 1e-9 < floor:
        print(f"COVERAGE REGRESSION: {measured:.2f}% < floor {floor:.1f}% "
              f"(src/repro line coverage)", file=sys.stderr)
        print("add tests, or consciously lower the floor in "
              f"{args.floor_file} with a justification", file=sys.stderr)
        return 1
    print(f"coverage OK: {measured:.2f}% >= floor {floor:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
