"""``python -m repro`` — demo tour, or the full CLI with arguments.

With no arguments, runs the headline experiment (the paper's 6x166 MHz
RMW-enhanced NIC against full-duplex 10 GbE) and prints the result.
With arguments, dispatches to the :mod:`repro.cli` subcommands
(``run``, ``sweep``, ``report``, ``asm``, ``ilp``).
"""

import sys

from repro import RMW_166MHZ, SOFTWARE_200MHZ, ThroughputSimulator, __version__


def main() -> None:
    print(f"repro {__version__} — HPCA 2005 programmable 10 GbE NIC reproduction")
    print()
    for name, config in (
        ("RMW-enhanced firmware, 6 cores @ 166 MHz", RMW_166MHZ),
        ("software-only firmware, 6 cores @ 200 MHz", SOFTWARE_200MHZ),
    ):
        result = ThroughputSimulator(config, 1472).run(warmup_s=0.4e-3, measure_s=1e-3)
        print(f"{name}:")
        print(f"  {result.udp_throughput_gbps:5.2f} Gb/s full-duplex UDP "
              f"({result.line_rate_fraction():.1%} of line rate), "
              f"core utilization {result.core_utilization:.0%}, "
              f"~{result.mean_outstanding_frames:.0f} frames in flight")
    print()
    print("tables & figures: pytest benchmarks/ --benchmark-only -s")
    print("examples:         python examples/quickstart.py")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        from repro.cli import main as cli_main

        sys.exit(cli_main())
    main()
