"""Command-line interface.

Subcommands::

    repro run      one full-duplex throughput experiment
    repro sweep    cores x frequency design-space sweep
    repro faults   throughput under injected faults (run or rate sweep)
    repro fabric   multi-NIC fabric: RPC/stream flows, latency percentiles
    repro qos      mixed-criticality QoS ablation: classes, schedulers, AQM
    repro report   regenerate the paper's whole evaluation
    repro check    conformance: oracles, golden corpus, fuzz, replay
    repro bench    benchmark observatory: run benches, emit/compare BENCH JSON
    repro asm      assemble and run a MIPS firmware file
    repro ilp      IPC-limit analysis of a firmware trace

Installed as the ``repro`` console script, and reachable via
``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.firmware.ordering import OrderingMode
from repro.units import mhz


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run one full-duplex throughput experiment"
    )
    parser.add_argument("--cores", type=int, default=6)
    parser.add_argument("--mhz", type=float, default=166)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--ordering", choices=["rmw", "software"], default="rmw")
    parser.add_argument("--payload", type=int, default=1472)
    parser.add_argument("--millis", type=float, default=1.0)
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=False,
        help="batched event-kernel fast path; results are byte-identical "
             "to the reference path (--no-fast, the default)")
    parser.add_argument("--offered", type=float, default=1.0,
                        help="offered receive load as a fraction of line rate")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    # -- observability ---------------------------------------------------
    parser.add_argument("--trace", type=str, default="", metavar="OUT.json",
                        help="record frame-lifecycle spans and write a "
                             "Chrome trace-event / Perfetto JSON file")
    parser.add_argument("--metrics-out", type=str, default="", metavar="PATH",
                        help="write a periodic metrics time series "
                             "(see --metrics-format / --sample-interval)")
    parser.add_argument("--metrics-format", choices=["json", "csv", "prom"],
                        default="json",
                        help="time-series format; 'prom' writes the final "
                             "snapshot in Prometheus text format")
    parser.add_argument("--sample-interval", type=float, default=50.0,
                        metavar="US",
                        help="metrics sampling interval in simulated "
                             "microseconds (default: 50)")
    parser.add_argument("--profile-sim", action="store_true",
                        help="profile the simulator itself: per-callback "
                             "wall-time attribution, top-N report; with "
                             "--json, embeds the machine-readable profile "
                             "as 'sim_profile'")


def _add_sweep_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "sweep",
        help="cores x frequency sweep (parallel, cached; docs/experiments.md)",
    )
    parser.add_argument("--cores", type=int, nargs="+", default=[1, 2, 4, 6, 8])
    parser.add_argument("--mhz", type=float, nargs="+",
                        default=[100, 133, 166, 200])
    parser.add_argument("--ordering", choices=["rmw", "software"], default="rmw")
    parser.add_argument("--payload", type=int, default=1472)
    parser.add_argument("--millis", type=float, default=0.8,
                        help="measurement window per point in simulated "
                             "milliseconds (default: 0.8)")
    # -- experiment engine -----------------------------------------------
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_SWEEP_JOBS "
                             "or 1 = serial)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="content-addressed result cache directory "
                             "(default: $REPRO_CACHE_DIR; unset = no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable cache reads and writes even if a "
                             "cache directory is configured")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from the cache "
                             "(requires a cache directory; cached points "
                             "are skipped, missing points are executed)")
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out",
                        help="write per-point results as JSON ('-' for stdout)")
    parser.add_argument("--csv", type=str, default="", metavar="PATH",
                        dest="csv_out",
                        help="write per-point results as CSV ('-' for stdout)")


def _add_faults_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "faults",
        help="throughput under injected faults (docs/faults.md)",
    )
    # -- NIC configuration ------------------------------------------------
    parser.add_argument("--cores", type=int, default=6)
    parser.add_argument("--mhz", type=float, default=166)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--ordering", choices=["rmw", "software"], default="rmw")
    parser.add_argument("--payload", type=int, default=1472)
    parser.add_argument("--millis", type=float, default=0.8,
                        help="measurement window in simulated milliseconds")
    # -- fault plan -------------------------------------------------------
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (same seed => same faults)")
    parser.add_argument("--fcs-rate", type=float, default=0.0,
                        help="per-frame RX FCS corruption probability")
    parser.add_argument("--sdram-rate", type=float, default=0.0,
                        help="per-burst SDRAM transfer error probability")
    parser.add_argument("--sdram-max-retries", type=int, default=4,
                        help="bounded retry budget per SDRAM burst")
    parser.add_argument("--pci-stall-rate", type=float, default=0.0,
                        help="per-DMA host-interface stall probability")
    parser.add_argument("--pci-stall-us", type=float, default=2.0,
                        help="added latency per stalled DMA (microseconds)")
    parser.add_argument("--queue-depth", type=int, default=0,
                        help="finite event-queue depth (0 = effectively "
                             "unbounded, the fault-free default)")
    # -- sweep mode -------------------------------------------------------
    parser.add_argument("--sweep-axis", choices=["fcs", "sdram", "pci"],
                        default="", help="sweep one fault rate instead of "
                                         "running a single point")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[0.0, 1e-4, 1e-3, 1e-2, 0.05],
                        help="fault rates for --sweep-axis")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR")
    parser.add_argument("--no-cache", action="store_true")
    # -- output -----------------------------------------------------------
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out", nargs="?", const="-",
                        help="emit results as JSON ('-' or no value = stdout)")
    parser.add_argument("--csv", type=str, default="", metavar="PATH",
                        dest="csv_out",
                        help="sweep mode: write per-point rows as CSV")


def _add_fabric_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fabric",
        help="multi-NIC fabric with stateful flows (docs/fabric.md)",
    )
    # -- NIC configuration ------------------------------------------------
    parser.add_argument("--cores", type=int, default=6)
    parser.add_argument("--mhz", type=float, default=166)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--ordering", choices=["rmw", "software"], default="rmw")
    # -- topology ---------------------------------------------------------
    parser.add_argument("--nics", type=int, default=2,
                        help="endpoints in the fabric (default: 2)")
    parser.add_argument("--prop-us", type=float, default=1.0,
                        help="per-hop propagation delay in microseconds")
    parser.add_argument("--switch", action="store_true",
                        help="route through a store-and-forward switch "
                             "instead of dedicated links")
    parser.add_argument("--port-queue", type=int, default=64,
                        help="switch output-port queue depth in frames")
    parser.add_argument("--switch-latency-us", type=float, default=0.5,
                        help="switch forwarding latency in microseconds")
    # -- flows ------------------------------------------------------------
    parser.add_argument("--concurrency", type=int, default=4,
                        help="RPC outstanding-request window (0 = no RPC flow)")
    parser.add_argument("--request-bytes", type=int, default=64)
    parser.add_argument("--response-bytes", type=int, default=1472)
    parser.add_argument("--think-us", type=float, default=0.0,
                        help="client think time between exchanges")
    parser.add_argument("--stream-load", type=float, default=0.0,
                        help="add an open-loop 0->1 bulk stream at this "
                             "fraction of line rate (0 = none)")
    parser.add_argument("--stream-bytes", type=int, default=1472)
    # -- windows ----------------------------------------------------------
    parser.add_argument("--millis", type=float, default=0.5,
                        help="measurement window in simulated milliseconds")
    parser.add_argument("--warmup-millis", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0,
                        help="fabric seed (salts per-endpoint fault streams)")
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=False,
        help="batched event-kernel fast path; results are byte-identical "
             "to the reference path (--no-fast, the default)")
    parser.add_argument("--estimator", choices=["streaming", "exact"],
                        default="streaming",
                        help="latency percentile estimator: 'streaming' "
                             "(bounded memory, documented relative-error "
                             "bound) or 'exact' (full sample buffers; "
                             "single-run path only)")
    # -- sweep mode -------------------------------------------------------
    parser.add_argument("--sweep-loads", type=float, nargs="+", default=[],
                        metavar="FRACTION",
                        help="sweep the stream offered load over these "
                             "fractions (engine path: parallel + cached)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR")
    parser.add_argument("--no-cache", action="store_true")
    # -- output -----------------------------------------------------------
    parser.add_argument("--trace", type=str, default="", metavar="OUT.json",
                        help="write a Perfetto/Chrome trace with per-NIC "
                             "tracks plus cross-NIC fabric spans")
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out", nargs="?", const="-",
                        help="emit results as JSON ('-' or no value = stdout)")
    parser.add_argument("--csv", type=str, default="", metavar="PATH",
                        dest="csv_out",
                        help="sweep mode: write per-point rows as CSV")


def _add_qos_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "qos",
        help="mixed-criticality QoS ablation: per-class queueing, "
             "pluggable schedulers, RED AQM, PFC pause (docs/qos.md)",
    )
    # -- NIC configuration ------------------------------------------------
    parser.add_argument("--cores", type=int, default=4,
                        help="cores per NIC (default 4: each source can "
                             "saturate the 10G switch port, so the "
                             "best-effort lane can actually overload it)")
    parser.add_argument("--mhz", type=float, default=133)
    # -- QoS configuration ------------------------------------------------
    parser.add_argument("--scheduler", choices=["strict", "drr", "wrr"],
                        default="strict",
                        help="per-port drain discipline (default: strict)")
    parser.add_argument("--p999-bound-us", type=float, default=150.0,
                        help="guaranteed class's provisioned p999 latency "
                             "budget; the ablation asserts it")
    parser.add_argument(
        "--red", action=argparse.BooleanOptionalAction, default=True,
        help="RED AQM on the best-effort queue (seeded, replayable drops)")
    parser.add_argument(
        "--pause", action=argparse.BooleanOptionalAction, default=False,
        help="PFC-style XOFF/XON watermarks on the best-effort queue "
             "(pauses the transmitting stream pacers)")
    # -- traffic ----------------------------------------------------------
    parser.add_argument("--guaranteed-load", type=float, default=0.25,
                        help="guaranteed lane's fixed offered fraction")
    parser.add_argument("--loads", type=float, nargs="+",
                        default=[0.3, 0.7, 1.0], metavar="FRACTION",
                        help="best-effort offered-load arms (1.0 + the "
                             "guaranteed lane overloads the shared port)")
    # -- windows / determinism --------------------------------------------
    parser.add_argument("--millis", type=float, default=0.5,
                        help="measurement window in simulated milliseconds")
    parser.add_argument("--warmup-millis", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0,
                        help="keys the RED drop decisions (same seed => "
                             "byte-identical runs)")
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=False,
        help="batched event-kernel fast path; results are byte-identical "
             "to the reference path (--no-fast, the default)")
    parser.add_argument("--estimator", choices=["streaming", "exact"],
                        default="exact",
                        help="latency percentile estimator (default exact: "
                             "the ablation's JSON is byte-compared in CI)")
    # -- output -----------------------------------------------------------
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out", nargs="?", const="-",
                        help="emit all arms as JSON ('-' or no value = "
                             "stdout)")


def _add_topology_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "topology",
        help="datacenter-fabric ablations: leaf-spine oversubscription "
             "incast + ECMP spreading (docs/fabric.md)",
    )
    # -- NIC configuration ------------------------------------------------
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--mhz", type=float, default=133)
    # -- topology ---------------------------------------------------------
    parser.add_argument("--racks", type=int, default=2)
    parser.add_argument("--hosts-per-rack", type=int, default=4,
                        help="default 4: three elephants + the mice flow "
                             "share one uplink when --spines 1, so the "
                             "oversubscription effect is visible")
    parser.add_argument("--spines", type=int, nargs="+", default=[1, 4],
                        metavar="N",
                        help="spine counts to ablate; the ablation asserts "
                             "that the most oversubscribed arm (fewest "
                             "spines) shows the worst p999")
    # -- traffic ----------------------------------------------------------
    parser.add_argument("--load", type=float, default=0.5,
                        help="offered fraction of each elephant stream "
                             "(every host outside the victim's rack incasts "
                             "one onto the victim)")
    parser.add_argument("--mice-concurrency", type=int, default=2,
                        help="closed-loop window of the cross-rack mice "
                             "RPC flow whose RTT tail the ablation tracks")
    # -- ECMP spreading check ---------------------------------------------
    parser.add_argument("--ecmp-flows", type=int, default=512,
                        help="flow tuples routed (router-level, no "
                             "simulation) for the spreading check")
    parser.add_argument("--spread-tolerance", type=float, default=0.25,
                        help="max relative deviation of any spine's "
                             "first-hop share from the uniform share")
    # -- windows / determinism --------------------------------------------
    parser.add_argument("--millis", type=float, default=0.3,
                        help="measurement window in simulated milliseconds")
    parser.add_argument("--warmup-millis", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=17,
                        help="keys the ECMP route draws (same seed => "
                             "byte-identical runs)")
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=False,
        help="batched event-kernel fast path; results are byte-identical "
             "to the reference path (--no-fast, the default)")
    parser.add_argument("--estimator", choices=["streaming", "exact"],
                        default="exact",
                        help="latency percentile estimator (default exact: "
                             "the ablation's JSON is byte-compared in CI)")
    # -- output -----------------------------------------------------------
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out", nargs="?", const="-",
                        help="emit all arms as JSON ('-' or no value = "
                             "stdout)")


def _add_rss_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "rss",
        help="paper-vs-modern host-interface ablation: single ring vs "
             "multi-queue RSS (docs/fabric.md)",
    )
    # -- NIC configuration ------------------------------------------------
    parser.add_argument("--cores", type=int, default=6)
    parser.add_argument("--mhz", type=float, default=166)
    parser.add_argument("--banks", type=int, default=4)
    parser.add_argument("--ordering", choices=["rmw", "software"], default="rmw")
    # -- ablation arms ----------------------------------------------------
    parser.add_argument("--rings", type=int, nargs="+", default=[1, 2, 4, 8],
                        metavar="N",
                        help="ring counts for the multi-queue arms (each "
                             "runs the task-level firmware; the paper's "
                             "frame-level single-ring baseline always "
                             "rides along)")
    parser.add_argument("--hash-seed", type=int, default=0,
                        help="Toeplitz hash-key seed (0 = the published "
                             "verification-suite key)")
    parser.add_argument("--coalesce", type=int, default=8,
                        help="per-ring interrupt coalescing window")
    # -- workload ---------------------------------------------------------
    parser.add_argument("--workload", choices=["rpc", "imix", "saturation"],
                        default="rpc",
                        help="fabric RPC flows (default), fabric IMIX "
                             "streams, or the paper's analytic "
                             "saturation workload")
    parser.add_argument("--nics", type=int, default=2,
                        help="fabric endpoints (fabric workloads only)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="RPC outstanding-request window")
    parser.add_argument("--load", type=float, default=0.7,
                        help="IMIX per-direction offered fraction")
    parser.add_argument("--seed", type=int, default=0)
    # -- windows / engine -------------------------------------------------
    parser.add_argument("--millis", type=float, default=0.8,
                        help="measurement window in simulated milliseconds")
    parser.add_argument("--warmup-millis", type=float, default=0.4)
    parser.add_argument("--jobs", type=int, default=None, metavar="N")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR")
    parser.add_argument("--no-cache", action="store_true")
    # -- output -----------------------------------------------------------
    parser.add_argument("--json", type=str, default="", metavar="PATH",
                        dest="json_out", nargs="?", const="-",
                        help="emit per-arm rows as JSON ('-' = stdout)")
    parser.add_argument("--csv", type=str, default="", metavar="PATH",
                        dest="csv_out")


def _add_report_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "report", help="regenerate the paper's evaluation section"
    )
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--output", type=str, default="")


def _add_check_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "check",
        help="conformance checks: differential oracles, golden corpus, "
             "seeded fuzzing with replay (docs/validation.md)",
    )
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="fuzz N random experiment points with "
                             "invariant monitors armed (0 = skip)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz corpus seed (same seed => same points)")
    parser.add_argument("--replay-dir", type=str, default="", metavar="DIR",
                        help="write a deterministic replay file per fuzz "
                             "failure into this directory")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking fuzz failures to minimal repros")
    parser.add_argument("--replay", type=str, default="", metavar="FILE",
                        help="re-execute one failure from its replay file "
                             "and exit")
    parser.add_argument("--skip-oracles", action="store_true",
                        help="skip the differential-oracle battery")
    parser.add_argument("--skip-golden", action="store_true",
                        help="skip the golden-trace corpus comparison")
    parser.add_argument("--update-golden", action="store_true",
                        help="regenerate tests/golden/golden.json from the "
                             "current code and exit")
    parser.add_argument("--golden-path", type=str, default="",
                        metavar="PATH", help="golden corpus file to check "
                                             "or regenerate")
    parser.add_argument("--fast", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run the simulator-backed oracles and the "
                             "golden comparison on the batched fast path "
                             "(digests must still match the reference "
                             "corpus)")


def _add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="benchmark observatory: run benchmarks/bench_*.py, emit "
             "BENCH_<name>.json, compare trajectory points "
             "(docs/observability.md)",
    )
    parser.add_argument("--bench-dir", type=str, default="benchmarks",
                        metavar="DIR",
                        help="directory holding bench_*.py modules "
                             "(default: ./benchmarks)")
    parser.add_argument("--out-dir", type=str, default="bench-results",
                        metavar="DIR",
                        help="where BENCH_<name>.json reports are written")
    parser.add_argument("--quick", action="store_true",
                        help="run only the fast overhead/perf subset "
                             "(suitable for per-PR CI)")
    parser.add_argument("--only", type=str, nargs="+", default=[],
                        metavar="SUBSTR",
                        help="run only benches whose module name contains "
                             "one of these substrings")
    parser.add_argument("--rounds", type=int, default=None, metavar="K",
                        help="rounds per benchmark function for median-of-k "
                             "(default: 3 full, 2 with --quick)")
    parser.add_argument("--list", action="store_true", dest="listing",
                        help="list discovered benches and exit")
    parser.add_argument("--compare", type=str, nargs=2, default=None,
                        metavar=("OLD", "NEW"),
                        help="compare two trajectory points (BENCH_*.json "
                             "files or directories of them) and exit "
                             "nonzero on regression; no benches are run")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="default relative regression tolerance for "
                             "--compare (default: 0.25; per-metric "
                             "tolerances in the reports take precedence)")
    parser.add_argument("--stat", choices=["median", "min"], default="median",
                        help="which statistic --compare diffs "
                             "(default: median, the noise-aware choice)")


def _add_asm_parser(subparsers) -> None:
    parser = subparsers.add_parser("asm", help="assemble and run a MIPS file")
    parser.add_argument("file", help="assembly source file")
    parser.add_argument("--entry", type=str, default=None, help="entry label")
    parser.add_argument("--timing", action="store_true",
                        help="run on the cycle-level pipelined core")
    parser.add_argument("--max-steps", type=int, default=1_000_000)
    parser.add_argument("--dump", type=str, nargs="*", default=[],
                        help="data labels to dump after the run")
    parser.add_argument("--list", action="store_true", dest="listing",
                        help="print an address/encoding listing and exit")
    parser.add_argument("--emit", type=str, default="",
                        help="write a flat firmware image to this path")


def _add_ilp_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "ilp", help="IPC-limit analysis of the firmware trace (Table 2)"
    )
    parser.add_argument("--file", type=str, default=None,
                        help="assembly file to trace (default: built-in kernels)")
    parser.add_argument("--iterations", type=int, default=4)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programmable 10 GbE NIC reproduction (HPCA 2005)",
    )
    subparsers = parser.add_subparsers(dest="command")
    _add_run_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_faults_parser(subparsers)
    _add_fabric_parser(subparsers)
    _add_qos_parser(subparsers)
    _add_topology_parser(subparsers)
    _add_rss_parser(subparsers)
    _add_report_parser(subparsers)
    _add_check_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_asm_parser(subparsers)
    _add_ilp_parser(subparsers)
    return parser


# ----------------------------------------------------------------------
def _ordering(name: str) -> OrderingMode:
    return OrderingMode.RMW if name == "rmw" else OrderingMode.SOFTWARE


def _cmd_run(args) -> int:
    from repro.nic import NicConfig, ThroughputSimulator

    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(args.mhz),
        scratchpad_banks=args.banks,
        ordering_mode=_ordering(args.ordering),
    )
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    simulator = ThroughputSimulator(
        config, args.payload, offered_fraction=args.offered, tracer=tracer,
        fast=args.fast,
    )
    sampler = None
    if args.metrics_out:
        if args.sample_interval <= 0:
            print("--sample-interval must be positive", file=sys.stderr)
            return 2
        sampler = simulator.sample_metrics_every(round(args.sample_interval * 1e6))
    profiler = None
    if args.profile_sim:
        from repro.obs import SimProfiler

        profiler = SimProfiler()
        simulator.sim.attach_profiler(profiler)
    result = simulator.run(warmup_s=0.4e-3, measure_s=args.millis * 1e-3)
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(tracer, args.trace, process_name=config.label)
        print(f"trace written to {args.trace} ({len(tracer.events)} events; "
              f"open in chrome://tracing or ui.perfetto.dev)", file=sys.stderr)
    if sampler is not None:
        sampler.sample_now()
        sampler.write(args.metrics_out, fmt=args.metrics_format)
        print(f"{len(sampler.samples)} metric samples written to "
              f"{args.metrics_out} ({args.metrics_format})", file=sys.stderr)
    if profiler is not None:
        print(profiler.report(), file=sys.stderr)
    if args.json:
        import json

        payload = result.to_dict()
        if profiler is not None:
            payload["sim_profile"] = profiler.to_dict(top_n=25)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{config.label}  payload {args.payload} B")
    print(f"  throughput: {result.udp_throughput_gbps:.2f} Gb/s "
          f"({result.line_rate_fraction():.1%} of duplex line rate)")
    print(f"  tx {result.tx_fps:,.0f} fps, rx {result.rx_fps:,.0f} fps, "
          f"drops {result.rx_dropped}")
    print(f"  core utilization {result.core_utilization:.1%}, "
          f"~{result.mean_outstanding_frames:.0f} frames in flight, "
          f"rx latency {result.mean_rx_commit_latency_s * 1e6:.1f} us")
    breakdown = ", ".join(f"{k} {v:.3f}" for k, v in result.ipc_breakdown().items())
    print(f"  ipc: {breakdown}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis import format_table
    from repro.exp import Sweep, SweepRunner, default_cache_dir

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    if args.no_cache and args.resume:
        print("--resume needs the cache; drop --no-cache", file=sys.stderr)
        return 2
    if args.resume and not cache_dir:
        print("--resume requires --cache-dir (or $REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2

    sweep = Sweep.grid(
        "sweep",
        core_counts=args.cores,
        frequencies_mhz=args.mhz,
        udp_payload_bytes=args.payload,
        ordering=_ordering(args.ordering),
        warmup_s=0.4e-3,
        measure_s=args.millis * 1e-3,
    )
    runner = SweepRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        progress=sys.stderr,
        label="sweep",
    )
    outcome = sweep.run(runner)

    # Per-point records for downstream tooling.
    records = Sweep.rows(outcome)
    emitted_to_stdout = False
    if args.json_out:
        import json

        text = json.dumps({"name": sweep.name, "points": records}, indent=2)
        if args.json_out == "-":
            print(text)
            emitted_to_stdout = True
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    if args.csv_out:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=list(records[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(records)
        if args.csv_out == "-":
            print(buffer.getvalue(), end="")
            emitted_to_stdout = True
        else:
            with open(args.csv_out, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"results written to {args.csv_out}", file=sys.stderr)

    if not emitted_to_stdout:
        by_point = {
            (spec.config.cores, spec.config.core_frequency_hz / 1e6): result
            for spec, result in zip(outcome.specs, outcome.results)
        }
        rows = [
            [cores] + [by_point[(cores, frequency)].udp_throughput_gbps
                       for frequency in args.mhz]
            for cores in args.cores
        ]
        print(format_table(
            ["cores \\ MHz"] + [str(f) for f in args.mhz],
            rows,
            title=f"UDP Gb/s, {args.ordering} firmware, {args.payload} B payloads",
        ))
    print(
        f"sweep: {len(outcome)} points, {outcome.cache_hits} cache hits, "
        f"{outcome.executed} executed in {outcome.elapsed_s:.1f}s",
        file=sys.stderr,
    )
    return 0


_FAULT_AXES = {
    "fcs": "rx_fcs_rate",
    "sdram": "sdram_error_rate",
    "pci": "pci_stall_rate",
}


def _fault_plan_from_args(args):
    from repro.faults import FaultPlan

    return FaultPlan(
        seed=args.seed,
        rx_fcs_rate=args.fcs_rate,
        sdram_error_rate=args.sdram_rate,
        sdram_max_retries=args.sdram_max_retries,
        pci_stall_rate=args.pci_stall_rate,
        pci_stall_ps=round(args.pci_stall_us * 1e6),
        event_queue_depth=args.queue_depth,
    )


def _cmd_faults(args) -> int:
    from repro.nic import NicConfig

    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(args.mhz),
        scratchpad_banks=args.banks,
        ordering_mode=_ordering(args.ordering),
    )
    if args.sweep_axis:
        return _faults_sweep(args, config)
    return _faults_single(args, config)


def _faults_single(args, config) -> int:
    from repro.nic import ThroughputSimulator

    plan = _fault_plan_from_args(args)
    simulator = ThroughputSimulator(
        config, args.payload, fault_plan=plan if plan.enabled else None
    )
    result = simulator.run(warmup_s=0.4e-3, measure_s=args.millis * 1e-3)
    report = result.fault_report()
    if args.json_out:
        import json

        text = json.dumps(result.to_dict(), indent=2)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"result written to {args.json_out}", file=sys.stderr)
        return 0
    print(f"{config.label}  payload {args.payload} B  seed {plan.seed}"
          + ("" if plan.enabled else "  (no faults enabled)"))
    print(f"  goodput: {report['udp_goodput_gbps']:.2f} Gb/s "
          f"({report['line_rate_fraction']:.1%} of duplex line rate)")
    print(f"  rx delivered {report['rx_delivered']}, "
          f"holes {report['rx_holes']}, "
          f"tail-dropped {report['rx_tail_dropped']}")
    counters = report["counters"]
    if counters:
        pieces = ", ".join(
            f"{key} {value:g}" for key, value in counters.items() if value
        ) or "all zero"
        print(f"  fault counters: {pieces}")
    return 0


def _faults_sweep(args, config) -> int:
    from repro.analysis import format_table
    from repro.exp import Sweep, SweepRunner, default_cache_dir

    axis = _FAULT_AXES[args.sweep_axis]
    plan = _fault_plan_from_args(args)
    sweep = Sweep.fault_grid(
        f"faults-{args.sweep_axis}",
        axis=axis,
        rates=args.rates,
        base_config=config,
        udp_payload_bytes=args.payload,
        plan=plan,
        warmup_s=0.4e-3,
        measure_s=args.millis * 1e-3,
    )
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    runner = SweepRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        progress=sys.stderr,
        label=sweep.name,
    )
    outcome = sweep.run(runner)
    records = Sweep.rows(outcome)

    emitted_to_stdout = False
    if args.json_out:
        import json

        text = json.dumps({"name": sweep.name, "axis": axis,
                           "points": records}, indent=2)
        if args.json_out == "-":
            print(text)
            emitted_to_stdout = True
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    if args.csv_out:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=list(records[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(records)
        if args.csv_out == "-":
            print(buffer.getvalue(), end="")
            emitted_to_stdout = True
        else:
            with open(args.csv_out, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"results written to {args.csv_out}", file=sys.stderr)

    if not emitted_to_stdout:
        rows = [
            [f"{rate:g}",
             f"{record['udp_throughput_gbps']:.2f}",
             record["rx_holes"],
             record["sdram_retries"],
             record["pci_stalls"],
             record["queue_drops"]]
            for rate, record in zip(args.rates, records)
        ]
        print(format_table(
            [axis, "goodput Gb/s", "rx holes", "sdram retries",
             "pci stalls", "queue drops"],
            rows,
            title=f"goodput vs {axis}, {config.label}, "
                  f"{args.payload} B payloads, seed {args.seed}",
        ))
    print(
        f"faults: {len(outcome)} points, {outcome.cache_hits} cache hits, "
        f"{outcome.executed} executed in {outcome.elapsed_s:.1f}s",
        file=sys.stderr,
    )
    return 0


def _fabric_spec_from_args(args):
    from repro.fabric import FabricSpec, RpcFlowSpec, StreamFlowSpec

    rpc_flows = ()
    if args.concurrency > 0:
        rpc_flows = (
            RpcFlowSpec(
                client=0,
                server=min(1, args.nics - 1),
                request_payload_bytes=args.request_bytes,
                response_payload_bytes=args.response_bytes,
                concurrency=args.concurrency,
                think_ps=round(args.think_us * 1e6),
                name="rpc0",
            ),
        )
    stream_flows = ()
    if args.stream_load > 0 or args.sweep_loads:
        stream_flows = (
            StreamFlowSpec(
                src=0,
                dst=min(1, args.nics - 1),
                udp_payload_bytes=args.stream_bytes,
                offered_fraction=args.stream_load or 1.0,
                name="stream0",
            ),
        )
    return FabricSpec(
        nics=args.nics,
        propagation_delay_ps=round(args.prop_us * 1e6),
        switch=args.switch,
        port_queue_frames=args.port_queue,
        switch_latency_ps=round(args.switch_latency_us * 1e6),
        rpc_flows=rpc_flows,
        stream_flows=stream_flows,
        seed=args.seed,
    )


def _cmd_fabric(args) -> int:
    from repro.nic import NicConfig

    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(args.mhz),
        scratchpad_banks=args.banks,
        ordering_mode=_ordering(args.ordering),
    )
    try:
        spec = _fabric_spec_from_args(args)
    except ValueError as error:
        print(f"invalid fabric: {error}", file=sys.stderr)
        return 2
    if args.sweep_loads:
        if args.fast:
            # Sweep points run through the cached experiment engine,
            # whose RunSpec hashes don't (and shouldn't) encode an
            # execution mode that cannot change results.
            print("note: --sweep-loads points run via the experiment "
                  "engine; --fast applies per spawned run, not here",
                  file=sys.stderr)
        return _fabric_sweep(args, config, spec)
    return _fabric_single(args, config, spec)


def _fabric_single(args, config, spec) -> int:
    from repro.analysis import format_table
    from repro.fabric import FabricSimulator

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    fabric = FabricSimulator(config, spec, tracer=tracer,
                             estimator=args.estimator, fast=args.fast)
    result = fabric.run(
        warmup_s=args.warmup_millis * 1e-3, measure_s=args.millis * 1e-3
    )
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(tracer, args.trace,
                           process_name=f"fabric x{spec.nics}")
        print(f"trace written to {args.trace} ({len(tracer.events)} events; "
              f"open in chrome://tracing or ui.perfetto.dev)", file=sys.stderr)
    if args.json_out:
        import json

        text = json.dumps(result.to_dict(), indent=2)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"result written to {args.json_out}", file=sys.stderr)
        return 0
    topology = (
        f"switch (queue {spec.port_queue_frames})" if spec.switch
        else "direct links"
    )
    print(f"{config.label}  {spec.nics} NICs via {topology}, "
          f"prop {spec.propagation_delay_ps / 1e6:g} us/hop")
    print(f"  aggregate goodput {result.aggregate_goodput_gbps:.2f} Gb/s, "
          f"switch drops {result.switch_drops}, mac drops {result.mac_drops}")
    rows = []
    for flow in result.flows.values():
        rtt = flow.rtt
        rows.append([
            flow.name,
            flow.kind,
            flow.delivered,
            flow.lost,
            flow.retransmits,
            f"{flow.goodput_gbps:.2f}",
            f"{flow.oneway.p50_us:.1f}",
            f"{flow.oneway.p99_us:.1f}",
            f"{rtt.p50_us:.1f}" if rtt else "-",
            f"{rtt.p99_us:.1f}" if rtt else "-",
            f"{rtt.p999_us:.1f}" if rtt else "-",
        ])
    print(format_table(
        ["flow", "kind", "delivered", "lost", "retx", "Gb/s",
         "ow p50", "ow p99", "rtt p50", "rtt p99", "rtt p999"],
        rows,
        title="per-flow latency (us) over the measured window",
    ))
    return 0


def _fabric_sweep(args, config, spec) -> int:
    from repro.analysis import format_table
    from repro.exp import Sweep, SweepRunner, default_cache_dir

    sweep = Sweep.fabric_grid(
        "fabric-load",
        base_fabric=spec,
        loads=args.sweep_loads,
        base_config=config,
        warmup_s=args.warmup_millis * 1e-3,
        measure_s=args.millis * 1e-3,
    )
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    runner = SweepRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        progress=sys.stderr,
        label=sweep.name,
    )
    outcome = sweep.run(runner)
    records = Sweep.rows(outcome)

    emitted_to_stdout = False
    if args.json_out:
        import json

        text = json.dumps({"name": sweep.name, "points": records}, indent=2)
        if args.json_out == "-":
            print(text)
            emitted_to_stdout = True
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    if args.csv_out:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=list(records[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(records)
        if args.csv_out == "-":
            print(buffer.getvalue(), end="")
            emitted_to_stdout = True
        else:
            with open(args.csv_out, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"results written to {args.csv_out}", file=sys.stderr)

    if not emitted_to_stdout:
        rows = [
            [f"{load:g}",
             f"{record['aggregate_goodput_gbps']:.2f}",
             record["switch_drops"],
             record["lost"],
             f"{record['oneway_p50_us']:.1f}",
             f"{record['oneway_p99_us']:.1f}",
             f"{record['rtt_p99_us']:.1f}" if record["rtt_p99_us"] is not None
             else "-"]
            for load, record in zip(args.sweep_loads, records)
        ]
        print(format_table(
            ["load", "goodput Gb/s", "switch drops", "lost",
             "ow p50 us", "ow p99 us", "rtt p99 us"],
            rows,
            title=f"latency vs offered load, {config.label}, "
                  f"{spec.nics} NICs" + (", switched" if spec.switch else ""),
        ))
    print(
        f"fabric: {len(outcome)} points, {outcome.cache_hits} cache hits, "
        f"{outcome.executed} executed in {outcome.elapsed_s:.1f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_qos(args) -> int:
    """The mixed-criticality QoS isolation ablation (ISSUE 9 tentpole).

    A 3-NIC incast: NIC 0 streams the *guaranteed* class at a fixed
    provisioned load and NIC 1 streams the *best-effort* class at each
    swept load, both converging on NIC 2's switch output port.  Beyond
    saturation the per-class queueing must keep the guaranteed tail
    inside its provisioned p999 bound while every loss (RED or tail)
    lands on best-effort — the Papaefstathiou-style guarantee this
    subsystem exists to demonstrate.  Runs in-process (reference or
    ``--fast`` batched kernel; byte-identical), deterministically for
    a given ``--seed``.
    """
    from repro.analysis import format_table
    from repro.fabric import FabricSimulator, FabricSpec, StreamFlowSpec
    from repro.nic import NicConfig
    from repro.qos import QosSpec

    qos = QosSpec.mixed_criticality(
        scheduler=args.scheduler,
        guaranteed_p999_bound_us=args.p999_bound_us,
        red=args.red,
        pause=args.pause,
        seed=args.seed,
    )
    base = FabricSpec(
        nics=3,
        switch=True,
        seed=args.seed,
        qos=qos,
        stream_flows=(
            StreamFlowSpec(src=0, dst=2, offered_fraction=args.guaranteed_load,
                           name="gold", qos_class="guaranteed"),
            StreamFlowSpec(src=1, dst=2, offered_fraction=1.0,
                           name="bulk", qos_class="best-effort"),
        ),
    )
    config = NicConfig(cores=args.cores, core_frequency_hz=mhz(args.mhz))
    arms = []
    for load in args.loads:
        spec = base.with_load(float(load), flows=["bulk"])
        simulator = FabricSimulator(
            config, spec, estimator=args.estimator, fast=args.fast
        )
        result = simulator.run(
            warmup_s=args.warmup_millis * 1e-3, measure_s=args.millis * 1e-3
        )
        arms.append((float(load), result))

    bound_ok = True
    rows = []
    for load, result in arms:
        classes = result.qos["classes"]
        gold = classes["guaranteed"]
        bulk = classes["best-effort"]
        gold_p999 = gold["oneway"]["p999_us"]
        within = gold_p999 <= args.p999_bound_us
        bound_ok = bound_ok and within
        # Isolation: losses must land on best-effort only.
        gold_clean = gold["tail_drops"] == 0 and gold["red_drops"] == 0
        bound_ok = bound_ok and gold_clean
        rows.append([
            f"{load:g}",
            f"{gold['goodput_gbps']:.2f}",
            f"{gold_p999:.1f}",
            "ok" if within and gold_clean else "VIOLATED",
            f"{bulk['goodput_gbps']:.2f}",
            f"{bulk['oneway']['p999_us']:.1f}",
            str(bulk["tail_drops"]),
            str(bulk["red_drops"]),
            f"{bulk['pause_events']}/{bulk['resume_events']}",
        ])

    if args.json_out:
        import json

        payload = {
            "scheduler": args.scheduler,
            "seed": args.seed,
            "p999_bound_us": args.p999_bound_us,
            "bound_ok": bound_ok,
            "arms": [
                {"best_effort_load": load, "result": result.to_dict()}
                for load, result in arms
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    else:
        knobs = []
        if args.red:
            knobs.append("RED")
        if args.pause:
            knobs.append("PFC pause")
        print(format_table(
            ["BE load", "gold Gb/s", "gold p999 us",
             f"bound {args.p999_bound_us:g}us",
             "BE Gb/s", "BE p999 us", "BE tail", "BE red", "BE xoff/xon"],
            rows,
            title=f"mixed-criticality isolation, {args.scheduler} scheduler"
                  + (f" + {' + '.join(knobs)}" if knobs else "")
                  + f", guaranteed load {args.guaranteed_load:g}, "
                    f"seed {args.seed}",
        ))
    if not bound_ok:
        print("qos: guaranteed-class isolation VIOLATED", file=sys.stderr)
        return 1
    return 0


def _cmd_topology(args) -> int:
    """The composed-topology fabric ablations (ISSUE 10 tentpole).

    Two experiments on one leaf-spine parameterization:

    * **Oversubscription incast** — every host outside the last rack
      streams an elephant onto that rack's last host while a cross-rack
      closed-loop mice RPC flow measures its RTT tail, once per spine
      count.  With one spine the leaf→spine tier is oversubscribed and
      the mice p999 must inflate relative to the widest arm; the
      ablation asserts it (and that drops do not *increase* with more
      spines).
    * **ECMP spreading** — the router (no simulation) resolves many
      cross-rack flow tuples on the widest arm and asserts every
      spine's first-hop share is within ``--spread-tolerance`` of the
      uniform share.

    Deterministic for a given ``--seed``; ``--fast`` is byte-identical.
    """
    from repro.analysis import format_table
    from repro.fabric import (
        FabricSimulator,
        FabricSpec,
        RpcFlowSpec,
        StreamFlowSpec,
        TopologyRouter,
        TopologySpec,
    )
    from repro.nic import NicConfig

    racks, per_rack = args.racks, args.hosts_per_rack
    nics = racks * per_rack
    if racks < 2 or per_rack < 1 or nics < 3:
        print("topology: need >= 2 racks and >= 3 hosts", file=sys.stderr)
        return 2
    victim = nics - 1
    mice_client = 0
    elephants = tuple(
        StreamFlowSpec(src=src, dst=victim, offered_fraction=args.load,
                       name=f"ele{src}")
        for src in range(nics - per_rack)  # every host outside the victim rack
        if src != mice_client
    )
    config = NicConfig(cores=args.cores, core_frequency_hz=mhz(args.mhz))

    arms = []
    for spines in sorted(set(args.spines)):
        topo = TopologySpec.leaf_spine(
            racks=racks, hosts_per_rack=per_rack, spines=spines,
            ecmp_seed=args.seed,
        )
        spec = FabricSpec(
            nics=nics,
            switch=True,
            seed=args.seed,
            topology=topo,
            port_queue_frames=16,
            rpc_flows=(
                RpcFlowSpec(client=mice_client, server=victim,
                            concurrency=args.mice_concurrency, name="mice"),
            ),
            stream_flows=elephants,
        )
        simulator = FabricSimulator(
            config, spec, estimator=args.estimator, fast=args.fast
        )
        result = simulator.run(
            warmup_s=args.warmup_millis * 1e-3, measure_s=args.millis * 1e-3
        )
        arms.append((spines, result))

    ok = True
    rows = []
    p999_by_spines = {}
    for spines, result in arms:
        mice = result.flows["mice"]
        topo_report = result.topology
        drops = sum(
            link["dropped"] for link in topo_report["per_link"].values()
        )
        p999 = mice.rtt.p999_us
        p999_by_spines[spines] = (p999, drops)
        rows.append([
            str(spines),
            f"{nics - per_rack - 1}x{args.load:g}",
            f"{result.aggregate_goodput_gbps:.2f}",
            f"{p999:.1f}",
            str(drops),
            str(topo_report["flow_table"]["flows"]),
        ])
    if len(p999_by_spines) > 1:
        narrow = min(p999_by_spines)   # fewest spines: oversubscribed
        wide = max(p999_by_spines)
        if p999_by_spines[narrow][0] < p999_by_spines[wide][0]:
            print(
                f"topology: oversubscribed arm (spines={narrow}) shows "
                f"p999 {p999_by_spines[narrow][0]:.1f}us < widest arm "
                f"{p999_by_spines[wide][0]:.1f}us", file=sys.stderr,
            )
            ok = False
        if p999_by_spines[narrow][1] < p999_by_spines[wide][1]:
            print("topology: drops increased with added spines",
                  file=sys.stderr)
            ok = False

    # ECMP spreading, router-level, on the widest arm.
    spines = max(sorted(set(args.spines)))
    spread_row = None
    if spines > 1:
        topo = TopologySpec.leaf_spine(
            racks=racks, hosts_per_rack=per_rack, spines=spines,
            ecmp_seed=args.seed,
        )
        router = TopologyRouter(topo)
        counts = {f"spine{index}": 0 for index in range(spines)}
        for index in range(args.ecmp_flows):
            path = router.route(f"spread{index}", 0, victim)
            counts[path[1]] += 1
        uniform = args.ecmp_flows / spines
        worst = max(abs(count - uniform) / uniform for count in counts.values())
        spread_row = (counts, worst)
        if worst > args.spread_tolerance:
            print(
                f"topology: ECMP spread deviates {worst:.3f} from uniform "
                f"(tolerance {args.spread_tolerance:g})", file=sys.stderr,
            )
            ok = False

    if args.json_out:
        import json

        payload = {
            "racks": racks,
            "hosts_per_rack": per_rack,
            "seed": args.seed,
            "load": args.load,
            "ok": ok,
            "arms": [
                {"spines": spines, "result": result.to_dict()}
                for spines, result in arms
            ],
        }
        if spread_row is not None:
            payload["ecmp_spread"] = {
                "flows": args.ecmp_flows,
                "tolerance": args.spread_tolerance,
                "first_hop_counts": spread_row[0],
                "worst_relative_deviation": spread_row[1],
            }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    else:
        print(format_table(
            ["spines", "elephants", "agg Gb/s", "mice p999 us",
             "link drops", "flows tracked"],
            rows,
            title=f"leaf-spine incast, {racks}x{per_rack} hosts, "
                  f"victim h{victim}, seed {args.seed}",
        ))
        if spread_row is not None:
            counts, worst = spread_row
            shares = ", ".join(
                f"{name}={count}" for name, count in sorted(counts.items())
            )
            print(f"ECMP first-hop spread over {args.ecmp_flows} flows: "
                  f"{shares} (worst deviation {worst:.3f}, tolerance "
                  f"{args.spread_tolerance:g})")
    if not ok:
        print("topology: ablation assertions VIOLATED", file=sys.stderr)
        return 1
    return 0


def _cmd_rss(args) -> int:
    """The paper-vs-modern host-interface ablation (ISSUE 8 tentpole).

    One sweep with the paper baseline (single descriptor-ring pair,
    frame-level parallel firmware) plus one multi-queue arm per
    requested ring count (task-level firmware, Toeplitz-steered rings,
    per-ring interrupt moderation, host-core contention).  All points
    run through the cached experiment engine, so re-running an ablation
    is free and seeded runs are reproducible byte-for-byte.
    """
    from dataclasses import replace as dc_replace

    from repro.analysis import format_table
    from repro.exp import (
        RunSpec,
        Sweep,
        SweepRunner,
        WorkloadSpec,
        default_cache_dir,
    )
    from repro.host.rss import RssSpec
    from repro.nic import NicConfig

    config = NicConfig(
        cores=args.cores,
        core_frequency_hz=mhz(args.mhz),
        scratchpad_banks=args.banks,
        ordering_mode=_ordering(args.ordering),
    )
    fabric_spec = None
    if args.workload != "saturation":
        from repro.fabric import FabricSpec, RpcFlowSpec, StreamFlowSpec

        peer = min(1, args.nics - 1)
        if args.workload == "rpc":
            flows = dict(
                rpc_flows=(
                    RpcFlowSpec(
                        client=0,
                        server=peer,
                        concurrency=args.concurrency,
                        name="rpc0",
                    ),
                ),
            )
        else:
            flows = dict(
                stream_flows=(
                    StreamFlowSpec(src=0, dst=peer, imix=True,
                                   offered_fraction=args.load, name="imix0"),
                    StreamFlowSpec(src=peer, dst=0, imix=True,
                                   offered_fraction=args.load, name="imix1"),
                ),
            )
        fabric_spec = FabricSpec(nics=args.nics, seed=args.seed, **flows)

    warmup_s = args.warmup_millis * 1e-3
    measure_s = args.millis * 1e-3
    template = RssSpec(
        hash_seed=args.hash_seed,
        interrupt_coalesce_frames=args.coalesce,
    )
    task_config = dc_replace(config, task_level_firmware=True)
    specs = [
        RunSpec(
            config=config,
            workload=WorkloadSpec(),
            warmup_s=warmup_s,
            measure_s=measure_s,
            label="paper-1ring",
            fabric_spec=fabric_spec,
        )
    ]
    for rings in args.rings:
        specs.append(
            RunSpec(
                config=task_config,
                workload=WorkloadSpec(),
                warmup_s=warmup_s,
                measure_s=measure_s,
                label=f"rss-{rings}ring",
                fabric_spec=fabric_spec,
                rss=dc_replace(template, rings=int(rings)),
            )
        )
    sweep = Sweep(f"rss-{args.workload}", specs)
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    runner = SweepRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        progress=sys.stderr,
        label=sweep.name,
    )
    outcome = sweep.run(runner)
    records = Sweep.rows(outcome)

    emitted_to_stdout = False
    if args.json_out:
        import json

        text = json.dumps({"name": sweep.name, "points": records}, indent=2)
        if args.json_out == "-":
            print(text)
            emitted_to_stdout = True
        else:
            with open(args.json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"results written to {args.json_out}", file=sys.stderr)
    if args.csv_out:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=list(records[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(records)
        if args.csv_out == "-":
            print(buffer.getvalue(), end="")
            emitted_to_stdout = True
        else:
            with open(args.csv_out, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"results written to {args.csv_out}", file=sys.stderr)

    if not emitted_to_stdout:
        if fabric_spec is not None:
            goodput_key, goodput_head = "aggregate_goodput_gbps", "goodput Gb/s"
        else:
            goodput_key, goodput_head = "udp_throughput_gbps", "UDP Gb/s"
        rows = []
        for record in records:
            busy = record.get("host_core_busy_max")
            compl = record.get("host_completions_per_s")
            rows.append([
                record["label"],
                record["rss_rings"],
                f"{record[goodput_key]:.2f}",
                f"{busy:.2f}" if busy is not None else "-",
                f"{compl / 1e6:.2f}" if compl is not None else "-",
                "yes" if record["cached"] else "no",
            ])
        firmware = "frame-level (paper) vs task-level (rss arms)"
        print(format_table(
            ["arm", "rings", goodput_head, "host busy max",
             "host Mcompl/s", "cached"],
            rows,
            title=f"host-interface ablation, {config.label}, "
                  f"{args.workload} workload — {firmware}",
        ))
    print(
        f"rss: {len(outcome)} points, {outcome.cache_hits} cache hits, "
        f"{outcome.executed} executed in {outcome.elapsed_s:.1f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.full_report import generate_full_report

    report = generate_full_report(fast=args.fast)
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.output}")
    return 0


def _cmd_check(args) -> int:
    from repro.check import golden as golden_mod

    golden_path = args.golden_path or golden_mod.DEFAULT_CORPUS_PATH

    # -- replay one failure and exit --------------------------------------
    if args.replay:
        from repro.check.fuzz import replay as run_replay

        outcome = run_replay(args.replay)
        print(outcome.summary())
        return 1 if outcome.reproduced else 0

    # -- regenerate the golden corpus and exit ----------------------------
    if args.update_golden:
        return golden_mod.main(["--update", "--path", golden_path])

    failed = False

    # -- differential oracles ---------------------------------------------
    if not args.skip_oracles:
        from repro.check.oracles import run_all_oracles

        for report in run_all_oracles(seed=args.seed, fast=args.fast):
            print(report.summary())
            failed = failed or not report.ok

    # -- golden-trace corpus ----------------------------------------------
    if not args.skip_golden:
        import os

        if not os.path.exists(golden_path):
            print(f"golden corpus missing ({golden_path}); regenerate with "
                  f"`repro check --update-golden`", file=sys.stderr)
            failed = True
        else:
            golden_argv = ["--path", golden_path]
            if args.fast:
                golden_argv.append("--fast")
            if golden_mod.main(golden_argv) != 0:
                failed = True

    # -- seeded fuzzing ----------------------------------------------------
    if args.fuzz > 0:
        from repro.check.fuzz import fuzz as run_fuzz

        report = run_fuzz(
            args.fuzz,
            seed=args.seed,
            replay_dir=args.replay_dir or None,
            progress=sys.stderr,
            shrink=not args.no_shrink,
        )
        print(report.summary())
        for failure in report.failures:
            print(f"  case {failure.index}: {failure.error}"
                  + (f" (replay: {failure.replay_path})"
                     if failure.replay_path else ""))
        failed = failed or bool(report.failures)

    return 1 if failed else 0


def _cmd_bench(args) -> int:
    from repro.obs import bench as bench_mod

    # -- compare two trajectory points and exit ----------------------------
    if args.compare:
        old_path, new_path = args.compare
        try:
            comparison = bench_mod.compare_reports(
                old_path,
                new_path,
                tolerance=(bench_mod.DEFAULT_TOLERANCE
                           if args.tolerance is None else args.tolerance),
                stat=f"{args.stat}_s",
            )
        except (OSError, ValueError) as error:
            print(f"bench compare failed: {error}", file=sys.stderr)
            return 2
        print(comparison.summary())
        return 0 if comparison.ok else 1

    try:
        names = bench_mod.select_benches(
            args.bench_dir, quick=args.quick, only=args.only
        )
    except (OSError, ValueError) as error:
        print(f"bench discovery failed: {error}", file=sys.stderr)
        return 2
    if args.listing:
        for name in names:
            marker = "quick" if name in bench_mod.QUICK_BENCHES else "full"
            print(f"{name}  [{marker}]")
        return 0

    rounds = args.rounds
    if rounds is None:
        rounds = 2 if args.quick else bench_mod.DEFAULT_ROUNDS
    failed = False
    for name in names:
        print(f"bench {name} ...", file=sys.stderr, flush=True)
        report = bench_mod.run_bench(
            name, args.bench_dir, rounds=rounds, progress=sys.stderr
        )
        path = bench_mod.write_report(report, args.out_dir)
        status = "ok" if report.ok else "FAILED"
        print(f"  {status}: {len(report.functions)} metrics, "
              f"{report.wall_s:.1f}s -> {path}", file=sys.stderr)
        for record in report.functions.values():
            if record.status == "failed":
                print(f"    {record.name}: {record.error}", file=sys.stderr)
                failed = True
    print(f"bench: {len(names)} modules -> {args.out_dir}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_asm(args) -> int:
    from repro.isa import assemble
    from repro.isa.debugger import Debugger

    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source)
    print(f"assembled {len(program.instructions)} instructions, "
          f"{len(program.data)} data bytes")

    if args.emit:
        from repro.isa.binary import encode_program

        blob = encode_program(program)
        with open(args.emit, "wb") as handle:
            handle.write(blob)
        print(f"firmware image written to {args.emit} ({len(blob)} bytes)")

    if args.listing:
        from repro.isa.binary import listing as render_listing

        print(render_listing(program))
        return 0

    if args.timing:
        from repro.cpu import PipelinedCore
        from repro.mem import Scratchpad

        core = PipelinedCore(program, Scratchpad(), entry=args.entry)
        stats = core.run(max_instructions=args.max_steps)
        print(f"cycles {stats.cycles}, instructions {stats.instructions}, "
              f"IPC {stats.ipc:.3f}")
        pieces = ", ".join(f"{k} {v:.3f}" for k, v in stats.breakdown().items())
        print(f"breakdown: {pieces}")
        machine = core.machine
    else:
        debugger = Debugger(program, entry=args.entry)
        reason = debugger.run(max_steps=args.max_steps)
        print(f"stopped: {reason.kind} at {reason.pc:#x}")
        print(debugger.dump_registers())
        machine = debugger.machine

    for label in args.dump:
        address = program.address_of(label)
        value = machine.memory.load_word(address)
        print(f"{label} @ {address:#x} = {value:#x} ({value})")
    return 0


def _cmd_ilp(args) -> int:
    from repro.analysis import format_table
    from repro.ilp import ipc_table

    if args.file:
        from repro.isa import Machine, assemble

        with open(args.file) as handle:
            program = assemble(handle.read())
        trace = []
        Machine(program, trace=trace).run()
    else:
        from repro.firmware.kernels import capture_trace

        trace = capture_trace("order_sw", iterations=args.iterations)
    print(f"trace: {len(trace)} dynamic instructions")
    table = ipc_table(trace)
    rows = {}
    for config, ipc in table.items():
        key = (config.issue_order.value, config.width)
        rows.setdefault(key, {})[f"{config.pipeline.value}/{config.branch.value}"] = ipc
    columns = ["perfect/pbp", "perfect/pbp1", "perfect/nobp",
               "stalls/pbp", "stalls/pbp1", "stalls/nobp"]
    print(format_table(
        ["config"] + columns,
        [[f"{order}-{width}"] + [cells[c] for c in columns]
         for (order, width), cells in sorted(rows.items())],
        title="theoretical peak IPC (Table 2)",
    ))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "faults": _cmd_faults,
    "fabric": _cmd_fabric,
    "qos": _cmd_qos,
    "topology": _cmd_topology,
    "rss": _cmd_rss,
    "report": _cmd_report,
    "check": _cmd_check,
    "bench": _cmd_bench,
    "asm": _cmd_asm,
    "ilp": _cmd_ilp,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
