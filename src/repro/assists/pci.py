"""PCI / host-interconnect interface.

Section 5: "Since server I/O interconnect standards are continually
evolving (from PCI to PCI-X to PCI-Express and beyond), the bandwidth
and latency of the I/O interconnect are not modeled" — what *is*
intrinsic to the NIC problem is that every DMA must cross the local
interconnect to host memory and back, which is why the paper's related
work stresses DMA latencies far above local-memory latencies and why
the NIC keeps "several hundred outstanding frames in various stages of
processing".

We model that essential property: each DMA experiences a fixed host
round-trip latency, with unlimited pipelining (no bandwidth cap).  An
optional bandwidth cap exists for ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import seconds_to_ps, transfer_time_ps

DEFAULT_DMA_LATENCY_PS = seconds_to_ps(1.2e-6)  # 1.2 us host round trip


@dataclass
class PciInterface:
    """Latency-only host DMA path (bandwidth optionally capped)."""

    dma_latency_ps: int = DEFAULT_DMA_LATENCY_PS
    bandwidth_bps: float = 0.0  # 0 = unmodeled, per the paper

    def __post_init__(self) -> None:
        if self.dma_latency_ps < 0:
            raise ValueError("DMA latency must be non-negative")
        self._bus_free_ps = 0
        self.transfers = 0
        self.bytes_moved = 0
        # Fault layer (repro.faults): an attached injector may stall
        # individual host phases; None keeps the fault-free fast path.
        self.injector = None

    def host_phase(self, now_ps: int, nbytes: int) -> int:
        """Completion time of the host side of one DMA."""
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        self.transfers += 1
        self.bytes_moved += nbytes
        stall_ps = (
            self.injector.pci_stall(now_ps) if self.injector is not None else 0
        )
        if self.bandwidth_bps <= 0:
            return now_ps + self.dma_latency_ps + stall_ps
        start = max(now_ps, self._bus_free_ps)
        duration = transfer_time_ps(nbytes, self.bandwidth_bps)
        self._bus_free_ps = start + duration
        return start + duration + self.dma_latency_ps + stall_ps
