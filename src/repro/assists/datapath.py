"""Port-composed frame datapath (Spinach/LSE style).

The paper's simulator is built from Liberty modules that "communicate
exclusively through ports" (Section 5).  The macro-tier simulator trades
that structure for speed; this module keeps a faithful port-composed
implementation of the frame datapath — the right half of Figure 6 —
both as a fidelity reference and as the harness for bus-level
experiments:

    DmaReadModule ──┐ (requests)              ┌── completion events
                    ├──> SdramControllerModule ┤
    MacTxModule  ───┘        (128-bit bus)     └── grant replies

Every interaction is a message over a :class:`~repro.sim.module.Port`:
DMA engines request bursts from the SDRAM controller and learn
completion via reply messages; the MAC requests its reads the same way
and serializes frames onto the wire.  The SDRAM controller owns the
:class:`~repro.mem.sdram.GddrSdram` timing model and round-robins
whole bursts among its requesters, exactly the arbitration the paper
describes for the shared 128-bit bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional
from collections import deque

from repro.mem.sdram import GddrSdram
from repro.net.ethernet import EthernetTiming
from repro.sim.kernel import ClockDomain, Simulator
from repro.sim.module import Port, SimModule, connect


@dataclass(frozen=True)
class BurstRequest:
    """One frame-sized burst to or from the frame memory."""

    tag: int
    address: int
    nbytes: int
    is_write: bool


@dataclass(frozen=True)
class BurstReply:
    """Completion of a burst, stamped with its finish time."""

    tag: int
    finish_ps: int


class SdramControllerModule(SimModule):
    """Owns the SDRAM; serves one whole burst per grant, round-robin.

    Each attached requester gets a dedicated request/reply port pair
    (dancehall style).  Pending bursts queue per requester; the
    controller rotates among non-empty queues so a long DMA batch
    cannot starve the MAC — the paper's burst-friendly arbitration.
    """

    def __init__(self, sim: Simulator, sdram: GddrSdram, clock: ClockDomain) -> None:
        super().__init__(sim, "sdram-controller", clock)
        self.sdram = sdram
        self._queues: List[Deque[BurstRequest]] = []
        self._reply_ports: List[Port] = []
        self._busy = False
        self._next_queue = 0
        self.bursts_served = 0

    def attach(self) -> tuple:
        """Create a (request, reply) port pair for one requester."""
        index = len(self._queues)
        self._queues.append(deque())
        request_port = self.add_port(f"req{index}")
        reply_port = self.add_port(f"rsp{index}")
        self._reply_ports.append(reply_port)
        request_port.on_receive(lambda msg, i=index: self._enqueue(i, msg))
        return request_port, reply_port

    def _enqueue(self, index: int, request: BurstRequest) -> None:
        self._queues[index].append(request)
        self._serve()

    def _serve(self) -> None:
        if self._busy:
            return
        # Round-robin across non-empty queues.
        for offset in range(len(self._queues)):
            index = (self._next_queue + offset) % len(self._queues)
            if self._queues[index]:
                break
        else:
            return
        self._next_queue = index + 1
        request = self._queues[index].popleft()
        self._busy = True
        cycle = self.clock.current_cycle(self.sim.now_ps)
        transfer = self.sdram.transfer(request.address, request.nbytes, cycle)
        finish_ps = self.clock.cycles_to_ps(transfer.finish_cycle)
        self.bursts_served += 1

        def complete(i=index, tag=request.tag, when=finish_ps) -> None:
            self._busy = False
            self._reply_ports[i].send(BurstReply(tag, when))
            self._serve()

        self.sim.schedule_at(max(finish_ps, self.sim.now_ps), complete)


class DmaReadModule(SimModule):
    """Host-to-NIC frame mover as a port module.

    Commands arrive on ``cmd``; after the host round trip the module
    requests an SDRAM write burst; completion emits on ``done``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        controller: SdramControllerModule,
        host_latency_ps: int,
        clock: ClockDomain,
    ) -> None:
        super().__init__(sim, name, clock)
        self.host_latency_ps = host_latency_ps
        self.cmd = self.add_port("cmd")
        self.done = self.add_port("done")
        self._to_sdram, self._from_sdram = controller.attach()
        sdram_req = self.add_port("sdram-req")
        sdram_rsp = self.add_port("sdram-rsp")
        connect(sdram_req, self._to_sdram)
        connect(self._from_sdram, sdram_rsp)
        self._sdram_req = sdram_req
        sdram_rsp.on_receive(self._burst_done)
        self.cmd.on_receive(self._command)
        self.transfers_completed = 0

    def _command(self, request: BurstRequest) -> None:
        # Host phase first (pipelined: no serialization here), then the
        # SDRAM burst via the controller.
        self._sdram_req.send(request, latency_ps=self.host_latency_ps)

    def _burst_done(self, reply: BurstReply) -> None:
        self.transfers_completed += 1
        self.done.send(reply)


class MacTxModule(SimModule):
    """Wire serializer as a port module.

    ``enqueue`` messages carry frame bursts to read from the transmit
    buffer; the module double-buffers (reads frame n+1 while n is on
    the wire) and emits a :class:`BurstReply` per frame on ``sent`` with
    the wire-completion time.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: SdramControllerModule,
        clock: ClockDomain,
        timing: Optional[EthernetTiming] = None,
    ) -> None:
        super().__init__(sim, "mac-tx", clock)
        self.timing = timing if timing is not None else EthernetTiming()
        self.enqueue = self.add_port("enqueue")
        self.sent = self.add_port("sent")
        self._to_sdram, self._from_sdram = controller.attach()
        sdram_req = self.add_port("sdram-req")
        sdram_rsp = self.add_port("sdram-rsp")
        connect(sdram_req, self._to_sdram)
        connect(self._from_sdram, sdram_rsp)
        self._sdram_req = sdram_req
        sdram_rsp.on_receive(self._frame_read)
        self.enqueue.on_receive(self._frame_committed)
        self._sizes: Dict[int, int] = {}
        self._wire_free_ps = 0
        self.frames_sent = 0

    def _frame_committed(self, request: BurstRequest) -> None:
        self._sizes[request.tag] = request.nbytes
        self._sdram_req.send(request)

    def _frame_read(self, reply: BurstReply) -> None:
        nbytes = self._sizes.pop(reply.tag)
        start = max(reply.finish_ps, self._wire_free_ps, self.sim.now_ps)
        end = start + self.timing.frame_time_ps(nbytes)
        self._wire_free_ps = end
        self.sim.schedule_at(end, lambda tag=reply.tag, when=end: self._wire_done(tag, when))

    def _wire_done(self, tag: int, when: int) -> None:
        self.frames_sent += 1
        self.sent.send(BurstReply(tag, when))


@dataclass
class DatapathResult:
    """Outcome of one port-composed datapath run."""

    frames: int
    last_wire_end_ps: int
    wire_events: List[BurstReply]
    dma_completions: List[BurstReply]
    bursts_served: int

    def wire_utilization(self, frame_bytes: int, timing: EthernetTiming) -> float:
        if not self.wire_events:
            return 0.0
        busy = self.frames * timing.frame_time_ps(frame_bytes)
        return busy / self.last_wire_end_ps if self.last_wire_end_ps else 0.0


def run_transmit_datapath(
    frames: int = 64,
    frame_bytes: int = 1518,
    host_latency_ps: int = 1_200_000,
) -> DatapathResult:
    """Push ``frames`` through DMA-read -> SDRAM -> MAC, all via ports.

    Frames are injected as fast as the pipeline accepts them; the wire
    should end up back-to-back (utilization near 1.0), demonstrating
    that the shared-bus arbitration sustains line rate — the Section 2.3
    claim, now at port granularity.
    """
    sim = Simulator()
    sdram_clock = sim.add_clock("sdram", 500e6)
    sdram = GddrSdram()
    controller = SdramControllerModule(sim, sdram, sdram_clock)
    dma = DmaReadModule(sim, "dma-read", controller, host_latency_ps, sdram_clock)
    mac = MacTxModule(sim, controller, sdram_clock)

    driver_cmd = Port(SimModule(sim, "driver"), "cmd")
    connect(driver_cmd, dma.cmd)
    collector = SimModule(sim, "collector")
    dma_done_sink = collector.add_port("dma-done")
    wire_sink = collector.add_port("wire")
    to_mac = collector.add_port("to-mac")
    connect(dma.done, dma_done_sink)
    connect(mac.sent, wire_sink)
    connect(to_mac, mac.enqueue)

    dma_completions: List[BurstReply] = []
    wire_events: List[BurstReply] = []

    def on_dma_done(reply: BurstReply) -> None:
        dma_completions.append(reply)
        # Frame data is in the tx buffer: hand it to the MAC.
        to_mac.send(
            BurstRequest(reply.tag, (reply.tag % 128) * 2048, frame_bytes, False)
        )

    def on_wire(reply: BurstReply) -> None:
        wire_events.append(reply)

    dma_done_sink.on_receive(on_dma_done)
    wire_sink.on_receive(on_wire)

    for tag in range(frames):
        driver_cmd.send(
            BurstRequest(tag, (tag % 128) * 2048, frame_bytes, True), latency_ps=tag
        )
    sim.run()

    return DatapathResult(
        frames=len(wire_events),
        last_wire_end_ps=max((e.finish_ps for e in wire_events), default=0),
        wire_events=wire_events,
        dma_completions=dma_completions,
        bursts_served=controller.bursts_served,
    )
