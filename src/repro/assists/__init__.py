"""Hardware assist units.

Figure 6's special-purpose engines: two DMA assists (read: host to NIC;
write: NIC to host) on the PCI interface, and the MAC's transmit and
receive engines on the Ethernet side.  The four assists are the only
agents that touch frame data; each streams through the external SDRAM
with enough staging buffer for two maximum-sized frames, which is what
lets the SDRAM run near peak bandwidth (Section 2.3).
"""

from repro.assists.dma import DmaAssist, DmaTransfer
from repro.assists.mac import MacReceiver, MacTransmitter
from repro.assists.pci import PciInterface

__all__ = [
    "DmaAssist",
    "DmaTransfer",
    "MacReceiver",
    "MacTransmitter",
    "PciInterface",
]
