"""DMA read/write assist engines.

The DMA *read* assist pulls data from host memory into the NIC's frame
memory (descriptor fetches and send-frame data, Figure 1 steps 3-4);
the DMA *write* assist pushes received frames and completion
descriptors back to the host (Figure 2 steps 2-3).

Timing model per frame transfer:

1. host phase — the PCI round trip (latency-only, pipelined across
   outstanding transfers, per the paper's interconnect model);
2. SDRAM phase — the burst into/out of the frame memory.  Each assist
   stages at most one burst at a time (its two-frame staging buffer
   holds the next while the current drains), and the burst is requested
   from the shared SDRAM bus *at its actual start time* via the event
   kernel, so the bus's FIFO arbitration interleaves the four assists'
   streams at frame-burst granularity exactly as the paper's
   burst-friendly arbiter does.

Descriptor fetches skip the SDRAM phase: descriptors land directly in
the scratchpad (control data never touches the frame memory — that is
the partitioned-memory design).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Tuple

from repro.assists.pci import PciInterface
from repro.mem.sdram import GddrSdram
from repro.sim.kernel import ClockDomain, Simulator


@dataclass(frozen=True)
class DmaTransfer:
    """Timing of one completed (synchronous) DMA."""

    issue_ps: int
    host_done_ps: int
    complete_ps: int
    nbytes: int
    touched_sdram: bool

    @property
    def latency_ps(self) -> int:
        return self.complete_ps - self.issue_ps


class DmaAssist:
    """One direction's DMA engine."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        pci: PciInterface,
        sdram: GddrSdram,
        sdram_clock: ClockDomain,
        to_nic: bool,
    ) -> None:
        self.name = name
        self.sim = sim
        self.pci = pci
        self.sdram = sdram
        self.sdram_clock = sdram_clock
        self.to_nic = to_nic
        self._pending: Deque[Tuple[int, int, Callable[[int], None]]] = deque()
        self._draining = False
        self.transfers = 0
        self.bytes_moved = 0
        self.scratchpad_accesses = 0
        # Fault layer (repro.faults): when an injector is attached, each
        # burst consults it for SDRAM transfer errors; None keeps the
        # fault-free fast path untouched.
        self.injector = None
        self.exhausted_transfers = 0

    # ------------------------------------------------------------------
    def frame_transfer(
        self,
        now_ps: int,
        host_address: int,
        nic_address: int,
        nbytes: int,
        on_complete: Callable[[int], None],
    ) -> None:
        """Move frame data between host memory and the frame SDRAM.

        ``on_complete(finish_ps)`` fires when the whole transfer is done.
        ``host_address`` alignment determines the SDRAM padding (the
        burst covers the same byte phase as the host buffer).
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        burst_address = nic_address | (host_address & 7)
        self.transfers += 1
        self.bytes_moved += nbytes

        if self.to_nic:
            # Host read requests pipeline; data enters the staging
            # buffer after the host round trip, then bursts to SDRAM.
            host_done = self.pci.host_phase(now_ps, nbytes)
            self.sim.schedule_at(
                host_done,
                lambda: self._enqueue_burst(burst_address, nbytes, on_complete),
            )
        else:
            # SDRAM read first, then the host round trip.
            def after_burst(finish_ps: int) -> None:
                host_done = self.pci.host_phase(finish_ps, nbytes)
                self.sim.schedule_at(host_done, lambda: on_complete(host_done))

            self.sim.schedule_at(
                max(now_ps, self.sim.now_ps),
                lambda: self._enqueue_burst(burst_address, nbytes, after_burst),
            )

    def _enqueue_burst(self, address: int, nbytes: int, done: Callable[[int], None]) -> None:
        self._pending.append((address, nbytes, done))
        self._drain()

    def _drain(self) -> None:
        if self._draining or not self._pending:
            return
        self._draining = True
        address, nbytes, done = self._pending.popleft()
        if self.injector is not None:
            failures, exhausted = self.injector.sdram_plan(self.name, self.sim.now_ps)
            if failures:
                self._burst_attempt(address, nbytes, done, failures, exhausted, 0)
                return
        self._issue_burst(address, nbytes, done)

    def _issue_burst(
        self, address: int, nbytes: int, done: Callable[[int], None]
    ) -> None:
        cycle = self.sdram_clock.current_cycle(self.sim.now_ps)
        request = self.sdram.transfer(address, nbytes, cycle)
        finish_ps = self.sdram_clock.cycles_to_ps(request.finish_cycle)
        self.sim.schedule_at(finish_ps, lambda: self._burst_done(done))

    def _burst_attempt(
        self,
        address: int,
        nbytes: int,
        done: Callable[[int], None],
        failures: int,
        exhausted: bool,
        attempt: int,
    ) -> None:
        """Run one *failing* burst attempt, then back off and retry.

        The bus time is consumed either way (wasted bandwidth, counted
        by the SDRAM model), the engine stays busy (``_draining`` holds
        through the whole retry chain — a stalled DMA serializes behind
        itself), and after a bounded number of retries the transfer
        completes anyway, flagged exhausted, so no completion callback
        is ever lost."""
        cycle = self.sdram_clock.current_cycle(self.sim.now_ps)
        request = self.sdram.transfer(address, nbytes, cycle, useful=False)
        finish_ps = self.sdram_clock.cycles_to_ps(request.finish_cycle)
        if attempt + 1 >= failures:
            if exhausted:
                # Retry budget spent: deliver the (bad) completion now
                # rather than deadlock the frame pipeline on it.
                self.exhausted_transfers += 1
                self.sim.schedule_at(finish_ps, lambda: self._burst_done(done))
                return
            # The next attempt succeeds: real burst after the backoff.
            backoff = self.injector.sdram_backoff_ps(attempt)
            self.sim.schedule_at(
                finish_ps + backoff,
                lambda: self._issue_burst(address, nbytes, done),
            )
            return
        backoff = self.injector.sdram_backoff_ps(attempt)
        self.sim.schedule_at(
            finish_ps + backoff,
            lambda: self._burst_attempt(
                address, nbytes, done, failures, exhausted, attempt + 1
            ),
        )

    def _burst_done(self, done: Callable[[int], None]) -> None:
        self._draining = False
        done(self.sim.now_ps)
        self._drain()

    # ------------------------------------------------------------------
    def descriptor_transfer(self, now_ps: int, nbytes: int) -> DmaTransfer:
        """Move buffer descriptors host <-> scratchpad (no SDRAM phase)."""
        complete = self.pci.host_phase(now_ps, nbytes)
        self.transfers += 1
        self.bytes_moved += nbytes
        return DmaTransfer(
            issue_ps=now_ps,
            host_done_ps=complete,
            complete_ps=complete,
            nbytes=nbytes,
            touched_sdram=False,
        )

    def note_scratchpad_accesses(self, count: int) -> None:
        """Track the assist's own control-data traffic (Table 4)."""
        self.scratchpad_accesses += count
