"""MAC transmit and receive assist engines.

The MAC unit implements the Ethernet link-level protocol: it serializes
committed frames onto the wire (transmit) and stores arriving frames
into the NIC's receive buffer (receive), timing both against the
Ethernet clock with preamble and interframe gap (Section 5: "the
network model times packet transmission or reception based on the
Ethernet clock, interframe gaps, and preambles").

Each engine stages up to two maximum-sized frames (Section 2.3), so the
SDRAM access of frame *n+1* overlaps the wire time of frame *n*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.sdram import GddrSdram
from repro.net.ethernet import EthernetTiming
from repro.sim.kernel import ClockDomain


@dataclass(frozen=True)
class WireEvent:
    """One frame's trip through a MAC engine."""

    seq: int
    wire_start_ps: int
    wire_end_ps: int
    sdram_done_ps: int


class MacTransmitter:
    """Pulls committed frames from the tx buffer onto the wire."""

    def __init__(
        self,
        sdram: GddrSdram,
        sdram_clock: ClockDomain,
        timing: Optional[EthernetTiming] = None,
    ) -> None:
        self.sdram = sdram
        self.sdram_clock = sdram_clock
        self.timing = timing if timing is not None else EthernetTiming()
        self._wire_free_ps = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.scratchpad_accesses = 0

    def transmit(self, now_ps: int, seq: int, sdram_address: int, frame_bytes: int) -> WireEvent:
        """Send one committed frame; returns its wire timing."""
        cycle = self.sdram_clock.current_cycle(now_ps)
        read = self.sdram.transfer(sdram_address, frame_bytes, cycle)
        sdram_done = self.sdram_clock.cycles_to_ps(read.finish_cycle)
        wire_start = max(sdram_done, self._wire_free_ps)
        wire_end = wire_start + self.timing.frame_time_ps(frame_bytes)
        self._wire_free_ps = wire_end
        self.frames_sent += 1
        self.bytes_sent += frame_bytes
        return WireEvent(seq, wire_start, wire_end, sdram_done)

    def note_scratchpad_accesses(self, count: int) -> None:
        self.scratchpad_accesses += count


class MacReceiver:
    """Accepts arriving frames into the rx buffer at line pace.

    Arrivals are generated analytically (the offered stream is strictly
    periodic), so the receiver produces one simulation event per
    *accepted* frame, never per offered frame: when the NIC falls
    behind, the backlogged frames are implicitly dropped and accounted
    at the end via :meth:`offered_frames`.
    """

    def __init__(
        self,
        sdram: GddrSdram,
        sdram_clock: ClockDomain,
        interarrival_ps: int = 0,
        start_ps: int = 0,
        timing: Optional[EthernetTiming] = None,
        gap_fn=None,
    ) -> None:
        """Either a constant ``interarrival_ps`` or a per-frame
        ``gap_fn(seq) -> ps`` (mixed-size workloads) paces arrivals."""
        if gap_fn is None and interarrival_ps <= 0:
            raise ValueError("interarrival time must be positive")
        self.sdram = sdram
        self.sdram_clock = sdram_clock
        self.interarrival_ps = interarrival_ps
        self.start_ps = start_ps
        self.timing = timing if timing is not None else EthernetTiming()
        self._gap_fn = gap_fn
        self.frames_accepted = 0
        self.bytes_accepted = 0
        self.scratchpad_accesses = 0
        self._next_seq = 0
        self._next_arrival_ps = start_ps

    def _gap(self, seq: int) -> int:
        if self._gap_fn is not None:
            return self._gap_fn(seq)
        return self.interarrival_ps

    def next_arrival_ps(self) -> int:
        """Earliest time the next frame can be taken off the wire."""
        return self._next_arrival_ps

    def take_frame(self, now_ps: int, frame_bytes: int) -> WireEvent:
        """Claim the next arriving frame off the wire.

        ``now_ps`` must be at or past the frame's arrival time (the
        caller waits for :meth:`next_arrival_ps`).  Returns the frame's
        wire timing; the caller invokes :meth:`store` at ``wire_end_ps``
        so the SDRAM write is requested at its true start time.
        """
        arrival = self.next_arrival_ps()
        if now_ps < arrival:
            raise ValueError(
                f"frame {self._next_seq} accepted at {now_ps} before "
                f"arrival {arrival}"
            )
        wire_end = max(now_ps, arrival) + self.timing.frame_time_ps(frame_bytes)
        seq = self._next_seq
        self._next_arrival_ps += self._gap(seq)
        self._next_seq += 1
        self.frames_accepted += 1
        self.bytes_accepted += frame_bytes
        return WireEvent(seq, arrival, wire_end, wire_end)

    def store(self, now_ps: int, sdram_address: int, frame_bytes: int) -> int:
        """Burst a fully received frame into the rx buffer; returns the
        completion time of the SDRAM write."""
        cycle = self.sdram_clock.current_cycle(now_ps)
        write = self.sdram.transfer(sdram_address, frame_bytes, cycle)
        return self.sdram_clock.cycles_to_ps(write.finish_cycle)

    def skip_backlog(self, now_ps: int) -> int:
        """Drop every frame whose arrival slot has fully passed unserved.

        Returns the number of frames dropped.  Called when the receive
        buffer has been full across arrival slots — the wire does not
        wait, so those frames are gone (tail drop at the MAC).
        """
        dropped = 0
        while self._next_arrival_ps + self._gap(self._next_seq) < now_ps:
            self._next_arrival_ps += self._gap(self._next_seq)
            self._next_seq += 1
            dropped += 1
        return dropped

    def offered_frames(self, start_ps: int, end_ps: int) -> int:
        """How many frames the wire offered during a window (constant
        interarrival pacing only)."""
        if self._gap_fn is not None:
            raise ValueError("offered_frames requires constant pacing")
        if end_ps <= start_ps:
            return 0
        first = max(0, -(-(start_ps - self.start_ps) // self.interarrival_ps))
        last = (end_ps - self.start_ps) // self.interarrival_ps
        return max(0, int(last - first))

    def note_scratchpad_accesses(self, count: int) -> None:
        self.scratchpad_accesses += count
