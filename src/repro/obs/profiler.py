"""Simulator self-profiling: wall-time attribution per callback site.

The event kernel runs millions of closures per simulated millisecond;
when a full-report regeneration is slow, the question is *which
module's callbacks* burn the host CPU.  :class:`SimProfiler` attaches
to :class:`repro.sim.kernel.Simulator` (via ``attach_profiler``) and
aggregates per-callback wall time and invocation counts keyed by the
callback's ``module.qualname`` — lambdas and local closures keep their
enclosing function's qualified name, which is exactly the attribution
granularity a hot-path hunt needs (e.g.
``repro.nic.throughput.ThroughputSimulator._handle_send_frame.<locals>.transfer_done``).

Bound-method callbacks additionally carry a stable instance tag when
the instance exposes one (``profile_tag``, ``name``, ``label`` or
``index`` — e.g. ``...NicEndpoint.start[nic1]``), so two NICs in a
fabric no longer collapse into one row.  Tags never include memory
addresses: the same run always produces the same labels.

Beyond flat per-site attribution, the profiler rolls sites up into
*phases* — the enclosing function family, with ``<locals>`` closures
and instance tags folded into their definition site — which is the
per-event-type view the performance observatory consumes
(``repro run --profile-sim --json`` embeds :meth:`SimProfiler.to_dict`
in the result JSON; see docs/observability.md).

Profiling changes *host* timing only: the kernel's simulated event
order and timestamps are untouched, so a profiled run produces the
same results as an unprofiled one, just slower.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Tuple

#: Attributes consulted (in order) for a stable instance tag on bound
#: method callbacks.  Only plain strings/ints qualify — anything whose
#: repr could embed a memory address is rejected, keeping labels
#: identical across runs.
_TAG_ATTRIBUTES = ("profile_tag", "name", "label", "index")


def _instance_tag(owner: object) -> str:
    """A stable, human-meaningful identity for a callback's instance."""
    if isinstance(owner, type):
        # classmethod: the class name is already in the qualname.
        return ""
    for attribute in _TAG_ATTRIBUTES:
        try:
            value = getattr(owner, attribute, None)
        except Exception:  # a raising property must not break profiling
            continue
        if isinstance(value, str) and value:
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return str(value)
    return ""


def describe_callback(callback: Callable[[], None]) -> str:
    """A stable attribution key for a kernel callback.

    * ``functools.partial`` chains unwrap to the underlying function;
    * bound methods resolve to their function *and* keep a stable
      instance tag (``[name]``) when the instance has one, so distinct
      NIC/flow/clock instances get distinct rows;
    * callables without ``__qualname__`` (functor objects) fall back to
      their type name instead of ``repr`` (which would embed an
      address and make every run's labels unique noise).
    """
    target = callback
    # Unwrap functools.partial chains to the underlying function.
    while isinstance(target, functools.partial):
        target = target.func
    owner = getattr(target, "__self__", None)
    func = getattr(target, "__func__", target)  # bound method -> function
    module = getattr(func, "__module__", None) or "<unknown>"
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        qualname = type(target).__name__
    label = f"{module}.{qualname}"
    if owner is not None:
        tag = _instance_tag(owner)
        if tag:
            label = f"{label}[{tag}]"
    return label


def phase_of(key: str) -> str:
    """Collapse an attribution key to its *phase*: the callback family.

    The phase is the enclosing top-level function or method — local
    closures (``...<locals>.transfer_done``) fold into the function
    that defined them, and instance tags (``[nic1]``) fold away, so
    every event a kernel-callback family schedules lands in one phase
    row however many closures or instances fan it out.
    """
    base = key.split("[", 1)[0]
    head, sep, _rest = base.partition(".<locals>.")
    return head if sep else base


class SimProfiler:
    """Aggregates kernel-callback wall time by attribution key."""

    def __init__(self) -> None:
        # key -> [invocations, total wall seconds]
        self._stats: Dict[str, List[float]] = {}
        self.total_callbacks = 0
        self.total_wall_s = 0.0

    def record(self, callback: Callable[[], None], wall_s: float) -> None:
        """Called by the kernel after each profiled callback."""
        key = describe_callback(callback)
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s
        self.total_callbacks += 1
        self.total_wall_s += wall_s

    # -- views -------------------------------------------------------------
    def top(self, n: int = 10) -> List[Tuple[str, int, float]]:
        """The ``n`` costliest callback sites: (key, count, wall seconds)."""
        ranked = sorted(
            ((key, int(count), wall) for key, (count, wall) in self._stats.items()),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:n]

    def by_phase(self) -> Dict[str, Tuple[int, float]]:
        """Per-event-type phase counters: callback family ->
        (invocations, wall seconds), families per :func:`phase_of`."""
        phases: Dict[str, List[float]] = {}
        for key, (count, wall) in self._stats.items():
            entry = phases.setdefault(phase_of(key), [0, 0.0])
            entry[0] += count
            entry[1] += wall
        return {name: (int(c), w) for name, (c, w) in phases.items()}

    def by_module(self) -> Dict[str, Tuple[int, float]]:
        """Collapse attribution keys to their defining module."""
        modules: Dict[str, List[float]] = {}
        for key, (count, wall) in self._stats.items():
            # key is "package.module.Qual.Name"; the module part is the
            # prefix up to the first segment that starts uppercase (a
            # class) or the final callable name.
            parts = key.split("[", 1)[0].split(".")
            module_parts = []
            for part in parts[:-1]:
                if part and (part[0].isupper() or part == "<locals>"):
                    break
                module_parts.append(part)
            module = ".".join(module_parts) if module_parts else key
            entry = modules.setdefault(module, [0, 0.0])
            entry[0] += count
            entry[1] += wall
        return {name: (int(c), w) for name, (c, w) in modules.items()}

    # -- machine-readable report -------------------------------------------
    def to_dict(self, top_n: Optional[int] = None) -> Dict[str, object]:
        """The full profile as JSON-safe data: totals, ranked callback
        sites, phase counters and module rollups — the report the
        performance observatory attributes hot-path wall time with."""
        total = self.total_wall_s or 1.0

        def ranked(table: Dict[str, Tuple[int, float]]) -> List[Dict[str, object]]:
            rows = [
                {
                    "key": key,
                    "calls": count,
                    "wall_s": wall,
                    "share": wall / total,
                }
                for key, (count, wall) in table.items()
            ]
            rows.sort(key=lambda row: row["wall_s"], reverse=True)
            return rows

        callbacks = ranked(
            {key: (int(c), w) for key, (c, w) in self._stats.items()}
        )
        if top_n is not None:
            callbacks = callbacks[:top_n]
        return {
            "total_callbacks": self.total_callbacks,
            "total_wall_s": self.total_wall_s,
            "callbacks": callbacks,
            "phases": ranked(self.by_phase()),
            "modules": ranked(self.by_module()),
        }

    def report(self, top_n: int = 12) -> str:
        """Human-readable top-N tables (callback sites, then phases)."""
        lines = [
            f"simulator profile: {self.total_callbacks} callbacks, "
            f"{self.total_wall_s:.3f} s wall",
            f"{'wall s':>9}  {'share':>6}  {'calls':>9}  callback",
        ]
        total = self.total_wall_s or 1.0
        for key, count, wall in self.top(top_n):
            lines.append(
                f"{wall:9.4f}  {wall / total:6.1%}  {count:9d}  {key}"
            )
        phases = sorted(
            self.by_phase().items(), key=lambda item: item[1][1], reverse=True
        )
        lines.append(f"{'wall s':>9}  {'share':>6}  {'calls':>9}  phase")
        for name, (count, wall) in phases[:top_n]:
            lines.append(
                f"{wall:9.4f}  {wall / total:6.1%}  {count:9d}  {name}"
            )
        return "\n".join(lines)
