"""Simulator self-profiling: wall-time attribution per callback site.

The event kernel runs millions of closures per simulated millisecond;
when a full-report regeneration is slow, the question is *which
module's callbacks* burn the host CPU.  :class:`SimProfiler` attaches
to :class:`repro.sim.kernel.Simulator` (via ``attach_profiler``) and
aggregates per-callback wall time and invocation counts keyed by the
callback's ``module.qualname`` — lambdas and local closures keep their
enclosing function's qualified name, which is exactly the attribution
granularity a hot-path hunt needs (e.g.
``repro.nic.throughput.ThroughputSimulator._handle_send_frame.<locals>.transfer_done``).

Profiling changes *host* timing only: the kernel's simulated event
order and timestamps are untouched, so a profiled run produces the
same results as an unprofiled one, just slower.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Tuple


def describe_callback(callback: Callable[[], None]) -> str:
    """A stable attribution key for a kernel callback."""
    target = callback
    # Unwrap functools.partial chains to the underlying function.
    while isinstance(target, functools.partial):
        target = target.func
    func = getattr(target, "__func__", target)  # bound method -> function
    module = getattr(func, "__module__", None) or "<unknown>"
    qualname = getattr(func, "__qualname__", None) or repr(func)
    return f"{module}.{qualname}"


class SimProfiler:
    """Aggregates kernel-callback wall time by attribution key."""

    def __init__(self) -> None:
        # key -> [invocations, total wall seconds]
        self._stats: Dict[str, List[float]] = {}
        self.total_callbacks = 0
        self.total_wall_s = 0.0

    def record(self, callback: Callable[[], None], wall_s: float) -> None:
        """Called by the kernel after each profiled callback."""
        key = describe_callback(callback)
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s
        self.total_callbacks += 1
        self.total_wall_s += wall_s

    # -- views -------------------------------------------------------------
    def top(self, n: int = 10) -> List[Tuple[str, int, float]]:
        """The ``n`` costliest callback sites: (key, count, wall seconds)."""
        ranked = sorted(
            ((key, int(count), wall) for key, (count, wall) in self._stats.items()),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:n]

    def by_module(self) -> Dict[str, Tuple[int, float]]:
        """Collapse attribution keys to their defining module."""
        modules: Dict[str, List[float]] = {}
        for key, (count, wall) in self._stats.items():
            # key is "package.module.Qual.Name"; the module part is the
            # prefix up to the first segment that starts uppercase (a
            # class) or the final callable name.
            parts = key.split(".")
            module_parts = []
            for part in parts[:-1]:
                if part and (part[0].isupper() or part == "<locals>"):
                    break
                module_parts.append(part)
            module = ".".join(module_parts) if module_parts else key
            entry = modules.setdefault(module, [0, 0.0])
            entry[0] += count
            entry[1] += wall
        return {name: (int(c), w) for name, (c, w) in modules.items()}

    def report(self, top_n: int = 12) -> str:
        """Human-readable top-N table."""
        lines = [
            f"simulator profile: {self.total_callbacks} callbacks, "
            f"{self.total_wall_s:.3f} s wall",
            f"{'wall s':>9}  {'share':>6}  {'calls':>9}  callback",
        ]
        total = self.total_wall_s or 1.0
        for key, count, wall in self.top(top_n):
            lines.append(
                f"{wall:9.4f}  {wall / total:6.1%}  {count:9d}  {key}"
            )
        return "\n".join(lines)
