"""Chrome trace-event / Perfetto JSON export.

Converts a :class:`repro.obs.tracer.Tracer`'s event list into the JSON
object format documented by the Chrome trace-event specification (the
format Perfetto's legacy importer and ``chrome://tracing`` both read):

* one synthetic process (``pid`` 1, named for the run) holds every
  track;
* each distinct tracer track becomes a thread (``tid`` assigned in
  first-use order) with ``thread_name`` metadata, so cores, assists,
  the MAC engines, and the lifecycle tracks appear as separate rows;
* timestamps and durations are converted from simulated picoseconds to
  the format's microseconds (as floats — viewers show down to the ns).

Counter events keep their own track and render as Perfetto counter
rows.  Open begin/end spans are closed at the trace's end timestamp so
an exported file is always well-formed.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.obs.tracer import Tracer

_PID = 1


def _ts_us(ts_ps: int) -> float:
    return ts_ps / 1e6


def chrome_trace_dict(tracer: Tracer, process_name: str = "repro-nic") -> Dict[str, object]:
    """Render ``tracer`` as a Chrome trace-event JSON object."""
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return tid

    last_ts = 0
    for event in tracer.events:
        last_ts = max(last_ts, event.ts_ps + event.dur_ps)
        rendered: Dict[str, object] = {
            "name": event.name,
            "ph": event.phase,
            "ts": _ts_us(event.ts_ps),
            "pid": _PID,
            "tid": tid_for(event.track),
            "cat": event.track,
        }
        if event.phase == "X":
            rendered["dur"] = _ts_us(event.dur_ps)
        if event.phase == "i":
            rendered["s"] = "t"  # thread-scoped instant
        if event.args:
            rendered["args"] = dict(event.args)
        trace_events.append(rendered)

    # Close any still-open begin/end spans so viewers accept the file.
    for track, stack in tracer._open.items():
        for _name in reversed(stack):
            trace_events.append(
                {
                    "name": _name,
                    "ph": "E",
                    "ts": _ts_us(last_ts),
                    "pid": _PID,
                    "tid": tid_for(track),
                    "cat": track,
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "time_unit_note": "1 us = 1 simulated us"},
    }


def write_chrome_trace(
    tracer: Tracer,
    destination: Union[str, IO[str]],
    process_name: str = "repro-nic",
) -> None:
    """Serialize ``tracer`` to ``destination`` (path or text stream)."""
    payload = chrome_trace_dict(tracer, process_name=process_name)
    if hasattr(destination, "write"):
        json.dump(payload, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w") as handle:  # type: ignore[arg-type]
        json.dump(payload, handle)
