"""Bounded-memory streaming quantile histograms (HDR/DDSketch style).

The fabric's latency percentiles were originally computed from exact
per-flow sample buffers — every delivered frame appended one float, so
a long run's memory grew linearly with delivered frames and a
million-flow fabric was out of reach (ROADMAP item 2a).  This module
replaces that with a *mergeable, bounded-memory* estimator:

* Values are assigned to geometrically spaced buckets ``(gamma^(i-1),
  gamma^i]`` with ``gamma = (1 + eps) / (1 - eps)`` and ``eps =
  10**-significant_digits``.  A quantile query returns the bucket
  midpoint ``2 * gamma^i / (gamma + 1)``, which is within **relative
  error ``eps``** of the exact nearest-rank sample (the classic
  DDSketch bound: for any true value ``v`` in the bucket, ``|estimate -
  v| <= eps * v``), up to float rounding in ``log``/``pow`` (~1 ulp).
* Memory is ``O(occupied buckets)``: a sparse ``{index: count}`` dict
  bounded by ``log(max/min) / log(gamma)`` regardless of sample count.
  Three significant digits over a 1 ns..1 s latency range is < 10,400
  buckets worst case; real distributions occupy a few hundred.
* ``merge()`` adds two histograms of the same resolution
  bucket-for-bucket, so per-shard / per-process / per-point histograms
  aggregate to exactly the histogram of the concatenated stream —
  the property sweeps and sharded flow tables need.

``count``, ``sum`` (hence ``mean``), ``min`` and ``max`` are tracked
exactly; only interior quantiles are approximate.  Quantile queries are
clamped into ``[min, max]``, which preserves the error bound (the true
value lies in that range too) and makes the extremes exact.

When is exact mode still required?  Whenever a byte-identical result is
part of the contract: the golden-trace corpus (``tests/golden/``)
digests full result dicts, so its fabric runs pin
``estimator="exact"`` — see ``docs/observability.md``.

The nearest-rank helpers shared by every percentile implementation in
the repo (:func:`exact_percentile`, previously duplicated between
``repro.fabric.flows`` and ``repro.sim.stats``) live here too.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "StreamingHistogram",
    "exact_percentile",
    "merge_all",
    "nearest_rank",
    "rank_bucket",
]


# ----------------------------------------------------------------------
# Shared nearest-rank primitives
# ----------------------------------------------------------------------
def nearest_rank(total: int, fraction: float) -> int:
    """1-based nearest-rank index into ``total`` ordered samples.

    The rank of the ``fraction`` quantile under the nearest-rank
    definition: ``ceil(fraction * total)`` clamped into ``[1, total]``.
    """
    return min(total, max(1, math.ceil(fraction * total)))


def exact_percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over raw sorted samples.

    Unlike bucketed estimates (fine for dashboards, degenerate for
    assertions like ``p99 > p50``), this is exact: the value at rank
    ``ceil(fraction * n)``.  Historically lived in
    ``repro.fabric.flows``; re-exported there for compatibility.
    """
    if not sorted_samples:
        return 0.0
    return sorted_samples[nearest_rank(len(sorted_samples), fraction) - 1]


def rank_bucket(counts: Iterable[int], target: int) -> Optional[int]:
    """Index of the first bucket where the cumulative count reaches
    ``target``, or ``None`` if the counts never do (the caller decides
    the overflow semantics — e.g. return the recorded maximum)."""
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= target:
            return index
    return None


# ----------------------------------------------------------------------
# The streaming histogram
# ----------------------------------------------------------------------
class StreamingHistogram:
    """Mergeable log-bucketed quantile sketch with a relative-error bound.

    ``significant_digits`` (1..5) sets the resolution: quantile
    estimates are within relative error ``10**-significant_digits`` of
    the exact nearest-rank sample.  Values ``<= 0`` land in a dedicated
    zero bucket and are reported as ``0.0`` (latencies are positive;
    the zero bucket keeps the sketch total-preserving under defensive
    inputs).
    """

    __slots__ = (
        "name",
        "significant_digits",
        "relative_error",
        "_gamma",
        "_log_gamma",
        "counts",
        "zero_count",
        "total",
        "sum",
        "min",
        "max",
    )

    def __init__(self, significant_digits: int = 3, name: str = "") -> None:
        if not 1 <= significant_digits <= 5:
            raise ValueError(
                f"significant_digits must be in [1, 5], got {significant_digits}"
            )
        self.name = name
        self.significant_digits = significant_digits
        #: Documented bound: |estimated quantile - exact quantile| <=
        #: relative_error * exact quantile (plus ~1 ulp of float noise).
        self.relative_error = 10.0 ** -significant_digits
        eps = self.relative_error
        self._gamma = (1.0 + eps) / (1.0 - eps)
        self._log_gamma = math.log(self._gamma)
        self.counts: Dict[int, int] = {}
        self.zero_count = 0
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- ingestion -------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value`` in O(1)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if value > 0.0:
            index = math.ceil(math.log(value) / self._log_gamma)
            self.counts[index] = self.counts.get(index, 0) + count
        else:
            self.zero_count += count
        self.total += count
        self.sum += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def reset(self) -> None:
        """Forget every recorded sample (end-of-warm-up support)."""
        self.counts.clear()
        self.zero_count = 0
        self.total = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    # -- queries ---------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the memory footprint, independent of
        ``total``."""
        return len(self.counts) + (1 if self.zero_count else 0)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def value_at(self, index: int) -> float:
        """Midpoint estimate for bucket ``index`` (relative-error
        optimal for values in ``(gamma^(i-1), gamma^i]``)."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank quantile estimate, within ``relative_error``."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.total == 0:
            return 0.0
        rank = nearest_rank(self.total, fraction)
        # Ranks 1 and n are the recorded min/max, which are tracked
        # exactly — return them directly (error 0 at the extremes).
        if rank == 1 and self.min is not None:
            return self.min
        if rank == self.total and self.max is not None:
            return self.max
        seen = self.zero_count
        if seen >= rank:
            estimate = 0.0
        else:
            estimate = None
            for index in sorted(self.counts):
                seen += self.counts[index]
                if seen >= rank:
                    estimate = self.value_at(index)
                    break
            if estimate is None:  # defensive: counts always sum to total
                estimate = self.max if self.max is not None else 0.0
        # min/max are exact, and the true ranked value lies within
        # them, so clamping can only shrink the error.
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def percentiles(self, fractions: Sequence[float]) -> List[float]:
        return [self.percentile(fraction) for fraction in fractions]

    def summary(self) -> Dict[str, float]:
        """The standard latency-summary view of the sketch."""
        return {
            "count": float(self.total),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    # -- aggregation -----------------------------------------------------
    def _check_compatible(self, other: "StreamingHistogram") -> None:
        if self.significant_digits != other.significant_digits:
            raise ValueError(
                f"cannot merge histograms with different resolution: "
                f"{self.significant_digits} vs {other.significant_digits} "
                f"significant digits"
            )

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into this histogram in place and return self.

        Bucket-exact: ``a.merge(b)`` has identical counts (hence
        identical quantile estimates) to a histogram that ingested the
        concatenated sample stream.  ``sum`` may differ by float
        addition order, i.e. within a few ulps.
        """
        self._check_compatible(other)
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.zero_count += other.zero_count
        self.total += other.total
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    def copy(self) -> "StreamingHistogram":
        clone = StreamingHistogram(self.significant_digits, name=self.name)
        clone.counts = dict(self.counts)
        clone.zero_count = self.zero_count
        clone.total = self.total
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe full state (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "significant_digits": self.significant_digits,
            "relative_error": self.relative_error,
            "zero_count": self.zero_count,
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": {str(index): count for index, count in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingHistogram":
        hist = cls(int(data["significant_digits"]), name=str(data.get("name", "")))
        hist.zero_count = int(data["zero_count"])
        hist.total = int(data["total"])
        hist.sum = float(data["sum"])
        hist.min = None if data["min"] is None else float(data["min"])
        hist.max = None if data["max"] is None else float(data["max"])
        hist.counts = {
            int(index): int(count)
            for index, count in dict(data["counts"]).items()
        }
        return hist

    def prometheus_lines(self, metric_name: Optional[str] = None) -> List[str]:
        """Prometheus text-format histogram: cumulative ``_bucket``
        lines with the bucket *upper bounds* as ``le`` labels, plus
        ``_sum`` and ``_count``."""
        name = re.sub(r"[^a-zA-Z0-9_:]", "_", metric_name or self.name or "histogram")
        lines = [f"# TYPE {name} histogram"]
        cumulative = self.zero_count
        if self.zero_count:
            lines.append(f'{name}_bucket{{le="0"}} {cumulative}')
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            upper = self._gamma ** index
            lines.append(f'{name}_bucket{{le="{upper!r}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {self.total}')
        lines.append(f"{name}_sum {self.sum!r}")
        lines.append(f"{name}_count {self.total}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogram({self.name!r}, digits={self.significant_digits}, "
            f"total={self.total}, buckets={self.bucket_count})"
        )


def merge_all(histograms: Iterable[StreamingHistogram],
              significant_digits: Optional[int] = None) -> StreamingHistogram:
    """Merge an iterable of histograms into a fresh one (cross-shard /
    cross-process aggregation helper)."""
    result: Optional[StreamingHistogram] = None
    for histogram in histograms:
        if result is None:
            result = histogram.copy()
        else:
            result.merge(histogram)
    if result is None:
        result = StreamingHistogram(significant_digits or 3)
    return result


# Type alias kept for annotation brevity in callers.
Buckets = Dict[int, int]
Fractions = Tuple[float, ...]
