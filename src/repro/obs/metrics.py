"""Periodic metrics sampling and time-series export.

A single end-of-run :meth:`~repro.sim.stats.StatRegistry.snapshot` says
*what* a run produced; a time series of snapshots says *when* — which
is the difference between "throughput was 9.8 Gb/s" and "throughput
collapsed for 200 us when the receive buffer filled".  The
:class:`MetricsSampler` turns any snapshot-producing callable into such
a series by scheduling itself on the simulation kernel at a fixed
simulated-time interval.

Sampling is a pure read: the collector must not mutate simulator
state, and the sampler only ever *adds* events to the kernel queue, so
a sampled run's simulated timeline is identical to an unsampled one.

Exporters: JSON (list of ``{"t_ps", "t_us", metrics...}`` rows), CSV
(one column per metric, union of keys across samples), and the
Prometheus text exposition format for the final snapshot so existing
scrape-based dashboards can ingest a simulation the same way they
ingest a production service.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import IO, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.sim.kernel import Event, Simulator

Sample = Tuple[int, Dict[str, float]]


class MetricsSampler:
    """Samples ``collect()`` every ``interval_ps`` of simulated time."""

    def __init__(
        self,
        sim: Simulator,
        collect: Callable[[], Mapping[str, float]],
        interval_ps: int,
        max_samples: Optional[int] = None,
    ) -> None:
        if interval_ps <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ps}")
        self.sim = sim
        self.collect = collect
        self.interval_ps = interval_ps
        self.max_samples = max_samples
        self.samples: List[Sample] = []
        self._running = False
        self._pending: Optional[Event] = None

    def start(self) -> "MetricsSampler":
        """Schedule the first sample one interval from now."""
        if not self._running:
            self._running = True
            self._pending = self.sim.schedule(self.interval_ps, self._tick)
        return self

    def stop(self) -> None:
        """Take no further samples.

        The already-queued ``_tick`` is cancelled on the kernel, not
        left behind as a live no-op: a dead tick would inflate
        ``pending_events`` and keep :meth:`Simulator.run` advancing
        simulated time to the tick's timestamp after the sampler is
        logically gone.
        """
        self._running = False
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if not self._running:
            return
        self.samples.append((self.sim.now_ps, dict(self.collect())))
        if self.max_samples is not None and len(self.samples) >= self.max_samples:
            self._running = False
            return
        self._pending = self.sim.schedule(self.interval_ps, self._tick)

    def sample_now(self) -> None:
        """Take one immediate out-of-band sample (e.g. at run end)."""
        self.samples.append((self.sim.now_ps, dict(self.collect())))

    # -- export ----------------------------------------------------------
    def metric_names(self) -> List[str]:
        """Sorted union of metric keys across every sample."""
        names = set()
        for _ts, values in self.samples:
            names.update(values)
        return sorted(names)

    def to_json(self) -> str:
        rows = [
            {"t_ps": ts, "t_us": ts / 1e6, **values} for ts, values in self.samples
        ]
        return json.dumps({"interval_ps": self.interval_ps, "samples": rows}, indent=2)

    def to_csv(self) -> str:
        names = self.metric_names()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["t_ps", "t_us"] + names)
        for ts, values in self.samples:
            writer.writerow(
                [ts, ts / 1e6] + [values.get(name, "") for name in names]
            )
        return buffer.getvalue()

    def write(self, destination: Union[str, IO[str]], fmt: str = "json") -> None:
        """Write the series as ``fmt`` (``json``/``csv``/``prom``)."""
        if fmt == "json":
            text = self.to_json()
        elif fmt == "csv":
            text = self.to_csv()
        elif fmt == "prom":
            final = self.samples[-1][1] if self.samples else {}
            text = prometheus_text(final)
        else:
            raise ValueError(f"unknown metrics format {fmt!r}")
        if hasattr(destination, "write"):
            destination.write(text)  # type: ignore[union-attr]
            return
        with open(destination, "w") as handle:  # type: ignore[arg-type]
            handle.write(text)


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LEADING = re.compile(r"^[^a-zA-Z_:]")


def prometheus_metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted stat name into a legal Prometheus metric name."""
    cleaned = _PROM_INVALID.sub("_", f"{prefix}_{name}" if prefix else name)
    if _PROM_LEADING.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def prometheus_text(
    snapshot: Mapping[str, float],
    prefix: str = "repro",
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a flat snapshot in the Prometheus text exposition format.

    Counters (names beginning ``counter.``) are typed ``counter``;
    everything else is exported as a ``gauge``.  Names are emitted in
    sorted order so the output is deterministic.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        metric = prometheus_metric_name(name, prefix=prefix)
        kind = "counter" if name.startswith("counter.") else "gauge"
        if help_text and name in help_text:
            lines.append(f"# HELP {metric} {help_text[name]}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {float(value):g}")
    return "\n".join(lines) + ("\n" if lines else "")
