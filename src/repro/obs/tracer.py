"""Frame-lifecycle tracing primitives.

The paper's evaluation is pure accounting — stall-cycle breakdowns,
bandwidth totals, cycles per packet — but *diagnosing* a configuration
that misses line rate needs the other view: where did each frame's time
go between the MAC, the event queue, the cores, the DMA assists, and
the wire?  The :class:`Tracer` answers that with two coordinated
records:

* a flat list of timeline events (spans, instants, counter samples) in
  the vocabulary of the Chrome trace-event format, exported by
  :mod:`repro.obs.perfetto` so a run opens directly in
  ``chrome://tracing`` / Perfetto with one track per core, assist, and
  hardware queue;
* a per-frame lifecycle table keyed on ``(direction, seq, stage)``
  recording the first time each frame reached each
  :class:`FrameStage`, which is what the ordering-invariant tests and
  latency post-processing consume.

Everything is opt-in: the simulators hold a :data:`NULL_TRACER` by
default, whose ``enabled`` flag gates every instrumentation site, so a
run without tracing executes the exact event sequence (and produces
bit-identical statistics) it did before this module existed.  The
tracer never schedules simulation events and never mutates simulator
state — it is a pure observer, which is what keeps traced and untraced
runs on identical simulated timelines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class FrameStage(enum.Enum):
    """Lifecycle checkpoints of one frame through the NIC.

    Transmit frames run ``EVENT_DISPATCHED → … → WIRE``; receive frames
    run ``RX_LANDED → … → COMMITTED`` (their wire time precedes the
    NIC's involvement).  :data:`TX_STAGE_ORDER` / :data:`RX_STAGE_ORDER`
    give the per-direction total orders the invariant tests check.
    """

    RX_LANDED = "rx_landed"              # MAC finished storing into rx SDRAM
    EVENT_DISPATCHED = "event_dispatched"  # frame claimed off the event queue
    HANDLER_RUN = "handler_run"          # firmware handler charged for it
    DMA_ISSUED = "dma_issued"            # frame-data DMA programmed
    DMA_COMPLETE = "dma_complete"        # frame-data DMA finished
    COMMITTED = "committed"              # in-order commit point passed
    WIRE = "wire"                        # tx only: frame fully on the wire


TX_STAGE_ORDER: Tuple[FrameStage, ...] = (
    FrameStage.EVENT_DISPATCHED,
    FrameStage.HANDLER_RUN,
    FrameStage.DMA_ISSUED,
    FrameStage.DMA_COMPLETE,
    FrameStage.COMMITTED,
    FrameStage.WIRE,
)

RX_STAGE_ORDER: Tuple[FrameStage, ...] = (
    FrameStage.RX_LANDED,
    FrameStage.EVENT_DISPATCHED,
    FrameStage.HANDLER_RUN,
    FrameStage.DMA_ISSUED,
    FrameStage.DMA_COMPLETE,
    FrameStage.COMMITTED,
)

STAGE_ORDERS: Dict[str, Tuple[FrameStage, ...]] = {
    "tx": TX_STAGE_ORDER,
    "rx": RX_STAGE_ORDER,
}


@dataclass
class TraceEvent:
    """One timeline record, phase-coded like the Chrome trace format.

    ``phase`` is one of ``"X"`` (complete span), ``"B"``/``"E"``
    (nested begin/end), ``"i"`` (instant), or ``"C"`` (counter sample).
    Timestamps are picoseconds of simulated time (the exporter converts
    to the trace format's microseconds).
    """

    phase: str
    track: str
    name: str
    ts_ps: int
    dur_ps: int = 0
    args: Dict[str, object] = field(default_factory=dict)


class NullTracer:
    """Do-nothing stand-in: every simulator's default collaborator.

    ``enabled`` is ``False`` so hot paths can skip even argument
    construction with ``if tracer.enabled:``; the methods exist (and
    no-op) so un-gated call sites still work.
    """

    enabled = False

    def instant(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        pass

    def complete(self, track: str, name: str, ts_ps: int, dur_ps: int, **args: object) -> None:
        pass

    def begin(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        pass

    def end(self, track: str, ts_ps: int) -> None:
        pass

    def counter(self, track: str, name: str, ts_ps: int, value: float) -> None:
        pass

    def frame_stage(
        self,
        direction: str,
        seq: int,
        stage: FrameStage,
        ts_ps: int,
        track: Optional[str] = None,
        dur_ps: int = 0,
    ) -> None:
        pass


#: Shared do-nothing tracer; safe because it holds no state.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer.  See the module docstring for the data model."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        # (direction, seq) -> {stage: first timestamp}
        self.frames: Dict[Tuple[str, int], Dict[FrameStage, int]] = {}
        # track -> stack of open span names (begin/end nesting).
        self._open: Dict[str, List[str]] = {}
        self.dropped_ends = 0

    # -- timeline events ------------------------------------------------
    def instant(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        """A zero-duration marker on ``track``."""
        self.events.append(TraceEvent("i", track, name, ts_ps, 0, args))

    def complete(self, track: str, name: str, ts_ps: int, dur_ps: int, **args: object) -> None:
        """A span with both endpoints known up front."""
        if dur_ps < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_ps}")
        self.events.append(TraceEvent("X", track, name, ts_ps, dur_ps, args))

    def begin(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        """Open a nested span; close with :meth:`end` (LIFO per track)."""
        self._open.setdefault(track, []).append(name)
        self.events.append(TraceEvent("B", track, name, ts_ps, 0, args))

    def end(self, track: str, ts_ps: int) -> None:
        """Close the innermost open span on ``track``."""
        stack = self._open.get(track)
        if not stack:
            # Unbalanced end: record nothing rather than corrupt nesting.
            self.dropped_ends += 1
            return
        name = stack.pop()
        self.events.append(TraceEvent("E", track, name, ts_ps, 0, {}))

    def counter(self, track: str, name: str, ts_ps: int, value: float) -> None:
        """Sample a numeric series (renders as a counter track)."""
        self.events.append(TraceEvent("C", track, name, ts_ps, 0, {name: value}))

    def open_depth(self, track: str) -> int:
        """How many begin/end spans are currently open on ``track``."""
        return len(self._open.get(track, ()))

    # -- frame lifecycle ------------------------------------------------
    def frame_stage(
        self,
        direction: str,
        seq: int,
        stage: FrameStage,
        ts_ps: int,
        track: Optional[str] = None,
        dur_ps: int = 0,
    ) -> None:
        """Record frame ``(direction, seq)`` reaching ``stage``.

        Only the *first* arrival at a stage is kept in the lifecycle
        table (a retried handler may dispatch the same bundle twice);
        every call still emits a timeline event so retries remain
        visible on the track view.
        """
        record = self.frames.setdefault((direction, seq), {})
        record.setdefault(stage, ts_ps)
        name = f"{direction}:{stage.value}"
        resolved = track if track is not None else f"lifecycle-{direction}"
        if dur_ps > 0:
            self.complete(resolved, name, ts_ps, dur_ps, seq=seq)
        else:
            self.instant(resolved, name, ts_ps, seq=seq)

    def frame_lifecycle(self, direction: str, seq: int) -> Dict[FrameStage, int]:
        """The recorded stage → timestamp map for one frame."""
        return dict(self.frames.get((direction, seq), {}))

    def complete_frames(self, direction: str) -> List[int]:
        """Frames of ``direction`` that reached every stage of its order.

        ``direction`` may carry a namespace prefix (``"nic0/tx"``, from
        a :class:`PrefixedTracer`); the stage order is looked up on the
        bare direction after the last ``/``.
        """
        order = STAGE_ORDERS[direction.rsplit("/", 1)[-1]]
        result = []
        for (frame_dir, seq), stages in self.frames.items():
            if frame_dir == direction and all(stage in stages for stage in order):
                result.append(seq)
        return sorted(result)

    def __len__(self) -> int:
        return len(self.events)


class PrefixedTracer(NullTracer):
    """Namespace view onto another tracer.

    Every track (and frame direction) is prefixed, so several
    simulators sharing one event kernel — the multi-NIC fabric — can
    write into a single trace without colliding: endpoint *i* holds a
    ``PrefixedTracer(root, "nic{i}/")`` and its ``core0`` track appears
    as ``nic0/core0``, its ``("tx", seq)`` lifecycle entries as
    ``("nic0/tx", seq)``.  The view holds no state; ``enabled``
    forwards to the wrapped tracer, so prefixing a
    :class:`NullTracer` keeps every hot-path gate closed.
    """

    def __init__(self, inner: NullTracer, prefix: str) -> None:
        self.inner = inner
        self.prefix = prefix

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return self.inner.enabled

    def instant(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        self.inner.instant(self.prefix + track, name, ts_ps, **args)

    def complete(self, track: str, name: str, ts_ps: int, dur_ps: int, **args: object) -> None:
        self.inner.complete(self.prefix + track, name, ts_ps, dur_ps, **args)

    def begin(self, track: str, name: str, ts_ps: int, **args: object) -> None:
        self.inner.begin(self.prefix + track, name, ts_ps, **args)

    def end(self, track: str, ts_ps: int) -> None:
        self.inner.end(self.prefix + track, ts_ps)

    def counter(self, track: str, name: str, ts_ps: int, value: float) -> None:
        self.inner.counter(self.prefix + track, name, ts_ps, value)

    def frame_stage(
        self,
        direction: str,
        seq: int,
        stage: FrameStage,
        ts_ps: int,
        track: Optional[str] = None,
        dur_ps: int = 0,
    ) -> None:
        resolved = track if track is not None else f"lifecycle-{direction}"
        self.inner.frame_stage(
            self.prefix + direction,
            seq,
            stage,
            ts_ps,
            track=self.prefix + resolved,
            dur_ps=dur_ps,
        )
