"""Progress and ETA reporting for long-running experiment sweeps.

The experiment engine (:mod:`repro.exp`) fans dozens of simulation
points across worker processes; a sweep that takes minutes needs to say
where it is.  :class:`ProgressReporter` is a tiny, dependency-free
reporter: it tracks completions (distinguishing cache hits from
executed points), estimates the remaining wall time from the measured
per-point rate of *executed* points, and writes single-line updates to
a stream (stderr by default).

It is deliberately decoupled from the simulation kernel — sweep
progress is host wall time, not simulated time — but lives in
``repro.obs`` with the other instruments because it answers the same
question at a different tier: "what is the system doing right now?"
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import IO, Optional


class ProgressReporter:
    """Reports ``done/total`` with an ETA as sweep points complete.

    Parameters
    ----------
    total:
        Number of points in the sweep.
    label:
        Prefix for every line (e.g. the sweep name).
    stream:
        Where lines go; ``None`` silences output (counters still work,
        which is what the tests use).
    min_interval_s:
        Minimum wall time between printed lines, so thousand-point
        sweeps do not flood the terminal.  The final point always
        prints.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[IO[str]] = sys.stderr,
        min_interval_s: float = 0.5,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = total
        self.label = label
        self.stream = stream
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cache_hits = 0
        self.executed = 0
        self._started = perf_counter()
        self._last_emit = 0.0

    # -- updates ---------------------------------------------------------
    def update(self, cache_hit: bool = False) -> None:
        """Record one completed point."""
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
        self._emit(final=self.done >= self.total)

    @property
    def elapsed_s(self) -> float:
        return perf_counter() - self._started

    def eta_s(self) -> Optional[float]:
        """Remaining wall-time estimate, from executed-point throughput.

        Cache hits are near-free, so they are excluded from the rate;
        with no executed points yet there is no basis for an estimate.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self.executed == 0:
            return None
        per_point = self.elapsed_s / self.executed
        return per_point * remaining

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        parts = [f"[{self.label}] {self.done}/{self.total} points"]
        if self.cache_hits:
            parts.append(f"({self.cache_hits} cached)")
        parts.append(f"elapsed {self.elapsed_s:.1f}s")
        eta = self.eta_s()
        if eta is not None and self.done < self.total:
            parts.append(f"eta {eta:.1f}s")
        return " ".join(parts)

    def _emit(self, final: bool) -> None:
        if self.stream is None:
            return
        now = perf_counter()
        if not final and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        self.stream.write(self.render() + "\n")

    def summary(self) -> str:
        """One-line wrap-up (printed by the CLI after a sweep)."""
        return (
            f"[{self.label}] {self.total} points: {self.cache_hits} cache "
            f"hits, {self.executed} executed in {self.elapsed_s:.1f}s"
        )
