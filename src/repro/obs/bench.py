"""The benchmark observatory: structured perf trajectory for the repo.

The repo has ~25 ``benchmarks/bench_*.py`` modules, but until this
layer existed their numbers evaporated into pytest's console output —
there was no machine-readable performance trajectory, so "make the hot
path 10x faster" (ROADMAP item 1) had no baseline to be judged against.
This module closes the loop:

* :func:`discover` finds every ``benchmarks/bench_*.py`` module;
* :func:`run_bench` imports one and executes its benchmark functions
  under a lightweight pytest-benchmark-compatible timer
  (:class:`BenchTimer` supports the ``benchmark(fn, *args)`` and
  ``benchmark.pedantic(...)`` idioms the suite uses), collecting
  median-of-k wall-time samples per function;
* :func:`write_report` emits one ``BENCH_<name>.json`` per module —
  metric values with units, plus an environment fingerprint (python,
  platform, CPU count, git sha, timestamp) so a trajectory point is
  interpretable months later;
* :func:`compare_reports` diffs two trajectory points with
  *noise-aware* thresholds — medians compared under a per-metric
  relative tolerance (modules can widen theirs via a
  ``BENCH_TOLERANCE`` dict) — and reports regressions, which the CLI
  (``repro bench --compare OLD NEW``) turns into a nonzero exit code.

Wall-clock on shared CI hosts is noisy; the defaults (median of k
rounds, 25% tolerance) follow the calibration of the existing
``bench_tracer_overhead`` guard.  For deterministic workloads the
minimum is the least-noise estimator, so both are recorded and
``--stat min`` selects it.
"""

from __future__ import annotations

import importlib
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Schema version of the BENCH_*.json files.
BENCH_SCHEMA = 1

#: File-name pattern of emitted trajectory points.
REPORT_PREFIX = "BENCH_"

#: Default relative tolerance for regression detection (see module
#: docstring for the noise rationale).
DEFAULT_TOLERANCE = 0.25

#: Default rounds per benchmark function (median-of-k).  ``pedantic``
#: calls — the "measurement, not microbenchmark" idiom — keep their
#: explicitly requested round count.
DEFAULT_ROUNDS = 3

#: The fast subset: modules cheap enough for a per-PR CI job.  These
#: are the simulator/overhead benches (the perf-trajectory core); the
#: paper table/figure regenerations stay full-mode only.
QUICK_BENCHES = (
    "bench_simulator_performance",
    "bench_tracer_overhead",
    "bench_fault_overhead",
    "bench_check_overhead",
    "bench_fabric_overhead",
    "bench_streaming_hist",
    "bench_qos_isolation",
    "bench_topology_scale",
)


# ----------------------------------------------------------------------
# The pytest-benchmark-compatible timer
# ----------------------------------------------------------------------
class BenchTimer:
    """Stand-in for the pytest-benchmark fixture, recording wall times.

    Supports the two idioms the suite uses::

        result = benchmark(fn, *args)                  # timed k rounds
        result = benchmark.pedantic(fn, args=..., kwargs=...,
                                    rounds=1, iterations=1)

    Returns the last round's result so the benches' own shape
    assertions still run against real output.
    """

    def __init__(self, rounds: int = DEFAULT_ROUNDS) -> None:
        self.default_rounds = max(1, rounds)
        self.samples_s: List[float] = []

    def _measure(
        self,
        function: Callable,
        args: tuple,
        kwargs: dict,
        rounds: int,
        iterations: int,
    ):
        result = None
        for _round in range(rounds):
            started = time.perf_counter()
            for _iteration in range(iterations):
                result = function(*args, **kwargs)
            elapsed = time.perf_counter() - started
            self.samples_s.append(elapsed / max(1, iterations))
        return result

    def __call__(self, function: Callable, *args, **kwargs):
        return self._measure(function, args, kwargs, self.default_rounds, 1)

    def pedantic(
        self,
        function: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
    ):
        for _ in range(warmup_rounds):
            function(*args, **(kwargs or {}))
        return self._measure(
            function, tuple(args), dict(kwargs or {}), max(1, rounds),
            max(1, iterations),
        )


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------
def git_sha(cwd: Optional[str] = None) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def env_fingerprint(repo_dir: Optional[str] = None) -> Dict[str, object]:
    """Who/where/when of a trajectory point, for later interpretation."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha(repo_dir),
        "timestamp": time.time(),
    }


# ----------------------------------------------------------------------
# Discovery and execution
# ----------------------------------------------------------------------
def discover(bench_dir: str) -> List[str]:
    """Sorted ``bench_*`` module names found in ``bench_dir``."""
    if not os.path.isdir(bench_dir):
        raise FileNotFoundError(f"benchmark directory not found: {bench_dir}")
    names = []
    for entry in sorted(os.listdir(bench_dir)):
        if entry.startswith("bench_") and entry.endswith(".py"):
            names.append(entry[: -len(".py")])
    return names


def bench_label(module_name: str) -> str:
    """``bench_tracer_overhead`` -> ``tracer_overhead``."""
    return module_name[len("bench_"):] if module_name.startswith("bench_") else module_name


@dataclass
class FunctionRecord:
    """One benchmark function's measured samples."""

    name: str
    status: str = "ok"             # "ok" | "failed" | "skipped"
    error: str = ""
    samples_s: List[float] = field(default_factory=list)
    tolerance: Optional[float] = None

    @property
    def min_s(self) -> float:
        return min(self.samples_s) if self.samples_s else 0.0

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_s) if self.samples_s else 0.0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "status": self.status,
            "unit": "s",
            "direction": "lower",
            "rounds": len(self.samples_s),
            "samples_s": self.samples_s,
            "min_s": self.min_s,
            "median_s": self.median_s,
            "mean_s": (
                sum(self.samples_s) / len(self.samples_s)
                if self.samples_s else 0.0
            ),
        }
        if self.error:
            out["error"] = self.error
        if self.tolerance is not None:
            out["tolerance"] = self.tolerance
        return out


@dataclass
class BenchReport:
    """One module's trajectory point."""

    bench: str
    module: str
    wall_s: float
    env: Dict[str, object]
    functions: Dict[str, FunctionRecord]

    @property
    def ok(self) -> bool:
        return all(f.status != "failed" for f in self.functions.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "bench": self.bench,
            "module": self.module,
            "wall_s": self.wall_s,
            "env": dict(self.env),
            "functions": {
                name: record.to_dict()
                for name, record in sorted(self.functions.items())
            },
        }


def _benchmark_functions(module) -> List[Tuple[str, Callable]]:
    """Benchmark entry points: ``test_*``/``bench_*`` callables whose
    only parameter is the ``benchmark`` fixture."""
    import inspect

    found = []
    for name in sorted(vars(module)):
        if not (name.startswith("test_") or name.startswith("bench_")):
            continue
        function = getattr(module, name)
        if not callable(function) or not inspect.isfunction(function):
            continue
        parameters = list(inspect.signature(function).parameters)
        if parameters == ["benchmark"]:
            found.append((name, function))
    return found


def run_bench(
    module_name: str,
    bench_dir: str,
    rounds: int = DEFAULT_ROUNDS,
    progress=None,
) -> BenchReport:
    """Import one bench module and execute its benchmark functions."""
    parent = os.path.dirname(os.path.abspath(bench_dir))
    if parent not in sys.path:
        sys.path.insert(0, parent)
    package = os.path.basename(os.path.abspath(bench_dir))
    started = time.perf_counter()
    module = importlib.import_module(f"{package}.{module_name}")
    tolerances = getattr(module, "BENCH_TOLERANCE", {}) or {}
    functions: Dict[str, FunctionRecord] = {}
    for name, function in _benchmark_functions(module):
        if progress is not None:
            print(f"  {module_name}::{name} ...", file=progress, flush=True)
        timer = BenchTimer(rounds=rounds)
        record = FunctionRecord(name=name, tolerance=tolerances.get(name))
        try:
            function(timer)
        except Exception as error:  # keep the run going; report the failure
            record.status = "failed"
            record.error = f"{type(error).__name__}: {error}"
        record.samples_s = timer.samples_s
        functions[name] = record
    return BenchReport(
        bench=bench_label(module_name),
        module=f"{package}.{module_name}",
        wall_s=time.perf_counter() - started,
        env=env_fingerprint(parent),
        functions=functions,
    )


# ----------------------------------------------------------------------
# Report I/O
# ----------------------------------------------------------------------
def report_path(out_dir: str, bench: str) -> str:
    return os.path.join(out_dir, f"{REPORT_PREFIX}{bench}.json")


def write_report(report: BenchReport, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = report_path(out_dir, report.bench)
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid bench JSON ({error})") from error
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r} "
            f"(expected {BENCH_SCHEMA})"
        )
    return data


def _collect_reports(path: str) -> Dict[str, Dict[str, object]]:
    """``path`` may be one BENCH_*.json file or a directory of them."""
    if os.path.isdir(path):
        reports = {}
        for entry in sorted(os.listdir(path)):
            if entry.startswith(REPORT_PREFIX) and entry.endswith(".json"):
                data = load_report(os.path.join(path, entry))
                reports[str(data["bench"])] = data
        if not reports:
            raise FileNotFoundError(f"no {REPORT_PREFIX}*.json files in {path}")
        return reports
    data = load_report(path)
    return {str(data["bench"]): data}


# ----------------------------------------------------------------------
# Comparison (the regression gate)
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric's old-vs-new comparison."""

    metric: str                    # "<bench>::<function>"
    old_s: float
    new_s: float
    tolerance: float
    verdict: str                   # "ok" | "regression" | "improvement"

    @property
    def ratio(self) -> float:
        return self.new_s / self.old_s if self.old_s else float("inf")

    def line(self) -> str:
        arrow = {"regression": "▲", "improvement": "▼", "ok": " "}[self.verdict]
        return (
            f"{arrow} {self.metric}: {self.old_s:.4f}s -> {self.new_s:.4f}s "
            f"({self.ratio - 1.0:+.1%}, tolerance ±{self.tolerance:.0%})"
        )


@dataclass
class CompareResult:
    deltas: List[MetricDelta]
    missing_old: List[str]
    missing_new: List[str]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"bench compare: {len(self.deltas)} metrics, "
            f"{len(self.regressions)} regressions"
        ]
        for delta in self.deltas:
            if delta.verdict != "ok":
                lines.append("  " + delta.line())
        for metric in self.missing_old:
            lines.append(f"  ? {metric}: only in NEW (no baseline)")
        for metric in self.missing_new:
            lines.append(f"  ? {metric}: only in OLD (dropped)")
        return "\n".join(lines)


def compare_reports(
    old_path: str,
    new_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    stat: str = "median_s",
) -> CompareResult:
    """Diff two trajectory points (files or directories of files).

    A metric regresses when ``new > old * (1 + tol)`` with ``tol`` the
    per-metric tolerance recorded in the report (a module's
    ``BENCH_TOLERANCE``) or the given default.  Improvements beyond the
    same band are reported informationally; metrics present on only one
    side are noted, never failures (benches come and go).
    """
    if stat not in ("median_s", "min_s"):
        raise ValueError(f"stat must be median_s or min_s, got {stat!r}")
    old_reports = _collect_reports(old_path)
    new_reports = _collect_reports(new_path)
    deltas: List[MetricDelta] = []
    missing_old: List[str] = []
    missing_new: List[str] = []
    for bench, new_report in sorted(new_reports.items()):
        old_report = old_reports.get(bench)
        new_functions = dict(new_report.get("functions", {}))
        if old_report is None:
            missing_old.extend(f"{bench}::{name}" for name in sorted(new_functions))
            continue
        old_functions = dict(old_report.get("functions", {}))
        for name, new_record in sorted(new_functions.items()):
            metric = f"{bench}::{name}"
            old_record = old_functions.get(name)
            if old_record is None:
                missing_old.append(metric)
                continue
            if (new_record.get("status") != "ok"
                    or old_record.get("status") != "ok"):
                continue
            old_value = float(old_record.get(stat, 0.0))
            new_value = float(new_record.get(stat, 0.0))
            if old_value <= 0.0:
                continue
            allowed = new_record.get("tolerance")
            if allowed is None:
                allowed = old_record.get("tolerance")
            allowed = tolerance if allowed is None else float(allowed)
            ratio = new_value / old_value
            if ratio > 1.0 + allowed:
                verdict = "regression"
            elif ratio < 1.0 - allowed:
                verdict = "improvement"
            else:
                verdict = "ok"
            deltas.append(
                MetricDelta(metric, old_value, new_value, allowed, verdict)
            )
        for name in sorted(old_functions):
            if name not in new_functions:
                missing_new.append(f"{bench}::{name}")
    for bench, old_report in sorted(old_reports.items()):
        if bench not in new_reports:
            missing_new.extend(
                f"{bench}::{name}"
                for name in sorted(dict(old_report.get("functions", {})))
            )
    return CompareResult(deltas, missing_old, missing_new)


# ----------------------------------------------------------------------
# Selection helpers for the CLI
# ----------------------------------------------------------------------
def select_benches(
    bench_dir: str,
    quick: bool = False,
    only: Sequence[str] = (),
) -> List[str]:
    """Module names to run: all, the quick subset, or substring picks."""
    names = discover(bench_dir)
    if only:
        picked = [
            name for name in names
            if any(token in name for token in only)
        ]
        if not picked:
            raise ValueError(
                f"no benchmark matches {list(only)} in {bench_dir} "
                f"(available: {', '.join(names)})"
            )
        return picked
    if quick:
        return [name for name in names if name in QUICK_BENCHES]
    return names
