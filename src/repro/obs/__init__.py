"""Unified observability layer: tracing, metrics time series, profiling.

Three opt-in instruments over the simulation tiers, all null-by-default
so an uninstrumented run is bit-identical to the pre-observability
code:

* :class:`Tracer` / :data:`NULL_TRACER` — frame-lifecycle spans and
  instants, exported to Chrome trace-event / Perfetto JSON by
  :func:`write_chrome_trace`;
* :class:`MetricsSampler` — periodic :class:`~repro.sim.stats.StatRegistry`
  -style snapshots over simulated time, exported as JSON/CSV or the
  Prometheus text format (:func:`prometheus_text`);
* :class:`SimProfiler` — host wall-time attribution of the event
  kernel's callbacks (per-site, per-phase and per-module), for
  profiling the simulator itself;
* :class:`ProgressReporter` — host-side progress/ETA lines for the
  experiment engine's sweeps (:mod:`repro.exp`), counting cache hits
  separately from executed points;
* :class:`StreamingHistogram` (:mod:`repro.obs.hist`) — mergeable,
  bounded-memory quantile sketches with a documented relative-error
  bound, the default latency estimator of the fabric;
* :mod:`repro.obs.bench` — the benchmark observatory: discovers
  ``benchmarks/bench_*.py``, emits structured ``BENCH_<name>.json``
  trajectory points and compares two runs with noise-aware
  thresholds (``repro bench`` / ``repro bench --compare``).
"""

from repro.obs.hist import (
    StreamingHistogram,
    exact_percentile,
    merge_all,
    nearest_rank,
    rank_bucket,
)
from repro.obs.metrics import (
    MetricsSampler,
    prometheus_metric_name,
    prometheus_text,
)
from repro.obs.perfetto import chrome_trace_dict, write_chrome_trace
from repro.obs.profiler import SimProfiler, describe_callback, phase_of
from repro.obs.progress import ProgressReporter
from repro.obs.tracer import (
    NULL_TRACER,
    FrameStage,
    NullTracer,
    PrefixedTracer,
    RX_STAGE_ORDER,
    STAGE_ORDERS,
    TX_STAGE_ORDER,
    TraceEvent,
    Tracer,
)

__all__ = [
    "FrameStage",
    "MetricsSampler",
    "NULL_TRACER",
    "NullTracer",
    "PrefixedTracer",
    "ProgressReporter",
    "RX_STAGE_ORDER",
    "STAGE_ORDERS",
    "SimProfiler",
    "StreamingHistogram",
    "TX_STAGE_ORDER",
    "TraceEvent",
    "Tracer",
    "chrome_trace_dict",
    "describe_callback",
    "exact_percentile",
    "merge_all",
    "nearest_rank",
    "phase_of",
    "prometheus_metric_name",
    "prometheus_text",
    "rank_bucket",
    "write_chrome_trace",
]
