"""Trace-driven IPC limit analysis.

The scheduler walks the dynamic trace once in program order and assigns
each instruction an issue cycle subject to the selected constraints:

data dependences
    True (read-after-write) register dependences through a last-writer
    table, plus store→load ordering through the same memory word (the
    conservative memory dependence an idealized machine must respect).

pipeline model
    ``PERFECT`` — every producer's result is available the next cycle,
    no structural hazards.  ``STALLS`` — a five-stage pipeline with all
    forwarding paths: load results arrive one cycle later than ALU
    results (the classic load-use stall) and only one memory operation
    can issue per cycle.

branch model
    ``PBP`` — any number of branches issue per cycle, all perfectly
    predicted.  ``PBP1`` — at most one (perfectly predicted) branch per
    cycle.  ``NOBP`` — no prediction: a control instruction ends the
    issue cycle, so nothing younger issues in the same cycle.

issue order
    ``IN_ORDER`` — an instruction cannot issue before any older
    instruction.  ``OUT_OF_ORDER`` — only the constraints above apply;
    scheduling is greedy earliest-fit in program order, which is optimal
    for this resource model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.isa.trace import TraceEntry


class IssueOrder(enum.Enum):
    IN_ORDER = "in-order"
    OUT_OF_ORDER = "out-of-order"


class PipelineModel(enum.Enum):
    PERFECT = "perfect"
    STALLS = "stalls"


class BranchModel(enum.Enum):
    PBP = "pbp"      # perfect prediction, unlimited branches/cycle
    PBP1 = "pbp1"    # perfect prediction, one branch/cycle
    NOBP = "nobp"    # no prediction: branch ends the issue cycle


@dataclass(frozen=True)
class IlpConfig:
    """One processor configuration for the limit study."""

    issue_order: IssueOrder
    width: int
    pipeline: PipelineModel
    branch: BranchModel

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"issue width must be >= 1, got {self.width}")

    @property
    def label(self) -> str:
        order = "IO" if self.issue_order is IssueOrder.IN_ORDER else "OOO"
        return f"{order}-{self.width}/{self.pipeline.value}/{self.branch.value}"


# The paper's Table 2 sweeps in-order and out-of-order cores at widths
# 1, 2, and 4 under both pipelines and all three branch models.
TABLE2_WIDTHS = (1, 2, 4)
TABLE2_CONFIGS: List[IlpConfig] = [
    IlpConfig(order, width, pipeline, branch)
    for order in (IssueOrder.IN_ORDER, IssueOrder.OUT_OF_ORDER)
    for width in TABLE2_WIDTHS
    for pipeline in (PipelineModel.PERFECT, PipelineModel.STALLS)
    for branch in (BranchModel.PBP, BranchModel.PBP1, BranchModel.NOBP)
]


class _CycleResources:
    """Per-cycle issue-slot / memory-port / branch-slot bookkeeping."""

    def __init__(self, width: int, mem_ports: int, branch_slots: int) -> None:
        self.width = width
        self.mem_ports = mem_ports
        self.branch_slots = branch_slots
        self._slots: Dict[int, int] = {}
        self._mem: Dict[int, int] = {}
        self._branches: Dict[int, int] = {}
        self._closed_after: Dict[int, int] = {}  # NOBP: cycle -> slot index cap

    def fits(self, cycle: int, is_mem: bool, is_control: bool) -> bool:
        if self._slots.get(cycle, 0) >= self.width:
            return False
        if cycle in self._closed_after:
            return False  # a no-BP control op already ended this cycle
        if is_mem and self.mem_ports and self._mem.get(cycle, 0) >= self.mem_ports:
            return False
        if (
            is_control
            and self.branch_slots
            and self._branches.get(cycle, 0) >= self.branch_slots
        ):
            return False
        return True

    def take(self, cycle: int, is_mem: bool, is_control: bool, close: bool) -> None:
        self._slots[cycle] = self._slots.get(cycle, 0) + 1
        if is_mem:
            self._mem[cycle] = self._mem.get(cycle, 0) + 1
        if is_control:
            self._branches[cycle] = self._branches.get(cycle, 0) + 1
        if close:
            self._closed_after[cycle] = self._slots[cycle]


def analyze_trace(trace: Sequence[TraceEntry], config: IlpConfig) -> float:
    """Schedule ``trace`` under ``config`` and return its IPC."""
    if not trace:
        raise ValueError("cannot analyze an empty trace")

    load_latency = 2 if config.pipeline is PipelineModel.STALLS else 1
    mem_ports = 1 if config.pipeline is PipelineModel.STALLS else 0  # 0 = unlimited
    if config.branch is BranchModel.PBP1:
        branch_slots = 1
    else:
        branch_slots = 0  # unlimited; NOBP is handled via cycle closing
    nobp = config.branch is BranchModel.NOBP
    in_order = config.issue_order is IssueOrder.IN_ORDER

    resources = _CycleResources(config.width, mem_ports, branch_slots)
    ready_cycle: Dict[int, int] = {}         # register -> cycle its value is ready
    last_store_issue: Dict[int, int] = {}    # word address -> issue cycle
    last_issue_cycle = 0                     # youngest issued instruction's cycle
    control_barrier = 0                      # NOBP: first cycle fetch reopens
    max_cycle = 0

    for entry in trace:
        earliest = 0
        for reg in entry.sources:
            if reg:
                earliest = max(earliest, ready_cycle.get(reg, 0))
        if entry.is_load and entry.mem_address is not None:
            word = entry.mem_address & ~3
            if word in last_store_issue:
                earliest = max(earliest, last_store_issue[word] + 1)
        if nobp:
            earliest = max(earliest, control_barrier)
        if in_order:
            earliest = max(earliest, last_issue_cycle)

        is_mem = entry.is_memory
        is_control = entry.is_control
        cycle = earliest
        while not resources.fits(cycle, is_mem, is_control):
            cycle += 1
            if in_order:
                # Younger instructions may not bypass this one.
                pass
        resources.take(cycle, is_mem, is_control, close=nobp and is_control)

        if entry.destination is not None and entry.destination != 0:
            latency = load_latency if entry.is_load else 1
            ready_cycle[entry.destination] = cycle + latency
        if entry.is_store and entry.mem_address is not None:
            last_store_issue[entry.mem_address & ~3] = cycle
        if nobp and is_control:
            # Without prediction a control op ends the issue cycle; in the
            # realistic pipeline a *taken* one also kills the fetch slot
            # past the delay slot (static not-taken fetch redirect).
            penalty = 2 if (entry.taken and config.pipeline is PipelineModel.STALLS) else 1
            control_barrier = max(control_barrier, cycle + penalty)
        if in_order:
            last_issue_cycle = max(last_issue_cycle, cycle)
        max_cycle = max(max_cycle, cycle)

    total_cycles = max_cycle + 1
    return len(trace) / total_cycles


def ipc_table(
    trace: Sequence[TraceEntry],
    configs: Iterable[IlpConfig] = TABLE2_CONFIGS,
) -> Dict[IlpConfig, float]:
    """IPC for every configuration (the body of Table 2)."""
    return {config: analyze_trace(trace, config) for config in configs}
