"""Offline instruction-level-parallelism limit study (paper Table 2).

Given a dynamic instruction trace of idealized NIC firmware, compute the
theoretical peak IPC for combinations of:

* issue order — in-order vs out-of-order;
* issue width — 1, 2, 4;
* pipeline — perfect (unit latency, no structural hazards) vs a
  realistic 5-stage pipeline with full forwarding (load-use latency of
  2 cycles, one memory operation per cycle);
* branch handling — perfect prediction of any number of branches per
  cycle (PBP), perfect prediction of at most one branch per cycle
  (PBP1), or no prediction (a branch stops issue for the cycle).
"""

from repro.ilp.analyzer import (
    BranchModel,
    IlpConfig,
    IssueOrder,
    PipelineModel,
    TABLE2_CONFIGS,
    analyze_trace,
    ipc_table,
)

__all__ = [
    "BranchModel",
    "IlpConfig",
    "IssueOrder",
    "PipelineModel",
    "TABLE2_CONFIGS",
    "analyze_trace",
    "ipc_table",
]
