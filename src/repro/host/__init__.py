"""Host-system model: device driver, buffer descriptors, main memory.

The paper models the host abstractly (Section 5: "The host model
emulates the real device driver"), and deliberately does not model the
I/O interconnect's bandwidth, only the latency NIC-initiated DMAs
experience.  This package follows the same contract.
"""

from repro.host.descriptors import BufferDescriptor, DescriptorRing
from repro.host.driver import DriverModel, DriverStats
from repro.host.memory import HostMemoryLayout
from repro.host.rss import (
    HostQueueModel,
    HostRing,
    RssSpec,
    ToeplitzHash,
    flow_key_bytes,
    toeplitz_key,
)

__all__ = [
    "BufferDescriptor",
    "DescriptorRing",
    "DriverModel",
    "DriverStats",
    "HostMemoryLayout",
    "HostQueueModel",
    "HostRing",
    "RssSpec",
    "ToeplitzHash",
    "flow_key_bytes",
    "toeplitz_key",
]
