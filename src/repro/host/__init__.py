"""Host-system model: device driver, buffer descriptors, main memory.

The paper models the host abstractly (Section 5: "The host model
emulates the real device driver"), and deliberately does not model the
I/O interconnect's bandwidth, only the latency NIC-initiated DMAs
experience.  This package follows the same contract.
"""

from repro.host.descriptors import BufferDescriptor, DescriptorRing
from repro.host.driver import DriverModel, DriverStats
from repro.host.memory import HostMemoryLayout

__all__ = [
    "BufferDescriptor",
    "DescriptorRing",
    "DriverModel",
    "DriverStats",
    "HostMemoryLayout",
]
