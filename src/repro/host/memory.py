"""Host main-memory layout for frame buffers.

The macro-tier simulator does not move real bytes through host memory
(the paper's host model doesn't either); what matters for the NIC is
*where* buffers start, because transfer alignment determines the SDRAM
padding overhead measured in Table 4: "Frames frequently are not stored
in the transmit and receive buffers such that they start and/or end on
even 8-byte boundaries."

This layout hands out deterministic, realistically misaligned buffer
addresses: protocol headers start at the alignments a real stack
produces (IP headers are 2-byte aligned within an mbuf/skb), payload
pages are better aligned but offset by the driver's headroom.
"""

from __future__ import annotations

from dataclasses import dataclass

# A real driver's sk_buff headroom staggers frame starts; cycling
# through these offsets reproduces the "frequently misaligned" mix.
_HEADER_OFFSETS = (2, 10, 2, 6, 2, 14, 2, 10)
_PAYLOAD_OFFSETS = (0, 2, 4, 6, 0, 2, 4, 6)
_RECV_OFFSETS = (2, 2, 2, 2, 10, 2, 2, 6)


@dataclass
class HostMemoryLayout:
    """Deterministic allocator of host buffer addresses."""

    tx_region_base: int = 0x1000_0000
    rx_region_base: int = 0x3000_0000
    slot_bytes: int = 2048  # one max frame + headroom per slot

    def tx_header_address(self, seq: int) -> int:
        slot = self.tx_region_base + (seq % 65536) * self.slot_bytes
        return slot + _HEADER_OFFSETS[seq % len(_HEADER_OFFSETS)]

    def tx_payload_address(self, seq: int) -> int:
        slot = self.tx_region_base + (seq % 65536) * self.slot_bytes
        # Payload follows the 42 B header region within the slot.
        return slot + 64 + _PAYLOAD_OFFSETS[seq % len(_PAYLOAD_OFFSETS)]

    def rx_buffer_address(self, buffer_index: int) -> int:
        slot = self.rx_region_base + (buffer_index % 65536) * self.slot_bytes
        return slot + _RECV_OFFSETS[buffer_index % len(_RECV_OFFSETS)]
