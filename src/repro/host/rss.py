"""Receive-side scaling: a multi-queue host interface for the NIC model.

The paper's firmware parallelizes frame processing *inside* the NIC but
funnels all host interaction through one descriptor-ring pair — "A
Transport-Friendly NIC for Multicore/Multiprocessor Systems" (see
PAPERS.md) shows that single ring becoming the bottleneck on multicore
hosts.  This module models the modern alternative the comparison needs:

* :class:`RssSpec` — a frozen, serializable description of the
  multi-queue configuration.  It rides :class:`~repro.exp.spec.RunSpec`
  as an *optional* field, so legacy single-ring cache keys stay
  byte-identical when it is absent (the fault-plan/fabric-spec
  precedent).
* :class:`ToeplitzHash` — the standard RSS flow hash (verified against
  the published Microsoft verification-suite vectors in
  ``tests/test_rss.py``), steering each flow through an indirection
  table to one of N rings.
* :class:`HostQueueModel` — N independent RX/TX
  :class:`~repro.host.descriptors.DescriptorRing` pairs, each with its
  own :class:`~repro.host.driver.DriverStats` and per-ring interrupt
  moderation, plus a host-core contention model: every completion batch
  charges per-completion and per-interrupt costs to the ring's host
  core, and receive buffers are only recycled to the NIC once the
  owning core has processed the batch.  A single-ring configuration
  therefore serializes all completion work on one core — and its
  recycle rate, not the wire, becomes the throughput ceiling — while N
  rings spread the same work over N cores.

Determinism: the hash key is derived from ``hash_seed`` by a pure
splitmix64 expansion, steering is memoized per flow tuple, and the
host-core pump arms either a heap ``schedule_at`` (reference mode) or a
:class:`~repro.sim.batch.ChainedTimer` (``--fast``) at the *same
program points*, so fast/reference runs stay byte-identical (the same
contract the MAC rx pump keeps, see ``docs/observability.md``).
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.check.monitor import NULL_MONITOR
from repro.host.descriptors import (
    BufferDescriptor,
    DescriptorRing,
    FLAG_END_OF_FRAME,
    FLAG_HEADER_REGION,
    FLAG_RECV_BUFFER,
)
from repro.host.driver import DriverModel, DriverStats

#: The 40-byte key from the Microsoft RSS verification suite; used for
#: ``hash_seed == 0`` so the implementation can be checked against the
#: published test vectors.
RSS_DEFAULT_KEY = bytes(
    (
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    )
)

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def toeplitz_key(seed: int, length: int = 40) -> bytes:
    """Deterministic hash key: the published key for seed 0, otherwise a
    splitmix64 expansion of the seed (no global RNG state involved)."""
    if length < 5:
        raise ValueError("Toeplitz keys need at least 32 + 8 bits")
    if seed == 0 and length == len(RSS_DEFAULT_KEY):
        return RSS_DEFAULT_KEY
    out = bytearray()
    state = (seed ^ _SPLITMIX_GAMMA) & _MASK64
    while len(out) < length:
        state = (state + _SPLITMIX_GAMMA) & _MASK64
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 31
        out.extend(z.to_bytes(8, "big"))
    return bytes(out[:length])


class ToeplitzHash:
    """The RSS Toeplitz hash over up to ``max_input_bytes`` of input.

    The classic definition slides a 32-bit window of the key one bit per
    input bit, XOR-accumulating the window wherever the input bit is
    set.  Precomputing a 256-entry table per input byte position turns
    that into one XOR per byte with identical results.
    """

    def __init__(self, key: bytes, max_input_bytes: int = 12) -> None:
        if len(key) * 8 < 32 + max_input_bytes * 8:
            raise ValueError(
                f"key too short: {len(key)} bytes for "
                f"{max_input_bytes}-byte inputs"
            )
        self.key = bytes(key)
        key_int = int.from_bytes(self.key, "big")
        key_bits = len(self.key) * 8
        tables: List[List[int]] = []
        for i in range(max_input_bytes):
            windows = [
                (key_int >> (key_bits - 32 - (8 * i + j))) & 0xFFFFFFFF
                for j in range(8)
            ]
            table = [0] * 256
            for value in range(256):
                acc = 0
                for j in range(8):
                    if value & (0x80 >> j):
                        acc ^= windows[j]
                table[value] = acc
            tables.append(table)
        self._tables = tables

    def hash(self, data: bytes) -> int:
        if len(data) > len(self._tables):
            raise ValueError(
                f"input of {len(data)} bytes exceeds the "
                f"{len(self._tables)}-byte window"
            )
        result = 0
        tables = self._tables
        for i, byte in enumerate(data):
            result ^= tables[i][byte]
        return result


def flow_key_bytes(src_ip: int, dst_ip: int, src_port: int,
                   dst_port: int) -> bytes:
    """The 12-byte IPv4+ports RSS input, network byte order."""
    return struct.pack(
        ">IIHH",
        src_ip & 0xFFFFFFFF,
        dst_ip & 0xFFFFFFFF,
        src_port & 0xFFFF,
        dst_port & 0xFFFF,
    )


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RssSpec:
    """Multi-queue host-interface configuration.

    Deliberately *not* a :class:`~repro.nic.config.NicConfig` field:
    ``describe()`` walks every config field, so adding one there would
    invalidate every legacy cache key.  Instead this rides
    :class:`~repro.exp.spec.RunSpec` as an optional field included in
    the content hash only when set.
    """

    #: Independent RX/TX descriptor-ring pairs.
    rings: int = 4
    #: RSS indirection table entries (hash -> table -> ring).
    indirection_entries: int = 64
    #: Seeds :func:`toeplitz_key`; 0 selects the published key.
    hash_seed: int = 0
    #: Per-ring interrupt moderation window (completions per interrupt).
    interrupt_coalesce_frames: int = 8
    #: Flow population synthesized for analytic (non-fabric) traffic:
    #: frame ``seq % synthetic_flows`` selects the flow tuple.
    synthetic_flows: int = 64
    #: Host cores servicing the rings (ring ``i`` -> core ``i % cores``);
    #: 0 means one core per ring.
    host_cores: int = 0
    #: Host-core cost per completion processed (descriptor recycle +
    #: protocol bookkeeping), picoseconds.
    completion_ps: int = 800_000
    #: Host-core cost per interrupt taken (context switch + handler),
    #: picoseconds.
    interrupt_ps: int = 2_500_000

    def __post_init__(self) -> None:
        if self.rings < 1:
            raise ValueError(f"need at least one ring, got {self.rings}")
        if self.indirection_entries < 1:
            raise ValueError("indirection table cannot be empty")
        if self.interrupt_coalesce_frames < 1:
            raise ValueError("interrupt_coalesce_frames must be >= 1")
        if self.synthetic_flows < 1:
            raise ValueError("synthetic_flows must be >= 1")
        if self.host_cores < 0:
            raise ValueError("host_cores must be >= 0")
        if self.completion_ps < 0 or self.interrupt_ps < 0:
            raise ValueError("host-core costs must be non-negative")

    @property
    def core_count(self) -> int:
        return self.host_cores if self.host_cores else self.rings


# ----------------------------------------------------------------------
# Per-ring and per-core state
# ----------------------------------------------------------------------
@dataclass
class HostCore:
    """One host CPU servicing completion batches."""

    index: int
    free_at_ps: int = 0
    busy_ps: int = 0
    processed: int = 0


class HostRing:
    """One RX/TX descriptor-ring pair with its own driver statistics."""

    def __init__(self, index: int, core_index: int, send_capacity: int,
                 recv_capacity: int, frame_bytes: int) -> None:
        self.index = index
        self.core_index = core_index
        self.frame_bytes = frame_bytes
        self.send_ring = DescriptorRing(send_capacity, f"rss{index}-send")
        self.recv_ring = DescriptorRing(recv_capacity, f"rss{index}-recv")
        self.stats = DriverStats()
        # Descriptor conservation counters (posted == completed +
        # in-flight); the invariant monitor shadows these.
        self.tx_posted = 0
        self.tx_completed = 0
        self.rx_posted = 0
        self.rx_completed = 0
        #: Frames steered here whose buffers are all NIC-held pending
        #: host recycle; delivered as the core frees buffers.
        self.rx_backlog = 0
        self.rx_backlog_peak = 0
        self._next_rx_cookie = 0
        #: FIFO of unprocessed completion batches:
        #: ``(direction, count, cost_ps)``.
        self.pending: Deque[Tuple[str, int, int]] = deque()
        self.pump_busy = False
        self.timer = None  # ChainedTimer in --fast mode

    @property
    def rx_in_flight(self) -> int:
        return self.rx_posted - self.rx_completed

    @property
    def tx_in_flight(self) -> int:
        return self.tx_posted - self.tx_completed

    def post_recv_buffers(self, count: int) -> None:
        for _ in range(count):
            cookie = self._next_rx_cookie
            self._next_rx_cookie += 1
            self.recv_ring.push(
                BufferDescriptor(
                    address=(self.index + 1) * 0x1000_0000
                    + (cookie % self.recv_ring.capacity) * self.frame_bytes,
                    length=self.frame_bytes,
                    flags=FLAG_RECV_BUFFER,
                    cookie=cookie,
                )
            )
        self.rx_posted += count


# ----------------------------------------------------------------------
# The multi-queue host model
# ----------------------------------------------------------------------
class HostQueueModel:
    """N host rings + Toeplitz steering + host-core contention.

    Sits beside the NIC-facing aggregate :class:`DriverModel` (whose
    descriptor-DMA timing the firmware pipeline already models) and owns
    the *host* side: which ring each flow lands on, per-ring interrupt
    moderation and statistics, and when descriptors recycle back to the
    NIC.  Two credit pools couple the sides:

    * receive — the NIC may only be handed as many buffer descriptors
      as the rings have posted; a completion batch returns its buffers
      only after the owning host core processed it, so a lagging core
      starves the NIC's receive-BD ring (the multicore bottleneck the
      RSS ablation measures);
    * transmit — frames post against ring capacity and recycle on
      processed send completions, bounding outstanding sends the same
      way.
    """

    def __init__(
        self,
        spec: RssSpec,
        sim,
        frame_bytes: int,
        send_ring_capacity: int = 512,
        recv_ring_capacity: int = 256,
        fast: bool = False,
        name: str = "rss",
    ) -> None:
        self.spec = spec
        self.sim = sim
        self.fast = bool(fast)
        self.name = name
        self.monitor = NULL_MONITOR
        self.frame_bytes = frame_bytes
        self._hash = ToeplitzHash(toeplitz_key(spec.hash_seed))
        self._indirection = [
            i % spec.rings for i in range(spec.indirection_entries)
        ]
        self._steer_cache: Dict[Tuple[int, int, int, int], int] = {}
        self.cores = [HostCore(i) for i in range(spec.core_count)]
        self.rings = [
            HostRing(
                i,
                core_index=i % len(self.cores),
                send_capacity=send_ring_capacity,
                recv_capacity=recv_ring_capacity,
                frame_bytes=frame_bytes,
            )
            for i in range(spec.rings)
        ]
        if self.fast:
            for ring in self.rings:
                ring.timer = sim.batch.timer(
                    self._make_drain(ring), label=f"{name}-ring{ring.index}"
                )
        # Initial fill: every ring advertises a full complement of
        # receive buffers; the NIC-facing replenish draws on this pool.
        for ring in self.rings:
            ring.post_recv_buffers(ring.recv_ring.capacity)
        self.rx_credit = sum(r.recv_ring.capacity for r in self.rings)
        self.tx_credit = sum(r.send_ring.capacity // 2 for r in self.rings)
        #: Simulator callbacks fired after a core finishes a batch (the
        #: recycled credits are already accounted when these run).
        self.on_rx_processed: Optional[Callable[[int], None]] = None
        self.on_tx_processed: Optional[Callable[[int], None]] = None

    def _make_drain(self, ring: HostRing) -> Callable[[], None]:
        def drain() -> None:
            self._ring_done(ring)
        return drain

    # -- steering -------------------------------------------------------
    def ring_index(self, key: bytes) -> int:
        return self._indirection[self._hash.hash(key) % len(self._indirection)]

    def ring_for(self, src_ip: int, dst_ip: int, src_port: int,
                 dst_port: int) -> int:
        flow = (src_ip, dst_ip, src_port, dst_port)
        ring = self._steer_cache.get(flow)
        if ring is None:
            ring = self.ring_index(flow_key_bytes(*flow))
            self._steer_cache[flow] = ring
        return ring

    # -- transmit side --------------------------------------------------
    def refill_send(self, driver: DriverModel,
                    steer_fn: Callable[[int], int]) -> int:
        """Credit-gated replacement for ``driver.refill_send_ring()``.

        Posts frame by frame so each post lands in its steered ring's
        send ring too; stops at the first ring without two free BD
        slots (head-of-line, in frame order) or when transmit credit
        runs out.
        """
        posted = 0
        while self.tx_credit > 0:
            seq = driver._next_send_seq
            # Budget/space checks before steering: flow-driven drivers
            # (max_frames) may have nothing to post, and steering an
            # unposted sequence would read a frame that does not exist.
            if driver.max_frames is not None and seq >= driver.max_frames:
                break
            if driver.send_ring.free_slots < 2:
                break
            ring = self.rings[steer_fn(seq)]
            if ring.send_ring.free_slots < 2:
                break
            if driver.refill_send_ring(limit=1) == 0:
                break
            ring.send_ring.push_many(
                [
                    BufferDescriptor(
                        address=(ring.index + 1) * 0x2000_0000 + seq * 2,
                        length=1,
                        flags=FLAG_HEADER_REGION,
                        cookie=seq,
                    ),
                    BufferDescriptor(
                        address=(ring.index + 1) * 0x2000_0000 + seq * 2 + 1,
                        length=max(1, self.frame_bytes - 1),
                        flags=FLAG_END_OF_FRAME,
                        cookie=seq,
                    ),
                ]
            )
            ring.tx_posted += 1
            ring.stats.frames_posted += 1
            self.tx_credit -= 1
            posted += 1
            if self.monitor.enabled:
                self.monitor.ring_posted(self, ring.index, "tx", 1)
        return posted

    def complete_tx(self, first_seq: int, count: int,
                    steer_fn: Callable[[int], int], now_ps: int) -> None:
        """Route a contiguous batch of send completions to their rings."""
        run_ring = -1
        run_count = 0
        for seq in range(first_seq, first_seq + count):
            ring = steer_fn(seq)
            if ring == run_ring:
                run_count += 1
                continue
            if run_count:
                self._deliver_tx(self.rings[run_ring], run_count, now_ps)
            run_ring = ring
            run_count = 1
        if run_count:
            self._deliver_tx(self.rings[run_ring], run_count, now_ps)

    def _deliver_tx(self, ring: HostRing, count: int, now_ps: int) -> None:
        ring.tx_completed += count
        ring.send_ring.pop_many(2 * count)
        ring.stats.record_sends(count)
        # Per-ring interrupt moderation, same modulo form as the legacy
        # single-ring decision in ``_commit_tx``.
        interrupt = (
            ring.tx_completed % self.spec.interrupt_coalesce_frames
        ) < count
        if interrupt:
            ring.stats.note_interrupt()
        if self.monitor.enabled:
            self.monitor.ring_completed(self, ring.index, "tx", count)
        self._enqueue(ring, "tx", count, interrupt, now_ps)

    # -- receive side ---------------------------------------------------
    def replenish_recv(self, driver: DriverModel) -> int:
        """Credit-gated replacement for ``driver.replenish_recv_ring()``:
        the NIC only sees buffers the rings actually hold."""
        if self.rx_credit <= 0:
            return 0
        posted = driver.replenish_recv_ring(limit=self.rx_credit)
        self.rx_credit -= posted
        return posted

    def complete_rx(self, ring_index: int, count: int, now_ps: int) -> None:
        """``count`` received frames steered to ``ring_index`` finished
        NIC-side commit; deliver as many as the ring has buffers for and
        backlog the rest until the host core recycles some."""
        ring = self.rings[ring_index]
        ring.rx_backlog += count
        if ring.rx_backlog > ring.rx_backlog_peak:
            ring.rx_backlog_peak = ring.rx_backlog
        self._drain_rx_backlog(ring, now_ps)

    def _drain_rx_backlog(self, ring: HostRing, now_ps: int) -> None:
        deliver = min(ring.rx_backlog, len(ring.recv_ring))
        if deliver <= 0:
            return
        ring.rx_backlog -= deliver
        ring.recv_ring.pop_many(deliver)
        ring.rx_completed += deliver
        ring.stats.record_receives(deliver)
        interrupt = (
            ring.rx_completed % self.spec.interrupt_coalesce_frames
        ) < deliver
        if interrupt:
            ring.stats.note_interrupt()
        if self.monitor.enabled:
            self.monitor.ring_completed(self, ring.index, "rx", deliver)
        self._enqueue(ring, "rx", deliver, interrupt, now_ps)

    # -- host-core contention model ------------------------------------
    def _enqueue(self, ring: HostRing, direction: str, count: int,
                 interrupt: bool, now_ps: int) -> None:
        cost = count * self.spec.completion_ps
        if interrupt:
            cost += self.spec.interrupt_ps
        ring.pending.append((direction, count, cost))
        if not ring.pump_busy:
            self._arm(ring, now_ps)

    def _arm(self, ring: HostRing, now_ps: int) -> None:
        _direction, _count, cost = ring.pending[0]
        core = self.cores[ring.core_index]
        start = max(now_ps, core.free_at_ps)
        done = start + cost
        core.free_at_ps = done
        core.busy_ps += cost
        ring.pump_busy = True
        # Same program point in both modes, so fast/reference event
        # (time, priority, ticket) orders are identical — the contract
        # the MAC rx pump established.
        if ring.timer is not None:
            ring.timer.arm(done)
        else:
            self.sim.schedule_at(done, self._make_drain(ring))

    def _ring_done(self, ring: HostRing) -> None:
        now = self.sim.now_ps
        direction, count, _cost = ring.pending.popleft()
        core = self.cores[ring.core_index]
        core.processed += count
        if direction == "rx":
            # Refill-on-poll: the processed buffers go straight back to
            # the ring, then to the NIC-facing credit pool.
            ring.post_recv_buffers(count)
            self.rx_credit += count
            if self.monitor.enabled:
                self.monitor.ring_posted(self, ring.index, "rx", count)
            if ring.rx_backlog:
                self._drain_rx_backlog(ring, now)
            callback = self.on_rx_processed
        else:
            self.tx_credit += count
            callback = self.on_tx_processed
        if ring.pending:
            self._arm(ring, now)
        else:
            ring.pump_busy = False
        if callback is not None:
            callback(count)

    # -- measurement window --------------------------------------------
    def window_reset(self) -> Dict[str, List[int]]:
        """Start the measured window: reset per-ring stat windows and
        return the core/ring baselines the report subtracts."""
        for ring in self.rings:
            ring.stats.reset_window()
            ring.rx_backlog_peak = ring.rx_backlog
        return {
            "core_busy_ps": [core.busy_ps for core in self.cores],
            "core_processed": [core.processed for core in self.cores],
        }

    def report(self, baselines: Optional[Dict[str, List[int]]],
               measure_ps: int) -> Dict[str, object]:
        if baselines is None:
            baselines = {
                "core_busy_ps": [0] * len(self.cores),
                "core_processed": [0] * len(self.cores),
            }
        measure_s = measure_ps / 1e12
        per_ring = []
        for ring in self.rings:
            stats = ring.stats
            per_ring.append(
                {
                    "ring": ring.index,
                    "core": ring.core_index,
                    "send_completions": stats.window_send_completions,
                    "recv_completions": stats.window_recv_completions,
                    "interrupts": stats.window_interrupts,
                    "completions_per_interrupt": (
                        stats.window_completions_per_interrupt
                    ),
                    "rx_backlog_peak": ring.rx_backlog_peak,
                    "rx_in_flight": ring.rx_in_flight,
                    "tx_in_flight": ring.tx_in_flight,
                }
            )
        per_core = []
        for core in self.cores:
            busy = core.busy_ps - baselines["core_busy_ps"][core.index]
            processed = (
                core.processed - baselines["core_processed"][core.index]
            )
            per_core.append(
                {
                    "core": core.index,
                    "busy_fraction": busy / measure_ps if measure_ps else 0.0,
                    "completions_per_s": (
                        processed / measure_s if measure_s else 0.0
                    ),
                }
            )
        return {
            "rings": self.spec.rings,
            "host_cores": len(self.cores),
            "hash_seed": self.spec.hash_seed,
            "per_ring": per_ring,
            "per_core": per_core,
        }


__all__ = [
    "HostCore",
    "HostQueueModel",
    "HostRing",
    "RSS_DEFAULT_KEY",
    "RssSpec",
    "ToeplitzHash",
    "flow_key_bytes",
    "toeplitz_key",
]
