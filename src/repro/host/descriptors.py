"""Buffer descriptors and descriptor rings.

Section 2: "the device driver first creates a buffer descriptor, which
contains the starting memory address and length of the packet that is
to be sent, along with additional flags ...  If a packet consists of
multiple non-contiguous regions of memory, the device driver creates
multiple buffer descriptors."  Sent frames use two descriptors (header
region + payload region); receive buffers use one descriptor each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

# Flag bits (Tigon-style).
FLAG_END_OF_FRAME = 0x1
FLAG_HEADER_REGION = 0x2
FLAG_RECV_BUFFER = 0x4

DESCRIPTOR_BYTES = 16  # address, length, flags, cookie — 4 words


@dataclass(frozen=True)
class BufferDescriptor:
    """One host-memory region, as the driver describes it to the NIC."""

    address: int
    length: int
    flags: int = 0
    cookie: int = 0  # driver-private tag (frame sequence number here)

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"descriptor address must be non-negative")
        if self.length <= 0:
            raise ValueError(f"descriptor length must be positive, got {self.length}")

    @property
    def is_end_of_frame(self) -> bool:
        return bool(self.flags & FLAG_END_OF_FRAME)

    @property
    def is_header(self) -> bool:
        return bool(self.flags & FLAG_HEADER_REGION)


class DescriptorRing:
    """A producer/consumer ring of buffer descriptors.

    The driver produces; the NIC consumes (send ring) or vice versa for
    completion rings.  Indices grow without bound and wrap modulo
    capacity, the standard lock-free ring idiom, so fullness is
    ``produced - consumed == capacity``.
    """

    def __init__(self, capacity: int, name: str = "ring") -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._slots: List[Optional[BufferDescriptor]] = [None] * capacity
        self.produced = 0
        self.consumed = 0

    def __len__(self) -> int:
        return self.produced - self.consumed

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self)

    @property
    def is_full(self) -> bool:
        return len(self) == self.capacity

    @property
    def is_empty(self) -> bool:
        return self.produced == self.consumed

    def push(self, descriptor: BufferDescriptor) -> None:
        if self.is_full:
            raise OverflowError(f"{self.name}: ring full at {self.capacity}")
        self._slots[self.produced % self.capacity] = descriptor
        self.produced += 1

    def push_many(self, descriptors: List[BufferDescriptor]) -> None:
        if len(descriptors) > self.free_slots:
            raise OverflowError(
                f"{self.name}: cannot push {len(descriptors)}; "
                f"only {self.free_slots} free"
            )
        for descriptor in descriptors:
            self.push(descriptor)

    def pop(self) -> BufferDescriptor:
        if self.is_empty:
            raise IndexError(f"{self.name}: pop from empty ring")
        descriptor = self._slots[self.consumed % self.capacity]
        assert descriptor is not None
        self._slots[self.consumed % self.capacity] = None
        self.consumed += 1
        return descriptor

    def pop_many(self, count: int) -> List[BufferDescriptor]:
        if count > len(self):
            raise IndexError(f"{self.name}: cannot pop {count}; only {len(self)} held")
        return [self.pop() for _ in range(count)]

    def peek_count(self) -> int:
        """Descriptors available to consume (what the NIC polls)."""
        return len(self)
