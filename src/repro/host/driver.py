"""Device-driver model.

Emulates the driver half of the cooperative send/receive protocol of
Section 2.1:

* **send** — creates two buffer descriptors per frame (42 B header
  region + payload region), pushes them on the send ring, and rings the
  NIC's mailbox register.  In saturation mode it always has another
  frame ready, so the ring refills as soon as completions arrive.
* **receive** — preallocates a pool of main-memory buffers and
  "continually allocates free buffers and notifies the NIC of buffer
  availability using buffer descriptors"; the model replenishes the
  receive-BD ring whenever the NIC has drained below a threshold.
* **completions** — consumes send/receive completion notifications,
  with interrupt coalescing statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.host.descriptors import (
    BufferDescriptor,
    DescriptorRing,
    FLAG_END_OF_FRAME,
    FLAG_HEADER_REGION,
    FLAG_RECV_BUFFER,
)
from repro.host.memory import HostMemoryLayout
from repro.net.ethernet import TX_HEADER_REGION_BYTES


@dataclass
class DriverStats:
    frames_posted: int = 0
    recv_buffers_posted: int = 0
    send_completions: int = 0
    recv_completions: int = 0
    interrupts: int = 0
    #: Measurement-window baselines (see :meth:`reset_window`).
    window_send_base: int = 0
    window_recv_base: int = 0
    window_interrupt_base: int = 0
    #: Completions recorded since the last interrupt — the coalescing
    #: window still open.  ``reset_window`` must leave these in the new
    #: window (their interrupt has not fired yet); snapshotting raw
    #: totals instead would credit the interrupt to one window and its
    #: completions to the previous one, skewing the per-window
    #: ``completions_per_interrupt`` ratio low.
    pending_send: int = 0
    pending_recv: int = 0

    # -- recording ------------------------------------------------------
    def record_sends(self, count: int) -> None:
        self.send_completions += count
        self.pending_send += count

    def record_receives(self, count: int) -> None:
        self.recv_completions += count
        self.pending_recv += count

    def note_interrupt(self) -> None:
        self.interrupts += 1
        self.pending_send = 0
        self.pending_recv = 0

    # -- measurement windows --------------------------------------------
    def reset_window(self) -> None:
        """Start a new measurement window.

        Completions whose coalesced interrupt is still pending are
        attributed to the *new* window (where their interrupt will
        land), keeping the windowed ratio exact even when the reset
        falls between a completion batch and its interrupt — the
        regression in ``tests/test_driver_rings.py`` pins this.
        """
        self.window_send_base = self.send_completions - self.pending_send
        self.window_recv_base = self.recv_completions - self.pending_recv
        self.window_interrupt_base = self.interrupts

    @property
    def window_send_completions(self) -> int:
        return self.send_completions - self.window_send_base

    @property
    def window_recv_completions(self) -> int:
        return self.recv_completions - self.window_recv_base

    @property
    def window_interrupts(self) -> int:
        return self.interrupts - self.window_interrupt_base

    @property
    def window_completions_per_interrupt(self) -> float:
        total = self.window_send_completions + self.window_recv_completions
        interrupts = self.window_interrupts
        return total / interrupts if interrupts else 0.0

    @property
    def completions_per_interrupt(self) -> float:
        """Mean completions coalesced per interrupt.

        Guarded against zero-interrupt windows: a measurement window
        short enough (or a flow-driven fabric endpoint idle enough)
        never to raise an interrupt reports 0.0 rather than dividing by
        zero.  Fabric endpoints with an empty RPC window hit this for
        real — see ``tests/test_driver_rings.py``.
        """
        total = self.send_completions + self.recv_completions
        return total / self.interrupts if self.interrupts else 0.0


class DriverModel:
    """The OS half of the NIC protocol."""

    def __init__(
        self,
        udp_payload_bytes: int,
        frame_bytes: int,
        send_ring_capacity: int = 512,
        recv_ring_capacity: int = 256,
        layout: Optional[HostMemoryLayout] = None,
        max_frames: Optional[int] = None,
    ) -> None:
        self.udp_payload_bytes = udp_payload_bytes
        self.frame_bytes = frame_bytes
        self.send_ring = DescriptorRing(send_ring_capacity, "send-bd")
        self.recv_ring = DescriptorRing(recv_ring_capacity, "recv-bd")
        self.layout = layout if layout is not None else HostMemoryLayout()
        self.max_frames = max_frames  # None = saturation (endless traffic)
        self.stats = DriverStats()
        self._next_send_seq = 0
        self._next_recv_buffer = 0
        self._payload_bytes = max(1, frame_bytes - TX_HEADER_REGION_BYTES - 4)

    # -- send side -------------------------------------------------------
    def refill_send_ring(self, limit: Optional[int] = None) -> int:
        """Post descriptors for as many new frames as fit; returns frames.

        ``limit`` caps the frames posted (the multi-queue host model
        posts against per-ring credit); ``None`` keeps the legacy
        fill-to-capacity behaviour exactly.
        """
        posted = 0
        while self.send_ring.free_slots >= 2:
            if limit is not None and posted >= limit:
                break
            if (
                self.max_frames is not None
                and self._next_send_seq >= self.max_frames
            ):
                break
            seq = self._next_send_seq
            header = BufferDescriptor(
                address=self.layout.tx_header_address(seq),
                length=TX_HEADER_REGION_BYTES,
                flags=FLAG_HEADER_REGION,
                cookie=seq,
            )
            payload = BufferDescriptor(
                address=self.layout.tx_payload_address(seq),
                length=self._payload_bytes,
                flags=FLAG_END_OF_FRAME,
                cookie=seq,
            )
            self.send_ring.push_many([header, payload])
            self._next_send_seq += 1
            posted += 1
        self.stats.frames_posted += posted
        return posted

    def send_bds_available(self) -> int:
        return self.send_ring.peek_count()

    def consume_send_bds(self, count: int) -> List[BufferDescriptor]:
        """The NIC's descriptor DMA pulls ``count`` BDs off the ring."""
        return self.send_ring.pop_many(count)

    # -- receive side ------------------------------------------------------
    def replenish_recv_ring(self, limit: Optional[int] = None) -> int:
        """Allocate free buffers up to ring capacity; returns buffers.

        ``limit`` caps the buffers posted (multi-queue receive credit);
        ``None`` keeps the legacy fill-to-capacity behaviour exactly.
        """
        posted = 0
        while not self.recv_ring.is_full:
            if limit is not None and posted >= limit:
                break
            index = self._next_recv_buffer
            descriptor = BufferDescriptor(
                address=self.layout.rx_buffer_address(index),
                length=self.frame_bytes,
                flags=FLAG_RECV_BUFFER,
                cookie=index,
            )
            self.recv_ring.push(descriptor)
            self._next_recv_buffer += 1
            posted += 1
        self.stats.recv_buffers_posted += posted
        return posted

    def recv_bds_available(self) -> int:
        return self.recv_ring.peek_count()

    def consume_recv_bds(self, count: int) -> List[BufferDescriptor]:
        return self.recv_ring.pop_many(count)

    # -- completions -------------------------------------------------------
    def complete_sends(self, count: int, interrupt: bool) -> None:
        self.stats.record_sends(count)
        if interrupt:
            self.stats.note_interrupt()

    def complete_receives(self, count: int, interrupt: bool) -> None:
        self.stats.record_receives(count)
        if interrupt:
            self.stats.note_interrupt()
