"""Device-driver model.

Emulates the driver half of the cooperative send/receive protocol of
Section 2.1:

* **send** — creates two buffer descriptors per frame (42 B header
  region + payload region), pushes them on the send ring, and rings the
  NIC's mailbox register.  In saturation mode it always has another
  frame ready, so the ring refills as soon as completions arrive.
* **receive** — preallocates a pool of main-memory buffers and
  "continually allocates free buffers and notifies the NIC of buffer
  availability using buffer descriptors"; the model replenishes the
  receive-BD ring whenever the NIC has drained below a threshold.
* **completions** — consumes send/receive completion notifications,
  with interrupt coalescing statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.host.descriptors import (
    BufferDescriptor,
    DescriptorRing,
    FLAG_END_OF_FRAME,
    FLAG_HEADER_REGION,
    FLAG_RECV_BUFFER,
)
from repro.host.memory import HostMemoryLayout
from repro.net.ethernet import TX_HEADER_REGION_BYTES


@dataclass
class DriverStats:
    frames_posted: int = 0
    recv_buffers_posted: int = 0
    send_completions: int = 0
    recv_completions: int = 0
    interrupts: int = 0

    @property
    def completions_per_interrupt(self) -> float:
        """Mean completions coalesced per interrupt.

        Guarded against zero-interrupt windows: a measurement window
        short enough (or a flow-driven fabric endpoint idle enough)
        never to raise an interrupt reports 0.0 rather than dividing by
        zero.  Fabric endpoints with an empty RPC window hit this for
        real — see ``tests/test_driver_rings.py``.
        """
        total = self.send_completions + self.recv_completions
        return total / self.interrupts if self.interrupts else 0.0


class DriverModel:
    """The OS half of the NIC protocol."""

    def __init__(
        self,
        udp_payload_bytes: int,
        frame_bytes: int,
        send_ring_capacity: int = 512,
        recv_ring_capacity: int = 256,
        layout: Optional[HostMemoryLayout] = None,
        max_frames: Optional[int] = None,
    ) -> None:
        self.udp_payload_bytes = udp_payload_bytes
        self.frame_bytes = frame_bytes
        self.send_ring = DescriptorRing(send_ring_capacity, "send-bd")
        self.recv_ring = DescriptorRing(recv_ring_capacity, "recv-bd")
        self.layout = layout if layout is not None else HostMemoryLayout()
        self.max_frames = max_frames  # None = saturation (endless traffic)
        self.stats = DriverStats()
        self._next_send_seq = 0
        self._next_recv_buffer = 0
        self._payload_bytes = max(1, frame_bytes - TX_HEADER_REGION_BYTES - 4)

    # -- send side -------------------------------------------------------
    def refill_send_ring(self) -> int:
        """Post descriptors for as many new frames as fit; returns frames."""
        posted = 0
        while self.send_ring.free_slots >= 2:
            if (
                self.max_frames is not None
                and self._next_send_seq >= self.max_frames
            ):
                break
            seq = self._next_send_seq
            header = BufferDescriptor(
                address=self.layout.tx_header_address(seq),
                length=TX_HEADER_REGION_BYTES,
                flags=FLAG_HEADER_REGION,
                cookie=seq,
            )
            payload = BufferDescriptor(
                address=self.layout.tx_payload_address(seq),
                length=self._payload_bytes,
                flags=FLAG_END_OF_FRAME,
                cookie=seq,
            )
            self.send_ring.push_many([header, payload])
            self._next_send_seq += 1
            posted += 1
        self.stats.frames_posted += posted
        return posted

    def send_bds_available(self) -> int:
        return self.send_ring.peek_count()

    def consume_send_bds(self, count: int) -> List[BufferDescriptor]:
        """The NIC's descriptor DMA pulls ``count`` BDs off the ring."""
        return self.send_ring.pop_many(count)

    # -- receive side ------------------------------------------------------
    def replenish_recv_ring(self) -> int:
        """Allocate free buffers up to ring capacity; returns buffers."""
        posted = 0
        while not self.recv_ring.is_full:
            index = self._next_recv_buffer
            descriptor = BufferDescriptor(
                address=self.layout.rx_buffer_address(index),
                length=self.frame_bytes,
                flags=FLAG_RECV_BUFFER,
                cookie=index,
            )
            self.recv_ring.push(descriptor)
            self._next_recv_buffer += 1
            posted += 1
        self.stats.recv_buffers_posted += posted
        return posted

    def recv_bds_available(self) -> int:
        return self.recv_ring.peek_count()

    def consume_recv_bds(self, count: int) -> List[BufferDescriptor]:
        return self.recv_ring.pop_many(count)

    # -- completions -------------------------------------------------------
    def complete_sends(self, count: int, interrupt: bool) -> None:
        self.stats.send_completions += count
        if interrupt:
            self.stats.interrupts += 1

    def complete_receives(self, count: int, interrupt: bool) -> None:
        self.stats.recv_completions += count
        if interrupt:
            self.stats.interrupts += 1
