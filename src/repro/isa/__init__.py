"""MIPS R4000-subset ISA with the paper's atomic RMW extensions.

The paper's firmware runs on single-issue cores implementing "a subset
of the MIPS R4000 instruction set" extended with two atomic
read-modify-write instructions, ``setb`` and ``update``, that the
frame-ordering code uses in place of lock/scan/clear loops (Section 4).

This package provides:

* :mod:`repro.isa.instructions` — instruction formats, mnemonics, and
  32-bit binary encode/decode;
* :mod:`repro.isa.assembler` — a two-pass assembler with labels,
  ``.text``/``.data`` sections and the usual pseudo-instructions;
* :mod:`repro.isa.machine` — a functional interpreter with branch delay
  slots, ll/sc, and a shared-memory multi-core stepper;
* :mod:`repro.isa.trace` — dynamic instruction trace capture consumed by
  the ILP limit study (Table 2).
"""

from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.instructions import (
    Instruction,
    InstructionSpec,
    REGISTER_NAMES,
    decode,
    encode,
    spec_for,
)
from repro.isa.machine import Machine, MachineError, Memory, MultiCoreMachine
from repro.isa.trace import TraceEntry

__all__ = [
    "AssemblerError",
    "Instruction",
    "InstructionSpec",
    "Machine",
    "MachineError",
    "Memory",
    "MultiCoreMachine",
    "Program",
    "REGISTER_NAMES",
    "TraceEntry",
    "assemble",
    "decode",
    "encode",
    "spec_for",
]
