"""Binary images and program listings.

Completes the ISA toolchain: assembled programs can be emitted as flat
binary images (the form firmware is burned into the NIC's instruction
memory), loaded back, and rendered as human-readable listings.  The
image format is deliberately simple and self-describing:

``REPRO10G`` magic, version word, text base/length, data base/length,
then raw little-endian text (one encoded instruction per word) and data
bytes.  Symbols are not stored — an image is what the hardware sees.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction, decode, disassemble, encode

MAGIC = b"REPRO10G"
VERSION = 1
_HEADER = struct.Struct("<8sIIIII")  # magic, version, tbase, tlen, dbase, dlen


class ImageError(ValueError):
    """Raised for malformed binary images."""


def encode_program(program: Program) -> bytes:
    """Serialize a program to a flat firmware image."""
    text = b"".join(
        encode(instruction).to_bytes(4, "little")
        for instruction in program.instructions
    )
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        program.text_base,
        len(text),
        program.data_base,
        len(program.data),
    )
    return header + text + program.data


@dataclass(frozen=True)
class LoadedImage:
    """A firmware image read back from bytes."""

    instructions: List[Instruction]
    text_base: int
    data: bytes
    data_base: int

    def to_program(self) -> Program:
        """Wrap as a runnable :class:`Program` (symbols are lost)."""
        return Program(
            instructions=list(self.instructions),
            text_base=self.text_base,
            data=self.data,
            data_base=self.data_base,
            symbols={"main": self.text_base},
        )


def decode_image(blob: bytes) -> LoadedImage:
    """Parse a firmware image produced by :func:`encode_program`."""
    if len(blob) < _HEADER.size:
        raise ImageError("image truncated before header")
    magic, version, text_base, text_len, data_base, data_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise ImageError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ImageError(f"unsupported image version {version}")
    if text_len % 4:
        raise ImageError(f"text length {text_len} not word aligned")
    expected = _HEADER.size + text_len + data_len
    if len(blob) != expected:
        raise ImageError(f"image length {len(blob)} != header's {expected}")
    text = blob[_HEADER.size : _HEADER.size + text_len]
    data = blob[_HEADER.size + text_len :]
    instructions = [
        decode(int.from_bytes(text[offset : offset + 4], "little"))
        for offset in range(0, text_len, 4)
    ]
    return LoadedImage(
        instructions=instructions,
        text_base=text_base,
        data=data,
        data_base=data_base,
    )


def listing(program: Program, with_encoding: bool = True) -> str:
    """Render an address/encoding/disassembly listing with labels.

    The classic ``objdump``-style view used by the debugger and the
    ``repro asm --list`` CLI flag.
    """
    labels_by_address = {}
    for name, address in program.symbols.items():
        labels_by_address.setdefault(address, []).append(name)

    lines: List[str] = []
    for index, instruction in enumerate(program.instructions):
        address = program.text_base + 4 * index
        for label in labels_by_address.get(address, []):
            lines.append(f"{label}:")
        word = encode(instruction)
        if with_encoding:
            lines.append(f"  {address:#08x}:  {word:08x}  {disassemble(instruction)}")
        else:
            lines.append(f"  {address:#08x}:  {disassemble(instruction)}")
    if program.data:
        lines.append("")
        lines.append(f".data @ {program.data_base:#x} ({len(program.data)} bytes)")
        for offset in range(0, min(len(program.data), 64), 16):
            chunk = program.data[offset : offset + 16]
            hex_bytes = " ".join(f"{b:02x}" for b in chunk)
            lines.append(f"  {program.data_base + offset:#08x}:  {hex_bytes}")
        if len(program.data) > 64:
            lines.append(f"  ... {len(program.data) - 64} more bytes")
    return "\n".join(lines)
