"""Two-pass MIPS assembler.

Supports the instruction subset in :mod:`repro.isa.instructions` plus
the conventional pseudo-instructions (``li``, ``la``, ``move``, ``nop``,
``b``, ``beqz``, ``bnez``, ``blt``, ``bge``, ``bgt``, ``ble``, ``not``)
and directives (``.text``, ``.data``, ``.word``, ``.half``, ``.byte``,
``.space``, ``.align``, ``.globl``).

Branch delay slots are architectural (one slot, as on the R4000) and are
*not* auto-filled: firmware kernels write their delay slots explicitly,
just as the Tigon-II firmware did.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import (
    Instruction,
    REGISTER_NUMBERS,
    SPECS,
)

AT = 1  # assembler temporary register


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error, with line context."""


@dataclass
class Program:
    """Result of assembling one source unit."""

    instructions: List[Instruction]
    text_base: int
    data: bytes
    data_base: int
    symbols: Dict[str, int]
    source_lines: List[str] = field(default_factory=list)
    line_numbers: List[int] = field(default_factory=list)

    @property
    def text_bytes(self) -> int:
        return len(self.instructions) * 4

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise KeyError(f"no symbol named {label!r}") from None

    def instruction_at(self, address: int) -> Instruction:
        index = (address - self.text_base) // 4
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"address {address:#x} outside text section")
        return self.instructions[index]


def _hi_lo(address: int) -> Tuple[int, int]:
    """Split an address into (lui_value, signed_low16) for lui + memop."""
    low = address & 0xFFFF
    if low & 0x8000:
        low -= 0x10000
    high = ((address - low) >> 16) & 0xFFFF
    return high, low


_MEM_OPERAND = re.compile(r"^(?P<offset>[^()]*)\((?P<base>\$[a-z0-9]+)\)$")


def _parse_register(token: str, line: int) -> int:
    token = token.strip()
    if not token.startswith("$"):
        raise AssemblerError(f"line {line}: expected register, got {token!r}")
    name = token[1:]
    if name.isdigit():
        number = int(name)
        if not 0 <= number < 32:
            raise AssemblerError(f"line {line}: register {token} out of range")
        return number
    if name in REGISTER_NUMBERS:
        return REGISTER_NUMBERS[name]
    raise AssemblerError(f"line {line}: unknown register {token!r}")


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {line}: expected integer, got {token!r}") from None


@dataclass
class _Item:
    """One source statement after tokenization (pass 1 artifact)."""

    mnemonic: str
    operands: List[str]
    line: int
    source: str


def _tokenize(source: str):
    """Yield (labels, item-or-directive, line number, raw text)."""
    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        # Peel off any leading labels ("name:"), possibly several.
        labels = []
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$", text)
            if not match:
                break
            labels.append(match.group(1))
            text = match.group(2).strip()
        if not text:
            yield labels, None, line_number, raw
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = []
        if len(parts) > 1:
            operands = [op.strip() for op in parts[1].split(",")]
        yield labels, _Item(mnemonic, operands, line_number, raw), line_number, raw


# Sizes (in instructions) of pseudo-instruction expansions.
def _pseudo_size(item: _Item) -> int:
    m = item.mnemonic
    if m in ("nop", "move", "b", "beqz", "bnez", "not", "neg"):
        return 1
    if m == "li":
        value = _parse_int(item.operands[1], item.line)
        if -32768 <= value < 32768 or 0 <= value <= 0xFFFF:
            return 1
        return 2
    if m == "la":
        return 2
    if m in ("blt", "bge", "bgt", "ble", "bltu", "bgeu"):
        return 2
    spec = SPECS.get(m)
    if spec is None:
        raise AssemblerError(f"line {item.line}: unknown mnemonic {m!r}")
    if spec.fmt == "mem" and len(item.operands) == 2 and "(" not in item.operands[1]:
        return 2  # lw rt, label  ->  lui $at + lw rt, lo($at)
    return 1


class _Assembler:
    def __init__(self, source: str, text_base: int, data_base: int) -> None:
        self.source = source
        self.text_base = text_base
        self.data_base = data_base
        self.symbols: Dict[str, int] = {}
        self.instructions: List[Instruction] = []
        self.line_numbers: List[int] = []
        self.source_lines: List[str] = []
        self.data = bytearray()

    # ------------------------------------------------------------------
    def run(self) -> Program:
        self._first_pass()
        self._second_pass()
        return Program(
            instructions=self.instructions,
            text_base=self.text_base,
            data=bytes(self.data),
            data_base=self.data_base,
            symbols=dict(self.symbols),
            source_lines=self.source_lines,
            line_numbers=self.line_numbers,
        )

    # ------------------------------------------------------------------
    def _first_pass(self) -> None:
        """Assign addresses to labels."""
        section = "text"
        text_pc = self.text_base
        data_pc = self.data_base
        for labels, item, line, _raw in _tokenize(self.source):
            for label in labels:
                if label in self.symbols:
                    raise AssemblerError(f"line {line}: duplicate label {label!r}")
                self.symbols[label] = text_pc if section == "text" else data_pc
            if item is None:
                continue
            if item.mnemonic.startswith("."):
                section, text_pc, data_pc = self._directive_size(
                    item, section, text_pc, data_pc
                )
                continue
            if section != "text":
                raise AssemblerError(
                    f"line {item.line}: instruction outside .text section"
                )
            text_pc += 4 * _pseudo_size(item)

    def _directive_size(
        self, item: _Item, section: str, text_pc: int, data_pc: int
    ):
        d = item.mnemonic
        if d == ".text":
            return "text", text_pc, data_pc
        if d == ".data":
            return "data", text_pc, data_pc
        if d == ".globl":
            return section, text_pc, data_pc
        if section != "data":
            raise AssemblerError(f"line {item.line}: {d} only allowed in .data")
        if d == ".word":
            return section, text_pc, data_pc + 4 * len(item.operands)
        if d == ".half":
            return section, text_pc, data_pc + 2 * len(item.operands)
        if d == ".byte":
            return section, text_pc, data_pc + len(item.operands)
        if d == ".space":
            return section, text_pc, data_pc + _parse_int(item.operands[0], item.line)
        if d == ".align":
            alignment = 1 << _parse_int(item.operands[0], item.line)
            aligned = (data_pc + alignment - 1) // alignment * alignment
            return section, text_pc, aligned
        raise AssemblerError(f"line {item.line}: unknown directive {d!r}")

    # ------------------------------------------------------------------
    def _second_pass(self) -> None:
        section = "text"
        data_pc = self.data_base
        for _labels, item, _line, raw in _tokenize(self.source):
            if item is None:
                continue
            if item.mnemonic.startswith("."):
                section, data_pc = self._emit_directive(item, section, data_pc)
                continue
            self._emit_instruction(item, raw)

    def _emit_directive(self, item: _Item, section: str, data_pc: int):
        d = item.mnemonic
        if d == ".text":
            return "text", data_pc
        if d == ".data":
            return "data", data_pc
        if d == ".globl":
            return section, data_pc
        if d == ".word":
            for op in item.operands:
                value = self._resolve_value(op, item.line)
                self.data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
            return section, data_pc + 4 * len(item.operands)
        if d == ".half":
            for op in item.operands:
                value = self._resolve_value(op, item.line)
                self.data.extend((value & 0xFFFF).to_bytes(2, "little"))
            return section, data_pc + 2 * len(item.operands)
        if d == ".byte":
            for op in item.operands:
                value = self._resolve_value(op, item.line)
                self.data.append(value & 0xFF)
            return section, data_pc + len(item.operands)
        if d == ".space":
            count = _parse_int(item.operands[0], item.line)
            self.data.extend(b"\x00" * count)
            return section, data_pc + count
        if d == ".align":
            alignment = 1 << _parse_int(item.operands[0], item.line)
            target = (data_pc + alignment - 1) // alignment * alignment
            self.data.extend(b"\x00" * (target - data_pc))
            return section, target
        raise AssemblerError(f"line {item.line}: unknown directive {d!r}")

    def _resolve_value(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        return _parse_int(token, line)

    # ------------------------------------------------------------------
    def _append(self, instruction: Instruction, item: _Item, raw: str) -> None:
        self.instructions.append(instruction)
        self.line_numbers.append(item.line)
        self.source_lines.append(raw.strip())

    def _current_pc(self) -> int:
        return self.text_base + 4 * len(self.instructions)

    def _branch_offset(self, label: str, line: int) -> int:
        if label not in self.symbols:
            raise AssemblerError(f"line {line}: undefined label {label!r}")
        target = self.symbols[label]
        # Offset is relative to the instruction after the branch (the
        # delay slot), in words.
        offset = (target - (self._current_pc() + 4)) // 4
        if not -(1 << 15) <= offset < (1 << 15):
            raise AssemblerError(f"line {line}: branch to {label!r} out of range")
        return offset

    def _emit_instruction(self, item: _Item, raw: str) -> None:
        m = item.mnemonic
        ops = item.operands
        line = item.line
        if m in _PSEUDO_EMITTERS:
            _PSEUDO_EMITTERS[m](self, item, raw)
            return
        spec = SPECS.get(m)
        if spec is None:
            raise AssemblerError(f"line {line}: unknown mnemonic {m!r}")
        fmt = spec.fmt
        if m == "setb":
            self._require(ops, 2, item)
            self._append(
                Instruction(m, rs=_parse_register(ops[0], line), rt=_parse_register(ops[1], line)),
                item, raw,
            )
        elif m == "update":
            self._require(ops, 3, item)
            self._append(
                Instruction(
                    m,
                    rd=_parse_register(ops[0], line),
                    rs=_parse_register(ops[1], line),
                    rt=_parse_register(ops[2], line),
                ),
                item, raw,
            )
        elif m == "halt":
            self._append(Instruction(m), item, raw)
        elif m in ("mult", "multu", "div", "divu"):
            self._require(ops, 2, item)
            self._append(
                Instruction(
                    m,
                    rs=_parse_register(ops[0], line),
                    rt=_parse_register(ops[1], line),
                ),
                item, raw,
            )
        elif m in ("mfhi", "mflo"):
            self._require(ops, 1, item)
            self._append(Instruction(m, rd=_parse_register(ops[0], line)), item, raw)
        elif fmt == "r":
            self._require(ops, 3, item)
            self._append(
                Instruction(
                    m,
                    rd=_parse_register(ops[0], line),
                    rs=_parse_register(ops[1], line),
                    rt=_parse_register(ops[2], line),
                ),
                item, raw,
            )
        elif fmt == "shift":
            self._require(ops, 3, item)
            self._append(
                Instruction(
                    m,
                    rd=_parse_register(ops[0], line),
                    rt=_parse_register(ops[1], line),
                    shamt=_parse_int(ops[2], line),
                ),
                item, raw,
            )
        elif fmt == "i":
            if m == "lui":
                self._require(ops, 2, item)
                self._append(
                    Instruction(m, rt=_parse_register(ops[0], line), imm=_parse_int(ops[1], line)),
                    item, raw,
                )
            else:
                self._require(ops, 3, item)
                self._append(
                    Instruction(
                        m,
                        rt=_parse_register(ops[0], line),
                        rs=_parse_register(ops[1], line),
                        imm=_parse_int(ops[2], line),
                    ),
                    item, raw,
                )
        elif fmt == "mem":
            self._require(ops, 2, item)
            rt = _parse_register(ops[0], line)
            match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
            if match:
                offset_text = match.group("offset") or "0"
                base = _parse_register(match.group("base"), line)
                if offset_text in self.symbols:
                    offset = self.symbols[offset_text]
                else:
                    offset = _parse_int(offset_text, line)
                self._append(Instruction(m, rt=rt, rs=base, imm=offset), item, raw)
            else:
                # lw rt, label  ->  lui $at, hi(label); lw rt, lo(label)($at)
                label = ops[1].strip()
                if label not in self.symbols:
                    raise AssemblerError(f"line {line}: undefined label {label!r}")
                high, low = _hi_lo(self.symbols[label])
                self._append(Instruction("lui", rt=AT, imm=high), item, raw)
                self._append(Instruction(m, rt=rt, rs=AT, imm=low), item, raw)
        elif fmt == "branch":
            self._require(ops, 3, item)
            self._append(
                Instruction(
                    m,
                    rs=_parse_register(ops[0], line),
                    rt=_parse_register(ops[1], line),
                    imm=self._branch_offset(ops[2], line),
                    label=ops[2],
                ),
                item, raw,
            )
        elif fmt == "branch1":
            self._require(ops, 2, item)
            self._append(
                Instruction(
                    m,
                    rs=_parse_register(ops[0], line),
                    imm=self._branch_offset(ops[1], line),
                    label=ops[1],
                ),
                item, raw,
            )
        elif fmt == "j":
            self._require(ops, 1, item)
            label = ops[0].strip()
            if label in self.symbols:
                target = self.symbols[label] >> 2
            else:
                target = _parse_int(label, line) >> 2
            self._append(Instruction(m, target=target, label=label), item, raw)
        elif fmt == "jr":
            self._require(ops, 1, item)
            self._append(Instruction(m, rs=_parse_register(ops[0], line)), item, raw)
        elif fmt == "jalr":
            if len(ops) == 1:
                self._append(Instruction(m, rd=31, rs=_parse_register(ops[0], line)), item, raw)
            else:
                self._require(ops, 2, item)
                self._append(
                    Instruction(
                        m, rd=_parse_register(ops[0], line), rs=_parse_register(ops[1], line)
                    ),
                    item, raw,
                )
        else:
            raise AssemblerError(f"line {line}: cannot assemble {m!r}")

    def _require(self, ops: List[str], count: int, item: _Item) -> None:
        if len(ops) != count:
            raise AssemblerError(
                f"line {item.line}: {item.mnemonic} expects {count} operands, "
                f"got {len(ops)}"
            )

    # -- pseudo-instructions -------------------------------------------
    def _emit_nop(self, item: _Item, raw: str) -> None:
        self._append(Instruction("sll", rd=0, rt=0, shamt=0), item, raw)

    def _emit_move(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rd = _parse_register(item.operands[0], item.line)
        rs = _parse_register(item.operands[1], item.line)
        self._append(Instruction("addu", rd=rd, rs=rs, rt=0), item, raw)

    def _emit_li(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rt = _parse_register(item.operands[0], item.line)
        value = _parse_int(item.operands[1], item.line)
        if -32768 <= value < 32768:
            self._append(Instruction("addiu", rt=rt, rs=0, imm=value), item, raw)
        elif 0 <= value <= 0xFFFF:
            self._append(Instruction("ori", rt=rt, rs=0, imm=value), item, raw)
        else:
            self._append(Instruction("lui", rt=rt, imm=(value >> 16) & 0xFFFF), item, raw)
            self._append(Instruction("ori", rt=rt, rs=rt, imm=value & 0xFFFF), item, raw)

    def _emit_la(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rt = _parse_register(item.operands[0], item.line)
        label = item.operands[1].strip()
        if label not in self.symbols:
            raise AssemblerError(f"line {item.line}: undefined label {label!r}")
        address = self.symbols[label]
        self._append(Instruction("lui", rt=rt, imm=(address >> 16) & 0xFFFF), item, raw)
        self._append(Instruction("ori", rt=rt, rs=rt, imm=address & 0xFFFF), item, raw)

    def _emit_b(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 1, item)
        offset = self._branch_offset(item.operands[0], item.line)
        self._append(
            Instruction("beq", rs=0, rt=0, imm=offset, label=item.operands[0]),
            item, raw,
        )

    def _emit_beqz(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rs = _parse_register(item.operands[0], item.line)
        offset = self._branch_offset(item.operands[1], item.line)
        self._append(
            Instruction("beq", rs=rs, rt=0, imm=offset, label=item.operands[1]),
            item, raw,
        )

    def _emit_bnez(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rs = _parse_register(item.operands[0], item.line)
        offset = self._branch_offset(item.operands[1], item.line)
        self._append(
            Instruction("bne", rs=rs, rt=0, imm=offset, label=item.operands[1]),
            item, raw,
        )

    def _emit_not(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rd = _parse_register(item.operands[0], item.line)
        rs = _parse_register(item.operands[1], item.line)
        self._append(Instruction("nor", rd=rd, rs=rs, rt=0), item, raw)

    def _emit_neg(self, item: _Item, raw: str) -> None:
        self._require(item.operands, 2, item)
        rd = _parse_register(item.operands[0], item.line)
        rs = _parse_register(item.operands[1], item.line)
        self._append(Instruction("subu", rd=rd, rs=0, rt=rs), item, raw)

    def _emit_compare_branch(self, item: _Item, raw: str) -> None:
        """blt/bge/bgt/ble and unsigned variants via slt + branch."""
        self._require(item.operands, 3, item)
        m = item.mnemonic
        ra = _parse_register(item.operands[0], item.line)
        rb = _parse_register(item.operands[1], item.line)
        slt_op = "sltu" if m.endswith("u") else "slt"
        base = m.rstrip("u")
        if base in ("blt", "bge"):
            self._append(Instruction(slt_op, rd=AT, rs=ra, rt=rb), item, raw)
        else:  # bgt / ble compare the swapped pair
            self._append(Instruction(slt_op, rd=AT, rs=rb, rt=ra), item, raw)
        offset = self._branch_offset(item.operands[2], item.line)
        branch = "bne" if base in ("blt", "bgt") else "beq"
        self._append(
            Instruction(branch, rs=AT, rt=0, imm=offset, label=item.operands[2]),
            item, raw,
        )


_PSEUDO_EMITTERS = {
    "nop": _Assembler._emit_nop,
    "move": _Assembler._emit_move,
    "li": _Assembler._emit_li,
    "la": _Assembler._emit_la,
    "b": _Assembler._emit_b,
    "beqz": _Assembler._emit_beqz,
    "bnez": _Assembler._emit_bnez,
    "not": _Assembler._emit_not,
    "neg": _Assembler._emit_neg,
    "blt": _Assembler._emit_compare_branch,
    "bge": _Assembler._emit_compare_branch,
    "bgt": _Assembler._emit_compare_branch,
    "ble": _Assembler._emit_compare_branch,
    "bltu": _Assembler._emit_compare_branch,
    "bgeu": _Assembler._emit_compare_branch,
}


def assemble(source: str, text_base: int = 0x0000, data_base: int = 0x0001_0000) -> Program:
    """Assemble ``source`` into a :class:`Program`.

    ``text_base``/``data_base`` default to the layout used by the
    firmware kernels: code in instruction memory at 0, data in the
    scratchpad window at 64 KB.
    """
    return _Assembler(source, text_base, data_base).run()
