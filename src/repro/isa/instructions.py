"""Instruction formats, mnemonics, and binary encodings.

The subset below covers everything the firmware kernels and the ILP
study need: the integer ALU, loads/stores, branches with one delay slot,
jumps, ll/sc for lock-based synchronization, and the two new atomic
read-modify-write instructions proposed by the paper:

``setb rbase, rindex``
    Atomically set bit ``rindex`` of the bit array starting at the word
    address in ``rbase``.

``update rd, rbase, rlast``
    Atomically scan the bit array at ``rbase`` for consecutive set bits
    starting at position ``rlast`` + 1, examining at most the single
    aligned 32-bit word containing that starting bit; clear the set bits
    found; write into ``rd`` the offset of the last cleared bit, or
    ``rlast`` unchanged when the first examined bit was clear.

Both are encoded in the SPECIAL2 opcode space (0x1C), the standard MIPS
mechanism for implementation-specific extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

REGISTER_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

REGISTER_NUMBERS: Dict[str, int] = {name: i for i, name in enumerate(REGISTER_NAMES)}

OP_SPECIAL = 0x00
OP_SPECIAL2 = 0x1C

# funct codes within SPECIAL2 for the paper's extensions (vendor space).
FUNCT_SETB = 0x30
FUNCT_UPDATE = 0x31
FUNCT_HALT = 0x3F


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str          # 'r', 'i', 'j', 'shift', 'mem', 'branch', 'branch1', 'jr', 'jalr', 'custom'
    opcode: int
    funct: Optional[int] = None
    rt_field: Optional[int] = None  # for bltz/bgez (REGIMM encodings)
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_rmw: bool = False
    writes_rd: bool = False
    writes_rt: bool = False
    writes_ra: bool = False

OP_REGIMM = 0x01

_SPECS = [
    # R-type ALU: op rd, rs, rt
    InstructionSpec("addu", "r", OP_SPECIAL, funct=0x21, writes_rd=True),
    InstructionSpec("subu", "r", OP_SPECIAL, funct=0x23, writes_rd=True),
    InstructionSpec("and", "r", OP_SPECIAL, funct=0x24, writes_rd=True),
    InstructionSpec("or", "r", OP_SPECIAL, funct=0x25, writes_rd=True),
    InstructionSpec("xor", "r", OP_SPECIAL, funct=0x26, writes_rd=True),
    InstructionSpec("nor", "r", OP_SPECIAL, funct=0x27, writes_rd=True),
    InstructionSpec("slt", "r", OP_SPECIAL, funct=0x2A, writes_rd=True),
    InstructionSpec("sltu", "r", OP_SPECIAL, funct=0x2B, writes_rd=True),
    InstructionSpec("sllv", "r", OP_SPECIAL, funct=0x04, writes_rd=True),
    InstructionSpec("srlv", "r", OP_SPECIAL, funct=0x06, writes_rd=True),
    InstructionSpec("srav", "r", OP_SPECIAL, funct=0x07, writes_rd=True),
    InstructionSpec("mul", "r", OP_SPECIAL2, funct=0x02, writes_rd=True),
    # HI/LO multiply-divide unit (rd unused; results read via mfhi/mflo).
    InstructionSpec("mult", "r", OP_SPECIAL, funct=0x18),
    InstructionSpec("multu", "r", OP_SPECIAL, funct=0x19),
    InstructionSpec("div", "r", OP_SPECIAL, funct=0x1A),
    InstructionSpec("divu", "r", OP_SPECIAL, funct=0x1B),
    InstructionSpec("mfhi", "r", OP_SPECIAL, funct=0x10, writes_rd=True),
    InstructionSpec("mflo", "r", OP_SPECIAL, funct=0x12, writes_rd=True),
    # Shifts with immediate shamt: op rd, rt, shamt
    InstructionSpec("sll", "shift", OP_SPECIAL, funct=0x00, writes_rd=True),
    InstructionSpec("srl", "shift", OP_SPECIAL, funct=0x02, writes_rd=True),
    InstructionSpec("sra", "shift", OP_SPECIAL, funct=0x03, writes_rd=True),
    # I-type ALU: op rt, rs, imm
    InstructionSpec("addiu", "i", 0x09, writes_rt=True),
    InstructionSpec("andi", "i", 0x0C, writes_rt=True),
    InstructionSpec("ori", "i", 0x0D, writes_rt=True),
    InstructionSpec("xori", "i", 0x0E, writes_rt=True),
    InstructionSpec("slti", "i", 0x0A, writes_rt=True),
    InstructionSpec("sltiu", "i", 0x0B, writes_rt=True),
    InstructionSpec("lui", "i", 0x0F, writes_rt=True),  # rs field unused
    # Loads/stores: op rt, offset(rs)
    InstructionSpec("lw", "mem", 0x23, is_load=True, writes_rt=True),
    InstructionSpec("lh", "mem", 0x21, is_load=True, writes_rt=True),
    InstructionSpec("lhu", "mem", 0x25, is_load=True, writes_rt=True),
    InstructionSpec("lb", "mem", 0x20, is_load=True, writes_rt=True),
    InstructionSpec("lbu", "mem", 0x24, is_load=True, writes_rt=True),
    InstructionSpec("sw", "mem", 0x2B, is_store=True),
    InstructionSpec("sh", "mem", 0x29, is_store=True),
    InstructionSpec("sb", "mem", 0x28, is_store=True),
    InstructionSpec("ll", "mem", 0x30, is_load=True, writes_rt=True),
    InstructionSpec("sc", "mem", 0x38, is_store=True, writes_rt=True),
    # Branches (one architectural delay slot)
    InstructionSpec("beq", "branch", 0x04, is_branch=True),
    InstructionSpec("bne", "branch", 0x05, is_branch=True),
    InstructionSpec("blez", "branch1", 0x06, is_branch=True),
    InstructionSpec("bgtz", "branch1", 0x07, is_branch=True),
    InstructionSpec("bltz", "branch1", OP_REGIMM, rt_field=0x00, is_branch=True),
    InstructionSpec("bgez", "branch1", OP_REGIMM, rt_field=0x01, is_branch=True),
    # Jumps
    InstructionSpec("j", "j", 0x02, is_jump=True),
    InstructionSpec("jal", "j", 0x03, is_jump=True, writes_ra=True),
    InstructionSpec("jr", "jr", OP_SPECIAL, funct=0x08, is_jump=True),
    InstructionSpec("jalr", "jalr", OP_SPECIAL, funct=0x09, is_jump=True, writes_rd=True),
    # Paper's atomic extensions + a simulator halt.
    InstructionSpec("setb", "r", OP_SPECIAL2, funct=FUNCT_SETB, is_rmw=True,
                    is_store=True),
    InstructionSpec("update", "r", OP_SPECIAL2, funct=FUNCT_UPDATE, is_rmw=True,
                    is_load=True, writes_rd=True),
    InstructionSpec("halt", "custom", OP_SPECIAL2, funct=FUNCT_HALT),
]

SPECS: Dict[str, InstructionSpec] = {spec.mnemonic: spec for spec in _SPECS}


def spec_for(mnemonic: str) -> InstructionSpec:
    """Look up the spec for a mnemonic, raising on unknown names."""
    try:
        return SPECS[mnemonic]
    except KeyError:
        raise KeyError(f"unknown mnemonic {mnemonic!r}") from None


@dataclass(frozen=True)
class Instruction:
    """One decoded/assembled instruction.

    Field use by format:

    * ``r``:      rd, rs, rt
    * ``shift``:  rd, rt, shamt
    * ``i``:      rt, rs, imm (16-bit, sign- or zero-extended per op)
    * ``mem``:    rt, imm(rs)
    * ``branch``: rs, rt, imm (word offset from delay slot)
    * ``branch1``: rs, imm
    * ``j``:      target (word address)
    * ``jr``:     rs;  ``jalr``: rd, rs
    """

    mnemonic: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    shamt: int = 0
    target: int = 0
    label: Optional[str] = None  # symbolic target kept for disassembly

    @property
    def spec(self) -> InstructionSpec:
        return SPECS[self.mnemonic]

    # -- register dependence queries (used by the pipeline and ILP code) --
    # The HI/LO pair is modeled as pseudo-register 32 for dependence
    # tracking (mult/div write it, mfhi/mflo read it).
    HILO = 32

    def source_registers(self) -> Tuple[int, ...]:
        spec = self.spec
        fmt = spec.fmt
        if self.mnemonic in ("mfhi", "mflo"):
            return (self.HILO,)
        if fmt == "r":
            if spec.is_rmw:
                if self.mnemonic == "setb":
                    return (self.rs, self.rt)
                return (self.rs, self.rt)  # update reads base + last offset
            return (self.rs, self.rt)
        if fmt == "shift":
            return (self.rt,)
        if fmt == "i":
            if self.mnemonic == "lui":
                return ()
            return (self.rs,)
        if fmt == "mem":
            if spec.is_store:
                return (self.rs, self.rt)
            return (self.rs,)
        if fmt == "branch":
            return (self.rs, self.rt)
        if fmt == "branch1":
            return (self.rs,)
        if fmt in ("jr", "jalr"):
            return (self.rs,)
        return ()

    def destination_register(self) -> Optional[int]:
        spec = self.spec
        if self.mnemonic in ("mult", "multu", "div", "divu"):
            return self.HILO
        if spec.writes_rd:
            return self.rd
        if spec.writes_rt:
            return self.rt
        if spec.writes_ra:
            return 31
        return None

    def __str__(self) -> str:
        return disassemble(self)


def _reg(index: int) -> str:
    return f"${REGISTER_NAMES[index]}"


def disassemble(instruction: Instruction) -> str:
    """Render an instruction in assembler syntax."""
    spec = instruction.spec
    m = instruction.mnemonic
    if m == "halt":
        return "halt"
    if m == "setb":
        return f"setb {_reg(instruction.rs)}, {_reg(instruction.rt)}"
    if m == "update":
        return f"update {_reg(instruction.rd)}, {_reg(instruction.rs)}, {_reg(instruction.rt)}"
    if m in ("mult", "multu", "div", "divu"):
        return f"{m} {_reg(instruction.rs)}, {_reg(instruction.rt)}"
    if m in ("mfhi", "mflo"):
        return f"{m} {_reg(instruction.rd)}"
    fmt = spec.fmt
    if fmt == "r":
        return f"{m} {_reg(instruction.rd)}, {_reg(instruction.rs)}, {_reg(instruction.rt)}"
    if fmt == "shift":
        return f"{m} {_reg(instruction.rd)}, {_reg(instruction.rt)}, {instruction.shamt}"
    if fmt == "i":
        if m == "lui":
            return f"{m} {_reg(instruction.rt)}, {instruction.imm & 0xFFFF:#x}"
        return f"{m} {_reg(instruction.rt)}, {_reg(instruction.rs)}, {instruction.imm}"
    if fmt == "mem":
        return f"{m} {_reg(instruction.rt)}, {instruction.imm}({_reg(instruction.rs)})"
    if fmt == "branch":
        target = instruction.label or instruction.imm
        return f"{m} {_reg(instruction.rs)}, {_reg(instruction.rt)}, {target}"
    if fmt == "branch1":
        target = instruction.label or instruction.imm
        return f"{m} {_reg(instruction.rs)}, {target}"
    if fmt == "j":
        target = instruction.label or f"{instruction.target:#x}"
        return f"{m} {target}"
    if fmt == "jr":
        return f"{m} {_reg(instruction.rs)}"
    if fmt == "jalr":
        return f"{m} {_reg(instruction.rd)}, {_reg(instruction.rs)}"
    raise ValueError(f"cannot disassemble format {fmt!r}")


# ----------------------------------------------------------------------
# Binary encode / decode
# ----------------------------------------------------------------------
def _check_uint(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{what} {value} does not fit in {bits} bits")
    return value


def _to_u16(imm: int) -> int:
    if not -(1 << 15) <= imm < (1 << 16):
        raise ValueError(f"immediate {imm} does not fit in 16 bits")
    return imm & 0xFFFF


def encode(instruction: Instruction) -> int:
    """Encode to a 32-bit word using genuine MIPS field layouts."""
    spec = instruction.spec
    op = spec.opcode
    rs = _check_uint(instruction.rs, 5, "rs")
    rt = _check_uint(instruction.rt, 5, "rt")
    rd = _check_uint(instruction.rd, 5, "rd")
    if spec.fmt == "r" or spec.fmt in ("jr", "jalr") or spec.fmt == "custom":
        funct = spec.funct or 0
        return (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | funct
    if spec.fmt == "shift":
        shamt = _check_uint(instruction.shamt, 5, "shamt")
        return (op << 26) | (rt << 16) | (rd << 11) | (shamt << 6) | (spec.funct or 0)
    if spec.fmt in ("i", "mem", "branch"):
        return (op << 26) | (rs << 21) | (rt << 16) | _to_u16(instruction.imm)
    if spec.fmt == "branch1":
        rt_field = spec.rt_field if spec.rt_field is not None else 0
        return (op << 26) | (rs << 21) | (rt_field << 16) | _to_u16(instruction.imm)
    if spec.fmt == "j":
        target = _check_uint(instruction.target, 26, "jump target")
        return (op << 26) | target
    raise ValueError(f"cannot encode format {spec.fmt!r}")


def _sign_extend_16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


_DECODE_R: Dict[Tuple[int, int], InstructionSpec] = {}
_DECODE_I: Dict[int, InstructionSpec] = {}
_DECODE_REGIMM: Dict[int, InstructionSpec] = {}
for _spec in _SPECS:
    if _spec.opcode in (OP_SPECIAL, OP_SPECIAL2) and _spec.funct is not None:
        _DECODE_R[(_spec.opcode, _spec.funct)] = _spec
    elif _spec.opcode == OP_REGIMM:
        _DECODE_REGIMM[_spec.rt_field or 0] = _spec
    else:
        _DECODE_I[_spec.opcode] = _spec


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    op = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm16 = word & 0xFFFF
    if op in (OP_SPECIAL, OP_SPECIAL2):
        spec = _DECODE_R.get((op, funct))
        if spec is None:
            raise ValueError(f"cannot decode word {word:#010x} (funct {funct:#x})")
        if spec.fmt == "shift":
            return Instruction(spec.mnemonic, rd=rd, rt=rt, shamt=shamt)
        return Instruction(spec.mnemonic, rd=rd, rs=rs, rt=rt)
    if op == OP_REGIMM:
        spec = _DECODE_REGIMM.get(rt)
        if spec is None:
            raise ValueError(f"cannot decode REGIMM word {word:#010x}")
        return Instruction(spec.mnemonic, rs=rs, imm=_sign_extend_16(imm16))
    spec = _DECODE_I.get(op)
    if spec is None:
        raise ValueError(f"cannot decode word {word:#010x} (opcode {op:#x})")
    if spec.fmt == "j":
        return Instruction(spec.mnemonic, target=word & 0x3FFFFFF)
    if spec.mnemonic in ("andi", "ori", "xori", "lui"):
        return Instruction(spec.mnemonic, rs=rs, rt=rt, imm=imm16)
    return Instruction(spec.mnemonic, rs=rs, rt=rt, imm=_sign_extend_16(imm16))
