"""Functional MIPS interpreter with R4000 branch delay slots.

:class:`Machine` executes one assembled :class:`~repro.isa.assembler.Program`
against a :class:`Memory`.  It is *functional* (no timing): the pipeline
timing model in :mod:`repro.cpu.core` wraps it to add cycles.

:class:`MultiCoreMachine` steps several register contexts round-robin
over one shared memory, preserving per-instruction atomicity — enough to
validate the lock-freedom and linearizability of the paper's ``setb`` /
``update`` instructions against ll/sc spinlock equivalents.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.trace import TraceEntry

WORD_MASK = 0xFFFFFFFF


class MachineError(RuntimeError):
    """Raised on alignment faults, bad fetches, and similar."""


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class Memory:
    """Byte-addressable little-endian memory with ll/sc reservations."""

    def __init__(self, size_bytes: int = 1 << 20) -> None:
        if size_bytes % 4:
            raise ValueError("memory size must be word aligned")
        self.size_bytes = size_bytes
        self.data = bytearray(size_bytes)
        # core id -> reserved word address (for ll/sc)
        self._reservations: Dict[int, int] = {}

    # -- bounds/alignment ------------------------------------------------
    def _check(self, address: int, width: int) -> None:
        if address % width:
            raise MachineError(f"unaligned {width}-byte access at {address:#x}")
        if not 0 <= address <= self.size_bytes - width:
            raise MachineError(f"access at {address:#x} outside memory")

    # -- word access -----------------------------------------------------
    def load_word(self, address: int) -> int:
        self._check(address, 4)
        return int.from_bytes(self.data[address : address + 4], "little")

    def store_word(self, address: int, value: int) -> None:
        self._check(address, 4)
        self.data[address : address + 4] = (value & WORD_MASK).to_bytes(4, "little")
        self._invalidate_reservations(address)

    def load_half(self, address: int, signed: bool) -> int:
        self._check(address, 2)
        value = int.from_bytes(self.data[address : address + 2], "little")
        if signed and value & 0x8000:
            value -= 0x1_0000
        return value

    def store_half(self, address: int, value: int) -> None:
        self._check(address, 2)
        self.data[address : address + 2] = (value & 0xFFFF).to_bytes(2, "little")
        self._invalidate_reservations(address & ~3)

    def load_byte(self, address: int, signed: bool) -> int:
        self._check(address, 1)
        value = self.data[address]
        if signed and value & 0x80:
            value -= 0x100
        return value

    def store_byte(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.data[address] = value & 0xFF
        self._invalidate_reservations(address & ~3)

    def load_bytes(self, address: int, count: int) -> bytes:
        if not 0 <= address <= self.size_bytes - count:
            raise MachineError(f"bulk access at {address:#x} outside memory")
        return bytes(self.data[address : address + count])

    def store_bytes(self, address: int, payload: bytes) -> None:
        if not 0 <= address <= self.size_bytes - len(payload):
            raise MachineError(f"bulk access at {address:#x} outside memory")
        self.data[address : address + len(payload)] = payload

    # -- ll/sc -----------------------------------------------------------
    def load_linked(self, core_id: int, address: int) -> int:
        value = self.load_word(address)
        self._reservations[core_id] = address
        return value

    def store_conditional(self, core_id: int, address: int, value: int) -> bool:
        if self._reservations.get(core_id) != address:
            return False
        # store_word clears every reservation on this word, including ours.
        self.store_word(address, value)
        return True

    def _invalidate_reservations(self, word_address: int) -> None:
        stale = [cid for cid, addr in self._reservations.items() if addr == word_address]
        for cid in stale:
            del self._reservations[cid]


# ----------------------------------------------------------------------
# The paper's atomic read-modify-write primitives (word-level semantics).
# The scratchpad hardware model reuses these same functions so firmware
# and hardware cannot drift apart.
# ----------------------------------------------------------------------
def apply_setb(memory: Memory, base: int, index: int) -> None:
    """Atomically set bit ``index`` of the bit array at ``base``."""
    if index < 0:
        raise MachineError(f"setb: negative bit index {index}")
    word_address = base + 4 * (index // 32)
    word = memory.load_word(word_address)
    memory.store_word(word_address, word | (1 << (index % 32)))


def apply_update(memory: Memory, base: int, last: int) -> int:
    """Atomically harvest consecutive set bits after position ``last``.

    Examines at most the single aligned 32-bit word containing bit
    ``last + 1`` (the hardware does one read-modify-write).  Clears the
    run of set bits found and returns the index of the last cleared bit,
    or ``last`` unchanged when bit ``last + 1`` was clear.
    """
    start = last + 1
    if start < 0:
        raise MachineError(f"update: negative start index {start}")
    word_index = start // 32
    word_address = base + 4 * word_index
    word = memory.load_word(word_address)
    bit = start % 32
    count = 0
    while bit + count < 32 and word & (1 << (bit + count)):
        count += 1
    if count == 0:
        return last
    mask = ((1 << count) - 1) << bit
    memory.store_word(word_address, word & ~mask)
    return last + count


class Machine:
    """Single functional core."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        core_id: int = 0,
        entry: Optional[str] = None,
        trace: Optional[List[TraceEntry]] = None,
        load_data: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.core_id = core_id
        self.registers = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = program.address_of(entry) if entry else program.text_base
        self.next_pc = self.pc + 4
        self.halted = False
        self.trace = trace
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.taken_branches = 0
        self.rmw_ops = 0
        if load_data:
            self.memory.store_bytes(program.data_base, program.data)

    # ------------------------------------------------------------------
    def read_register(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index] & WORD_MASK

    def write_register(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = value & WORD_MASK

    def register_by_name(self, name: str) -> int:
        from repro.isa.instructions import REGISTER_NUMBERS

        return self.read_register(REGISTER_NUMBERS[name])

    # ------------------------------------------------------------------
    def step(self) -> Optional[Instruction]:
        """Execute one instruction; returns it, or None once halted."""
        if self.halted:
            return None
        instruction = self.program.instruction_at(self.pc)
        executed_pc = self.pc
        self.pc = self.next_pc
        self.next_pc = self.pc + 4
        taken, mem_address = self._execute(instruction)
        self.instructions_executed += 1
        if self.trace is not None:
            self.trace.append(
                TraceEntry(
                    pc=executed_pc,
                    mnemonic=instruction.mnemonic,
                    sources=instruction.source_registers(),
                    destination=instruction.destination_register(),
                    is_load=instruction.spec.is_load,
                    is_store=instruction.spec.is_store,
                    is_branch=instruction.spec.is_branch,
                    is_jump=instruction.spec.is_jump,
                    taken=taken,
                    mem_address=mem_address,
                )
            )
        return instruction

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until halt; returns instructions executed in this call."""
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise MachineError(
                    f"exceeded {max_instructions} instructions without halting"
                )
            self.step()
            executed += 1
        return executed

    # ------------------------------------------------------------------
    def _execute(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        m = ins.mnemonic
        handler = _EXECUTORS.get(m)
        if handler is None:
            raise MachineError(f"no executor for {m!r}")
        return handler(self, ins)

    # -- executors -------------------------------------------------------
    def _exec_alu_r(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        a = self.read_register(ins.rs)
        b = self.read_register(ins.rt)
        m = ins.mnemonic
        if m == "addu":
            result = a + b
        elif m == "subu":
            result = a - b
        elif m == "and":
            result = a & b
        elif m == "or":
            result = a | b
        elif m == "xor":
            result = a ^ b
        elif m == "nor":
            result = ~(a | b)
        elif m == "slt":
            result = int(_signed(a) < _signed(b))
        elif m == "sltu":
            result = int(a < b)
        elif m == "sllv":
            result = b << (a & 31)
        elif m == "srlv":
            result = b >> (a & 31)
        elif m == "srav":
            result = _signed(b) >> (a & 31)
        elif m == "mul":
            result = _signed(a) * _signed(b)
        else:  # pragma: no cover - table and executors kept in sync
            raise MachineError(f"unhandled R-type {m}")
        self.write_register(ins.rd, result)
        return False, None

    def _exec_shift(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        value = self.read_register(ins.rt)
        m = ins.mnemonic
        if m == "sll":
            result = value << ins.shamt
        elif m == "srl":
            result = value >> ins.shamt
        else:  # sra
            result = _signed(value) >> ins.shamt
        self.write_register(ins.rd, result)
        return False, None

    def _exec_alu_i(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        a = self.read_register(ins.rs)
        m = ins.mnemonic
        if m == "addiu":
            result = a + ins.imm
        elif m == "andi":
            result = a & (ins.imm & 0xFFFF)
        elif m == "ori":
            result = a | (ins.imm & 0xFFFF)
        elif m == "xori":
            result = a ^ (ins.imm & 0xFFFF)
        elif m == "slti":
            result = int(_signed(a) < ins.imm)
        elif m == "sltiu":
            result = int(a < (ins.imm & WORD_MASK))
        elif m == "lui":
            result = (ins.imm & 0xFFFF) << 16
        else:  # pragma: no cover
            raise MachineError(f"unhandled I-type {m}")
        self.write_register(ins.rt, result)
        return False, None

    def _exec_mem(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        address = (self.read_register(ins.rs) + ins.imm) & WORD_MASK
        m = ins.mnemonic
        if m == "lw":
            self.write_register(ins.rt, self.memory.load_word(address))
            self.loads += 1
        elif m == "lh":
            self.write_register(ins.rt, self.memory.load_half(address, signed=True))
            self.loads += 1
        elif m == "lhu":
            self.write_register(ins.rt, self.memory.load_half(address, signed=False))
            self.loads += 1
        elif m == "lb":
            self.write_register(ins.rt, self.memory.load_byte(address, signed=True))
            self.loads += 1
        elif m == "lbu":
            self.write_register(ins.rt, self.memory.load_byte(address, signed=False))
            self.loads += 1
        elif m == "sw":
            self.memory.store_word(address, self.read_register(ins.rt))
            self.stores += 1
        elif m == "sh":
            self.memory.store_half(address, self.read_register(ins.rt))
            self.stores += 1
        elif m == "sb":
            self.memory.store_byte(address, self.read_register(ins.rt))
            self.stores += 1
        elif m == "ll":
            self.write_register(
                ins.rt, self.memory.load_linked(self.core_id, address)
            )
            self.loads += 1
        elif m == "sc":
            success = self.memory.store_conditional(
                self.core_id, address, self.read_register(ins.rt)
            )
            self.write_register(ins.rt, int(success))
            self.stores += 1
        else:  # pragma: no cover
            raise MachineError(f"unhandled memory op {m}")
        return False, address

    def _exec_branch(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        a = self.read_register(ins.rs)
        m = ins.mnemonic
        if m == "beq":
            taken = a == self.read_register(ins.rt)
        elif m == "bne":
            taken = a != self.read_register(ins.rt)
        elif m == "blez":
            taken = _signed(a) <= 0
        elif m == "bgtz":
            taken = _signed(a) > 0
        elif m == "bltz":
            taken = _signed(a) < 0
        elif m == "bgez":
            taken = _signed(a) >= 0
        else:  # pragma: no cover
            raise MachineError(f"unhandled branch {m}")
        self.branches += 1
        if taken:
            self.taken_branches += 1
            # self.pc currently points at the delay slot.
            self.next_pc = self.pc + 4 * ins.imm
        return taken, None

    def _exec_jump(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        m = ins.mnemonic
        if m == "j":
            self.next_pc = ins.target << 2
        elif m == "jal":
            self.write_register(31, self.pc + 4)  # return past the delay slot
            self.next_pc = ins.target << 2
        elif m == "jr":
            self.next_pc = self.read_register(ins.rs)
        elif m == "jalr":
            self.write_register(ins.rd, self.pc + 4)
            self.next_pc = self.read_register(ins.rs)
        else:  # pragma: no cover
            raise MachineError(f"unhandled jump {m}")
        return True, None

    def _exec_muldiv(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        a = self.read_register(ins.rs)
        b = self.read_register(ins.rt)
        m = ins.mnemonic
        if m == "mult":
            product = _signed(a) * _signed(b)
            self.lo = product & WORD_MASK
            self.hi = (product >> 32) & WORD_MASK
        elif m == "multu":
            product = a * b
            self.lo = product & WORD_MASK
            self.hi = (product >> 32) & WORD_MASK
        elif m == "div":
            if b == 0:
                # MIPS leaves HI/LO unpredictable on divide-by-zero; we
                # pin them to 0 for deterministic simulation.
                self.lo = self.hi = 0
            else:
                sa, sb = _signed(a), _signed(b)
                quotient = abs(sa) // abs(sb)  # trunc toward zero, as hardware
                if (sa < 0) != (sb < 0):
                    quotient = -quotient
                self.lo = quotient & WORD_MASK
                self.hi = (sa - quotient * sb) & WORD_MASK
        elif m == "divu":
            if b == 0:
                self.lo = self.hi = 0
            else:
                self.lo = (a // b) & WORD_MASK
                self.hi = (a % b) & WORD_MASK
        else:  # pragma: no cover
            raise MachineError(f"unhandled mult/div {m}")
        return False, None

    def _exec_mfhilo(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        value = self.hi if ins.mnemonic == "mfhi" else self.lo
        self.write_register(ins.rd, value)
        return False, None

    def _exec_setb(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        base = self.read_register(ins.rs)
        index = self.read_register(ins.rt)
        apply_setb(self.memory, base, index)
        self.rmw_ops += 1
        self.stores += 1
        return False, base + 4 * (index // 32)

    def _exec_update(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        base = self.read_register(ins.rs)
        last = _signed(self.read_register(ins.rt))
        result = apply_update(self.memory, base, last)
        self.write_register(ins.rd, result)
        self.rmw_ops += 1
        self.loads += 1
        return False, base + 4 * (((last + 1) & WORD_MASK) // 32)

    def _exec_halt(self, ins: Instruction) -> Tuple[bool, Optional[int]]:
        self.halted = True
        return False, None


_EXECUTORS: Dict[str, Callable] = {}
for _m in ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
           "sllv", "srlv", "srav", "mul"):
    _EXECUTORS[_m] = Machine._exec_alu_r
for _m in ("sll", "srl", "sra"):
    _EXECUTORS[_m] = Machine._exec_shift
for _m in ("addiu", "andi", "ori", "xori", "slti", "sltiu", "lui"):
    _EXECUTORS[_m] = Machine._exec_alu_i
for _m in ("lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb", "ll", "sc"):
    _EXECUTORS[_m] = Machine._exec_mem
for _m in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
    _EXECUTORS[_m] = Machine._exec_branch
for _m in ("j", "jal", "jr", "jalr"):
    _EXECUTORS[_m] = Machine._exec_jump
for _m in ("mult", "multu", "div", "divu"):
    _EXECUTORS[_m] = Machine._exec_muldiv
for _m in ("mfhi", "mflo"):
    _EXECUTORS[_m] = Machine._exec_mfhilo
_EXECUTORS["setb"] = Machine._exec_setb
_EXECUTORS["update"] = Machine._exec_update
_EXECUTORS["halt"] = Machine._exec_halt


class MultiCoreMachine:
    """Round-robin interleaving of several cores over one shared memory.

    Each :meth:`step` executes one instruction on one live core; the
    schedule argument (or default round-robin) decides which.  Because
    each instruction executes atomically — exactly the guarantee the
    scratchpad hardware gives for ``setb``/``update`` — this is the right
    level to test races between firmware ordering variants.
    """

    def __init__(
        self,
        program: Program,
        core_count: int,
        memory: Optional[Memory] = None,
        entries: Optional[List[str]] = None,
    ) -> None:
        if core_count < 1:
            raise ValueError("need at least one core")
        self.memory = memory if memory is not None else Memory()
        self.memory.store_bytes(program.data_base, program.data)
        self.cores: List[Machine] = []
        for core_id in range(core_count):
            entry = entries[core_id] if entries else None
            core = Machine(
                program, self.memory, core_id=core_id, entry=entry, load_data=False
            )
            self.cores.append(core)

    @property
    def all_halted(self) -> bool:
        return all(core.halted for core in self.cores)

    def step(self, core_index: Optional[int] = None) -> None:
        if core_index is not None:
            self.cores[core_index].step()
            return
        for core in self.cores:
            if not core.halted:
                core.step()

    def run(self, max_steps: int = 10_000_000, schedule=None) -> int:
        """Run to completion.  ``schedule`` may be an iterable of core
        indices to force a specific interleaving (used by the race
        tests); indices of halted cores are skipped."""
        steps = 0
        if schedule is not None:
            for core_index in schedule:
                if self.all_halted:
                    return steps
                core = self.cores[core_index % len(self.cores)]
                if not core.halted:
                    core.step()
                    steps += 1
            # Fall through to round-robin to finish any stragglers.
        while not self.all_halted:
            if steps >= max_steps:
                raise MachineError(f"exceeded {max_steps} steps without halting")
            for core in self.cores:
                if not core.halted:
                    core.step()
                    steps += 1
        return steps
