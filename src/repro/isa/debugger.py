"""Interactive-grade debugging facilities for firmware development.

A reproduction meant to be *used* needs tooling for writing new firmware
kernels, so this module provides the classic debugger surface over
:class:`~repro.isa.machine.Machine`:

* breakpoints by address or label;
* data watchpoints (word granularity) that fire on value change;
* single-step / run-to-break execution;
* register-file and memory dumps and a small execution history ring.

Used by tests and by anyone extending ``repro.firmware.kernels``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.isa.assembler import Program
from repro.isa.instructions import REGISTER_NAMES, disassemble
from repro.isa.machine import Machine, Memory


@dataclass(frozen=True)
class StopReason:
    """Why :meth:`Debugger.run` returned."""

    kind: str                # 'breakpoint' | 'watchpoint' | 'halted' | 'step-limit'
    pc: int
    detail: str = ""


class Debugger:
    """Wraps a machine with breakpoints, watchpoints, and history."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        entry: Optional[str] = None,
        history_depth: int = 32,
    ) -> None:
        self.program = program
        self.machine = Machine(program, memory, entry=entry)
        self._breakpoints: Set[int] = set()
        self._watchpoints: Dict[int, int] = {}  # word address -> last value
        self.history: Deque[Tuple[int, str]] = deque(maxlen=history_depth)
        self.stop_reason: Optional[StopReason] = None

    # -- breakpoints -----------------------------------------------------
    def add_breakpoint(self, where) -> int:
        """Set a breakpoint at an address or label; returns the address."""
        address = self.program.address_of(where) if isinstance(where, str) else where
        if address % 4:
            raise ValueError(f"breakpoint address {address:#x} not word aligned")
        self._breakpoints.add(address)
        return address

    def remove_breakpoint(self, where) -> None:
        address = self.program.address_of(where) if isinstance(where, str) else where
        self._breakpoints.discard(address)

    @property
    def breakpoints(self) -> List[int]:
        return sorted(self._breakpoints)

    # -- watchpoints -----------------------------------------------------
    def add_watchpoint(self, where) -> int:
        """Watch one word (address or data label) for value changes."""
        address = self.program.address_of(where) if isinstance(where, str) else where
        if address % 4:
            raise ValueError(f"watchpoint address {address:#x} not word aligned")
        self._watchpoints[address] = self.machine.memory.load_word(address)
        return address

    def _check_watchpoints(self) -> Optional[str]:
        for address, old in self._watchpoints.items():
            new = self.machine.memory.load_word(address)
            if new != old:
                self._watchpoints[address] = new
                return f"[{address:#x}] {old:#x} -> {new:#x}"
        return None

    # -- execution --------------------------------------------------------
    def step(self) -> Optional[StopReason]:
        """Execute one instruction; returns a stop reason if one fired."""
        if self.machine.halted:
            self.stop_reason = StopReason("halted", self.machine.pc)
            return self.stop_reason
        pc = self.machine.pc
        instruction = self.machine.step()
        self.history.append((pc, disassemble(instruction)))
        changed = self._check_watchpoints()
        if changed is not None:
            self.stop_reason = StopReason("watchpoint", pc, changed)
            return self.stop_reason
        if self.machine.pc in self._breakpoints:
            self.stop_reason = StopReason("breakpoint", self.machine.pc)
            return self.stop_reason
        if self.machine.halted:
            self.stop_reason = StopReason("halted", self.machine.pc)
            return self.stop_reason
        return None

    def run(self, max_steps: int = 1_000_000) -> StopReason:
        """Run until a breakpoint, watchpoint, halt, or the step limit."""
        for _ in range(max_steps):
            reason = self.step()
            if reason is not None:
                return reason
        self.stop_reason = StopReason("step-limit", self.machine.pc)
        return self.stop_reason

    # -- inspection --------------------------------------------------------
    def registers(self) -> Dict[str, int]:
        return {
            f"${name}": self.machine.read_register(index)
            for index, name in enumerate(REGISTER_NAMES)
        }

    def dump_registers(self, nonzero_only: bool = True) -> str:
        lines = []
        for name, value in self.registers().items():
            if nonzero_only and value == 0:
                continue
            lines.append(f"{name:6s} = {value:#010x} ({value})")
        return "\n".join(lines) or "(all registers zero)"

    def dump_memory(self, where, words: int = 8) -> str:
        address = self.program.address_of(where) if isinstance(where, str) else where
        lines = []
        for index in range(words):
            word_address = address + 4 * index
            value = self.machine.memory.load_word(word_address)
            lines.append(f"{word_address:#010x}: {value:#010x}")
        return "\n".join(lines)

    def where(self) -> str:
        """Current pc with its disassembly and nearest preceding label."""
        pc = self.machine.pc
        label = ""
        best = -1
        for name, address in self.program.symbols.items():
            if address <= pc and address > best and address < self.program.data_base:
                label, best = name, address
        offset = pc - best if best >= 0 else pc
        location = f"{label}+{offset:#x}" if label else f"{pc:#x}"
        if self.machine.halted:
            return f"{location}: <halted>"
        instruction = self.program.instruction_at(pc)
        return f"{location}: {disassemble(instruction)}"
