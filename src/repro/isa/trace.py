"""Dynamic instruction trace records.

The ILP limit study (paper Table 2) performs "an offline analysis of a
dynamic instruction trace of idealized NIC firmware".  The functional
machine can capture one of these traces; each entry carries exactly the
information the offline scheduler needs: register dependences, whether
the instruction touches memory, and whether it is a (taken) branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction."""

    pc: int
    mnemonic: str
    sources: Tuple[int, ...]
    destination: Optional[int]
    is_load: bool
    is_store: bool
    is_branch: bool
    is_jump: bool
    taken: bool
    mem_address: Optional[int] = None

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control(self) -> bool:
        """True for anything that can redirect fetch (branch or jump)."""
        return self.is_branch or self.is_jump
