"""Memory-mapped hardware assists for the cycle-level micro tier.

The macro tier models the assists as timed servers; this module gives
the *micro* tier the same hardware, visible to real assembly firmware
exactly the way the Tigon-II exposed it: as memory-mapped progress
pointers and command registers (Section 3.3: "a frame-level parallel
firmware must inspect several different hardware-maintained pointers to
detect events").

:class:`DeviceMemory` extends the functional memory with a device
register window.  Device state is *lazily* evaluated against the
reading core's current cycle, so no global stepping is needed and the
lockstep multi-core scheduler stays exact:

* ``RX_PROD`` (read-only) — frames the MAC has landed in the receive
  buffer by now: one every ``rx_interarrival_cycles``.
* ``RX_CONS`` — firmware-owned consumer pointer (plain storage the
  hardware would watch).
* ``DMA_CMD`` (write-only) — writing enqueues one DMA transfer; each
  completes ``dma_latency_cycles`` after issue, any number in flight
  (the pipelined host path of the macro tier).
* ``DMA_PROD`` (read-only) — DMA transfers completed by now.
* ``DMA_CONS`` — firmware-owned consumer pointer.

The transmit side mirrors Figure 1's steps: ``TXBD_CMD`` requests a
16-descriptor fetch DMA (the assist enforces at most two outstanding,
like its staging buffer), ``TXBD_PROD`` counts frames whose descriptors
have arrived, ``TXDMA_CMD``/``TXDMA_PROD`` move frame data into the
transmit buffer, and writing the in-order pointer ``TX_READY`` releases
frames to the MAC, which serializes them onto the wire
(``TX_DONE`` counts wire completions).

Register offsets are importable constants so assembly kernels and tests
share one definition of the map.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.isa.machine import MachineError, Memory

# Device window: inside the 256 KB scratchpad address space, above the
# firmware's data segment, like a real controller's register aperture.
DEVICE_BASE = 0x0003_F000

RX_PROD_OFFSET = 0x00
RX_CONS_OFFSET = 0x04
DMA_CMD_OFFSET = 0x08
DMA_PROD_OFFSET = 0x0C
DMA_CONS_OFFSET = 0x10
# Transmit side.
TXBD_CMD_OFFSET = 0x14    # write: request a 16-frame BD-fetch DMA
TXBD_PROD_OFFSET = 0x18   # read: frames whose BDs have arrived
TXDMA_CMD_OFFSET = 0x1C   # write: frame-data DMA read into the tx buffer
TXDMA_PROD_OFFSET = 0x20  # read: frame-data DMAs completed
TX_READY_OFFSET = 0x24    # write: in-order MAC hand-off pointer
TX_DONE_OFFSET = 0x28     # read: frames the MAC has put on the wire
# Header-inspection window: firmware selects a received frame and reads
# one word of its protocol header (services like filtering/intrusion
# detection need header access without touching the frame SDRAM).
HDR_SEL_OFFSET = 0x2C     # write: frame sequence to inspect
HDR_VAL_OFFSET = 0x38     # read: selected frame's header word
DEVICE_WINDOW_BYTES = 0x40

RX_PROD_ADDR = DEVICE_BASE + RX_PROD_OFFSET
RX_CONS_ADDR = DEVICE_BASE + RX_CONS_OFFSET
DMA_CMD_ADDR = DEVICE_BASE + DMA_CMD_OFFSET
DMA_PROD_ADDR = DEVICE_BASE + DMA_PROD_OFFSET
DMA_CONS_ADDR = DEVICE_BASE + DMA_CONS_OFFSET
TXBD_CMD_ADDR = DEVICE_BASE + TXBD_CMD_OFFSET
TXBD_PROD_ADDR = DEVICE_BASE + TXBD_PROD_OFFSET
TXDMA_CMD_ADDR = DEVICE_BASE + TXDMA_CMD_OFFSET
TXDMA_PROD_ADDR = DEVICE_BASE + TXDMA_PROD_OFFSET
TX_READY_ADDR = DEVICE_BASE + TX_READY_OFFSET
TX_DONE_ADDR = DEVICE_BASE + TX_DONE_OFFSET
HDR_SEL_ADDR = DEVICE_BASE + HDR_SEL_OFFSET
HDR_VAL_ADDR = DEVICE_BASE + HDR_VAL_OFFSET

TX_BDS_PER_FETCH = 16

#: Register address → mnemonic, for trace events and debugging dumps.
REGISTER_NAMES = {
    RX_PROD_ADDR: "RX_PROD",
    RX_CONS_ADDR: "RX_CONS",
    DMA_CMD_ADDR: "DMA_CMD",
    DMA_PROD_ADDR: "DMA_PROD",
    DMA_CONS_ADDR: "DMA_CONS",
    TXBD_CMD_ADDR: "TXBD_CMD",
    TXBD_PROD_ADDR: "TXBD_PROD",
    TXDMA_CMD_ADDR: "TXDMA_CMD",
    TXDMA_PROD_ADDR: "TXDMA_PROD",
    TX_READY_ADDR: "TX_READY",
    TX_DONE_ADDR: "TX_DONE",
    HDR_SEL_ADDR: "HDR_SEL",
    HDR_VAL_ADDR: "HDR_VAL",
}


def header_word(seq: int) -> int:
    """Deterministic pseudo-header of received frame ``seq``.

    Stands in for the first word of the frame's protocol headers (e.g.
    source address bits); deterministic so tests and firmware agree on
    which frames a filter should match.
    """
    value = (seq * 2654435761) & 0xFFFFFFFF
    return (value ^ (value >> 13)) & 0xFFFFFFFF


class DeviceMemory(Memory):
    """Functional memory with the assist register window mapped in.

    ``cycle`` must be advanced by the executing core model (the
    :class:`~repro.cpu.core.PipelinedCore` does this before every
    instruction); functional-only runs can set it manually or leave the
    devices in their t=0 state.
    """

    def __init__(
        self,
        size_bytes: int = 1 << 20,
        total_rx_frames: int = 64,
        rx_interarrival_cycles: int = 25,
        dma_latency_cycles: int = 40,
        rx_start_cycle: int = 0,
        total_tx_frames: int = 0,
        tx_wire_cycles: int = 25,
        tracer=None,
    ) -> None:
        """``tracer`` (a :class:`repro.obs.Tracer`) records every device
        register access as an instant event on the ``microdev`` track,
        timestamped in core cycles — the micro tier's time base."""
        super().__init__(size_bytes)
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        if total_rx_frames < 0 or total_tx_frames < 0:
            raise ValueError("frame counts must be non-negative")
        if rx_interarrival_cycles < 1 or dma_latency_cycles < 0 or tx_wire_cycles < 1:
            raise ValueError("device timing parameters out of range")
        self.total_rx_frames = total_rx_frames
        self.rx_interarrival_cycles = rx_interarrival_cycles
        self.dma_latency_cycles = dma_latency_cycles
        self.rx_start_cycle = rx_start_cycle
        self.total_tx_frames = total_tx_frames
        self.tx_wire_cycles = tx_wire_cycles
        self.cycle = 0
        self._dma_completion_cycles: List[int] = []  # sorted
        self.dma_commands_issued = 0
        self.device_reads = 0
        self.device_writes = 0
        # Transmit-side state.
        self._txbd_completion_cycles: List[int] = []   # one per 16-frame batch
        self._txdma_completion_cycles: List[int] = []
        self.txdma_commands_issued = 0
        self._tx_ready = 0                   # firmware's in-order pointer
        self._tx_wire_free_cycle = 0         # MAC serialization
        self._tx_wire_completions: List[int] = []

    # ------------------------------------------------------------------
    def _is_device(self, address: int) -> bool:
        return DEVICE_BASE <= address < DEVICE_BASE + DEVICE_WINDOW_BYTES

    def _rx_landed(self) -> int:
        elapsed = self.cycle - self.rx_start_cycle
        if elapsed < 0:
            return 0
        return min(self.total_rx_frames, elapsed // self.rx_interarrival_cycles)

    def _dma_completed(self) -> int:
        return bisect.bisect_right(self._dma_completion_cycles, self.cycle)

    def _txbd_frames_available(self) -> int:
        batches = bisect.bisect_right(self._txbd_completion_cycles, self.cycle)
        return min(self.total_tx_frames, batches * TX_BDS_PER_FETCH)

    def _txbd_outstanding(self) -> int:
        return len(self._txbd_completion_cycles) - bisect.bisect_right(
            self._txbd_completion_cycles, self.cycle
        )

    def _txdma_completed(self) -> int:
        return bisect.bisect_right(self._txdma_completion_cycles, self.cycle)

    def _tx_wire_done(self) -> int:
        return bisect.bisect_right(self._tx_wire_completions, self.cycle)

    # ------------------------------------------------------------------
    def load_word(self, address: int) -> int:
        if not self._is_device(address):
            return super().load_word(address)
        self.device_reads += 1
        if self.tracer.enabled:
            name = REGISTER_NAMES.get(address, f"{address:#x}")
            self.tracer.instant("microdev", f"rd {name}", self.cycle, cycle=self.cycle)
        if address == RX_PROD_ADDR:
            return self._rx_landed()
        if address == DMA_PROD_ADDR:
            return self._dma_completed()
        if address in (RX_CONS_ADDR, DMA_CONS_ADDR):
            return super().load_word(address)
        if address == DMA_CMD_ADDR:
            return self.dma_commands_issued  # reads back the issue count
        if address == TXBD_PROD_ADDR:
            return self._txbd_frames_available()
        if address == TXDMA_CMD_ADDR:
            return self.txdma_commands_issued
        if address == TXDMA_PROD_ADDR:
            return self._txdma_completed()
        if address == TX_READY_ADDR:
            return self._tx_ready
        if address == TX_DONE_ADDR:
            return self._tx_wire_done()
        if address == HDR_SEL_ADDR:
            return super().load_word(address)
        if address == HDR_VAL_ADDR:
            return header_word(super().load_word(HDR_SEL_ADDR))
        raise MachineError(f"read from unmapped device register {address:#x}")

    def store_word(self, address: int, value: int) -> None:
        if not self._is_device(address):
            super().store_word(address, value)
            return
        self.device_writes += 1
        if self.tracer.enabled:
            name = REGISTER_NAMES.get(address, f"{address:#x}")
            self.tracer.instant(
                "microdev", f"wr {name}", self.cycle, cycle=self.cycle, value=value
            )
        if address == DMA_CMD_ADDR:
            done = self.cycle + self.dma_latency_cycles
            bisect.insort(self._dma_completion_cycles, done)
            self.dma_commands_issued += 1
            return
        if address in (RX_CONS_ADDR, DMA_CONS_ADDR):
            super().store_word(address, value)
            return
        if address == TXBD_CMD_ADDR:
            # The assist's staging buffer takes at most two outstanding
            # descriptor fetches, and never fetches past the traffic.
            requested = len(self._txbd_completion_cycles) * TX_BDS_PER_FETCH
            if self._txbd_outstanding() >= 2 or requested >= self.total_tx_frames:
                return
            bisect.insort(
                self._txbd_completion_cycles, self.cycle + self.dma_latency_cycles
            )
            return
        if address == TXDMA_CMD_ADDR:
            bisect.insort(
                self._txdma_completion_cycles, self.cycle + self.dma_latency_cycles
            )
            self.txdma_commands_issued += 1
            return
        if address == TX_READY_ADDR:
            self._advance_tx_ready(value)
            return
        if address == HDR_SEL_ADDR:
            super().store_word(address, value)
            return
        if address in (RX_PROD_ADDR, DMA_PROD_ADDR, TXBD_PROD_ADDR,
                       TXDMA_PROD_ADDR, TX_DONE_ADDR, HDR_VAL_ADDR):
            raise MachineError(
                f"write to read-only device register {address:#x}"
            )
        raise MachineError(f"write to unmapped device register {address:#x}")

    def _advance_tx_ready(self, value: int) -> None:
        """Release frames [ready, value) to the MAC transmitter."""
        if value <= self._tx_ready:
            return  # stale publish from a racing core; pointer only grows
        for _frame in range(self._tx_ready, min(value, self.total_tx_frames)):
            start = max(self.cycle, self._tx_wire_free_cycle)
            finish = start + self.tx_wire_cycles
            self._tx_wire_free_cycle = finish
            self._tx_wire_completions.append(finish)
        self._tx_ready = min(value, self.total_tx_frames)

    # -- test/introspection helpers ---------------------------------------
    @property
    def rx_consumer(self) -> int:
        return super().load_word(RX_CONS_ADDR)

    @property
    def dma_consumer(self) -> int:
        return super().load_word(DMA_CONS_ADDR)
