"""Event-driven full-system NIC simulator (the macro tier).

This is the model behind Figures 7 and 8 and Tables 3-6.  It simulates,
with discrete events over picosecond time:

* the device driver posting send descriptors and replenishing receive
  buffers (rings bound the in-flight frame population, as on real NICs);
* the four hardware assists — DMA read/write with pipelined host
  latency and globally serialized SDRAM bursts, MAC tx/rx with real
  Ethernet wire timing;
* the frame-level parallel firmware: a distributed event queue served
  by ``cores`` identical cores, with handler durations produced by the
  :class:`~repro.cpu.costmodel.CoreCostModel` under a dynamically
  measured scratchpad-contention level;
* total frame ordering through :class:`~repro.firmware.ordering.OrderingBoard`
  bitmaps (lock-based or RMW-enhanced), and the firmware's remaining
  locks with FIFO spin-wait contention.

Approximations (documented per DESIGN.md §5): a handler's internal
timeline — including its lock acquisitions — is laid out when the
handler is dispatched rather than interleaved instruction-by-instruction
with other cores; lock hand-off is therefore FIFO in dispatch order.
Measurements happen after a warm-up window so rings, buffers, and the
contention estimate reach steady state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.assists.dma import DmaAssist
from repro.assists.mac import MacReceiver, MacTransmitter
from repro.assists.pci import PciInterface
from repro.check.monitor import NULL_MONITOR
from repro.cpu.costmodel import ContentionModel, HandlerCost, OpProfile
from repro.faults import FaultInjector, FaultPlan
from repro.firmware.events import DistributedEventQueue, EventKind, FrameEvent
from repro.firmware.ordering import OrderingBoard, OrderingCost
from repro.firmware.profiles import (
    BDS_PER_SENT_FRAME,
    RECV_BDS_PER_FETCH,
    SEND_BDS_PER_FETCH,
    SEND_FRAMES_PER_BD_FETCH,
    IDEAL_PROFILES,
)
from repro.host.descriptors import DESCRIPTOR_BYTES
from repro.host.driver import DriverModel
from repro.host.rss import HostQueueModel, RssSpec
from repro.mem.sdram import GddrSdram
from repro.net.ethernet import (
    EthernetTiming,
    TX_HEADER_REGION_BYTES,
)
from repro.nic.config import NicConfig
from repro.obs.metrics import MetricsSampler
from repro.obs.tracer import NULL_TRACER, FrameStage
from repro.sim.kernel import Simulator
from repro.sim.stats import StatRegistry
from repro.units import ps_to_seconds, to_gbps

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# The split of the Send/Receive Frame task between its initiation part
# (claim frames, program the DMA assist) and its completion part
# (process finished DMAs, produce descriptors, notify).
_START_FRACTION = 0.55
_FINISH_FRACTION = 1.0 - _START_FRACTION

# Lock hold times (core cycles) for the short critical sections that
# remain in both firmware variants.
_HOLD_TXQ = 10.0
_HOLD_RXPOOL = 14.0
_HOLD_NOTIFY = 10.0


@dataclass
class FunctionStats:
    """Per-function accounting (rows of Tables 5 and 6)."""

    instructions: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    cycles: float = 0.0
    imiss_cycles: float = 0.0
    load_cycles: float = 0.0
    conflict_cycles: float = 0.0
    pipeline_cycles: float = 0.0
    lock_wait_cycles: float = 0.0
    invocations: int = 0
    frames: int = 0

    @property
    def accesses(self) -> float:
        return self.loads + self.stores

    def per_frame(self, frames: int) -> Dict[str, float]:
        if frames <= 0:
            return {"instructions": 0.0, "accesses": 0.0, "cycles": 0.0}
        return {
            "instructions": self.instructions / frames,
            "accesses": self.accesses / frames,
            "cycles": self.cycles / frames,
        }


FUNCTION_NAMES = (
    "fetch_send_bd",
    "send_frame",
    "send_dispatch_ordering",
    "send_locking",
    "fetch_recv_bd",
    "recv_frame",
    "recv_dispatch_ordering",
    "recv_locking",
)


@dataclass
class ThroughputResult:
    """Everything the benchmarks read out of one simulation run."""

    config: NicConfig
    udp_payload_bytes: int      # mean, for mixed-size workloads
    frame_bytes: int            # mean, for mixed-size workloads
    measure_seconds: float
    tx_frames: int
    rx_frames: int
    tx_payload_bytes: int
    rx_payload_bytes: int
    line_fps_per_direction: float
    rx_offered: int
    rx_dropped: int
    function_stats: Dict[str, FunctionStats]
    busy_cycles: float
    total_core_cycles: float
    cost_totals: HandlerCost
    scratchpad_core_accesses: int
    scratchpad_assist_accesses: int
    sdram_useful_bytes: int
    sdram_transferred_bytes: int
    imem_fill_bytes: float
    conflict_wait: float
    lock_waits: Dict[str, float]
    event_queue_high_water: int
    retries: int
    mean_rx_commit_latency_s: float = 0.0
    mean_outstanding_frames: float = 0.0
    p99_rx_commit_latency_s: float = 0.0
    rx_holes: int = 0
    fault_counters: Dict[str, float] = field(default_factory=dict)
    #: Multi-queue host report (per-ring / per-core); ``None`` on
    #: single-ring runs so legacy JSON stays byte-identical.
    rss: Optional[Dict[str, object]] = None

    # -- headline rates ---------------------------------------------------
    @property
    def tx_fps(self) -> float:
        return self.tx_frames / self.measure_seconds

    @property
    def rx_fps(self) -> float:
        return self.rx_frames / self.measure_seconds

    @property
    def total_fps(self) -> float:
        return self.tx_fps + self.rx_fps

    @property
    def udp_throughput_bps(self) -> float:
        payload = self.tx_payload_bytes + self.rx_payload_bytes
        return payload * 8 / self.measure_seconds

    @property
    def udp_throughput_gbps(self) -> float:
        return to_gbps(self.udp_throughput_bps)

    def line_rate_fraction(self, timing: Optional[EthernetTiming] = None) -> float:
        if timing is not None:
            limit = 2 * timing.frames_per_second(self.frame_bytes)
        else:
            limit = 2 * self.line_fps_per_direction
        return self.total_fps / limit if limit else 0.0

    # -- Table 3 ----------------------------------------------------------
    def ipc_breakdown(self) -> Dict[str, float]:
        """Per-core cycle breakdown over busy cycles (Table 3 rows)."""
        busy = self.busy_cycles
        if busy <= 0:
            return {}
        totals = self.cost_totals
        return {
            "execution": totals.instructions / busy,
            "imiss": totals.imiss_cycles / busy,
            "load": totals.load_cycles / busy,
            "conflict": totals.conflict_cycles / busy,
            "pipeline": totals.pipeline_cycles / busy,
        }

    @property
    def core_utilization(self) -> float:
        if self.total_core_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.total_core_cycles)

    # -- fault degradation --------------------------------------------------
    def fault_report(self) -> Dict[str, object]:
        """Goodput-vs-line-rate breakdown under an attached fault plan.

        *Goodput* is the UDP throughput of frames actually delivered —
        FCS-dropped frames (sequence holes) and tail drops never count,
        so under injected faults this reads below the fault-free line
        rate by exactly the shed load.  ``counters`` carries the
        per-fault-kind event counts measured over the same window.
        """
        return {
            "udp_goodput_gbps": self.udp_throughput_gbps,
            "line_rate_fraction": self.line_rate_fraction(),
            "rx_offered": self.rx_offered,
            "rx_delivered": self.rx_frames,
            "rx_holes": self.rx_holes,
            "rx_tail_dropped": self.rx_dropped,
            "counters": dict(self.fault_counters),
        }

    # -- export -------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary for downstream tooling (CLI --json)."""
        data: Dict[str, object] = {
            "config": self.config.label,
            "udp_payload_bytes": self.udp_payload_bytes,
            "frame_bytes": self.frame_bytes,
            "measure_seconds": self.measure_seconds,
            "tx_fps": self.tx_fps,
            "rx_fps": self.rx_fps,
            "udp_throughput_gbps": self.udp_throughput_gbps,
            "line_rate_fraction": self.line_rate_fraction(),
            "core_utilization": self.core_utilization,
            "rx_dropped": self.rx_dropped,
            "mean_outstanding_frames": self.mean_outstanding_frames,
            "mean_rx_commit_latency_us": self.mean_rx_commit_latency_s * 1e6,
            "p99_rx_commit_latency_us": self.p99_rx_commit_latency_s * 1e6,
            "ipc_breakdown": self.ipc_breakdown(),
            "bandwidth": self.bandwidth_report(),
            "functions": {
                name: {
                    "instructions": stats.instructions,
                    "accesses": stats.accesses,
                    "cycles": stats.cycles,
                    "invocations": stats.invocations,
                    "frames": stats.frames,
                }
                for name, stats in self.function_stats.items()
            },
        }
        # Only fault-injected runs grow a "faults" section, keeping
        # fault-free JSON byte-identical to pre-fault-layer output.
        if self.fault_counters:
            data["faults"] = self.fault_report()
        # Likewise only multi-queue runs grow an "rss" section.
        if self.rss is not None:
            data["rss"] = self.rss
        return data

    # -- Table 4 ----------------------------------------------------------
    def bandwidth_report(self) -> Dict[str, float]:
        seconds = self.measure_seconds
        freq = self.config.core_frequency_hz
        core_access_rate = self.scratchpad_core_accesses / seconds
        assist_access_rate = self.scratchpad_assist_accesses / seconds
        return {
            "scratchpad_consumed_gbps": to_gbps(
                (core_access_rate + assist_access_rate) * 32
            ),
            "scratchpad_peak_gbps": to_gbps(self.config.scratchpad_banks * 32 * freq),
            "scratchpad_core_maccesses_per_s": core_access_rate / 1e6,
            "scratchpad_assist_maccesses_per_s": assist_access_rate / 1e6,
            "frame_memory_consumed_gbps": to_gbps(
                self.sdram_transferred_bytes * 8 / seconds
            ),
            "frame_memory_useful_gbps": to_gbps(self.sdram_useful_bytes * 8 / seconds),
            "frame_memory_peak_gbps": to_gbps(
                self.config.sdram_width_bits * 2 * self.config.sdram_frequency_hz
            ),
            "imem_consumed_gbps": to_gbps(self.imem_fill_bytes * 8 / seconds),
            "imem_peak_gbps": to_gbps(128 * freq),
        }


class _Lock:
    """A firmware spinlock with FIFO hand-off in reservation order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.free_at_ps = 0
        self.acquisitions = 0
        self.contended = 0
        self.total_wait_cycles = 0.0


class ThroughputSimulator:
    """One full-duplex streaming experiment."""

    #: Frame budget handed to the :class:`DriverModel`.  ``None`` is the
    #: paper's saturation mode (endless traffic); the fabric endpoint
    #: overrides this to ``0`` so transmit work only exists when a flow
    #: posts it.
    _driver_max_frames: Optional[int] = None

    def __init__(
        self,
        config: NicConfig,
        udp_payload_bytes: int = 1472,
        offered_fraction: float = 1.0,
        size_model=None,
        rx_burst_frames: int = 1,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
        sim: Optional[Simulator] = None,
        clock_prefix: str = "",
        fast: bool = False,
        rss: Optional[RssSpec] = None,
    ) -> None:
        """``size_model`` (a :class:`repro.net.workload.FrameSizeModel`)
        overrides the constant ``udp_payload_bytes`` with per-frame
        sizes — e.g. :class:`repro.net.workload.ImixSize`.

        ``rx_burst_frames`` > 1 makes receive arrivals bursty: frames
        arrive back to back in groups of that size, with idle gaps
        sized so the *average* offered load still matches
        ``offered_fraction`` — an on/off traffic extension for buffer
        stress studies.

        ``tracer`` (a :class:`repro.obs.Tracer`) records per-frame
        lifecycle spans and assist timelines; left ``None``, the null
        tracer is used and the run is bit-identical to an
        uninstrumented one.

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) attaches the
        deterministic fault-injection layer; left ``None`` (or with an
        all-zero plan) none of the fault code paths run and the
        simulation is byte-identical to a fault-free build.

        ``sim`` lets several simulators share one event kernel (the
        multi-NIC fabric); ``clock_prefix`` namespaces this instance's
        clock domains inside a shared kernel (e.g. ``"nic0/"``).  Left
        at their defaults the simulator owns a private kernel exactly
        as before.

        ``fast`` engages the batched hot path (CLI ``--fast``): the rx
        pump chain runs on a heap-free
        :class:`repro.sim.batch.ChainedTimer` and window claims /
        firmware checksum walks read vectorized size arrays.  Every
        fast-path substitution is integer-exact and ticket-faithful, so
        results are byte-identical to the reference path (the golden
        corpus pins both; see docs/observability.md, "Batched fast
        path").

        ``rss`` (a :class:`repro.host.rss.RssSpec`) replaces the
        paper's single descriptor-ring pair with N independent host
        rings behind a Toeplitz flow hash, per-ring interrupt
        moderation, and a host-core contention model.  Left ``None``
        the single-ring host interface runs exactly as before —
        byte-identical results and cache keys."""
        from repro.net.workload import ConstantSize

        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Invariant monitor (null by default).  Attach an armed monitor
        #: with :func:`repro.check.attach_monitor`, which also wires the
        #: kernel / boards / queue / memories this simulator owns.
        self.monitor = NULL_MONITOR
        self.fault_plan = fault_plan
        self.faults: Optional[FaultInjector] = (
            FaultInjector(fault_plan, tracer=self.tracer)
            if fault_plan is not None and fault_plan.enabled
            else None
        )
        self.sizes = size_model if size_model is not None else ConstantSize(
            udp_payload_bytes
        )
        # Per-direction views of the size model.  The standalone
        # simulator drives both directions from the same stream (the
        # paper's uncorrelated tx/rx setup); the fabric endpoint
        # substitutes per-direction recorded models so correlated flow
        # traffic carries real per-frame sizes.
        self.tx_sizes = self.sizes
        self.rx_sizes = self.sizes
        self.udp_payload_bytes = round(self.sizes.mean_payload_bytes)
        self.frame_bytes = round(self.sizes.mean_frame_bytes)
        self.timing = EthernetTiming()
        self.line_fps_per_direction = self.sizes.line_rate_fps(self.timing)
        self.sim = sim if sim is not None else Simulator()
        self.core_clock = self.sim.add_clock(
            clock_prefix + "core", config.core_frequency_hz
        )
        self.sdram_clock = self.sim.add_clock(
            clock_prefix + "sdram", config.sdram_frequency_hz
        )

        self.sdram = GddrSdram(
            frequency_hz=config.sdram_frequency_hz,
            data_width_bits=config.sdram_width_bits,
        )
        self.pci = PciInterface(dma_latency_ps=config.dma_latency_ps)
        self.dma_read = DmaAssist(
            "dma-read", self.sim, self.pci, self.sdram, self.sdram_clock, to_nic=True
        )
        self.dma_write = DmaAssist(
            "dma-write", self.sim, self.pci, self.sdram, self.sdram_clock, to_nic=False
        )
        self.mac_tx = MacTransmitter(self.sdram, self.sdram_clock, self.timing)
        if self.faults is not None:
            # The assists consult the injector at decision points; with
            # no injector attached they take their fault-free fast path.
            self.pci.injector = self.faults
            self.dma_read.injector = self.faults
            self.dma_write.injector = self.faults

        if rx_burst_frames < 1:
            raise ValueError("rx_burst_frames must be >= 1")

        def rx_gap(seq: int) -> int:
            wire = self.timing.frame_time_ps(self.rx_sizes.frame_bytes(seq))
            if rx_burst_frames == 1:
                return round(wire / offered_fraction)
            # Within a burst: back-to-back (one wire time).  The last
            # frame of each burst carries the whole idle gap, sized so
            # the average rate equals offered_fraction of line rate.
            if (seq + 1) % rx_burst_frames:
                return wire
            idle = wire * (rx_burst_frames / offered_fraction - rx_burst_frames + 1)
            return round(idle)

        self.mac_rx = MacReceiver(
            self.sdram,
            self.sdram_clock,
            timing=self.timing,
            gap_fn=rx_gap,
        )
        #: Batched hot path (see the constructor docstring).
        self.fast = bool(fast)
        self._rx_timer = (
            self.sim.batch.timer(self._rx_pump, label="rx-pump")
            if self.fast else None
        )
        self.driver = DriverModel(
            self.udp_payload_bytes,
            self.sizes.max_frame_bytes,
            send_ring_capacity=config.send_ring_capacity,
            recv_ring_capacity=config.recv_ring_capacity,
            max_frames=self._driver_max_frames,
        )
        #: Multi-queue host model (the modern-RSS comparison arm);
        #: ``None`` keeps the paper's single-ring host interface with
        #: byte-identical behaviour.
        self.rss = rss
        self.rss_host: Optional[HostQueueModel] = None
        if rss is not None:
            self.rss_host = HostQueueModel(
                rss,
                sim=self.sim,
                frame_bytes=self.driver.frame_bytes,
                send_ring_capacity=config.send_ring_capacity,
                recv_ring_capacity=config.recv_ring_capacity,
                fast=self.fast,
                name=clock_prefix + "rss",
            )
            self.rss_host.on_rx_processed = self._rss_rx_processed
            self.rss_host.on_tx_processed = self._rss_tx_processed

        mode = config.ordering_mode
        self.board_tx_mac = OrderingBoard(
            config.ordering_ring, mode, hw_pointer=True, name="tx_mac"
        )
        self.board_tx_notify = OrderingBoard(
            config.ordering_ring, mode, name="tx_notify"
        )
        self.board_rx = OrderingBoard(config.ordering_ring, mode, name="rx")

        queue_depth = 4096
        if self.faults is not None and fault_plan.event_queue_depth:
            queue_depth = fault_plan.event_queue_depth
        self.queue = DistributedEventQueue(max_depth=queue_depth)
        self.locks: Dict[str, _Lock] = {
            name: _Lock(name)
            for name in ("txq", "rxpool", "notify_tx", "notify_rx", "order_tx", "order_rx")
        }
        self.fn: Dict[str, FunctionStats] = {
            name: FunctionStats() for name in FUNCTION_NAMES
        }
        self.contention = ContentionModel(config.scratchpad_banks)
        # Initial contention estimate: the line-rate control-data access
        # budget (Section 2.1's ~185 accesses/frame-pair, plus ~60%
        # parallelization overhead) spread over the core clock.  The
        # periodic feedback loop refines it from measured traffic.
        line_pairs = self.line_fps_per_direction
        estimated_rate = 300.0 * line_pairs / config.core_frequency_hz
        self._conflict_wait = self.contention.expected_wait(min(2.5, estimated_rate))

        # -- firmware-visible state ---------------------------------------
        self._idle_cores = config.cores
        # Deterministic core identities for handler dispatch: pop()
        # yields the lowest-numbered free core, so trace tracks are
        # stable run to run.  Maintained whether or not tracing is on —
        # the list never influences timing.
        self._free_core_ids: List[int] = list(range(config.cores - 1, -1, -1))
        self._current_core = 0  # core running the handler being laid out
        self._busy_ps = 0.0
        self._tx_fetch_inflight = 0    # frames' worth of BD fetches in flight
        self._tx_bd_onboard = 0        # frames with descriptors on NIC
        self._tx_claim_seq = 0         # next tx frame to start DMA for
        self._tx_mac_seq = 0           # next committed frame to transmit
        self._tx_outstanding_mac = 0
        self._tx_space = config.tx_buffer_bytes
        self._rx_space = config.rx_buffer_bytes
        self._rx_written = 0           # frames landed in rx buffer
        self._rx_claim_seq = 0         # next rx frame to start host DMA for
        self._rx_bds_onboard = 64      # preloaded receive descriptors
        self._rx_fetch_inflight = 0    # receive BDs being fetched
        self._rx_pump_active = False
        self._send_event_queued = False
        self._recv_event_queued = False
        # Fabric integration hooks.  ``None`` in the standalone
        # simulator; each call site is a single ``is not None`` check,
        # so a hook-free run is byte-identical to a pre-fabric build.
        self._tx_wire_hook = None    # (seq, WireEvent) at MAC hand-off
        self._rx_commit_hook = None  # (seq, now_ps) per delivered rx frame
        self._task_claims: Dict[EventKind, bool] = {kind: False for kind in EventKind}
        # -- fault-recovery state (only touched when self.faults is set) --
        # Frames landed (or hole-punched) out of order, waiting for the
        # contiguous _rx_written watermark to reach them.
        self._rx_landed_flags: Set[int] = set()
        # FCS-dropped sequence holes, by recovery phase: removed from
        # *_uncommitted* when the commit pointer passes them (goodput
        # accounting) and from *_completion* when the receive handler
        # resequences past them (skip-mark, no BD, no DMA).
        self._rx_holes_uncommitted: Set[int] = set()
        self._rx_holes_completion: Set[int] = set()

        # -- measurement ----------------------------------------------------
        self._tx_done_frames = 0       # wire-complete transmit frames
        self._rx_done_frames = 0       # committed (delivered) receive frames
        self._rx_dropped = 0
        self._rx_hole_frames = 0       # FCS holes the commit pointer passed
        self._tx_payload_done = 0      # UDP payload bytes on the wire
        self._rx_payload_done = 0      # UDP payload bytes delivered
        self._rx_landed_at: Dict[int, int] = {}   # seq -> SDRAM-landed time
        self._rx_latency_sum_ps = 0.0
        self._rx_latency_samples = 0
        # Registry feeding the metrics sampler / Prometheus exporter;
        # histogram summaries ride along in its snapshot.
        self.stats = StatRegistry()
        # Microsecond buckets up to 1 ms for the latency distribution.
        self.rx_latency_histogram = self.stats.histogram(
            "rx_commit_latency_us",
            [1, 2, 4, 6, 8, 10, 15, 20, 30, 50, 100, 200, 500, 1000],
        )
        self._inflight_sum = 0.0
        self._inflight_samples = 0
        self._assist_accesses = 0
        self._core_accesses = 0.0
        self._cost_totals = HandlerCost(0, 0, 0, 0, 0, 0)
        self._contention_window_accesses = 0.0
        self._contention_window_start_ps = 0

        self._replenish_recv()
        self._refill_send()

    # ==================================================================
    # Multi-queue host interface (RSS)
    # ==================================================================
    def _refill_send(self) -> None:
        """Post send descriptors: legacy fill-to-capacity, or (with a
        multi-queue host) steered, credit-gated per-ring posting."""
        if self.rss_host is not None:
            self.rss_host.refill_send(self.driver, self._tx_ring_for_seq)
        else:
            self.driver.refill_send_ring()

    def _replenish_recv(self) -> None:
        if self.rss_host is not None:
            self.rss_host.replenish_recv(self.driver)
        else:
            self.driver.replenish_recv_ring()

    def _tx_flow_tuple(self, seq: int) -> Tuple[int, int, int, int]:
        """Synthetic flow population for the standalone simulator; the
        fabric endpoint overrides this with real flow identities."""
        flow = seq % self.rss_host.spec.synthetic_flows
        return (0x0A000001, 0x0A000002, 0x8000 + flow, 9999)

    def _rx_flow_tuple(self, seq: int) -> Tuple[int, int, int, int]:
        flow = seq % self.rss_host.spec.synthetic_flows
        return (0x0A000002, 0x0A000001, 9999, 0x8000 + flow)

    def _tx_ring_for_seq(self, seq: int) -> int:
        return self.rss_host.ring_for(*self._tx_flow_tuple(seq))

    def _rx_ring_for_seq(self, seq: int) -> int:
        return self.rss_host.ring_for(*self._rx_flow_tuple(seq))

    def _rss_rx_processed(self, count: int) -> None:
        # A host core recycled receive buffers: credit is back, so the
        # NIC may be able to fetch receive BDs again.
        self._maybe_fetch_recv_bds()

    def _rss_tx_processed(self, count: int) -> None:
        # Send credit returned: post the next frames and let the NIC
        # fetch their descriptors.
        self._refill_send()
        self._maybe_fetch_send_bds()

    # ==================================================================
    # Cost charging
    # ==================================================================
    def _charge(self, fn_name: str, profile: OpProfile, frames: int = 0) -> float:
        """Charge a profile to a function; returns its cycle cost."""
        cost = self.config.cost_model.cost(profile, self._conflict_wait)
        stats = self.fn[fn_name]
        stats.instructions += profile.instructions
        stats.loads += profile.loads
        stats.stores += profile.stores
        stats.cycles += cost.total_cycles
        stats.imiss_cycles += cost.imiss_cycles
        stats.load_cycles += cost.load_cycles
        stats.conflict_cycles += cost.conflict_cycles
        stats.pipeline_cycles += cost.pipeline_cycles
        stats.frames += frames
        totals = self._cost_totals
        totals.instructions += cost.instructions
        totals.execution_cycles += cost.execution_cycles
        totals.imiss_cycles += cost.imiss_cycles
        totals.load_cycles += cost.load_cycles
        totals.conflict_cycles += cost.conflict_cycles
        totals.pipeline_cycles += cost.pipeline_cycles
        self._core_accesses += profile.accesses
        self._contention_window_accesses += profile.accesses
        return cost.total_cycles

    def _charge_ordering(self, fn_name: str, cost: OrderingCost) -> float:
        return self._charge(
            fn_name,
            OpProfile(
                instructions=cost.instructions,
                loads=cost.loads,
                stores=cost.stores,
            ),
        )

    def _acquire_lock(
        self,
        name: str,
        now_ps: int,
        hold_cycles: float,
        fn_name: str,
        cycles_so_far: float = 0.0,
    ) -> float:
        """Reserve a lock FIFO; returns cycles spent (wait + hold prologue).

        The acquire/release instruction cost and the spin cost are
        charged to ``fn_name`` (a locking bucket); the wait itself is
        recorded as lock-wait cycles.

        ``cycles_so_far`` is how deep into its own timeline the calling
        handler is when it reaches this acquire.  The reservation and
        spin layout are computed from the handler's dispatch time
        ``now_ps`` (the documented approximation), but *contention
        accounting* uses the true acquire point: a handler re-acquiring
        a lock it released earlier in its own timeline has not actually
        blocked, so ``contended``/``total_wait_cycles`` are only charged
        when the lock is still held at ``now_ps + cycles_so_far``.
        """
        lock = self.locks[name]
        period = self.core_clock.period_ps
        start_ps = max(now_ps, lock.free_at_ps)
        wait_cycles = (start_ps - now_ps) / period
        lock.free_at_ps = start_ps + round(hold_cycles * period)
        lock.acquisitions += 1
        if self.monitor.enabled:
            self.monitor.lock_acquired(lock, now_ps, start_ps, lock.free_at_ps)
        if wait_cycles > 0:
            acquire_ps = now_ps + self.core_clock.cycles_to_ps(cycles_so_far)
            blocked_cycles = (start_ps - acquire_ps) / period
            if blocked_cycles > 0:
                lock.contended += 1
                lock.total_wait_cycles += blocked_cycles
        cycles = self._charge(fn_name, self.config.firmware.lock_acquire_release)
        if wait_cycles > 0:
            # A waiting core executes its ll/test/branch spin loop for
            # the whole wait; one loop trip costs ~spin_loop_cycles, so
            # the charged profile fills the wait with real instructions.
            cycles += self._charge(fn_name, self.config.firmware.spin_cost(wait_cycles))
            self.fn[fn_name].lock_wait_cycles += wait_cycles
        return cycles

    def _assist_touch(self, count: int) -> None:
        self._assist_accesses += count
        self._contention_window_accesses += count

    def _checksum_profile(
        self, first: int, batch: int, skip: Set[int] = frozenset(), sizes=None
    ) -> Optional[OpProfile]:
        """Per-batch cost of the configured checksum service (§8
        extension).  'assist' folds the sum into the data stream and
        leaves only a status check; 'firmware' walks the payload one
        word at a time on a core.  ``skip`` excludes sequence holes
        (FCS-dropped frames carry no payload to checksum); ``sizes``
        picks the per-direction size model (defaults to the shared
        one)."""
        if sizes is None:
            sizes = self.sizes
        mode = self.config.checksum_offload
        if mode == "none":
            return None
        count = batch - len(skip)
        if count <= 0:
            return None
        if mode == "assist":
            return OpProfile(
                instructions=4.0 * count, loads=1.0 * count, stores=0.0
            )
        # Firmware mode: the cores must read payload words from the
        # *frame* SDRAM — the memory the partitioned design deliberately
        # keeps them away from.  Each word costs the 2-instruction
        # add/loop plus an SDRAM round trip (tens of cycles, partially
        # hidden by burst buffering); we fold that stall into the
        # instruction count as ~5 issue-slot equivalents per word.
        # These loads bypass the scratchpad, so they do not appear in
        # its contention accounting.
        if (
            self.fast and _np is not None and not skip and batch > 1
            and sizes.supports_batch
        ):
            # Vectorized payload walk: elementwise IEEE ops are
            # identical to the scalar expression per frame, and the
            # left-fold ``sum`` matches the ``+=`` accumulation order,
            # so the cost comes out bit-identical.
            words = sizes.payload_bytes_array(first, batch) / 4.0
            instructions = sum((12.0 + 7.0 * words).tolist(), 0.0)
            return OpProfile(instructions=instructions, loads=0.0, stores=0.0)
        instructions = 0.0
        for seq in range(first, first + batch):
            if seq in skip:
                continue
            words = sizes.payload_bytes(seq) / 4.0
            instructions += 12.0 + 7.0 * words
        return OpProfile(instructions=instructions, loads=0.0, stores=0.0)

    # ==================================================================
    # Core scheduling
    # ==================================================================
    def _push_event(self, event: FrameEvent) -> None:
        if self.faults is not None and self.queue.is_full:
            self._queue_overflowed(event)
            return
        self.queue.push(event)
        if self.tracer.enabled:
            self.tracer.counter(
                "event-queue", "depth", self.sim.now_ps, len(self.queue)
            )
        self._dispatch()

    def _queue_overflowed(self, event: FrameEvent) -> None:
        """Overflow policy for a full distributed event queue.

        Backpressure by default: defer the push by ``queue_retry_ps``.
        The singleton pump events (SEND_FRAME / RECV_FRAME) are instead
        *dropped* once they have been deferred ``queue_drop_after``
        times — their queued-flag is reset so the next producer-side
        trigger re-issues them, which is how the firmware sheds load
        without losing frames (the frames stay in their rings)."""
        faults = self.faults
        assert faults is not None
        plan = faults.plan
        now = self.sim.now_ps
        if (
            event.kind in (EventKind.SEND_FRAME, EventKind.RECV_FRAME)
            and event.retries >= plan.queue_drop_after
        ):
            faults.note_queue_drop(event.kind.value, now)
            if event.kind is EventKind.SEND_FRAME:
                self._send_event_queued = False
            else:
                self._recv_event_queued = False
            return
        faults.note_queue_overflow(event.kind.value, now)
        event.retries += 1
        self.sim.schedule(plan.queue_retry_ps, lambda: self._push_event(event))

    def _dispatch(self) -> None:
        task_level = self.config.task_level_firmware
        while self._idle_cores > 0 and not self.queue.empty:
            if task_level and self.queue.all_claimed(self._task_claims):
                # Event-register semantics: one core per event type, and
                # every queued type is already being handled.  Popping
                # now would only rotate claimed events through the retry
                # path — reordering them without making progress — so
                # leave the queue untouched until a handler finishes.
                break
            event = self.queue.pop()
            assert event is not None
            if task_level and self._task_claims[event.kind]:
                self.queue.push_retry(event)
                continue
            self._task_claims[event.kind] = True
            self._idle_cores -= 1
            core_id = self._free_core_ids.pop()
            if self.monitor.enabled:
                self.monitor.core_claimed(self, core_id)
            self._current_core = core_id
            cycles = self._run_handler(event)
            duration_ps = self.core_clock.cycles_to_ps(max(1.0, cycles))
            self._busy_ps += duration_ps
            if self.tracer.enabled:
                self.tracer.complete(
                    f"core{core_id}",
                    event.kind.value,
                    self.sim.now_ps,
                    duration_ps,
                    first_seq=event.first_seq,
                    count=event.count,
                )
            self.sim.schedule(
                duration_ps,
                lambda k=event.kind, c=core_id: self._handler_done(k, c),
            )

    def _handler_done(self, kind: EventKind, core_id: int) -> None:
        if self.monitor.enabled:
            self.monitor.core_released(self, core_id)
        self._idle_cores += 1
        self._free_core_ids.append(core_id)
        self._task_claims[kind] = False
        self._dispatch()

    # ==================================================================
    # Handlers (each returns its cycle cost; side effects scheduled)
    # ==================================================================
    _EVENT_FN = {
        EventKind.FETCH_SEND_BD: "fetch_send_bd",
        EventKind.SEND_FRAME: "send_frame",
        EventKind.SEND_COMPLETE: "send_frame",
        EventKind.FETCH_RECV_BD: "fetch_recv_bd",
        EventKind.RECV_FRAME: "recv_frame",
        EventKind.RECV_COMPLETE: "recv_frame",
    }

    def _run_handler(self, event: FrameEvent) -> float:
        now = self.sim.now_ps
        self.fn[self._EVENT_FN[event.kind]].invocations += 1
        if event.kind is EventKind.FETCH_SEND_BD:
            return self._handle_fetch_send_bd(now, event)
        if event.kind is EventKind.SEND_FRAME:
            return self._handle_send_frame(now)
        if event.kind is EventKind.SEND_COMPLETE:
            return self._handle_send_complete(now, event)
        if event.kind is EventKind.FETCH_RECV_BD:
            return self._handle_fetch_recv_bd(now, event)
        if event.kind is EventKind.RECV_FRAME:
            return self._handle_recv_frame(now)
        if event.kind is EventKind.RECV_COMPLETE:
            return self._handle_recv_complete(now, event)
        raise ValueError(f"no handler for {event.kind}")

    # -- send path ------------------------------------------------------
    def _maybe_fetch_send_bds(self) -> None:
        # Descriptor-fetch DMAs pipeline: several batches may be in
        # flight at once, bounded by the scratchpad BD staging buffer —
        # this is what hides large host latencies (the NIC keeps
        # "several hundred outstanding frames", Section 7).
        if (
            self._tx_bd_onboard
            + self._tx_fetch_inflight
            + SEND_FRAMES_PER_BD_FETCH
            > self.config.tx_bd_buffer_frames
        ):
            return  # scratchpad BD staging buffer is full
        if self.driver.send_bds_available() < SEND_BDS_PER_FETCH:
            self._refill_send()
        if self.driver.send_bds_available() < SEND_BDS_PER_FETCH:
            return
        self._tx_fetch_inflight += SEND_FRAMES_PER_BD_FETCH
        self.driver.consume_send_bds(SEND_BDS_PER_FETCH)
        self._push_event(FrameEvent(EventKind.FETCH_SEND_BD))

    def _handle_fetch_send_bd(self, now: int, event: FrameEvent) -> float:
        fw = self.config.firmware
        # The base producer always fetches full batches (count 0 =>
        # the batching default); flow-driven endpoints carry explicit
        # partial batch sizes in the event.
        frames = event.count or SEND_FRAMES_PER_BD_FETCH
        cycles = self._charge("send_dispatch_ordering", fw.dispatch_per_event)
        cycles += self._acquire_lock("txq", now, _HOLD_TXQ, "send_locking", cycles)
        profile = IDEAL_PROFILES["fetch_send_bd"].per_frame.plus(
            fw.reentrancy_per_frame
        ).scaled(frames)
        cycles += self._charge("fetch_send_bd", profile, frames=frames)
        transfer = self.dma_read.descriptor_transfer(
            now + self.core_clock.cycles_to_ps(cycles),
            frames * BDS_PER_SENT_FRAME * DESCRIPTOR_BYTES,
        )
        self._assist_touch(self.config.assist_accesses_per_dma)
        if self.tracer.enabled:
            self.tracer.complete(
                "dma-read",
                "fetch-send-bds",
                transfer.issue_ps,
                transfer.latency_ps,
                nbytes=transfer.nbytes,
            )
        self.sim.schedule_at(transfer.complete_ps, lambda: self._send_bds_arrived(frames))
        return cycles

    def _send_bds_arrived(self, frames: int) -> None:
        self._tx_bd_onboard += frames
        self._tx_fetch_inflight -= frames
        self._queue_send_frame_event()
        self._maybe_fetch_send_bds()

    def _queue_send_frame_event(self) -> None:
        if self._send_event_queued:
            return
        if self._tx_bd_onboard <= 0:
            return
        self._send_event_queued = True
        self._push_event(FrameEvent(EventKind.SEND_FRAME))

    def _handle_send_frame(self, now: int) -> float:
        fw = self.config.firmware
        self._send_event_queued = False
        # Claim as many frames as have staged BDs, fit the batch limit,
        # and fit (by their individual sizes) in the transmit buffer.
        batch_limit = min(self._tx_bd_onboard, self.config.send_batch_max)
        batch = 0
        bytes_needed = 0
        if (
            self.fast and _np is not None and batch_limit > 1
            and self.tx_sizes.supports_batch
        ):
            # Vectorized window claim: an integer cumsum over the exact
            # per-sequence sizes, then one bisection for "how many fit".
            # Claims while cumulative <= space, the same arithmetic as
            # the scalar loop below, so the claim is bit-identical.
            cumulative = _np.cumsum(
                self.tx_sizes.frame_bytes_array(self._tx_claim_seq, batch_limit)
            )
            batch = int(
                _np.searchsorted(cumulative, self._tx_space, side="right")
            )
            if batch:
                bytes_needed = int(cumulative[batch - 1])
        else:
            while batch < batch_limit:
                frame_size = self.tx_sizes.frame_bytes(self._tx_claim_seq + batch)
                if bytes_needed + frame_size > self._tx_space:
                    break
                bytes_needed += frame_size
                batch += 1
        cycles = self._charge("send_dispatch_ordering", fw.dispatch_per_event)
        if self.board_tx_mac.requires_lock:
            # The software dispatch loop "inspects the final-stage
            # results in-order for a done status" on every pass, commit
            # or not; the RMW firmware folds this into the completion
            # handler's single `update`.
            cycles += self._commit_tx(now, cycles)
        if batch <= 0:
            self.queue.retries += 1
            return cycles  # retried when space frees or BDs arrive
        cycles += self._acquire_lock("txq", now, _HOLD_TXQ, "send_locking", cycles)
        first = self._tx_claim_seq
        self._tx_claim_seq += batch
        self._tx_bd_onboard -= batch
        self._tx_space -= bytes_needed
        cycles += self._charge(
            "send_dispatch_ordering", fw.dispatch_per_frame.scaled(batch)
        )
        start_profile = IDEAL_PROFILES["send_frame"].per_frame.plus(
            fw.reentrancy_per_frame
        ).scaled(batch * _START_FRACTION)
        cycles += self._charge("send_frame", start_profile, frames=batch)
        checksum = self._checksum_profile(first, batch, sizes=self.tx_sizes)
        if checksum is not None:
            cycles += self._charge("send_frame", checksum)

        issue_ps = now + self.core_clock.cycles_to_ps(cycles)
        pending = {"left": 2 * batch}
        if self.tracer.enabled:
            core_track = f"core{self._current_core}"
            for seq in range(first, first + batch):
                self.tracer.frame_stage("tx", seq, FrameStage.EVENT_DISPATCHED, now)
                self.tracer.frame_stage(
                    "tx", seq, FrameStage.HANDLER_RUN, now, track=core_track
                )
                self.tracer.frame_stage(
                    "tx", seq, FrameStage.DMA_ISSUED, issue_ps, track="dma-read"
                )

        def transfer_done(_finish_ps: int, f: int = first, b: int = batch) -> None:
            pending["left"] -= 1
            if pending["left"] == 0:
                if self.tracer.enabled:
                    done_ps = self.sim.now_ps
                    for seq in range(f, f + b):
                        self.tracer.frame_stage(
                            "tx", seq, FrameStage.DMA_COMPLETE, done_ps, track="dma-read"
                        )
                    self.tracer.complete(
                        "dma-read",
                        f"tx-frames {f}+{b}",
                        issue_ps,
                        max(0, done_ps - issue_ps),
                        first_seq=f,
                        count=b,
                    )
                self._push_event(FrameEvent(EventKind.SEND_COMPLETE, first_seq=f, count=b))

        for index in range(batch):
            seq = first + index
            sdram_addr = self._tx_slot_address(seq)
            payload_bytes = max(
                1, self.tx_sizes.frame_bytes(seq) - TX_HEADER_REGION_BYTES
            )
            self.dma_read.frame_transfer(
                issue_ps,
                self.driver.layout.tx_header_address(seq),
                sdram_addr,
                TX_HEADER_REGION_BYTES,
                transfer_done,
            )
            self.dma_read.frame_transfer(
                issue_ps,
                self.driver.layout.tx_payload_address(seq),
                sdram_addr + 64,
                payload_bytes,
                transfer_done,
            )
            self._assist_touch(2 * self.config.assist_accesses_per_dma)
        if self._tx_bd_onboard > 0:
            self._queue_send_frame_event()
        self._maybe_fetch_send_bds()
        return cycles

    def _handle_send_complete(self, now: int, event: FrameEvent) -> float:
        fw = self.config.firmware
        batch = event.count
        cycles = self._charge("send_dispatch_ordering", fw.dispatch_per_event)
        finish_profile = IDEAL_PROFILES["send_frame"].per_frame.scaled(
            batch * _FINISH_FRACTION
        )
        cycles += self._charge("send_frame", finish_profile, frames=0)
        cycles += self._charge(
            "send_dispatch_ordering", fw.send_completion_per_frame.scaled(batch)
        )

        # Two send-side ordering points: MAC hand-off and host notify.
        # Software mode must take the ordering lock around every status
        # flag update; the RMW instructions make each mark one atomic op.
        software = self.board_tx_mac.requires_lock
        for seq in range(event.first_seq, event.first_seq + batch):
            if software:
                # Every status-flag update synchronizes: acquire, RMW
                # the flag word, release (Section 3.3).
                cycles += self._acquire_lock(
                    "order_tx", now, 22.0, "send_dispatch_ordering", cycles
                )
            cycles += self._charge_ordering(
                "send_dispatch_ordering", self.board_tx_mac.mark_done(seq)
            )
            cycles += self._charge_ordering(
                "send_dispatch_ordering", self.board_tx_notify.mark_done(seq)
            )
        cycles += self._commit_tx(now, cycles)
        self._maybe_fetch_send_bds()
        return cycles

    def _commit_tx(self, now: int, cycles_so_far: float) -> float:
        """Commit pass over both send-side boards, with side effects."""
        cycles = 0.0
        if self.board_tx_mac.requires_lock:
            cycles += self._acquire_lock(
                "order_tx", now, 26.0, "send_dispatch_ordering", cycles_so_far + cycles
            )
        first_committed = self.board_tx_mac.commit_seq
        committed, cost = self.board_tx_mac.commit()
        cycles += self._charge_ordering("send_dispatch_ordering", cost)
        if committed and self.tracer.enabled:
            for seq in range(first_committed, first_committed + committed):
                self.tracer.frame_stage("tx", seq, FrameStage.COMMITTED, now)
        notified, notify_cost = self.board_tx_notify.commit()
        cycles += self._charge_ordering("send_dispatch_ordering", notify_cost)
        if notified:
            cycles += self._acquire_lock(
                "notify_tx", now, _HOLD_NOTIFY, "send_locking", cycles_so_far + cycles
            )
            done_ps = now + self.core_clock.cycles_to_ps(cycles_so_far + cycles)
            self.dma_write.descriptor_transfer(done_ps, DESCRIPTOR_BYTES)
            self._assist_touch(self.config.assist_accesses_per_dma)
            if self.rss_host is not None:
                first = self.board_tx_notify.commit_seq - notified
                self.rss_host.complete_tx(
                    first, notified, self._tx_ring_for_seq, done_ps
                )
                self._refill_send()
            else:
                interrupt = (
                    self.board_tx_notify.commit_seq
                    % self.config.interrupt_coalesce_frames
                ) < notified
                self.driver.complete_sends(notified, interrupt)
                self.driver.refill_send_ring()
        if committed:
            self.sim.schedule(
                self.core_clock.cycles_to_ps(cycles_so_far + cycles), self._mac_tx_pump
            )
        return cycles

    def _mac_tx_pump(self) -> None:
        while (
            self._tx_outstanding_mac < 2
            and self._tx_mac_seq < self.board_tx_mac.commit_seq
        ):
            seq = self._tx_mac_seq
            self._tx_mac_seq += 1
            self._tx_outstanding_mac += 1
            wire = self.mac_tx.transmit(
                self.sim.now_ps,
                seq,
                self._tx_slot_address(seq),
                self.tx_sizes.frame_bytes(seq),
            )
            self._assist_touch(self.config.assist_accesses_per_mac_frame)
            if self.tracer.enabled:
                self.tracer.complete(
                    "mac-tx",
                    f"tx {seq}",
                    wire.wire_start_ps,
                    wire.wire_end_ps - wire.wire_start_ps,
                    seq=seq,
                )
                self.tracer.frame_stage(
                    "tx", seq, FrameStage.WIRE, wire.wire_end_ps, track="mac-tx"
                )
            if self._tx_wire_hook is not None:
                self._tx_wire_hook(seq, wire)
            self.sim.schedule_at(
                wire.wire_end_ps, lambda s=seq: self._tx_wire_done(s)
            )

    def _tx_wire_done(self, seq: int) -> None:
        self._tx_outstanding_mac -= 1
        self._tx_space += self.tx_sizes.frame_bytes(seq)
        self._tx_done_frames += 1
        self._tx_payload_done += self.tx_sizes.payload_bytes(seq)
        self._queue_send_frame_event()
        self._mac_tx_pump()

    def _tx_slot_address(self, seq: int) -> int:
        slots = max(1, self.config.tx_buffer_bytes // 2048)
        return (seq % slots) * 2048

    # -- receive path -----------------------------------------------------
    def _start_rx(self) -> None:
        if self._rx_pump_active:
            return
        self._rx_pump_active = True
        self._rx_pump()

    def _rx_pump(self) -> None:
        now = self.sim.now_ps
        frame_size = self.rx_sizes.frame_bytes(self.mac_rx._next_seq)
        if self._rx_space < frame_size:
            # Buffer full: the wire does not wait.  Sleep until space
            # frees (wake comes from _rx_space_freed); frames whose slot
            # passes meanwhile are dropped there.
            self._rx_pump_active = False
            return
        arrival = self.mac_rx.next_arrival_ps()
        if arrival > now:
            self._schedule_rx_pump(arrival)
            return
        self._rx_space -= frame_size
        wire = self.mac_rx.take_frame(now, frame_size)
        self._assist_touch(self.config.assist_accesses_per_mac_frame)
        if self.tracer.enabled:
            self.tracer.complete(
                "mac-rx",
                f"rx {wire.seq}",
                wire.wire_start_ps,
                wire.wire_end_ps - wire.wire_start_ps,
                seq=wire.seq,
            )
        self.sim.schedule_at(wire.wire_end_ps, lambda s=wire.seq: self._rx_store(s))
        # Chain to the next arrival.
        next_arrival = self.mac_rx.next_arrival_ps()
        self._schedule_rx_pump(max(now, next_arrival))

    def _schedule_rx_pump(self, when_ps: int) -> None:
        """Arm the next rx pump wake-up.

        Reference path: an ordinary heap event, exactly as before.
        Fast path: the single-slot :class:`~repro.sim.batch.ChainedTimer`
        allocates its kernel ticket at this same program point, so
        (time, priority, ticket) ordering — including the exact tie
        where a frame's store event and the next arrival land on the
        same picosecond — is byte-identical, with no heap traffic.
        """
        if self._rx_timer is not None:
            self._rx_timer.arm(when_ps)
        else:
            self.sim.schedule_at(when_ps, self._rx_pump)

    def _rx_store(self, seq: int) -> None:
        if self.faults is not None and self.faults.rx_fcs_corrupt(seq, self.sim.now_ps):
            # Bad FCS: the MAC drops the frame instead of storing it.
            # Its sequence number is already consumed, so recovery means
            # punching a hole the ordering commit can pass.
            self._rx_fault_drop(seq)
            return
        done_ps = self.mac_rx.store(
            self.sim.now_ps, self._rx_slot_address(seq), self.rx_sizes.frame_bytes(seq)
        )
        self.sim.schedule_at(done_ps, lambda s=seq: self._rx_frame_landed(s))

    def _rx_fault_drop(self, seq: int) -> None:
        """Recovery bookkeeping for an FCS-dropped receive frame."""
        # No store happened: refund the buffer space claimed at arrival
        # and wake the pump if the full buffer had put it to sleep.
        self._rx_space += self.rx_sizes.frame_bytes(seq)
        self._rx_holes_uncommitted.add(seq)
        self._rx_holes_completion.add(seq)
        self._rx_frame_landed(seq, hole=True)
        self._rx_space_freed()

    def _rx_space_freed(self) -> None:
        if not self._rx_pump_active:
            dropped = self.mac_rx.skip_backlog(self.sim.now_ps)
            self._rx_dropped += dropped
            if dropped and self.tracer.enabled:
                self.tracer.instant(
                    "mac-rx", "tail-drop", self.sim.now_ps, dropped=dropped
                )
            self._rx_pump_active = True
            self._rx_pump()

    def _rx_frame_landed(self, seq: int, hole: bool = False) -> None:
        if not hole:
            self._rx_landed_at[seq] = self.sim.now_ps
            if self.tracer.enabled:
                self.tracer.frame_stage(
                    "rx", seq, FrameStage.RX_LANDED, self.sim.now_ps, track="mac-rx"
                )
        if self.faults is None:
            # SDRAM stores complete in order, so landings are contiguous.
            self._rx_written += 1
        else:
            # A hole "lands" at wire end while an earlier frame's store
            # may still be in flight, so landings can arrive out of
            # order; advance the contiguous watermark explicitly.
            self._rx_landed_flags.add(seq)
            while self._rx_written in self._rx_landed_flags:
                self._rx_landed_flags.remove(self._rx_written)
                self._rx_written += 1
        self._queue_recv_frame_event()

    def _queue_recv_frame_event(self) -> None:
        if self._recv_event_queued:
            return
        if self._rx_written <= self._rx_claim_seq:
            return
        self._recv_event_queued = True
        self._push_event(FrameEvent(EventKind.RECV_FRAME))

    def _rx_claim_window(self, available: int) -> "tuple":
        """Fault-path batch selection over the claim window.

        Sequence holes (FCS drops) occupy slots in the window but need
        no receive BD and no host DMA, so they never count against
        ``_rx_bds_onboard``.  Returns ``(batch, holes)`` where ``holes``
        is the tuple of hole sequence numbers inside the batch."""
        limit = min(available, self.config.recv_batch_max)
        batch = 0
        real = 0
        holes = []
        while batch < limit:
            seq = self._rx_claim_seq + batch
            if seq in self._rx_holes_completion:
                holes.append(seq)
            else:
                if real >= self._rx_bds_onboard:
                    break
                real += 1
            batch += 1
        return batch, tuple(holes)

    def _handle_recv_frame(self, now: int) -> float:
        fw = self.config.firmware
        self._recv_event_queued = False
        available = self._rx_written - self._rx_claim_seq
        if self.faults is None:
            batch = min(available, self.config.recv_batch_max, self._rx_bds_onboard)
            holes: "tuple" = ()
        else:
            batch, holes = self._rx_claim_window(available)
        real = batch - len(holes)
        cycles = self._charge("recv_dispatch_ordering", fw.dispatch_per_event)
        if self.board_rx.requires_lock:
            cycles += self._commit_rx(now, cycles)
        self._maybe_fetch_recv_bds()
        if batch <= 0:
            self.queue.retries += 1
            return cycles
        first = self._rx_claim_seq
        if holes:
            # The handler sees the MAC's error status for each hole and
            # resequences past it: a skip-mark on the ordering bitmap so
            # the commit pointer can advance over the missing frame.
            for seq in holes:
                if self.board_rx.requires_lock:
                    cycles += self._acquire_lock(
                        "order_rx", now, 11.0, "recv_dispatch_ordering", cycles
                    )
                cycles += self._charge_ordering(
                    "recv_dispatch_ordering", self.board_rx.skip(seq)
                )
                self._rx_holes_completion.discard(seq)
        if real <= 0:
            # Nothing but holes in the window: commit straight past them.
            self._rx_claim_seq += batch
            cycles += self._commit_rx(now, cycles)
            if self._rx_written > self._rx_claim_seq:
                self._queue_recv_frame_event()
            return cycles
        # The receive-path lock: the shared host-buffer pool.  Held
        # per-frame work is done inside, which is why the paper sees it
        # heat up when RMW removes the ordering serialization.
        cycles += self._acquire_lock(
            "rxpool", now, _HOLD_RXPOOL + 2.0 * real, "recv_locking", cycles
        )
        self._rx_claim_seq += batch
        self._rx_bds_onboard -= real
        cycles += self._charge(
            "recv_dispatch_ordering", fw.dispatch_per_frame.scaled(real)
        )
        start_profile = IDEAL_PROFILES["recv_frame"].per_frame.plus(
            fw.reentrancy_per_frame
        ).scaled(real * _START_FRACTION)
        cycles += self._charge("recv_frame", start_profile, frames=real)
        checksum = self._checksum_profile(
            first, batch, skip=set(holes), sizes=self.rx_sizes
        )
        if checksum is not None:
            cycles += self._charge("recv_frame", checksum)

        issue_ps = now + self.core_clock.cycles_to_ps(cycles)
        pending = {"left": real}
        if self.tracer.enabled:
            core_track = f"core{self._current_core}"
            for seq in range(first, first + batch):
                if seq in holes:
                    continue
                self.tracer.frame_stage("rx", seq, FrameStage.EVENT_DISPATCHED, now)
                self.tracer.frame_stage(
                    "rx", seq, FrameStage.HANDLER_RUN, now, track=core_track
                )
                self.tracer.frame_stage(
                    "rx", seq, FrameStage.DMA_ISSUED, issue_ps, track="dma-write"
                )

        def transfer_done(
            _finish_ps: int, f: int = first, b: int = batch, h: "tuple" = holes
        ) -> None:
            pending["left"] -= 1
            if pending["left"] == 0:
                if self.tracer.enabled:
                    done_ps = self.sim.now_ps
                    for seq in range(f, f + b):
                        if seq in h:
                            continue
                        self.tracer.frame_stage(
                            "rx", seq, FrameStage.DMA_COMPLETE, done_ps, track="dma-write"
                        )
                    self.tracer.complete(
                        "dma-write",
                        f"rx-frames {f}+{b}",
                        issue_ps,
                        max(0, done_ps - issue_ps),
                        first_seq=f,
                        count=b,
                    )
                self._push_event(
                    FrameEvent(
                        EventKind.RECV_COMPLETE,
                        first_seq=f,
                        count=b,
                        payload=h if h else None,
                    )
                )

        for index in range(batch):
            seq = first + index
            if seq in holes:
                continue
            self.dma_write.frame_transfer(
                issue_ps,
                self.driver.layout.rx_buffer_address(seq),
                self._rx_slot_address(seq),
                self.rx_sizes.frame_bytes(seq),
                transfer_done,
            )
            self._assist_touch(self.config.assist_accesses_per_dma)
        if self._rx_written > self._rx_claim_seq:
            self._queue_recv_frame_event()
        return cycles

    def _handle_recv_complete(self, now: int, event: FrameEvent) -> float:
        fw = self.config.firmware
        batch = event.count
        # Sequence holes inside the bundle (fault path) were already
        # skip-marked at claim time: no per-frame completion work, and
        # marking them again would corrupt the ordering bitmap.
        holes = event.payload or ()
        real = batch - len(holes)
        cycles = self._charge("recv_dispatch_ordering", fw.dispatch_per_event)
        finish_profile = IDEAL_PROFILES["recv_frame"].per_frame.scaled(
            real * _FINISH_FRACTION
        )
        cycles += self._charge("recv_frame", finish_profile, frames=0)
        cycles += self._charge(
            "recv_dispatch_ordering", fw.recv_completion_per_frame.scaled(real)
        )

        software = self.board_rx.requires_lock
        for seq in range(event.first_seq, event.first_seq + batch):
            if seq in holes:
                continue
            if software:
                cycles += self._acquire_lock(
                    "order_rx", now, 11.0, "recv_dispatch_ordering", cycles
                )
            cycles += self._charge_ordering(
                "recv_dispatch_ordering", self.board_rx.mark_done(seq)
            )
        cycles += self._commit_rx(now, cycles)
        return cycles

    def _commit_rx(self, now: int, cycles_so_far: float) -> float:
        """Commit pass over the receive board, with side effects."""
        cycles = 0.0
        if self.board_rx.requires_lock:
            cycles += self._acquire_lock(
                "order_rx", now, 18.0, "recv_dispatch_ordering", cycles_so_far + cycles
            )
        committed, cost = self.board_rx.commit()
        cycles += self._charge_ordering("recv_dispatch_ordering", cost)
        freed_bytes = 0
        holes = 0
        trace_on = self.tracer.enabled
        rss_on = self.rss_host is not None
        # Contiguous (ring, count) runs of delivered frames, in commit
        # order.  Steering is resolved *before* the commit hook fires —
        # the fabric endpoint's steering reads the frame record the hook
        # consumes.
        ring_runs: List[List[int]] = []
        for seq in range(self.board_rx.commit_seq - committed, self.board_rx.commit_seq):
            if self.faults is not None and seq in self._rx_holes_uncommitted:
                # A hole commits (the pointer passes it) but delivers
                # nothing: no payload, no descriptor, no driver notify.
                self._rx_holes_uncommitted.discard(seq)
                holes += 1
                continue
            if rss_on:
                ring = self._rx_ring_for_seq(seq)
                if ring_runs and ring_runs[-1][0] == ring:
                    ring_runs[-1][1] += 1
                else:
                    ring_runs.append([ring, 1])
            freed_bytes += self.rx_sizes.frame_bytes(seq)
            self._rx_payload_done += self.rx_sizes.payload_bytes(seq)
            if trace_on:
                self.tracer.frame_stage("rx", seq, FrameStage.COMMITTED, now)
            landed = self._rx_landed_at.pop(seq, None)
            if landed is not None:
                self._rx_latency_sum_ps += now - landed
                self._rx_latency_samples += 1
                self.rx_latency_histogram.record((now - landed) / 1e6)  # us
            if self._rx_commit_hook is not None:
                self._rx_commit_hook(seq, now)
        delivered = committed - holes
        self._rx_hole_frames += holes
        if delivered:
            cycles += self._acquire_lock(
                "notify_rx", now, _HOLD_NOTIFY, "recv_locking", cycles_so_far + cycles
            )
            done_ps = now + self.core_clock.cycles_to_ps(cycles_so_far + cycles)
            self.dma_write.descriptor_transfer(done_ps, delivered * DESCRIPTOR_BYTES)
            self._assist_touch(self.config.assist_accesses_per_dma)
            if rss_on:
                for ring_index, run in ring_runs:
                    self.rss_host.complete_rx(ring_index, run, done_ps)
            else:
                interrupt = (
                    self.board_rx.commit_seq % self.config.interrupt_coalesce_frames
                ) < committed
                self.driver.complete_receives(delivered, interrupt)
            self._rx_done_frames += delivered
            self._rx_space += freed_bytes
            self.sim.schedule(
                self.core_clock.cycles_to_ps(cycles_so_far + cycles),
                self._rx_space_freed,
            )
        return cycles

    def _rx_slot_address(self, seq: int) -> int:
        slots = max(1, self.config.rx_buffer_bytes // 2048)
        base = self.config.tx_buffer_bytes
        return base + (seq % slots) * 2048

    def _maybe_fetch_recv_bds(self) -> None:
        if (
            self._rx_bds_onboard + self._rx_fetch_inflight
            >= self.config.recv_bd_low_water
        ):
            return
        self._replenish_recv()
        if self.driver.recv_bds_available() < RECV_BDS_PER_FETCH:
            return
        self._rx_fetch_inflight += RECV_BDS_PER_FETCH
        self.driver.consume_recv_bds(RECV_BDS_PER_FETCH)
        self._push_event(FrameEvent(EventKind.FETCH_RECV_BD))

    def _handle_fetch_recv_bd(self, now: int, event: FrameEvent) -> float:
        fw = self.config.firmware
        frames = event.count or RECV_BDS_PER_FETCH
        cycles = self._charge("recv_dispatch_ordering", fw.dispatch_per_event)
        cycles += self._acquire_lock("rxpool", now, _HOLD_RXPOOL, "recv_locking", cycles)
        profile = IDEAL_PROFILES["fetch_recv_bd"].per_frame.plus(
            fw.reentrancy_per_frame
        ).scaled(frames)
        cycles += self._charge("fetch_recv_bd", profile, frames=frames)
        transfer = self.dma_read.descriptor_transfer(
            now + self.core_clock.cycles_to_ps(cycles),
            frames * DESCRIPTOR_BYTES,
        )
        self._assist_touch(self.config.assist_accesses_per_dma)
        if self.tracer.enabled:
            self.tracer.complete(
                "dma-read",
                "fetch-recv-bds",
                transfer.issue_ps,
                transfer.latency_ps,
                nbytes=transfer.nbytes,
            )
        self.sim.schedule_at(transfer.complete_ps, lambda: self._recv_bds_arrived(frames))
        return cycles

    def _recv_bds_arrived(self, count: int) -> None:
        self._rx_bds_onboard += count
        self._rx_fetch_inflight -= count
        self._queue_recv_frame_event()

    # ==================================================================
    # Contention feedback
    # ==================================================================
    def _outstanding_frames(self) -> int:
        """Outstanding-frame population for the contention sampler.

        Subclasses with different sequence-number semantics (e.g. the
        fabric endpoint, where MAC drops do not consume sequence
        numbers) override this.
        """
        return (
            (self.driver._next_send_seq - self._tx_done_frames)
            + (self.mac_rx._next_seq - self.board_rx.commit_seq - self._rx_dropped)
        )

    def _update_contention(self) -> None:
        now = self.sim.now_ps
        # Sample the outstanding-frame population (Section 7: "several
        # hundred outstanding frames in various stages of processing").
        outstanding = self._outstanding_frames()
        self._inflight_sum += max(0, outstanding)
        self._inflight_samples += 1
        elapsed_ps = now - self._contention_window_start_ps
        if elapsed_ps > 0:
            cycles = elapsed_ps / self.core_clock.period_ps
            rate = self._contention_window_accesses / cycles
            target = self.contention.expected_wait(rate)
            # Exponentially smooth the estimate so heavily loaded bank
            # configurations (rho near 1) converge instead of
            # oscillating between cheap and saturated operating points.
            self._conflict_wait = 0.6 * self._conflict_wait + 0.4 * target
        self._contention_window_accesses = 0.0
        self._contention_window_start_ps = now
        if self.tracer.enabled:
            self.tracer.counter(
                "scratchpad", "conflict_wait_cycles", now, self._conflict_wait
            )
            self.tracer.counter(
                "frames", "outstanding", now, max(0, outstanding)
            )
        self.sim.schedule(self._contention_interval_ps, self._update_contention)

    # ==================================================================
    # Metrics export
    # ==================================================================
    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat machine-readable view of the run's live state.

        Names follow the ``kind.name`` convention of
        :meth:`repro.sim.stats.StatRegistry.snapshot` (histogram
        summaries come straight from the registry), so the Prometheus
        formatter types counters correctly.  Reading is side-effect
        free — safe for the :class:`~repro.obs.metrics.MetricsSampler`.
        """
        values = self.stats.snapshot()
        values.update(
            {
                "counter.tx_wire_frames": float(self._tx_done_frames),
                "counter.rx_committed_frames": float(self._rx_done_frames),
                "counter.rx_dropped_frames": float(self._rx_dropped),
                "counter.rx_offered_frames": float(self.mac_rx._next_seq),
                "counter.tx_payload_bytes": float(self._tx_payload_done),
                "counter.rx_payload_bytes": float(self._rx_payload_done),
                "counter.event_queue_enqueues": float(self.queue.enqueues),
                "counter.event_retries": float(self.queue.retries),
                "counter.sdram_transferred_bytes": float(self.sdram.transferred_bytes),
                "counter.sdram_useful_bytes": float(self.sdram.useful_bytes),
                "counter.scratchpad_assist_accesses": float(self._assist_accesses),
                "counter.scratchpad_core_accesses": float(self._core_accesses),
                "gauge.event_queue_depth": float(len(self.queue)),
                "gauge.event_queue_high_water": float(self.queue.high_water),
                "gauge.idle_cores": float(self._idle_cores),
                "gauge.tx_buffer_free_bytes": float(self._tx_space),
                "gauge.rx_buffer_free_bytes": float(self._rx_space),
                "gauge.conflict_wait_cycles": float(self._conflict_wait),
                "gauge.pending_sim_events": float(self.sim.pending_events),
            }
        )
        for name, lock in self.locks.items():
            values[f"counter.lock_wait_cycles.{name}"] = lock.total_wait_cycles
        if self.faults is not None:
            for key, value in self.faults.counters.items():
                values[f"counter.fault.{key}"] = float(value)
            values["counter.rx_hole_frames"] = float(self._rx_hole_frames)
        return values

    def sample_metrics_every(self, interval_ps: int) -> MetricsSampler:
        """Attach and start a periodic metrics sampler.

        Call before :meth:`run`; the sampler rides the simulation's own
        event queue, reads :meth:`metrics_snapshot`, and never perturbs
        simulated timing.
        """
        sampler = MetricsSampler(self.sim, self.metrics_snapshot, interval_ps)
        return sampler.start()

    # ==================================================================
    # Experiment driver
    # ==================================================================
    _contention_interval_ps = 50_000_000  # 50 us

    def start(self) -> None:
        """Schedule the initial events (idempotent per instance).

        :meth:`run` calls this automatically; fabric callers sharing
        one kernel across endpoints call it directly and then drive the
        shared :class:`~repro.sim.kernel.Simulator` themselves.
        """
        if getattr(self, "_started", False):
            return
        self._started = True
        self.sim.schedule(0, self._maybe_fetch_send_bds)
        self.sim.schedule(0, self._start_rx)
        self.sim.schedule(self._contention_interval_ps, self._update_contention)

    def run(self, warmup_s: float = 0.5e-3, measure_s: float = 2.0e-3) -> ThroughputResult:
        """Warm up, measure, and return the results."""
        if warmup_s < 0 or measure_s <= 0:
            raise ValueError("need non-negative warmup and positive measure window")
        warmup_ps = round(warmup_s * 1e12)
        measure_ps = round(measure_s * 1e12)

        self.start()

        self.sim.run(until_ps=warmup_ps)
        snap = self._snapshot()
        self.sim.run(until_ps=warmup_ps + measure_ps)
        return self._build_result(snap, measure_ps)

    # -- snapshots so warm-up is excluded from every statistic ----------
    def _snapshot(self) -> Dict[str, object]:
        return {
            "tx_done": self._tx_done_frames,
            "rx_done": self._rx_done_frames,
            "tx_payload": self._tx_payload_done,
            "rx_payload": self._rx_payload_done,
            "rx_dropped": self._rx_dropped,
            "rx_accepted": self.mac_rx.frames_accepted,
            "rx_next_seq": self.mac_rx._next_seq,
            "fn": copy.deepcopy(self.fn),
            "busy_ps": self._busy_ps,
            "core_accesses": self._core_accesses,
            "assist_accesses": self._assist_accesses,
            "sdram_useful": self.sdram.useful_bytes,
            "sdram_transferred": self.sdram.transferred_bytes,
            "cost": copy.deepcopy(self._cost_totals),
            "lock_waits": {
                name: lock.total_wait_cycles for name, lock in self.locks.items()
            },
            "rx_holes": self._rx_hole_frames,
            "fault_counters": (
                self.faults.snapshot() if self.faults is not None else None
            ),
            # Also opens the multi-queue measurement window (per-ring
            # stat windows + core baselines).
            "rss": (
                self.rss_host.window_reset()
                if self.rss_host is not None
                else None
            ),
            "now_ps": self.sim.now_ps,
        }

    def _build_result(self, snap: Dict[str, object], measure_ps: int) -> ThroughputResult:
        fn_stats: Dict[str, FunctionStats] = {}
        for name, stats in self.fn.items():
            before: FunctionStats = snap["fn"][name]  # type: ignore[index]
            delta = FunctionStats()
            for attr in (
                "instructions", "loads", "stores", "cycles", "imiss_cycles",
                "load_cycles", "conflict_cycles", "pipeline_cycles",
                "lock_wait_cycles", "invocations", "frames",
            ):
                setattr(delta, attr, getattr(stats, attr) - getattr(before, attr))
            fn_stats[name] = delta

        before_cost: HandlerCost = snap["cost"]  # type: ignore[assignment]
        cost_delta = HandlerCost(
            instructions=self._cost_totals.instructions - before_cost.instructions,
            execution_cycles=self._cost_totals.execution_cycles - before_cost.execution_cycles,
            imiss_cycles=self._cost_totals.imiss_cycles - before_cost.imiss_cycles,
            load_cycles=self._cost_totals.load_cycles - before_cost.load_cycles,
            conflict_cycles=self._cost_totals.conflict_cycles - before_cost.conflict_cycles,
            pipeline_cycles=self._cost_totals.pipeline_cycles - before_cost.pipeline_cycles,
        )
        measure_seconds = ps_to_seconds(measure_ps)
        window_cycles = measure_ps / self.core_clock.period_ps
        offered = self.mac_rx._next_seq - snap["rx_next_seq"]  # type: ignore[operator]
        lock_waits = {
            name: lock.total_wait_cycles - snap["lock_waits"][name]  # type: ignore[index]
            for name, lock in self.locks.items()
        }
        fault_counters: Dict[str, float] = {}
        if self.faults is not None:
            before_faults = snap["fault_counters"]
            fault_counters = {
                key: float(value - before_faults[key])  # type: ignore[index]
                for key, value in self.faults.counters.items()
            }
        return ThroughputResult(
            config=self.config,
            udp_payload_bytes=self.udp_payload_bytes,
            frame_bytes=self.frame_bytes,
            measure_seconds=measure_seconds,
            tx_frames=self._tx_done_frames - snap["tx_done"],  # type: ignore[operator]
            rx_frames=self._rx_done_frames - snap["rx_done"],  # type: ignore[operator]
            tx_payload_bytes=self._tx_payload_done - snap["tx_payload"],  # type: ignore[operator]
            rx_payload_bytes=self._rx_payload_done - snap["rx_payload"],  # type: ignore[operator]
            line_fps_per_direction=self.line_fps_per_direction,
            rx_offered=int(offered),
            rx_dropped=self._rx_dropped - snap["rx_dropped"],  # type: ignore[operator]
            function_stats=fn_stats,
            busy_cycles=(self._busy_ps - snap["busy_ps"]) / self.core_clock.period_ps,  # type: ignore[operator]
            total_core_cycles=window_cycles * self.config.cores,
            cost_totals=cost_delta,
            scratchpad_core_accesses=int(self._core_accesses - snap["core_accesses"]),  # type: ignore[operator]
            scratchpad_assist_accesses=self._assist_accesses - snap["assist_accesses"],  # type: ignore[operator]
            sdram_useful_bytes=self.sdram.useful_bytes - snap["sdram_useful"],  # type: ignore[operator]
            sdram_transferred_bytes=self.sdram.transferred_bytes - snap["sdram_transferred"],  # type: ignore[operator]
            imem_fill_bytes=(
                cost_delta.imiss_cycles
                / self.config.cost_model.imiss_penalty_cycles
                * self.config.icache_line_bytes
            ),
            conflict_wait=self._conflict_wait,
            lock_waits=lock_waits,
            event_queue_high_water=self.queue.high_water,
            retries=self.queue.retries,
            mean_rx_commit_latency_s=(
                ps_to_seconds(self._rx_latency_sum_ps / self._rx_latency_samples)
                if self._rx_latency_samples
                else 0.0
            ),
            mean_outstanding_frames=(
                self._inflight_sum / self._inflight_samples
                if self._inflight_samples
                else 0.0
            ),
            p99_rx_commit_latency_s=self.rx_latency_histogram.percentile(0.99) * 1e-6,
            rx_holes=self._rx_hole_frames - snap["rx_holes"],  # type: ignore[operator]
            fault_counters=fault_counters,
            rss=(
                self.rss_host.report(snap["rss"], measure_ps)  # type: ignore[arg-type]
                if self.rss_host is not None
                else None
            ),
        )
